"""Atomic checkpointing and exact-trajectory resume."""

import numpy as np
import pytest

from repro.core import AdaptiveCompso, StepLrSchedule
from repro.data import make_image_data
from repro.data.loaders import batch_indices
from repro.distributed import SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.optim import Adam, Sgd
from repro.train import ClassificationTask
from repro.util.checkpoint import load_checkpoint, save_checkpoint


def _make_trainer(seed=0):
    data = make_image_data(200, n_classes=4, size=8, noise=0.6, seed=seed)
    task = ClassificationTask(data)
    cluster = SimCluster(1, 2, seed=seed)
    model = resnet_proxy(n_classes=4, channels=8, rng=seed + 3)
    compressor = AdaptiveCompso(StepLrSchedule(4), seed=seed)
    return (
        DistributedKfacTrainer(
            model, task, cluster, lr=0.05, inv_update_freq=3, compressor=compressor
        ),
        task,
    )


def _params(model) -> np.ndarray:
    return np.concatenate([p.data.ravel() for p in model.parameters()])


class TestAtomicSave:
    def test_interrupted_save_preserves_previous_checkpoint(self, tmp_path, monkeypatch):
        """A crash mid-write must leave the old checkpoint intact."""
        tr, _ = _make_trainer()
        path = tmp_path / "ckpt.npz"
        tr.train(iterations=2, batch_size=16)
        tr.save_state(path)
        good = path.read_bytes()

        real_savez = np.savez_compressed

        def exploding_savez(file, **arrays):
            # Write a truncated fragment, then die — a torn write.
            real_savez(file, **arrays)
            with open(file, "r+b") as f:
                f.truncate(10)
            raise OSError("simulated crash mid-save")

        monkeypatch.setattr(np, "savez_compressed", exploding_savez)
        tr.train(iterations=1, batch_size=16)
        with pytest.raises(OSError, match="simulated crash"):
            tr.save_state(path)
        monkeypatch.undo()

        assert path.read_bytes() == good  # previous checkpoint untouched
        assert not list(tmp_path.glob(".*.tmp.npz"))  # temp file cleaned up
        tr2, _ = _make_trainer()
        tr2.restore_state(path)  # and it still loads
        assert tr2.t == 2

    def test_npz_suffix_appended_once(self, tmp_path):
        tr, _ = _make_trainer()
        tr.train(iterations=1, batch_size=16)
        tr.save_state(tmp_path / "a")
        tr.save_state(tmp_path / "b.npz")
        assert (tmp_path / "a.npz").exists()
        assert (tmp_path / "b.npz").exists() and not (tmp_path / "b.npz.npz").exists()


class TestOptimizerRoundTrip:
    def _model_and_grad(self, seed=0):
        model = resnet_proxy(n_classes=4, channels=8, rng=seed)
        data = make_image_data(64, n_classes=4, size=8, noise=0.6, seed=seed)
        task = ClassificationTask(data)
        x, y = task.batch(np.arange(32))
        out = model(x)
        _, dl = task.loss_and_grad(out, y)
        model.zero_grad()
        model.backward(dl)
        return model

    @pytest.mark.parametrize("opt_cls", [Sgd, Adam])
    def test_momentum_state_round_trips(self, tmp_path, opt_cls):
        model = self._model_and_grad()
        opt = opt_cls(model.parameters(), lr=0.01)
        opt.step()
        save_checkpoint(tmp_path / "c", model, optimizer=opt)

        model2 = self._model_and_grad()
        opt2 = opt_cls(model2.parameters(), lr=0.01)
        opt2.step()  # allocate state buffers, values to be overwritten
        load_checkpoint(tmp_path / "c", model2, optimizer=opt2)
        assert np.array_equal(_params(model), _params(model2))
        if opt_cls is Sgd:
            for a, b in zip(opt._velocity, opt2._velocity):
                assert np.array_equal(a, b)
        else:
            assert opt2._t == opt._t
            for a, b in zip(opt._m, opt2._m):
                assert np.array_equal(a, b)
            for a, b in zip(opt._v, opt2._v):
                assert np.array_equal(a, b)


class TestExactResume:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        """train(2N) == train(N) -> checkpoint -> restore -> train(N).

        Bit-exact equivalence is the whole point: a post-fault restore
        must continue the same trajectory, including K-FAC eigendecomps,
        momentum, the adaptive bound schedule, and the SR RNG stream.
        """
        N = 4
        tr_a, task = _make_trainer()
        batches = list(batch_indices(task.n, 32, iterations=2 * N, seed=7))

        for idx in batches:
            tr_a.step(idx)

        tr_b, _ = _make_trainer()
        for idx in batches[:N]:
            tr_b.step(idx)
        tr_b.save_state(tmp_path / "mid")

        tr_c, _ = _make_trainer(seed=0)
        # Scramble the fresh trainer so the test can't pass by accident.
        for p in tr_c.model.parameters():
            p.data = p.data + 1.0
        tr_c.restore_state(tmp_path / "mid")
        assert tr_c.t == N
        for idx in batches[N:]:
            tr_c.step(idx)

        assert np.array_equal(_params(tr_a.model), _params(tr_c.model))
        assert tr_a.history.losses[N:] == tr_c.history.losses
        assert tr_a.compressor.iteration == tr_c.compressor.iteration
        assert tr_a.compressor.bounds == tr_c.compressor.bounds

    def test_adaptive_degradation_state_round_trips(self, tmp_path):
        tr, _ = _make_trainer()
        tr.train(iterations=2, batch_size=16)
        tr.compressor.degrade(iterations=5)
        tr.save_state(tmp_path / "deg")
        tr2, _ = _make_trainer()
        tr2.restore_state(tmp_path / "deg")
        assert tr2.compressor.degraded
        assert tr2.compressor._degraded_until == tr.compressor._degraded_until
        assert tr2.compressor.bounds == tr.compressor.bounds

    def test_periodic_checkpoint_written_by_train(self, tmp_path):
        data = make_image_data(200, n_classes=4, size=8, noise=0.6, seed=0)
        task = ClassificationTask(data)
        tr = DistributedKfacTrainer(
            resnet_proxy(n_classes=4, channels=8, rng=3),
            task,
            SimCluster(1, 2, seed=0),
            lr=0.05,
            inv_update_freq=3,
            checkpoint_dir=tmp_path / "ckpts",
            checkpoint_every=2,
        )
        tr.train(iterations=4, batch_size=16)
        assert (tmp_path / "ckpts" / "latest.npz").exists()
        assert tr._last_checkpoint == tmp_path / "ckpts" / "latest.npz"
