"""Baseline compressors: QSGD, cuSZ-style, CocktailSGD, Top-k."""

import numpy as np
import pytest

from repro.compression import (
    CocktailSgdCompressor,
    IdentityCompressor,
    QsgdCompressor,
    SzCompressor,
    TopKCompressor,
    topk_mask,
)

ALL_COMPRESSORS = [
    QsgdCompressor(8),
    QsgdCompressor(4),
    SzCompressor(4e-3),
    SzCompressor(1e-1),
    CocktailSgdCompressor(0.2, 8),
    TopKCompressor(0.1),
    IdentityCompressor(),
]


@pytest.mark.parametrize("comp", ALL_COMPRESSORS, ids=lambda c: c.name)
def test_shape_and_dtype_preserved(comp, rng):
    x = rng.standard_normal((37, 53)).astype(np.float32)
    out = comp.roundtrip(x)
    assert out.shape == x.shape
    assert out.dtype == np.float32


@pytest.mark.parametrize("comp", ALL_COMPRESSORS, ids=lambda c: c.name)
def test_zero_tensor_roundtrip(comp):
    x = np.zeros(500, dtype=np.float32)
    assert np.allclose(comp.roundtrip(x), 0.0)


class TestQsgd:
    def test_8bit_relative_error_small(self, kfac_like_gradient):
        x = kfac_like_gradient
        err = np.abs(QsgdCompressor(8).roundtrip(x) - x).max()
        assert err <= np.abs(x).max() / 127 * 1.01

    def test_4bit_compresses_more_than_8bit(self, kfac_like_gradient):
        assert QsgdCompressor(4).ratio(kfac_like_gradient) > QsgdCompressor(8).ratio(
            kfac_like_gradient
        )

    def test_4bit_has_larger_error(self, kfac_like_gradient):
        x = kfac_like_gradient
        e4 = np.abs(QsgdCompressor(4).roundtrip(x) - x).max()
        e8 = np.abs(QsgdCompressor(8).roundtrip(x) - x).max()
        assert e4 > e8

    def test_signs_preserved_for_large_values(self, rng):
        x = rng.choice([-1.0, 1.0], 1000).astype(np.float32)
        out = QsgdCompressor(8).roundtrip(x)
        assert np.array_equal(np.sign(out), np.sign(x))


class TestSz:
    def test_error_bound_honoured(self, kfac_like_gradient):
        x = kfac_like_gradient
        for eb in (1e-1, 4e-3, 1e-3):
            err = np.abs(SzCompressor(eb).roundtrip(x) - x).max()
            assert err <= eb * np.abs(x).max() * 1.0001, eb

    def test_looser_bound_higher_ratio(self, kfac_like_gradient):
        x = kfac_like_gradient
        assert SzCompressor(1e-1).ratio(x) > SzCompressor(4e-3).ratio(x)

    def test_smooth_data_compresses_well(self):
        # Lorenzo prediction shines on smooth signals.
        x = np.sin(np.linspace(0, 20, 50_000)).astype(np.float32)
        assert SzCompressor(1e-3).ratio(x) > 8

    def test_outlier_escape_path(self, rng):
        # Wild jumps force deltas beyond the 1-byte radius.
        x = (rng.standard_normal(5000) * rng.choice([1, 1000], 5000)).astype(np.float32)
        c = SzCompressor(1e-4)
        out = c.roundtrip(x)
        assert np.abs(out - x).max() <= 1e-4 * np.abs(x).max() * 1.0001

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            SzCompressor(-1.0)


class TestTopK:
    def test_mask_selects_largest(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        mask = topk_mask(x, 100)
        assert mask.sum() == 100
        kept_min = np.abs(x[mask]).min()
        dropped_max = np.abs(x[~mask]).max()
        assert kept_min >= dropped_max - 1e-12

    def test_k_edge_cases(self, rng):
        x = rng.standard_normal(10)
        assert topk_mask(x, 0).sum() == 0
        assert topk_mask(x, 10).sum() == 10
        assert topk_mask(x, 99).sum() == 10

    def test_density_respected(self, rng):
        x = rng.standard_normal(10_000).astype(np.float32)
        ct = TopKCompressor(0.05).compress(x)
        assert ct.meta["k"] == 500

    def test_dropped_entries_zero(self, rng):
        x = rng.standard_normal(1000).astype(np.float32) + 10  # all nonzero
        out = TopKCompressor(0.1).roundtrip(x)
        assert (out == 0).sum() == 900

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            TopKCompressor(0.0)


class TestCocktail:
    def test_density_approximate(self, rng):
        x = rng.standard_normal(20_000).astype(np.float32)
        ct = CocktailSgdCompressor(0.2, 8).compress(x)
        assert abs(ct.meta["k"] - 4000) < 50

    def test_ratio_near_paper_constant(self, kfac_like_gradient):
        """Paper: CocktailSGD holds a roughly constant ~20x ratio."""
        r = CocktailSgdCompressor(0.2, 8).ratio(kfac_like_gradient)
        assert 10 < r < 30

    def test_kept_values_approximately_preserved(self, rng):
        x = rng.standard_normal(5000).astype(np.float32)
        out = CocktailSgdCompressor(0.5, 8, candidate_factor=10).roundtrip(x)
        kept = out != 0
        err = np.abs(out[kept] - x[kept]).max()
        assert err <= np.abs(x).max() / 127 * 1.1

    def test_candidate_factor_validation(self):
        with pytest.raises(ValueError):
            CocktailSgdCompressor(0.2, candidate_factor=0.5)

    def test_deterministic_given_seed(self, rng):
        x = rng.standard_normal(5000).astype(np.float32)
        a = CocktailSgdCompressor(0.2, 8, seed=9).roundtrip(x)
        b = CocktailSgdCompressor(0.2, 8, seed=9).roundtrip(x)
        assert np.array_equal(a, b)


class TestCompressedTensorAccounting:
    def test_nbytes_counts_all_segments(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        ct = QsgdCompressor(8).compress(x)
        assert ct.nbytes == sum(len(s) for s in ct.segments.values()) + 16

    def test_ratio_uses_wire_bytes(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        c = IdentityCompressor()
        assert c.ratio(x) == pytest.approx(4000 / (4000 + 16))
