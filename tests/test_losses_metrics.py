"""Loss functions and evaluation metrics."""

import numpy as np
import pytest

from repro.nn.losses import mse_loss, smooth_l1_loss, softmax_cross_entropy
from repro.train.metrics import accuracy, predict_spans, span_em_f1


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.full((4, 3), -20.0)
        targets = np.array([0, 1, 2, 0])
        logits[np.arange(4), targets] = 20.0
        loss, grad = softmax_cross_entropy(logits, targets)
        assert loss < 1e-6
        assert np.abs(grad).max() < 1e-6

    def test_uniform_logits_log_k(self):
        logits = np.zeros((10, 5))
        loss, _ = softmax_cross_entropy(logits, np.zeros(10, dtype=int))
        assert loss == pytest.approx(np.log(5), rel=1e-6)

    def test_gradient_matches_finite_difference(self, rng):
        logits = rng.standard_normal((3, 4))
        targets = rng.integers(0, 4, 3)
        _, grad = softmax_cross_entropy(logits, targets)
        eps = 1e-5
        for i in range(3):
            for j in range(4):
                lp = logits.copy()
                lp[i, j] += eps
                lm = logits.copy()
                lm[i, j] -= eps
                num = (
                    softmax_cross_entropy(lp, targets)[0]
                    - softmax_cross_entropy(lm, targets)[0]
                ) / (2 * eps)
                assert num == pytest.approx(grad[i, j], abs=1e-6)

    def test_grad_rows_sum_to_zero(self, rng):
        logits = rng.standard_normal((6, 5))
        _, grad = softmax_cross_entropy(logits, rng.integers(0, 5, 6))
        assert np.allclose(grad.sum(axis=-1), 0.0, atol=1e-7)

    def test_ignore_index_masks_positions(self, rng):
        logits = rng.standard_normal((2, 4, 5))
        targets = np.array([[1, 0, 0, 2], [0, 0, 3, 0]])
        loss, grad = softmax_cross_entropy(logits, targets, ignore_index=0)
        assert np.all(grad[0, 1] == 0)
        assert np.all(grad[1, 0] == 0)
        assert np.any(grad[0, 0] != 0)

    def test_3d_logits(self, rng):
        logits = rng.standard_normal((2, 7, 5))
        targets = rng.integers(0, 5, (2, 7))
        loss, grad = softmax_cross_entropy(logits, targets)
        assert grad.shape == logits.shape
        assert loss > 0

    def test_numerical_stability_large_logits(self):
        logits = np.array([[1000.0, -1000.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss) and np.all(np.isfinite(grad))


class TestRegressionLosses:
    def test_mse_zero_at_target(self, rng):
        x = rng.standard_normal((3, 4))
        loss, grad = mse_loss(x, x.copy())
        assert loss == 0.0
        assert np.all(grad == 0)

    def test_mse_gradient_direction(self):
        loss, grad = mse_loss(np.array([2.0]), np.array([1.0]))
        assert loss == pytest.approx(1.0)
        assert grad[0] == pytest.approx(2.0)

    def test_smooth_l1_quadratic_region(self):
        loss, grad = smooth_l1_loss(np.array([0.5]), np.array([0.0]))
        assert loss == pytest.approx(0.125)
        assert grad[0] == pytest.approx(0.5)

    def test_smooth_l1_linear_region(self):
        loss, grad = smooth_l1_loss(np.array([5.0]), np.array([0.0]))
        assert loss == pytest.approx(4.5)
        assert grad[0] == pytest.approx(1.0)

    def test_smooth_l1_bounded_gradient(self, rng):
        pred = rng.standard_normal(100) * 100
        _, grad = smooth_l1_loss(pred, np.zeros(100))
        assert np.abs(grad).max() <= 1.0 / 100 + 1e-9


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(100 * 2 / 3)

    def test_span_em_exact(self):
        em, f1 = span_em_f1(np.array([2]), np.array([4]), np.array([2]), np.array([4]))
        assert em == 100.0 and f1 == 100.0

    def test_span_no_overlap(self):
        em, f1 = span_em_f1(np.array([0]), np.array([1]), np.array([5]), np.array([6]))
        assert em == 0.0 and f1 == 0.0

    def test_span_partial_overlap(self):
        # pred [2,5] (4 tokens), gold [4,7] (4 tokens), overlap 2 -> F1 = 0.5
        em, f1 = span_em_f1(np.array([2]), np.array([5]), np.array([4]), np.array([7]))
        assert em == 0.0
        assert f1 == pytest.approx(50.0)

    def test_predict_spans_end_after_start(self, rng):
        logits = rng.standard_normal((10, 20, 2))
        starts, ends = predict_spans(logits)
        assert np.all(ends >= starts)

    def test_predict_spans_picks_argmax_start(self):
        logits = np.zeros((1, 5, 2))
        logits[0, 3, 0] = 10.0  # start at 3
        logits[0, 1, 1] = 10.0  # best end before start must be ignored
        logits[0, 4, 1] = 5.0
        starts, ends = predict_spans(logits)
        assert starts[0] == 3 and ends[0] == 4
