"""Bit-identical equivalence: overlapped execution vs blocking execution.

The tentpole guarantee of `repro.runtime`: switching `StreamRuntime` from
blocking to overlapped mode changes *when* simulated time passes, never
*what* the data plane computes.  These tests train real models both ways
and require exact (array-equal) parameter agreement, plus the payoff —
the overlapped run finishing in strictly less simulated time at scale.
"""

import numpy as np
import pytest

from repro.core import CompsoCompressor
from repro.data import make_image_data
from repro.distributed import SLINGSHOT10, SimCluster
from repro.faults import FaultPlan
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.optim import Sgd
from repro.runtime import ComputeModel, StreamRuntime
from repro.train import ClassificationTask, DistributedSgdTrainer

ITERS = 4
#: Tiny-proxy throughput so modelled compute is on the comm scale.
FLOPS = 5e7


def _task():
    return ClassificationTask(make_image_data(200, n_classes=5, size=8, noise=0.4, seed=0))


def _params(model):
    return np.concatenate([p.data.ravel() for p in model.parameters()])


def _cluster(ranks=16, **kw):
    gpus = min(ranks, 4)
    return SimCluster(ranks // gpus, gpus, seed=0, network=SLINGSHOT10, **kw)


def run_sgd(overlap, *, runtime=True, compressor=False, ranks=16):
    cluster = _cluster(ranks)
    model = resnet_proxy(n_classes=5, channels=8, rng=3)
    rt = (
        StreamRuntime(
            cluster, overlap=overlap, compute=ComputeModel(train_flops=FLOPS),
            bucket_bytes=2048,
        )
        if runtime
        else None
    )
    tr = DistributedSgdTrainer(
        model,
        _task(),
        Sgd(model.parameters(), lr=0.05),
        cluster,
        compressor=CompsoCompressor(4e-3, 4e-3, seed=0) if compressor else None,
        runtime=rt,
    )
    tr.train(iterations=ITERS, batch_size=64)
    return tr, cluster, rt


def run_kfac(overlap, *, runtime=True, compressor=True, ranks=16, fault_plan=None):
    cluster = _cluster(ranks, fault_plan=fault_plan)
    model = resnet_proxy(n_classes=5, channels=8, rng=3)
    rt = (
        StreamRuntime(cluster, overlap=overlap, compute=ComputeModel(train_flops=FLOPS))
        if runtime
        else None
    )
    tr = DistributedKfacTrainer(
        model,
        _task(),
        cluster,
        lr=0.05,
        inv_update_freq=2,
        compressor=CompsoCompressor(4e-3, 4e-3, seed=0) if compressor else None,
        runtime=rt,
    )
    tr.train(iterations=ITERS, batch_size=64)
    return tr, cluster, rt


class TestSgdEquivalence:
    def test_bit_identical_and_faster(self):
        tb, cb, _ = run_sgd(False)
        to, co, rt = run_sgd(True)
        assert np.array_equal(_params(tb.model), _params(to.model))
        assert tb.history.losses == to.history.losses
        assert co.time < cb.time
        assert rt.hidden_comm_seconds() > 0.0

    def test_matches_seed_path(self):
        """runtime=None (the pre-runtime trainer) computes the same model;
        it just lacks the compute-model clock charges."""
        ts, _, _ = run_sgd(False, runtime=False)
        tb, _, _ = run_sgd(False)
        assert np.array_equal(_params(ts.model), _params(tb.model))

    def test_compressed_path_identical(self):
        tb, _, _ = run_sgd(False, compressor=True)
        to, _, _ = run_sgd(True, compressor=True)
        assert np.array_equal(_params(tb.model), _params(to.model))


class TestKfacEquivalence:
    def test_bit_identical_and_strictly_faster_at_16_ranks(self):
        """The ISSUE acceptance bar: exact numerics, strictly lower sim
        time at >=16 ranks on Slingshot-10, nonzero hidden comm."""
        tb, cb, _ = run_kfac(False)
        to, co, rt = run_kfac(True)
        assert np.array_equal(_params(tb.model), _params(to.model))
        assert tb.history.losses == to.history.losses
        assert co.time < cb.time
        assert rt.hidden_comm_seconds() > 0.0
        assert 0.0 < rt.hidden_fraction() <= 1.0

    def test_uncompressed_identical(self):
        tb, cb, _ = run_kfac(False, compressor=False)
        to, co, _ = run_kfac(True, compressor=False)
        assert np.array_equal(_params(tb.model), _params(to.model))
        assert co.time < cb.time

    def test_matches_seed_path(self):
        ts, _, _ = run_kfac(False, runtime=False)
        tb, _, _ = run_kfac(False)
        assert np.array_equal(_params(ts.model), _params(tb.model))

    def test_small_world_never_slower(self):
        tb, cb, _ = run_kfac(False, ranks=2)
        to, co, _ = run_kfac(True, ranks=2)
        assert np.array_equal(_params(tb.model), _params(to.model))
        assert co.time <= cb.time


class TestFaultComposition:
    def test_overlapped_run_survives_faults(self):
        """Stragglers and jitter stretch waits, corruption lands at wait
        time; the overlapped trainer still completes every iteration."""
        plan = (
            FaultPlan(seed=7)
            .add_straggler(1, start=1, slowdown=3.0)
            .add_jitter(0.3, start=0)
            .add_corruption(0.3, n_bits=2)
        )
        tr, cluster, rt = run_kfac(True, ranks=4, fault_plan=plan)
        assert len(tr.history.losses) == ITERS
        assert all(np.isfinite(loss) for loss in tr.history.losses)
        assert np.isfinite(_params(tr.model)).all()

    def test_faulted_wait_costs_more_than_clean(self):
        plan = FaultPlan(seed=7).add_straggler(1, start=0, slowdown=5.0)
        _, clean, _ = run_kfac(True, ranks=4)
        _, faulted, _ = run_kfac(True, ranks=4, fault_plan=plan)
        assert faulted.time > clean.time
