"""repro.fleet + representative-rank data plane tests.

Three contracts:

1. **Track equivalence** — on the timing track, representative payloads
   (one buffer stands in for all ranks) produce bit-identical parameters
   and simulated times to full per-rank payloads, for SGD and K-FAC,
   blocking and overlapped.
2. **Convergence track untouched** — the default track still carries
   full per-rank payloads through per-rank SimClocks; explicitly asking
   for ``track="convergence"`` changes nothing.
3. **Fleet semantics** — the scheduler completes multi-job runs with
   weighted-fair contention (priority slows less), O(1) payload memory
   in world size, and per-job obsv ledgers.
"""

import numpy as np
import pytest

from repro.core import CompsoCompressor
from repro.data import make_image_data
from repro.distributed import (
    SLINGSHOT10,
    RepView,
    SimCluster,
    VirtualClockPlane,
    allreduce_time,
    map_payloads,
    payload_nbytes,
)
from repro.faults import FaultPlan
from repro.faults.plan import PayloadCorruption
from repro.fleet import FleetScheduler, JobSpec, SharedFabric, preset_specs
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.optim import Sgd
from repro.runtime import ComputeModel, StreamRuntime
from repro.train import ClassificationTask, DistributedSgdTrainer

ITERS = 3
FLOPS = 5e7


def _task():
    return ClassificationTask(make_image_data(200, n_classes=5, size=8, noise=0.4, seed=0))


def _params(model):
    return np.concatenate([p.data.ravel() for p in model.parameters()])


def _run(kind, ranks, *, track="timing", payloads=None, overlap=False, use_rt=False):
    cluster = SimCluster.from_world_size(
        ranks, min(ranks, 4), seed=0, network=SLINGSHOT10, track=track, payloads=payloads
    )
    model = resnet_proxy(n_classes=5, channels=8, rng=3)
    rt = (
        StreamRuntime(cluster, overlap=overlap, compute=ComputeModel(train_flops=FLOPS))
        if use_rt
        else None
    )
    comp = CompsoCompressor(4e-3, 4e-3, seed=0)
    if kind == "sgd":
        trainer = DistributedSgdTrainer(
            model, _task(), Sgd(model.parameters(), lr=0.05), cluster,
            compressor=comp, runtime=rt,
        )
    else:
        trainer = DistributedKfacTrainer(
            model, _task(), cluster, lr=0.05, inv_update_freq=2,
            compressor=comp, runtime=rt,
        )
    trainer.train(iterations=ITERS, batch_size=64)
    return _params(model), cluster


class TestRepresentativeEquivalence:
    """Representative payloads == full payloads on the timing track."""

    @pytest.mark.parametrize("ranks", [4, 8, 16])
    @pytest.mark.parametrize("kind", ["sgd", "kfac"])
    def test_blocking_bit_identical(self, kind, ranks):
        p_rep, c_rep = _run(kind, ranks, payloads="representative")
        p_full, c_full = _run(kind, ranks, payloads="full")
        assert np.array_equal(p_rep, p_full)
        assert c_rep.time == c_full.time

    @pytest.mark.parametrize("kind", ["sgd", "kfac"])
    def test_overlapped_bit_identical(self, kind):
        p_rep, c_rep = _run(kind, 8, payloads="representative", use_rt=True, overlap=True)
        p_full, c_full = _run(kind, 8, payloads="full", use_rt=True, overlap=True)
        assert np.array_equal(p_rep, p_full)
        assert c_rep.time == c_full.time

    def test_representative_memory_flat_in_world(self):
        _, c_small = _run("kfac", 256)
        _, c_large = _run("kfac", 4096)
        assert c_small.peak_payload_bytes > 0
        assert c_large.peak_payload_bytes == c_small.peak_payload_bytes

    def test_convergence_memory_grows_with_world(self):
        _, c4 = _run("kfac", 4, track="convergence")
        _, c8 = _run("kfac", 8, track="convergence")
        assert c8.peak_payload_bytes == 2 * c4.peak_payload_bytes


class TestTimingTrackComposition:
    """Runtime, time-plane faults, guard, and telemetry all compose with
    the representative path."""

    def test_straggler_guard_telemetry_compose(self):
        from repro import telemetry
        from repro.guard.guard import GuardConfig

        plan = FaultPlan().add_straggler(1, start=0, slowdown=3.0)
        cluster = SimCluster.from_world_size(
            8, 4, seed=0, network=SLINGSHOT10, track="timing", fault_plan=plan
        )
        model = resnet_proxy(n_classes=5, channels=8, rng=3)
        rt = StreamRuntime(cluster, overlap=True, compute=ComputeModel(train_flops=FLOPS))
        trainer = DistributedKfacTrainer(
            model, _task(), cluster, lr=0.05, inv_update_freq=2,
            compressor=CompsoCompressor(4e-3, 4e-3, seed=0),
            runtime=rt, guard=GuardConfig(),
        )
        with telemetry.session():
            trainer.train(iterations=ITERS, batch_size=64)
        assert np.all(np.isfinite(_params(model)))
        # The straggler stretched the run past the fault-free twin.
        clean = SimCluster.from_world_size(
            8, 4, seed=0, network=SLINGSHOT10, track="timing"
        )
        model2 = resnet_proxy(n_classes=5, channels=8, rng=3)
        rt2 = StreamRuntime(clean, overlap=True, compute=ComputeModel(train_flops=FLOPS))
        DistributedKfacTrainer(
            model2, _task(), clean, lr=0.05, inv_update_freq=2,
            compressor=CompsoCompressor(4e-3, 4e-3, seed=0),
            runtime=rt2, guard=GuardConfig(),
        ).train(iterations=ITERS, batch_size=64)
        assert cluster.time > clean.time
        assert np.array_equal(_params(model), _params(model2))


class TestConvergenceTrackUntouched:
    def test_default_cluster_is_convergence_full(self):
        cluster = SimCluster(2, 4, seed=0)
        assert cluster.track == "convergence"
        assert not cluster.is_timing
        assert not cluster.representative
        out = cluster.allreduce([np.full(4, float(r + 1)) for r in range(8)])
        assert isinstance(out, list) and len(out) == 8
        assert out[0] is not out[1]

    @pytest.mark.parametrize("kind", ["sgd", "kfac"])
    def test_explicit_convergence_matches_default(self, kind):
        p_explicit, c_explicit = _run(kind, 8, track="convergence")
        cluster = SimCluster(2, 4, seed=0, network=SLINGSHOT10)
        model = resnet_proxy(n_classes=5, channels=8, rng=3)
        comp = CompsoCompressor(4e-3, 4e-3, seed=0)
        if kind == "sgd":
            trainer = DistributedSgdTrainer(
                model, _task(), Sgd(model.parameters(), lr=0.05), cluster, compressor=comp
            )
        else:
            trainer = DistributedKfacTrainer(
                model, _task(), cluster, lr=0.05, inv_update_freq=2, compressor=comp
            )
        trainer.train(iterations=ITERS, batch_size=64)
        assert np.array_equal(p_explicit, _params(model))
        assert c_explicit.time == cluster.time


class TestValidation:
    @pytest.mark.parametrize("n_nodes,gpus", [(0, 4), (-1, 4), (2, 0), (2, -3), (True, 4)])
    def test_rejects_nonpositive_shape(self, n_nodes, gpus):
        with pytest.raises((ValueError, TypeError)):
            SimCluster(n_nodes, gpus)

    def test_from_world_size_rejects_indivisible(self):
        with pytest.raises(ValueError, match="does not divide"):
            SimCluster.from_world_size(10, 4)

    def test_rejects_unknown_track(self):
        with pytest.raises(ValueError, match="track"):
            SimCluster(1, 4, track="sideways")

    def test_rejects_representative_on_convergence(self):
        with pytest.raises(ValueError, match="representative"):
            SimCluster(1, 4, payloads="representative")

    def test_timing_rejects_data_plane_faults(self):
        plan = FaultPlan(corruptions=[PayloadCorruption(probability=0.5)])
        with pytest.raises(ValueError, match="timing"):
            SimCluster(1, 4, track="timing", fault_plan=plan)

    def test_collective_costs_require_gpus_per_node(self):
        with pytest.raises(TypeError):
            allreduce_time(SLINGSHOT10, 8, 1e6)


class TestVirtualClockPlane:
    def test_barrier_charges_mean_wait_and_syncs(self):
        plane = VirtualClockPlane(4)
        plane.advance_rank(0, 2.0, "compute")
        plane.advance_rank(1, 1.0, "compute")
        assert plane.now_of(0) == 2.0
        assert plane.now_of(3) == 0.0
        plane.barrier("wait")
        # Everyone lands on the slowest rank's time.
        assert all(plane.now_of(r) == 2.0 for r in range(4))
        # Mean wait = top - mean(skew) = 2.0 - 0.75
        assert plane.breakdown()["wait"] == pytest.approx(1.25)

    def test_advance_all_and_reset(self):
        plane = VirtualClockPlane(2)
        plane.advance_all(1.5, "comm")
        assert plane.max_now == 1.5
        assert plane.breakdown() == {"comm": 1.5}
        plane.reset()
        assert plane.max_now == 0.0
        assert plane.breakdown() == {}

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            VirtualClockPlane(0)
        plane = VirtualClockPlane(2)
        with pytest.raises(ValueError):
            plane.advance_all(-1.0)


class TestRepView:
    def test_sequence_semantics(self):
        payload = np.arange(3.0)
        view = RepView(payload, 1000)
        assert len(view) == 1000
        assert view[0] is payload and view[999] is payload and view[-1] is payload
        with pytest.raises(IndexError):
            view[1000]
        sliced = view[10:20]
        assert isinstance(sliced, RepView) and len(sliced) == 10
        assert sum(1 for _ in view) == 1000

    def test_map_and_nbytes(self):
        view = RepView(np.zeros(4, dtype=np.float64), 512)
        doubled = map_payloads(view, lambda a: a + 1.0)
        assert isinstance(doubled, RepView) and doubled.payload[0] == 1.0
        # One buffer resident regardless of world.
        assert payload_nbytes(view) == 32.0
        assert payload_nbytes([np.zeros(4) for _ in range(512)]) == 32.0 * 512
        assert map_payloads([1, 2], lambda x: x * 2) == [2, 4]


class TestSharedFabric:
    def test_uncontended_is_nominal(self):
        fabric = SharedFabric()
        fabric.register("a")
        assert fabric.acquire("a", "allreduce", 0.0, 1.0) == 1.0
        assert fabric.slowdown("a") == 1.0

    def test_full_overlap_equal_weights_doubles(self):
        fabric = SharedFabric()
        fabric.register("a")
        fabric.register("b")
        fabric.acquire("a", "allreduce", 0.0, 1.0)
        assert fabric.acquire("b", "allreduce", 0.0, 1.0) == pytest.approx(2.0)

    def test_priority_weight_reduces_slowdown(self):
        fabric = SharedFabric()
        fabric.register("hi", 2.0)
        fabric.register("lo", 1.0)
        fabric.acquire("lo", "allreduce", 0.0, 1.0)
        # hi overlapping lo: (2 + 1) / 2 = 1.5x, vs 2x for equal weights.
        assert fabric.acquire("hi", "allreduce", 0.0, 1.0) == pytest.approx(1.5)

    def test_prune_drops_past_windows(self):
        fabric = SharedFabric()
        fabric.register("a")
        fabric.acquire("a", "allreduce", 0.0, 1.0)
        fabric.acquire("a", "allreduce", 5.0, 1.0)
        assert fabric.prune(3.0) == 1
        assert fabric.n_windows == 1

    def test_register_validation(self):
        fabric = SharedFabric()
        fabric.register("a")
        with pytest.raises(ValueError):
            fabric.register("a")
        with pytest.raises(ValueError):
            fabric.register("b", 0.0)
        with pytest.raises(KeyError):
            fabric.acquire("ghost", "allreduce", 0.0, 1.0)


class TestFleetScheduler:
    def test_smoke_preset_completes_with_contention(self, tmp_path):
        result = FleetScheduler(preset_specs("smoke"), ledger_dir=tmp_path).run()
        assert len(result.reports) == 3
        assert all(r.steps == spec.iterations for r, spec in zip(result.reports, preset_specs("smoke")))
        assert result.total_contended_seconds > 0.0
        for r in result.reports:
            assert (tmp_path / f"{r.name}.ledger").exists()
        # The priority-2 job is slowed less than its priority-1 peers.
        job0 = result.by_name("job0")
        assert job0.slowdown < result.by_name("job1").slowdown
        assert job0.slowdown < result.by_name("job2").slowdown

    def test_single_job_fleet_is_uncontended(self):
        spec = JobSpec("solo", world_size=16, iterations=2, seed=0)
        result = FleetScheduler([spec]).run()
        report = result.by_name("solo")
        assert report.contended_seconds == 0.0
        assert report.slowdown == 1.0
        assert result.makespan == report.sim_time

    def test_fleet_payload_memory_flat_across_worlds(self):
        specs = [
            JobSpec("small", world_size=256, iterations=2, seed=0),
            JobSpec("large", world_size=4096, iterations=2, seed=0, arrival=0.001),
        ]
        result = FleetScheduler(specs).run()
        small = result.by_name("small")
        large = result.by_name("large")
        assert small.peak_payload_bytes > 0
        assert large.peak_payload_bytes == small.peak_payload_bytes

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            FleetScheduler([])
        dup = [JobSpec("x", 8, 1), JobSpec("x", 8, 1)]
        with pytest.raises(ValueError):
            FleetScheduler(dup)
        with pytest.raises(ValueError):
            JobSpec("bad", world_size=8, iterations=0)

    def test_deterministic_reruns(self, tmp_path):
        r1 = FleetScheduler(preset_specs("smoke"), ledger_dir=tmp_path / "a").run()
        r2 = FleetScheduler(preset_specs("smoke"), ledger_dir=tmp_path / "b").run()
        assert r1.makespan == r2.makespan
        for a, b in zip(r1.reports, r2.reports):
            assert a.sim_time == b.sim_time
            assert a.final_loss == b.final_loss
            assert a.contended_seconds == b.contended_seconds
