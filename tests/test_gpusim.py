"""GPU execution model: device, encoder perf calibration, kernel pipelines."""

import pytest

from repro.gpusim import (
    A100,
    ENCODER_PERF,
    PIPELINES,
    TABLE2_CALIBRATION,
    DeviceModel,
    pipeline_throughput,
)
from repro.gpusim.encoder_perf import BERT_CHUNK_BYTES, RESNET_CHUNK_BYTES


class TestDeviceModel:
    def test_mem_time_linear(self):
        assert A100.mem_time(2e9) == pytest.approx(2 * A100.mem_time(1e9))

    def test_eig_time_cubic(self):
        t1, t2 = A100.eig_time(1000), A100.eig_time(2000)
        assert t2 / t1 == pytest.approx(8.0, rel=0.05)

    def test_eig_time_realistic_at_4608(self):
        # cuSOLVER syevd at dim 4608 on A100 is O(0.5-1s).
        assert 0.1 < A100.eig_time(4608) < 3.0

    def test_inverse_cheaper_than_eig(self):
        assert A100.inverse_time(4096) < A100.eig_time(4096)

    def test_matmul_time(self):
        t = A100.matmul_time(1024, 1024, 1024)
        assert 1e-6 < t < 1e-3


class TestEncoderPerfCalibration:
    """The two-point fits must reproduce Table 2 at the calibration sizes."""

    @pytest.mark.parametrize("name", sorted(TABLE2_CALIBRATION))
    def test_small_payload_point(self, name):
        target = TABLE2_CALIBRATION[name]["C"][0]
        got = ENCODER_PERF[name].compress_throughput(RESNET_CHUNK_BYTES)
        assert got == pytest.approx(target, rel=0.15)

    @pytest.mark.parametrize(
        "name", [n for n in sorted(TABLE2_CALIBRATION) if n != "bitcomp"]
    )
    def test_large_payload_point(self, name):
        # bitcomp's Table 2 pair is unfittable with a 2-parameter model
        # (documented in EXPERIMENTS.md); all others must match.
        target = TABLE2_CALIBRATION[name]["C"][1]
        got = ENCODER_PERF[name].compress_throughput(BERT_CHUNK_BYTES)
        assert got == pytest.approx(target, rel=0.15)

    def test_throughput_monotone_in_size(self):
        ep = ENCODER_PERF["ans"]
        tps = [ep.compress_throughput(s) for s in (1e5, 1e6, 1e7, 1e8)]
        assert all(a <= b for a, b in zip(tps, tps[1:]))

    def test_ans_fastest_entropy_coder_at_scale(self):
        at = 50e6
        ans = ENCODER_PERF["ans"].compress_throughput(at)
        for other in ("deflate", "gdeflate", "zstd", "huffman"):
            assert ans > ENCODER_PERF[other].compress_throughput(at)

    def test_zero_payload_free(self):
        assert ENCODER_PERF["ans"].compress_time(0) == 0.0


class TestKernelPipelines:
    """Fig. 8's ordering and scale."""

    def test_throughput_rises_and_saturates(self):
        p = PIPELINES["compso-cuda"]
        tps = [p.throughput(s) for s in (1e6, 1e7, 5e7, 1.2e8)]
        assert all(a < b for a, b in zip(tps, tps[1:]))
        # Saturation: the last doubling gains little.
        assert tps[-1] / tps[-2] < 1.5

    def test_fig8_ordering_at_large_size(self):
        at = 100e6
        t = {n: p.throughput(at) for n, p in PIPELINES.items()}
        assert t["qsgd-cuda"] > t["compso-cuda"]  # QSGD omits the filter
        assert t["compso-cuda"] > t["sz-cuda"]
        assert t["compso-cuda"] > t["qsgd-pytorch"]
        assert t["compso-cuda"] > t["cocktail-pytorch"]

    def test_compso_17x_over_cocktail(self):
        """Paper section 5.3: COMPSO is ~1.7x CocktailSGD."""
        ratio = PIPELINES["compso-cuda"].throughput(120e6) / PIPELINES[
            "cocktail-pytorch"
        ].throughput(120e6)
        assert 1.4 < ratio < 2.1

    def test_cuda_beats_pytorch_qsgd(self):
        for size in (5e6, 50e6, 120e6):
            assert pipeline_throughput("qsgd-cuda", size) > pipeline_throughput(
                "qsgd-pytorch", size
            )

    def test_fusion_ablation_slower(self):
        p = PIPELINES["compso-cuda"]
        nf = p.without_fusion()
        assert nf.compress_time(50e6) > p.compress_time(50e6)
        assert "nofusion" in nf.name

    def test_warp_shuffle_ablation_slower(self):
        p = PIPELINES["compso-cuda"]
        ns = p.without_warp_shuffle()
        assert ns.compress_time(50e6) > p.compress_time(50e6)

    def test_decompress_cheaper_than_compress(self):
        p = PIPELINES["compso-cuda"]
        assert p.decompress_time(50e6) < p.compress_time(50e6)

    def test_zero_bytes_free(self):
        assert PIPELINES["compso-cuda"].compress_time(0) == 0.0

    def test_slower_device_slower_pipeline(self):
        slow = DeviceModel("half-a100", mem_bw=A100.mem_bw / 2, launch_overhead=8e-6, fp32_flops=A100.fp32_flops / 2)
        p = PIPELINES["compso-cuda"]
        assert p.compress_time(50e6, slow) > p.compress_time(50e6, A100)
