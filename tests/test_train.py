"""Training loops and task adapters."""

import numpy as np
import pytest

from repro.compression import CocktailSgdCompressor
from repro.data import (
    make_detection_data,
    make_image_data,
    make_lm_data,
    make_mlm_batches,
    make_squad_data,
)
from repro.distributed import SimCluster
from repro.models import bert_proxy, gpt_proxy, maskrcnn_proxy, resnet_proxy
from repro.models.squad import SpanQaModel
from repro.optim import Sgd, StepLr
from repro.train import (
    ClassificationTask,
    DetectionTask,
    DistributedSgdTrainer,
    LmTask,
    MlmTask,
    SquadTask,
    train_single,
)


class TestTrainSingle:
    def test_classification_learns(self):
        data = make_image_data(400, n_classes=4, size=8, noise=0.3, seed=0)
        task = ClassificationTask(data)
        model = resnet_proxy(n_classes=4, channels=8, rng=1)
        opt = Sgd(model.parameters(), lr=0.05, momentum=0.9)
        h = train_single(model, task, opt, iterations=40, batch_size=64, eval_every=40)
        assert h.losses[-1] < h.losses[0]
        assert h.final_metric() > 50.0

    def test_lr_schedule_applied(self):
        data = make_image_data(100, n_classes=3, size=8, seed=0)
        task = ClassificationTask(data)
        model = resnet_proxy(n_classes=3, channels=8, rng=1)
        opt = Sgd(model.parameters(), lr=1.0)
        h = train_single(
            model, task, opt, iterations=10, batch_size=10,
            lr_schedule=StepLr(0.5, [5], gamma=0.1),
        )
        assert h.lrs[0] == 0.5
        assert h.lrs[-1] == pytest.approx(0.05)

    def test_detection_task_learns(self):
        data = make_detection_data(300, n_classes=4, n_boxes=2, noise=0.3, seed=0)
        task = DetectionTask(data)
        model = maskrcnn_proxy(n_classes=4, n_boxes=2, rng=1)
        opt = Sgd(model.parameters(), lr=0.05, momentum=0.9)
        h = train_single(model, task, opt, iterations=40, batch_size=32, eval_every=40)
        assert h.losses[-1] < h.losses[0]

    def test_lm_task_learns(self):
        data = make_lm_data(300, seq=9, vocab=16, concentration=0.05, seed=0)
        task = LmTask(data)
        model = gpt_proxy(vocab=16, dim=16, n_layers=1, max_seq=8, rng=1)
        opt = Sgd(model.parameters(), lr=0.3, momentum=0.9)
        h = train_single(model, task, opt, iterations=50, batch_size=32)
        assert h.losses[-1] < h.losses[0] * 0.9

    def test_mlm_task_learns(self):
        lm = make_lm_data(300, seq=8, vocab=16, concentration=0.05, seed=0)
        mlm = make_mlm_batches(lm, seed=1)
        task = MlmTask(mlm)
        model = bert_proxy(vocab=16, dim=16, n_layers=1, max_seq=8, rng=1)
        opt = Sgd(model.parameters(), lr=0.3, momentum=0.9)
        h = train_single(model, task, opt, iterations=50, batch_size=32)
        assert h.losses[-1] < h.losses[0]

    def test_squad_task_learns_spans(self):
        data = make_squad_data(400, seq=16, vocab=24, seed=0)
        task = SquadTask(data)
        model = SpanQaModel(vocab=24, dim=24, n_layers=2, max_seq=16, rng=1)
        opt = Sgd(model.parameters(), lr=0.2, momentum=0.9)
        h = train_single(model, task, opt, iterations=120, batch_size=64, eval_every=120)
        em, f1 = h.final_metric()
        assert f1 > 40.0  # far above the random-span baseline
        assert em <= f1


class TestDistributedSgd:
    def test_matches_gradient_averaging(self):
        """4-rank data-parallel SGD must track the global batch average."""
        data = make_image_data(200, n_classes=3, size=8, seed=0)
        task = ClassificationTask(data)
        cluster = SimCluster(1, 4, seed=0)
        model = resnet_proxy(n_classes=3, channels=8, rng=1)
        opt = Sgd(model.parameters(), lr=0.05, momentum=0.9)
        tr = DistributedSgdTrainer(model, task, opt, cluster)
        h = tr.train(iterations=15, batch_size=32, eval_every=15)
        assert h.losses[-1] < h.losses[0]
        assert cluster.breakdown()["grad_allreduce"] > 0

    def test_with_cocktail_compressor(self):
        data = make_image_data(200, n_classes=3, size=8, seed=0)
        task = ClassificationTask(data)
        cluster = SimCluster(1, 2, seed=0)
        model = resnet_proxy(n_classes=3, channels=8, rng=1)
        opt = Sgd(model.parameters(), lr=0.05, momentum=0.9)
        tr = DistributedSgdTrainer(
            model, task, opt, cluster, compressor=CocktailSgdCompressor(0.3, 8)
        )
        h = tr.train(iterations=15, batch_size=32)
        assert h.losses[-1] < h.losses[0]
        assert h.mean_cr() > 5.0
