"""repro.runtime: handles, scheduling, matching, bucketing, telemetry."""

import numpy as np
import pytest

from repro import telemetry
from repro.distributed import SimCluster
from repro.runtime import (
    Bucketer,
    ComputeModel,
    DeadlockError,
    StreamRuntime,
    UnmatchedCollectiveError,
    split_bounds,
)
from repro.telemetry import SIM_TRACK
from repro.telemetry.export import chrome_trace


def make_pair(overlap=True, **kw):
    cluster = SimCluster(1, 4, seed=0)
    return cluster, StreamRuntime(cluster, overlap=overlap, **kw)


def per_rank(world, n=16, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n).astype(np.float32) for _ in range(world)]


class TestDataEquivalence:
    """Each icollective returns exactly what its blocking twin returns."""

    def test_iallreduce(self):
        arrays = per_rank(4)
        c1, rt = make_pair()
        want = SimCluster(1, 4, seed=0).allreduce(arrays, average=True)
        got = rt.iallreduce(arrays, average=True).wait()
        rt.assert_quiesced()
        for w, g in zip(want, got):
            assert np.array_equal(w, g)

    def test_iallgather(self):
        arrays = per_rank(4)
        c1, rt = make_pair()
        want = SimCluster(1, 4, seed=0).allgather(arrays)
        got = rt.iallgather(arrays).wait()
        rt.assert_quiesced()
        for wrow, grow in zip(want, got):
            for w, g in zip(wrow, grow):
                assert np.array_equal(w, g)

    def test_ibroadcast(self):
        payload = per_rank(1)[0]
        c1, rt = make_pair()
        want = SimCluster(1, 4, seed=0).broadcast(payload, root=2)
        got = rt.ibroadcast(payload, root=2).wait()
        rt.assert_quiesced()
        for w, g in zip(want, got):
            assert np.array_equal(w, g)

    def test_ireduce_scatter(self):
        arrays = per_rank(4)
        c1, rt = make_pair()
        want = SimCluster(1, 4, seed=0).reduce_scatter(arrays)
        got = rt.ireduce_scatter(arrays).wait()
        rt.assert_quiesced()
        for w, g in zip(want, got):
            assert np.array_equal(w, g)


class TestHandles:
    def test_double_wait_idempotent(self):
        _, rt = make_pair()
        h = rt.iallreduce(per_rank(4), average=True)
        first = h.wait()
        t_after = rt.cluster.time
        again = h.wait()
        assert again is first
        assert rt.cluster.time == t_after

    def test_out_of_order_waits(self):
        """Waiting in reverse issue order still settles deterministically."""
        arrays = per_rank(4)
        _, rt = make_pair()
        handles = [rt.iallreduce([a + i for a in arrays], average=True) for i in range(3)]
        results = [h.wait()[0] for h in reversed(handles)]
        rt.assert_quiesced()
        _, rt2 = make_pair()
        handles2 = [rt2.iallreduce([a + i for a in arrays], average=True) for i in range(3)]
        results2 = [h.wait()[0] for h in handles2]
        rt2.assert_quiesced()
        for r, r2 in zip(results, reversed(results2)):
            assert np.array_equal(r, r2)
        assert rt.cluster.time == rt2.cluster.time

    def test_test_tracks_clock(self):
        cluster, rt = make_pair()
        h = rt.iallreduce(per_rank(4), average=True)
        assert not h.test()
        cluster.advance_all(1.0, "forward")  # far past the transfer end
        assert h.test()
        before = cluster.time
        h.wait()
        assert cluster.time == before  # fully hidden: wait is free
        rt.assert_quiesced()

    def test_done_and_describe(self):
        _, rt = make_pair()
        h = rt.iallreduce(per_rank(4), average=True)
        assert not h.done
        assert "allreduce" in h.describe()
        h.wait()
        assert h.done
        rt.assert_quiesced()


class TestMatching:
    def test_unmatched_heads_raise_with_report(self):
        _, rt = make_pair()
        rt.post(0, "allreduce", category="grad", nbytes=64)
        rt.post(1, "broadcast", category="grad", nbytes=64)
        rt.post(2, "allreduce", category="grad", nbytes=64)
        rt.post(3, "allreduce", category="grad", nbytes=64)
        with pytest.raises(UnmatchedCollectiveError) as ei:
            rt._match()
        msg = str(ei.value)
        assert "rank 1" in msg and "broadcast" in msg

    def test_size_mismatch_detected(self):
        _, rt = make_pair()
        for r in range(3):
            rt.post(r, "allreduce", category="grad", nbytes=64)
        rt.post(3, "allreduce", category="grad", nbytes=128)
        with pytest.raises(UnmatchedCollectiveError):
            rt._match()

    def test_partial_posting_fails_quiesce(self):
        _, rt = make_pair()
        rt.post(0, "allreduce", category="grad", nbytes=64)
        with pytest.raises(UnmatchedCollectiveError) as ei:
            rt.assert_quiesced()
        assert "rank 0" in str(ei.value)

    def test_unwaited_handle_is_deadlock(self):
        _, rt = make_pair()
        rt.iallreduce(per_rank(4), average=True)
        with pytest.raises(DeadlockError) as ei:
            rt.assert_quiesced()
        assert "never waited" in str(ei.value)

    def test_clean_quiesce_passes(self):
        _, rt = make_pair()
        rt.iallreduce(per_rank(4), average=True).wait()
        rt.assert_quiesced()


class TestDiagnosticsReport:
    """The per-rank pending-op report is precise enough to debug a hang."""

    def test_posted_entries_carry_op_category_and_bytes(self):
        _, rt = make_pair()
        rt.post(0, "allreduce", category="grad", nbytes=256)
        report = rt.pending_report()
        assert "rank 0: posted=[allreduce[grad, 256B]]" in report
        # ranks with nothing outstanding show explicit '-' markers
        assert "rank 2: posted=[-] awaiting-wait=[-]" in report

    def test_unwaited_handles_listed_with_seq_and_duration(self):
        _, rt = make_pair()
        h = rt.iallreduce(per_rank(4), average=True)
        report = rt.pending_report()
        # every rank participates in the collective, so each line names it
        for rank in range(4):
            assert f"rank {rank}:" in report
        assert h.describe() in report
        assert f"#{h.seq} allreduce" in report and "us)" in report
        h.wait()
        rt.assert_quiesced()

    def test_deadlock_message_names_the_leaked_handle(self):
        _, rt = make_pair()
        h = rt.ibroadcast(per_rank(4), root=2, category="kfac_bcast")
        with pytest.raises(DeadlockError) as ei:
            rt.assert_quiesced()
        msg = str(ei.value)
        assert "1 collective(s) issued but never waited" in msg
        assert f"#{h.seq} broadcast (kfac_bcast" in msg
        h.wait()  # settle so the leaked handle does not poison later state

    def test_quiesce_mismatch_report_distinguishes_ranks(self):
        _, rt = make_pair()
        rt.post(0, "allgather", category="precond", nbytes=64)
        rt.post(1, "allgather", category="precond", nbytes=64)
        with pytest.raises(UnmatchedCollectiveError) as ei:
            rt.assert_quiesced()
        msg = str(ei.value)
        assert "never joined" in msg
        assert "rank 0: posted=[allgather[precond, 64B]]" in msg
        assert "rank 3: posted=[-]" in msg


class TestOverlapAccounting:
    def test_hidden_when_compute_covers_comm(self):
        cluster, rt = make_pair()
        h = rt.iallreduce(per_rank(4, n=1024), average=True)
        cluster.advance_all(1.0, "forward")
        h.wait()
        rt.assert_quiesced()
        assert rt.hidden_comm_seconds() > 0.0
        assert rt.exposed_comm_seconds() == 0.0
        assert rt.hidden_fraction() == pytest.approx(1.0)

    def test_exposed_when_waited_immediately(self):
        _, rt = make_pair()
        rt.iallreduce(per_rank(4, n=1024), average=True).wait()
        rt.assert_quiesced()
        assert rt.hidden_comm_seconds() == 0.0
        assert rt.exposed_comm_seconds() > 0.0

    def test_stats_keyed_by_category(self):
        cluster, rt = make_pair()
        rt.iallreduce(per_rank(4), average=True, category="grad_allreduce").wait()
        rt.ibroadcast(per_rank(1)[0], root=0, category="kfac_allgather").wait()
        rt.assert_quiesced()
        stats = rt.overlap_stats()
        assert set(stats) == {"grad_allreduce", "kfac_allgather"}
        for s in stats.values():
            assert s["total"] == pytest.approx(s["hidden"] + s["exposed"])

    def test_blocking_mode_measures_nothing(self):
        cluster, rt = make_pair(overlap=False)
        h = rt.iallreduce(per_rank(4), average=True)
        assert h.done  # already completed: the blocking barrier ran
        h.wait()
        rt.assert_quiesced()
        assert rt.hidden_comm_seconds() == 0.0
        assert rt.exposed_comm_seconds() == 0.0
        assert cluster.time > 0.0  # paid on the barrier instead

    def test_wait_matches_blocking_cost_when_idle(self):
        """With no compute in between, overlap buys nothing: the exposed
        tail equals the blocking barrier's advance."""
        arrays = per_rank(4, n=4096)
        blocking = SimCluster(1, 4, seed=0)
        blocking.allreduce(arrays, average=True)
        cluster, rt = make_pair()
        rt.iallreduce(arrays, average=True).wait()
        rt.assert_quiesced()
        assert cluster.time == pytest.approx(blocking.time)


class TestComputeModel:
    def test_scaling(self):
        cm = ComputeModel(train_flops=1e9)
        assert cm.forward_seconds(1000, 32) == pytest.approx(2 * 1000 * 32 / 1e9)
        assert cm.backward_seconds(1000, 32) == pytest.approx(
            2 * cm.forward_seconds(1000, 32)
        )
        assert cm.eig_seconds(64) > 0
        assert cm.precondition_seconds(64, 32) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeModel(train_flops=0.0)
        with pytest.raises(ValueError):
            ComputeModel(backward_factor=-1.0)

    def test_runtime_validation(self):
        cluster = SimCluster(1, 2)
        with pytest.raises(ValueError):
            StreamRuntime(cluster, n_comm_streams=0)
        with pytest.raises(ValueError):
            StreamRuntime(cluster, bucket_bytes=0)


class TestBucketing:
    def test_split_bounds_single_huge_tensor(self):
        x = np.zeros(1000, dtype=np.float32)
        assert split_bounds(x, 1 << 30) == [(0, 1000)]

    def test_split_bounds_exact_threshold(self):
        x = np.zeros(256, dtype=np.float32)  # 1024 bytes
        assert split_bounds(x, 512) == [(0, 128), (128, 256)]

    def test_split_bounds_tiny_bucket_floors_at_one(self):
        x = np.zeros(3, dtype=np.float64)
        assert split_bounds(x, 1) == [(0, 1), (1, 2), (2, 3)]

    def test_split_bounds_empty_and_invalid(self):
        assert split_bounds(np.zeros(0, dtype=np.float32), 1024) == []
        with pytest.raises(ValueError):
            split_bounds(np.zeros(4, dtype=np.float32), 0)

    def test_many_tiny_tensors_coalesce(self):
        _, rt = make_pair()
        b = Bucketer(rt, threshold_bytes=1024)
        rng = np.random.default_rng(1)
        tensors = {f"t{i}": [rng.standard_normal(16).astype(np.float32) for _ in range(4)]
                   for i in range(32)}
        for key, arrs in tensors.items():
            b.add(key, arrs)
        out = b.wait()
        rt.assert_quiesced()
        # 32 tensors x 64 B = 2048 B at a 1024 B threshold -> 2 buckets.
        assert b.n_buckets == 2
        assert set(out) == set(tensors)

    def test_exact_threshold_flushes(self):
        _, rt = make_pair()
        b = Bucketer(rt, threshold_bytes=64)
        b.add("a", [np.zeros(16, dtype=np.float32)] * 4)  # exactly 64 B
        assert b.n_buckets == 1  # flushed on add, not deferred to wait
        b.wait()
        rt.assert_quiesced()

    def test_results_match_direct_allreduce(self):
        rng = np.random.default_rng(2)
        items = {
            "w": [rng.standard_normal((4, 4)).astype(np.float32) for _ in range(4)],
            "b": [rng.standard_normal(4).astype(np.float32) for _ in range(4)],
        }
        _, rt = make_pair()
        b = Bucketer(rt, threshold_bytes=32)
        for key, arrs in items.items():
            b.add(key, arrs)
        out = b.wait()
        rt.assert_quiesced()
        ref = SimCluster(1, 4, seed=0)
        for key, arrs in items.items():
            want = ref.allreduce([a.ravel() for a in arrs], average=True)[0]
            assert out[key].shape == arrs[0].shape
            assert np.array_equal(out[key].ravel(), want)

    def test_single_bucket_matches_whole_tensor(self):
        arrays = per_rank(4, n=4096)
        _, rt = make_pair()
        bounds = split_bounds(arrays[0], 1024)
        assert len(bounds) > 1
        parts = [rt.iallreduce([a[lo:hi] for a in arrays], average=True) for lo, hi in bounds]
        got = np.concatenate([h.wait()[0] for h in parts])
        rt.assert_quiesced()
        want = SimCluster(1, 4, seed=0).allreduce(arrays, average=True)[0]
        assert np.array_equal(got, want)


class TestTelemetryStreams:
    def test_comm_spans_on_their_own_lanes(self):
        with telemetry.session() as t:
            cluster, rt = make_pair(n_comm_streams=2)
            rt.iallreduce(per_rank(4), average=True).wait()
            rt.assert_quiesced()
        streams = t.tracer.streams(SIM_TRACK)
        assert 1 in streams  # the transfer's comm lane
        comm = [s for s in t.tracer.spans(track=SIM_TRACK) if s.stream >= 1]
        assert comm and all(s.name == "allreduce" for s in comm)

    def test_chrome_trace_tids_separate_streams(self):
        with telemetry.session() as t:
            cluster, rt = make_pair(n_comm_streams=2)
            rt.iallreduce(per_rank(4), average=True).wait()
            rt.assert_quiesced()
        doc = chrome_trace(t.tracer)
        names = {
            (e["tid"], e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        n_streams = max(t.tracer.streams(SIM_TRACK)) + 1
        for rank in range(4):
            assert (rank * n_streams, f"rank {rank}") in names
        assert any("comm" in n for _, n in names)

    def test_stream0_reconciles_with_breakdown(self):
        """The compute-lane totals must equal the clock accounting exactly
        even when comm travels on streams."""
        with telemetry.session() as t:
            cluster, rt = make_pair()
            h = rt.iallreduce(per_rank(4, n=2048), average=True)
            cluster.advance_all(1e-6, "forward")
            h.wait()
            rt.ibroadcast(per_rank(1)[0], root=1, category="kfac_allgather").wait()
            rt.assert_quiesced()
            breakdown = cluster.breakdown()
        totals = t.tracer.category_totals(track=SIM_TRACK)  # stream 0 default
        for cat, sec in breakdown.items():
            assert totals.get(cat, 0.0) == pytest.approx(sec, abs=1e-12)
        # stream=None additionally sees the comm lanes.
        all_lanes = t.tracer.category_totals(track=SIM_TRACK, stream=None)
        assert all_lanes["allreduce"] >= totals.get("allreduce", 0.0)
