"""Memory model (the PipeFisher argument) and communication overlap."""

import pytest

from repro.distributed import PLATFORM1
from repro.kfac_dist import KfacIterationModel, MODEL_TIMING_PROFILES
from repro.kfac_dist.memory import GPU_MEMORY, estimate_kfac_memory, fits_on
from repro.models.catalogs import MODEL_CATALOGS, bert_large_catalog, resnet50_catalog


class TestMemoryModel:
    def test_bert_kfac_fits_a100_not_p100(self):
        """Paper section 6: modern 40 GB GPUs fit K-FAC-effective models,
        so PipeFisher-style pipeline parallelism is unnecessary; the
        16 GB GPUs PipeFisher assumed do not fit them."""
        est = estimate_kfac_memory(bert_large_catalog(), per_gpu_batch=16)
        assert fits_on(est, "a100-40gb")
        assert not fits_on(est, "p100-16gb")

    def test_all_paper_models_fit_the_paper_gpu(self):
        for name, fn in MODEL_CATALOGS.items():
            b = MODEL_TIMING_PROFILES[name].per_gpu_batch
            est = estimate_kfac_memory(fn(), per_gpu_batch=b)
            assert fits_on(est, "a100-40gb"), (name, est.breakdown_gb())

    def test_memory_scales_with_batch(self):
        small = estimate_kfac_memory(resnet50_catalog(), per_gpu_batch=8)
        big = estimate_kfac_memory(resnet50_catalog(), per_gpu_batch=64)
        assert big.total > small.total
        assert big.activations == pytest.approx(8 * small.activations)
        assert big.kfac_factors == small.kfac_factors  # batch-independent

    def test_kfac_state_is_significant_for_transformers(self):
        est = estimate_kfac_memory(bert_large_catalog(), per_gpu_batch=16)
        assert est.kfac_factors + est.kfac_eigen > est.weights

    def test_breakdown_sums(self):
        est = estimate_kfac_memory(resnet50_catalog(), per_gpu_batch=32)
        bd = est.breakdown_gb()
        parts = sum(v for k, v in bd.items() if k != "total")
        assert parts == pytest.approx(bd["total"])

    def test_unknown_gpu_rejected(self):
        est = estimate_kfac_memory(resnet50_catalog(), per_gpu_batch=8)
        with pytest.raises(KeyError):
            fits_on(est, "tpu-v9")

    def test_gpu_capacity_table(self):
        assert GPU_MEMORY["a100-40gb"] == 40e9
        assert GPU_MEMORY["h200-141gb"] > GPU_MEMORY["a100-80gb"]


class TestOverlap:
    @pytest.fixture
    def breakdown(self):
        m = KfacIterationModel(
            resnet50_catalog(), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES["resnet50"]
        )
        return m.breakdown()

    def test_overlap_reduces_total(self, breakdown):
        assert breakdown.overlapped_total(assumed_overlap=0.5) < breakdown.total

    def test_zero_overlap_is_additive(self, breakdown):
        assert breakdown.overlapped_total(assumed_overlap=0.0) == pytest.approx(breakdown.total)

    def test_full_overlap_floors_at_compute(self, breakdown):
        t = breakdown.overlapped_total(assumed_overlap=1.0)
        floor = breakdown.fwd_bwd + breakdown.kfac_compute + breakdown.others
        assert t >= floor
        assert t <= breakdown.total

    def test_monotone_in_overlap(self, breakdown):
        ts = [breakdown.overlapped_total(assumed_overlap=f) for f in (0.0, 0.3, 0.6, 0.9)]
        assert all(a >= b for a, b in zip(ts, ts[1:]))

    def test_invalid_fraction(self, breakdown):
        with pytest.raises(ValueError):
            breakdown.overlapped_total(assumed_overlap=1.5)
        with pytest.raises(ValueError):
            breakdown.overlapped_total(measured_overlap=-0.1)

    def test_positional_fraction_rejected(self, breakdown):
        """The hand-waved constant must now be named explicitly."""
        with pytest.raises(TypeError):
            breakdown.overlapped_total(0.5)

    def test_exactly_one_mode_required(self, breakdown):
        with pytest.raises(ValueError):
            breakdown.overlapped_total()
        with pytest.raises(ValueError):
            breakdown.overlapped_total(measured_overlap=0.4, assumed_overlap=0.5)

    def test_measured_overlap_scales_comm(self, breakdown):
        comm = breakdown.kfac_allgather + breakdown.kfac_allreduce
        full = breakdown.overlapped_total(measured_overlap=0.0)
        half = breakdown.overlapped_total(measured_overlap=0.5)
        assert full == pytest.approx(breakdown.total)
        assert full - half == pytest.approx(0.5 * comm)

    def test_compression_still_wins_under_overlap(self):
        """Even with generous overlap, compression shortens the exposed
        communication and the iteration."""
        from repro.kfac_dist import CompressionSpec

        m = KfacIterationModel(
            bert_large_catalog(), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES["bert-large"]
        )
        base = m.breakdown().overlapped_total(assumed_overlap=0.5)
        comp = m.breakdown(CompressionSpec.compso(22.0)).overlapped_total(assumed_overlap=0.5)
        assert comp < base

    def test_measured_grad_overlap_in_others(self):
        m = KfacIterationModel(
            resnet50_catalog(), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES["resnet50"]
        )
        assert m.others_time(measured_grad_overlap=1.0) < m.others_time()
        assert m.others_time(measured_grad_overlap=m.profile.grad_overlap) == pytest.approx(
            m.others_time()
        )
