"""Shared fixtures: deterministic RNG and gradient-like test tensors."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def kfac_like_gradient(rng) -> np.ndarray:
    """Float32 tensor resembling K-FAC gradient statistics: ~90% of values
    are tiny relative to the max (the regime where COMPSO's 4e-3 relative
    filter reaches the paper's ~22x ratio), plus a heavy-tailed remainder
    with wide dynamic range."""
    n = 50_000
    small = rng.standard_normal(n) * 1e-4
    big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
    mask = rng.random(n) < 0.12
    return np.where(mask, big, small).astype(np.float32)


@pytest.fixture
def byte_payloads(rng) -> dict[str, bytes]:
    """Byte streams of different character for encoder tests."""
    skewed = rng.geometric(0.25, 30_000).clip(0, 255).astype(np.uint8).tobytes()
    return {
        "zeros": bytes(10_000),
        "skewed": skewed,
        "uniform": rng.integers(0, 256, 20_000, dtype=np.uint8).tobytes(),
        "runs": (b"\x00" * 500 + b"\x07" * 300 + b"\xff" * 200) * 20,
        "short": b"xyz",
        "empty": b"",
    }


def assert_gradcheck(model, x, loss_fn, *, eps=1e-3, tol=5e-3, n_checks=6, seed=0):
    """Finite-difference gradient check against the analytic backward."""
    y = model(x)
    _, dl = loss_fn(y)
    model.zero_grad()
    model(x)
    model.backward(dl)
    check_rng = np.random.default_rng(seed)
    for name, p in model.named_parameters():
        flat = p.data.ravel()
        g = p.grad.ravel()
        idx = check_rng.choice(flat.size, size=min(n_checks, flat.size), replace=False)
        for i in idx:
            orig = flat[i]
            flat[i] = orig + eps
            lp, _ = loss_fn(model(x))
            flat[i] = orig - eps
            lm, _ = loss_fn(model(x))
            flat[i] = orig
            num = (lp - lm) / (2 * eps)
            ana = float(g[i])
            rel = abs(num - ana) / max(abs(num), abs(ana), 1e-3)
            assert rel < tol, f"{name}[{i}]: numeric {num:.6f} vs analytic {ana:.6f}"
