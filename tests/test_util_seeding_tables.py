"""Seeding determinism and table formatting."""

import numpy as np
import pytest

from repro.util.seeding import rng_for_rank, spawn_rng
from repro.util.tables import format_table


class TestSeeding:
    def test_same_seed_same_stream(self):
        a = spawn_rng(42).random(10)
        b = spawn_rng(42).random(10)
        assert np.array_equal(a, b)

    def test_keys_give_independent_streams(self):
        a = spawn_rng(42, 0).random(10)
        b = spawn_rng(42, 1).random(10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(7)
        assert spawn_rng(g) is g

    def test_generator_with_key_derives_child(self):
        g = np.random.default_rng(7)
        child = spawn_rng(g, 3)
        assert child is not g

    def test_rank_rngs_differ(self):
        r0 = rng_for_rank(5, 0).random(5)
        r1 = rng_for_rank(5, 1).random(5)
        assert not np.array_equal(r0, r1)

    def test_rank_rngs_reproducible(self):
        assert np.array_equal(rng_for_rank(5, 3).random(5), rng_for_rank(5, 3).random(5))


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "4.12" in lines[3]

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_floatfmt(self):
        out = format_table(["v"], [[3.14159]], floatfmt=".4f")
        assert "3.1416" in out
