"""Lossless encoder round trips, frame behaviour, and CR ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoders import (
    EncodeError,
    HuffmanEncoder,
    RansEncoder,
    elias_gamma_decode,
    elias_gamma_encode,
    get_encoder,
    list_encoders,
)
from repro.encoders.ans import quantize_freqs
from repro.encoders.huffman import code_lengths

ALL = list_encoders()


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("payload", ["zeros", "skewed", "uniform", "runs", "short", "empty"])
def test_roundtrip_every_encoder_every_payload(name, payload, byte_payloads):
    enc = get_encoder(name)
    data = byte_payloads[payload]
    assert enc.decode(enc.encode(data)) == data


@pytest.mark.parametrize("name", ALL)
def test_never_expands_beyond_frame_header(name, byte_payloads):
    enc = get_encoder(name)
    data = byte_payloads["uniform"]  # incompressible
    assert len(enc.encode(data)) <= len(data) + 5


@pytest.mark.parametrize("name", ALL)
def test_truncated_frame_rejected(name):
    with pytest.raises(EncodeError):
        get_encoder(name).decode(b"\x01\x00")


def test_entropy_coders_beat_dictionary_coders_on_gradient_bytes(byte_payloads):
    """Paper Table 2: entropy coding wins on non-uniform gradient data."""
    data = byte_payloads["skewed"]
    entropy = min(get_encoder(n).ratio(data) for n in ("ans", "huffman", "deflate", "zstd"))
    dictionary = max(get_encoder(n).ratio(data) for n in ("lz4", "snappy"))
    assert entropy > dictionary


def test_cascaded_wins_on_long_runs(byte_payloads):
    data = byte_payloads["runs"]
    assert get_encoder("cascaded").ratio(data) > get_encoder("bitcomp").ratio(data)
    assert get_encoder("cascaded").ratio(data) > 10


def test_unknown_encoder_rejected():
    with pytest.raises(KeyError):
        get_encoder("nope")


@given(st.binary(max_size=4000))
@settings(max_examples=30, deadline=None)
def test_ans_roundtrip_property(data):
    enc = RansEncoder()
    assert enc.decode(enc.encode(data)) == data


@given(st.binary(max_size=4000))
@settings(max_examples=30, deadline=None)
def test_huffman_roundtrip_property(data):
    enc = HuffmanEncoder()
    assert enc.decode(enc.encode(data)) == data


class TestAnsInternals:
    def test_quantized_freqs_sum_to_scale(self, rng):
        freq = rng.integers(0, 1000, 256)
        freq[0] = 0
        q = quantize_freqs(freq)
        assert q.sum() == 1 << 12

    def test_present_symbols_stay_nonzero(self):
        freq = np.zeros(256, dtype=np.int64)
        freq[7] = 1
        freq[8] = 10**9
        q = quantize_freqs(freq)
        assert q[7] >= 1
        assert q[freq == 0].sum() == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantize_freqs(np.zeros(256, dtype=np.int64))


class TestHuffmanInternals:
    def test_code_lengths_kraft_inequality(self, rng):
        freq = rng.integers(0, 500, 256)
        lengths = code_lengths(freq)
        present = lengths[lengths > 0]
        assert np.sum(2.0 ** (-present.astype(float))) <= 1.0 + 1e-9

    def test_single_symbol(self):
        freq = np.zeros(256, dtype=np.int64)
        freq[65] = 100
        lengths = code_lengths(freq)
        assert lengths[65] == 1
        assert lengths.sum() == 1

    def test_length_limit_respected(self, rng):
        # Fibonacci-like frequencies force deep trees without limiting.
        freq = np.zeros(256, dtype=np.int64)
        a, b = 1, 1
        for i in range(40):
            freq[i] = a
            a, b = b, a + b
        assert code_lengths(freq, max_len=15).max() <= 15

    def test_more_frequent_symbols_get_shorter_codes(self, rng):
        freq = np.ones(256, dtype=np.int64)
        freq[0] = 10**6
        lengths = code_lengths(freq)
        assert lengths[0] == lengths[lengths > 0].min()


class TestEliasGamma:
    def test_roundtrip(self, rng):
        v = rng.integers(1, 10_000, 2000).astype(np.uint64)
        assert np.array_equal(elias_gamma_decode(elias_gamma_encode(v), 2000), v)

    def test_one_is_single_bit(self):
        blob = elias_gamma_encode(np.array([1], dtype=np.uint64))
        assert len(blob) == 1  # one bit, padded to a byte

    def test_small_values_cheap(self):
        small = elias_gamma_encode(np.ones(1000, dtype=np.uint64))
        big = elias_gamma_encode(np.full(1000, 1000, dtype=np.uint64))
        assert len(small) < len(big)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            elias_gamma_encode(np.array([0], dtype=np.uint64))

    def test_truncated_rejected(self):
        blob = elias_gamma_encode(np.array([500, 600], dtype=np.uint64))
        with pytest.raises(EncodeError):
            elias_gamma_decode(blob[:1], 2)

    @given(st.lists(st.integers(min_value=1, max_value=2**20), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.uint64)
        assert np.array_equal(elias_gamma_decode(elias_gamma_encode(arr), len(values)), arr)
