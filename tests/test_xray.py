"""The repro.xray subsystem: causal graph, critical path, attribution."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.cli import main
from repro.core import CompsoCompressor
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.fleet import FleetScheduler, JobSpec
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.obsv import LedgerConfig, RunLedger, diff_ledgers, load_ledger, summarize
from repro.obsv.report import render_html, render_markdown
from repro.runtime import ComputeModel, StreamRuntime
from repro.telemetry import SIM_TRACK, Tracer
from repro.telemetry.tracer import Span, span_sort_key
from repro.train import ClassificationTask
from repro.xray import (
    COMM_OPS,
    XrayAnalyzer,
    XrayConfig,
    as_xray,
    attribute_regression,
    build_step_graph,
    critical_path,
    is_comm,
    render_xray_html,
    render_xray_markdown,
    xray_records,
)

ITERS = 4
#: The acceptance criterion for the telescoping-walk identity.
IDENTITY_TOL = 1e-9


def _task(n=160):
    return ClassificationTask(make_image_data(n, n_classes=4, size=8, noise=0.5, seed=0))


def _run(*, nodes=2, gpus=2, overlap=False, seed=0, xray=True, ledger=None):
    """One small traced K-FAC run with xray attached; returns the trainer."""
    cluster = SimCluster(nodes, gpus, seed=0)
    runtime = None
    if overlap:
        runtime = StreamRuntime(
            cluster, overlap=True, n_comm_streams=2, compute=ComputeModel(train_flops=5e7)
        )
    trainer = DistributedKfacTrainer(
        resnet_proxy(n_classes=4, channels=4, rng=3),
        _task(),
        cluster,
        lr=0.05,
        inv_update_freq=2,
        compressor=CompsoCompressor(4e-3, 4e-3, seed=0),
        runtime=runtime,
        obsv=LedgerConfig(ledger) if ledger is not None else None,
        xray=xray,
    )
    with telemetry.session():
        trainer.train(iterations=ITERS, batch_size=32, eval_every=ITERS, seed=seed)
    return trainer


def _sim(name, category, start, duration, *, rank=0, stream=0, attrs=None, id=-1):
    return Span(
        name, category, start, duration,
        track=SIM_TRACK, rank=rank, stream=stream, attrs=attrs or {}, id=id,
    )


class TestGraph:
    def test_window_filtering_and_lane_split(self):
        spans = [
            _sim("compute", "compute", 0.0, 1.0),                 # before window
            _sim("compute", "compute", 1.0, 1.0),                 # inside
            _sim("allreduce", "comm", 2.5, 0.5, stream=1),        # comm stream
            _sim("compute", "compute", 3.0, 1.0),                 # after window
            _sim("rank_failure", "fault", 1.5, 0.0),              # zero-duration marker
            Span("host", "host", 1.0, 1.0, track="host"),         # wrong track
        ]
        g = build_step_graph(spans, t0=1.0, t1=3.0)
        assert list(g.lanes) == [0]
        assert [s.name for s in g.lanes[0]] == ["compute"]
        assert [s.name for s in g.comm_lanes[0]] == ["allreduce"]
        assert g.elapsed == 2.0

    def test_lanes_sorted_by_documented_key(self):
        spans = [
            _sim("b", "compute", 1.0, 1.0, id=2),
            _sim("a", "compute", 0.0, 1.0, id=1),
        ]
        g = build_step_graph(spans, t0=0.0, t1=2.0)
        assert [s.name for s in g.lanes[0]] == ["a", "b"]
        assert g.lanes[0] == sorted(g.lanes[0], key=span_sort_key)

    def test_string_ranks_order_after_integers(self):
        spans = [
            _sim("x", "compute", 0.0, 1.0, rank="*"),
            _sim("x", "compute", 0.0, 1.0, rank=1),
        ]
        g = build_step_graph(spans, t0=0.0, t1=1.0)
        assert g.ranks() == [1, "*"]

    def test_is_comm_by_name_or_wire_attr(self):
        assert all(is_comm(_sim(op, "c", 0.0, 1.0)) for op in COMM_OPS)
        assert is_comm(_sim("kfac_allreduce", "c", 0.0, 1.0, attrs={"nbytes_wire": 8.0}))
        assert not is_comm(_sim("compute", "compute", 0.0, 1.0))


class TestCriticalPath:
    def test_empty_graph_is_one_untraced_segment(self):
        g = build_step_graph([], t0=0.0, t1=2.0)
        (seg,) = critical_path(g)
        assert (seg.name, seg.category, seg.seconds) == ("untraced", "untraced", 2.0)

    def test_degenerate_window_is_empty(self):
        assert critical_path(build_step_graph([], t0=1.0, t1=1.0)) == []

    def test_barrier_wait_jumps_to_straggler(self):
        # Rank 0 finishes compute at 1.0 then waits; rank 1 computes
        # until 3.0.  The path must charge [1.0, 3.0] to rank 1.
        spans = [
            _sim("compute", "compute", 0.0, 1.0, rank=0),
            _sim("wait", "wait", 1.0, 2.0, rank=0),
            _sim("allreduce", "allreduce", 3.0, 1.0, rank=0),
            _sim("compute", "compute", 0.0, 3.0, rank=1),
            _sim("allreduce", "allreduce", 3.0, 1.0, rank=1),
        ]
        g = build_step_graph(spans, t0=0.0, t1=4.0)
        segs = critical_path(g)
        assert sum(s.seconds for s in segs) == pytest.approx(4.0, abs=IDENTITY_TOL)
        charged = {(s.name, s.rank) for s in segs}
        assert ("compute", 1) in charged
        assert ("wait", 0) not in charged  # the wait is never on-path
        assert any(s.comm for s in segs if s.name == "allreduce")

    def test_gap_becomes_untraced_filler(self):
        spans = [
            _sim("compute", "compute", 0.0, 1.0),
            _sim("compute", "compute", 2.0, 1.0),
        ]
        segs = critical_path(build_step_graph(spans, t0=0.0, t1=3.0))
        assert [s.name for s in segs] == ["compute", "untraced", "compute"]
        assert sum(s.seconds for s in segs) == pytest.approx(3.0, abs=IDENTITY_TOL)

    def test_all_wait_lane_degenerates_gracefully(self):
        spans = [_sim("wait", "wait", 0.0, 2.0, rank=r) for r in range(2)]
        segs = critical_path(build_step_graph(spans, t0=0.0, t1=2.0))
        assert sum(s.seconds for s in segs) == pytest.approx(2.0, abs=IDENTITY_TOL)

    def test_segments_sorted_and_serialisable(self):
        spans = [_sim("compute", "compute", 0.0, 2.0)]
        (seg,) = critical_path(build_step_graph(spans, t0=0.0, t1=2.0))
        d = seg.to_dict()
        assert d == {
            "name": "compute", "category": "compute", "rank": "0",
            "start_s": 0.0, "seconds": 2.0,
        }


class TestIdentity:
    """The subsystem's acceptance criterion: critpath_s == elapsed_s."""

    @pytest.mark.parametrize(
        "nodes,gpus,overlap",
        [(2, 2, False), (2, 2, True), (2, 4, False), (2, 4, True)],
        ids=["blocking-w4", "overlapped-w4", "blocking-w8", "overlapped-w8"],
    )
    def test_critpath_equals_sim_elapsed(self, nodes, gpus, overlap):
        trainer = _run(nodes=nodes, gpus=gpus, overlap=overlap)
        records = trainer.xray.records
        assert len(records) == ITERS
        for r in records:
            assert r["critpath_s"] == pytest.approx(r["elapsed_s"], abs=IDENTITY_TOL)
        total = sum(r["elapsed_s"] for r in records)
        assert total == pytest.approx(trainer.cluster.time, abs=IDENTITY_TOL)

    def test_hidden_comm_matches_runtime_accounting(self):
        trainer = _run(overlap=True)
        hidden = sum(r["hidden_comm_s"] for r in trainer.xray.records)
        assert hidden == pytest.approx(
            trainer.runtime.hidden_comm_seconds(), abs=IDENTITY_TOL
        )
        assert hidden > 0.0  # the overlapped runtime genuinely hides comm

    def test_blocking_run_hides_nothing(self):
        trainer = _run(overlap=False)
        assert sum(r["hidden_comm_s"] for r in trainer.xray.records) == 0.0

    def test_records_are_deterministic(self):
        a = _run(overlap=True).xray.records
        b = _run(overlap=True).xray.records
        assert a == b

    def test_comm_charged_on_path(self):
        records = _run().xray.records
        assert sum(r["exposed_comm_s"] for r in records) > 0.0
        cats = set()
        for r in records:
            cats.update(r["comm_categories"])
        assert cats & {"kfac_allreduce", "kfac_allgather", "grad_allreduce"}


class TestAnalyzer:
    def test_as_xray_normalisation(self):
        assert as_xray(None) is None
        assert isinstance(as_xray(True), XrayAnalyzer)
        assert as_xray(XrayConfig(top_segments=3)).config.top_segments == 3
        analyzer = XrayAnalyzer()
        assert as_xray(analyzer) is analyzer

    def test_disabled_without_tracer_session(self):
        analyzer = XrayAnalyzer().bind(cluster=SimCluster(1, 2, seed=0))
        assert analyzer.end_step(0) is None
        assert analyzer.records == []
        assert analyzer.report() is None

    def test_take_step_record_clears_buffer(self, tmp_path):
        # Without a ledger the buffer holds the last record once...
        bare = _run()
        assert bare.xray.take_step_record() is not None
        assert bare.xray.take_step_record() is None  # ...and is cleared on read.
        # With a ledger bound, record_step already drained it.
        recorded = _run(ledger=tmp_path / "run.ledger")
        assert recorded.xray.take_step_record() is None

    def test_report_totals_fold_records(self):
        xray = _run().xray
        report = xray.report()
        assert report["steps"] == ITERS
        assert report["critpath_s"] == pytest.approx(
            sum(r["critpath_s"] for r in xray.records)
        )
        assert report["top_straggler_rank"] is not None
        assert sum(report["by_category"].values()) == pytest.approx(
            report["critpath_s"], abs=IDENTITY_TOL
        )


class TestLedgerIntegration:
    def test_step_and_final_records(self, tmp_path):
        path = tmp_path / "run.ledger"
        _run(ledger=path)
        ledger = load_ledger(path)
        assert ledger.manifest["xray"] == {"tol": 1e-12, "top_segments": 5}
        for step in ledger.steps:
            xr = step["xray"]
            assert xr["critpath_s"] == pytest.approx(xr["elapsed_s"], abs=IDENTITY_TOL)
            assert list(xr["by_category"]) == sorted(xr["by_category"])
        assert ledger.final["xray"]["steps"] == ITERS
        s = summarize(ledger)
        assert s["xray_critpath_s"] == pytest.approx(ledger.final["xray"]["critpath_s"])
        assert s["xray_exposed_comm_s"] >= 0.0
        assert s["xray_straggler_skew"] >= 0.0

    def test_xray_none_leaves_ledger_untouched(self, tmp_path):
        with_x = _run(ledger=tmp_path / "x.ledger", xray=True)
        without = _run(ledger=tmp_path / "plain.ledger", xray=None)
        # Numerics are bit-identical: the analyzer only observes.
        assert with_x.history.losses == without.history.losses
        pa = np.concatenate([p.data.ravel() for p in with_x.model.parameters()])
        pb = np.concatenate([p.data.ravel() for p in without.model.parameters()])
        assert np.array_equal(pa, pb)
        assert with_x.cluster.time == without.cluster.time
        # And the plain ledger carries no xray keys anywhere.
        plain = load_ledger(tmp_path / "plain.ledger")
        assert "xray" not in plain.manifest
        assert all("xray" not in s for s in plain.steps)
        assert "xray" not in plain.final
        assert "xray_critpath_s" not in summarize(plain)

    def test_ledger_determinism_with_xray(self, tmp_path):
        _run(ledger=tmp_path / "a.ledger")
        _run(ledger=tmp_path / "b.ledger")
        la, lb = load_ledger(tmp_path / "a.ledger"), load_ledger(tmp_path / "b.ledger")
        assert la.body_text() == lb.body_text()
        assert la.digest() == lb.digest()


class TestAttribution:
    def test_requires_both_sides_analysed(self, tmp_path):
        _run(ledger=tmp_path / "x.ledger", xray=True)
        _run(ledger=tmp_path / "plain.ledger", xray=None)
        with_x = load_ledger(tmp_path / "x.ledger")
        plain = load_ledger(tmp_path / "plain.ledger")
        assert attribute_regression(plain, with_x) is None
        assert attribute_regression(with_x, plain) is None
        assert xray_records(plain) == []

    def test_diff_gates_missing_xray_side(self, tmp_path):
        _run(ledger=tmp_path / "x.ledger", xray=True)
        _run(ledger=tmp_path / "plain.ledger", xray=None)
        diff = diff_ledgers(
            load_ledger(tmp_path / "x.ledger"), load_ledger(tmp_path / "plain.ledger")
        )
        status = {r.metric: r.status for r in diff.rows}
        assert status["xray_critpath_s"] == "missing"
        assert not diff.ok

    def test_identical_xray_runs_pass_gate(self, tmp_path):
        _run(ledger=tmp_path / "a.ledger")
        _run(ledger=tmp_path / "b.ledger")
        diff = diff_ledgers(
            load_ledger(tmp_path / "a.ledger"), load_ledger(tmp_path / "b.ledger")
        )
        assert diff.ok
        status = {r.metric: r.status for r in diff.rows}
        assert status["xray_critpath_s"] == "ok"

    def test_names_injected_comm_regression(self):
        a = RunLedger(manifest={}, steps=[
            {"step": 0, "xray": {
                "critpath_s": 1.0,
                "by_category": {"compute": 0.8, "kfac_allreduce": 0.2},
                "by_phase": {"compute": 0.8, "allreduce": 0.2},
                "comm_categories": ["kfac_allreduce"],
            }},
        ], final={})
        b = RunLedger(manifest={}, steps=[
            {"step": 0, "xray": {
                "critpath_s": 2.0,
                "by_category": {"compute": 0.8, "kfac_allreduce": 1.2},
                "by_phase": {"compute": 0.8, "allreduce": 1.2},
                "comm_categories": ["kfac_allreduce"],
            }},
        ], final={})
        verdict = attribute_regression(a, b)
        assert verdict["segment"] == "kfac_allreduce"
        assert verdict["kind"] == "comm"
        assert verdict["delta_s"] == pytest.approx(1.0)
        assert verdict["share"] == pytest.approx(1.0)
        assert verdict["phase"] == "allreduce"


class TestRender:
    def _ledger(self, tmp_path):
        path = tmp_path / "run.ledger"
        _run(ledger=path)
        return load_ledger(path)

    def test_markdown(self, tmp_path):
        md = render_xray_markdown(self._ledger(tmp_path))
        assert "# Xray report — kfac" in md
        assert "## Critical path per step" in md
        assert "## Totals" in md and "critpath_s" in md
        assert "## Longest on-path segments" in md

    def test_html_self_contained_flame(self, tmp_path):
        page = render_xray_html(self._ledger(tmp_path))
        assert page.startswith("<!doctype html>")
        assert "<script" not in page  # inline CSS/SVG only
        assert "<svg" in page and "<rect" in page
        assert "Critical-path flame view" in page

    def test_no_records_degrades(self, tmp_path):
        _run(ledger=tmp_path / "plain.ledger", xray=None)
        plain = load_ledger(tmp_path / "plain.ledger")
        assert "no xray records" in render_xray_markdown(plain)
        assert "no xray records" in render_xray_html(plain)

    def test_obsv_report_gains_xray_section(self, tmp_path):
        ledger = self._ledger(tmp_path)
        assert "## Critical path (xray)" in render_markdown(ledger)
        assert "Critical path (xray)" in render_html(ledger)


class TestFleetStragglers:
    def test_report_carries_critpath_and_skew(self):
        result = FleetScheduler([JobSpec("solo", world_size=8, iterations=2, seed=0)]).run()
        report = result.by_name("solo")
        assert report.critpath_s > 0.0
        assert report.critpath_s <= report.sim_time + IDENTITY_TOL
        # A faultless symmetric job has no straggler and zero skew.
        assert report.straggler_skew_s == 0.0
        assert report.top_straggler_rank is None


class TestCli:
    def test_record_xray_diff_attribute(self, tmp_path, capsys):
        fast = str(tmp_path / "fast.ledger")
        slow = str(tmp_path / "slow.ledger")
        for out, preset in ((fast, "smoke"), (slow, "smoke-slow-net")):
            args = ["record", "--preset", preset, "--out", out, "--iterations", "4", "--xray"]
            assert main(args) == 0
        capsys.readouterr()
        # The xray view renders for an analysed ledger...
        assert main(["xray", fast]) == 0
        out = capsys.readouterr().out
        assert "# Xray report" in out
        assert (tmp_path / "fast.xray.html").exists()
        assert (tmp_path / "fast.xray.md").exists()
        # ...and attribution names the injected slow network as comm.
        json_out = str(tmp_path / "diff.json")
        main(["diff", fast, slow, "--attribute", "--json", json_out])
        captured = capsys.readouterr()
        assert "attribution:" in captured.out
        verdict = json.loads((tmp_path / "diff.json").read_text())["attribution"]
        assert verdict["kind"] == "comm"
        assert verdict["delta_s"] > 0.0

    def test_xray_command_rejects_plain_ledger(self, tmp_path, capsys):
        plain = str(tmp_path / "plain.ledger")
        assert main(["record", "--preset", "smoke", "--out", plain, "--iterations", "2"]) == 0
        capsys.readouterr()
        assert main(["xray", plain]) == 1
        assert "no xray records" in capsys.readouterr().err


class TestTracerContracts:
    """Satellite: the ordering/nesting guarantees xray builds on."""

    def test_unbalanced_pop_never_goes_negative(self):
        t = Tracer()
        depth, span_id, parent = t._pop(SIM_TRACK, 0)  # pop with no open span
        assert depth == 0 and parent is None and span_id >= 0
        # Subsequent nesting still records correct non-negative depths.
        with t.span("outer", "a"):
            with t.span("inner", "b"):
                pass
        by_name = {s.name: s for s in t.spans()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_nested_spans_emit_parent_edges(self):
        t = Tracer()
        with t.span("outer", "a"):
            with t.span("inner", "b"):
                pass
        by_name = {s.name: s for s in t.spans()}
        (edge,) = t.edges(kind="parent")
        assert edge.src == by_name["outer"].id
        assert edge.dst == by_name["inner"].id

    def test_ids_stable_and_reset_by_clear(self):
        t = Tracer()
        a = t.add_span("a", "c", 1.0)
        b = t.add_span("b", "c", 1.0)
        assert (a.id, b.id) == (0, 1)
        t.add_edge(a.id, b.id, "wait")
        t.clear()
        assert t.edges() == []
        assert t.add_span("again", "c", 1.0).id == 0

    def test_add_edge_ignores_uncollected_ids(self):
        t = Tracer()
        assert t.add_edge(-1, 0, "wait") is None
        assert t.add_edge(0, -1, "wait") is None
        assert t.edges() == []

    def test_ordered_spans_independent_of_insertion_order(self):
        def build(reverse):
            t = Tracer()
            spans = [
                ("b", 1, 1.0), ("a", 0, 0.0), ("c", 0, 2.0),
            ]
            if reverse:
                spans = spans[::-1]
            for name, rank, start in spans:
                t.add_span(name, "c", 1.0, start=start, rank=rank)
            return [(s.name, s.rank, s.start) for s in t.ordered_spans()]

        assert build(False) == build(True)
        assert build(False) == [("a", 0, 0.0), ("c", 0, 2.0), ("b", 1, 1.0)]

    def test_id_breaks_ties_between_identical_spans(self):
        t = Tracer()
        first = t.add_span("op", "c", 1.0, start=0.0)
        second = t.add_span("op", "c", 1.0, start=0.0)
        ordered = t.ordered_spans()
        assert [s.id for s in ordered] == [first.id, second.id]


class TestMinimalLedgerDegradation:
    """Satellite: analytics/report survive ledgers missing every optional
    section (no overlap, guard, autotune, xray, spans, metrics)."""

    MINIMAL = RunLedger(
        manifest={"kind": "kfac"},
        steps=[{"step": 0, "loss": 1.0}],
        final={"steps": 1, "final_loss": 1.0},
    )

    def test_summarize_minimal(self):
        s = summarize(self.MINIMAL)
        assert s["steps"] == 1 and s["final_loss"] == 1.0
        for key in (
            "hidden_fraction", "guard_remediations", "autotune_retunes",
            "xray_critpath_s", "fleet_restarts", "store_fallbacks",
        ):
            assert key not in s

    def test_summarize_empty(self):
        s = summarize(RunLedger(manifest={}, steps=[], final={}))
        assert s["steps"] == 0
        assert s["tail_loss"] is None

    def test_render_markdown_minimal(self):
        md = render_markdown(self.MINIMAL)
        assert "# Run report — kfac" in md
        assert "final_loss" in md

    def test_render_html_minimal(self):
        page = render_html(self.MINIMAL)
        assert page.startswith("<!doctype html>")
        assert "<script" not in page

    def test_summarize_falls_back_to_step_xray_records(self):
        truncated = RunLedger(
            manifest={},
            steps=[{"step": 0, "xray": {
                "critpath_s": 2.0, "exposed_comm_s": 0.5, "straggler_skew_s": 0.1,
            }}],
            final={"steps": 1},  # crash-truncated: no final xray summary
        )
        s = summarize(truncated)
        assert s["xray_critpath_s"] == 2.0
        assert s["xray_exposed_comm_s"] == 0.5
        assert s["xray_straggler_skew"] == pytest.approx(0.1)
