"""Extension features: autotuning, factor compression, error feedback.

These implement the paper's section 7 future-work directions and the
section 6 error-feedback comparison.
"""

import numpy as np
import pytest

from repro.compression import ErrorFeedback, QsgdCompressor, TopKCompressor
from repro.core import (
    CompsoCompressor,
    FactorCompressor,
    FidelityBudget,
    autotune_bounds,
)
from repro.data import make_image_data
from repro.distributed import PLATFORM1, SimCluster
from repro.kfac_dist import (
    CompressionSpec,
    DistributedKfacTrainer,
    KfacIterationModel,
    MODEL_TIMING_PROFILES,
)
from repro.models import resnet_proxy
from repro.models.catalogs import resnet50_catalog
from repro.train import ClassificationTask


class TestAutotune:
    def test_result_meets_budget(self, kfac_like_gradient):
        budget = FidelityBudget(min_cosine=0.995, max_rel_l2=0.1)
        res = autotune_bounds([kfac_like_gradient], budget=budget)
        assert res.cosine >= budget.min_cosine
        assert res.rel_l2 <= budget.max_rel_l2
        assert res.ratio > 1.0

    def test_tighter_budget_lower_ratio(self, kfac_like_gradient):
        loose = autotune_bounds(
            [kfac_like_gradient], budget=FidelityBudget(min_cosine=0.99, max_rel_l2=0.2)
        )
        tight = autotune_bounds(
            [kfac_like_gradient], budget=FidelityBudget(min_cosine=0.9999, max_rel_l2=0.01)
        )
        assert loose.ratio >= tight.ratio

    def test_beats_default_bounds(self, kfac_like_gradient):
        """The future-work promise: tuned bounds out-compress the paper's
        empirical 4E-3 setting at comparable fidelity."""
        res = autotune_bounds(
            [kfac_like_gradient], budget=FidelityBudget(min_cosine=0.995, max_rel_l2=0.1)
        )
        default_cr = CompsoCompressor(4e-3, 4e-3).ratio(kfac_like_gradient)
        assert res.ratio > default_cr

    def test_impossible_budget_raises(self, kfac_like_gradient):
        with pytest.raises(ValueError):
            autotune_bounds(
                [kfac_like_gradient],
                budget=FidelityBudget(min_cosine=1.0, max_rel_l2=0.0),
                eb_f_grid=(1e-2,),
            )

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            autotune_bounds([])

    def test_trace_records_probes(self, kfac_like_gradient):
        res = autotune_bounds([kfac_like_gradient])
        assert len(res.trace) > 5


class TestFactorCompressor:
    @pytest.fixture
    def spd_factor(self, rng):
        m = rng.standard_normal((60, 60))
        return (m @ m.T / 60).astype(np.float32)

    def test_symmetry_restored_exactly(self, spd_factor):
        fc = FactorCompressor(1e-3)
        out = fc.decompress(fc.compress(spd_factor))
        assert np.array_equal(out, out.T)

    def test_error_bounded_by_diagonal_scale(self, spd_factor):
        fc = FactorCompressor(1e-3)
        out = fc.decompress(fc.compress(spd_factor))
        bound = 1e-3 * np.abs(np.diag(spd_factor)).max()
        assert np.abs(out - spd_factor).max() <= bound * 1.0001

    def test_compresses_running_average_factors(self, rng):
        # Realistic factors: strong diagonal, small off-diagonal mass.
        d = 100
        base = np.eye(d) * 0.5 + rng.standard_normal((d, d)) * 1e-3
        factor = ((base + base.T) / 2).astype(np.float32)
        assert FactorCompressor(1e-3).ratio(factor) > 3.0

    def test_rejects_non_square(self, rng):
        with pytest.raises(ValueError):
            FactorCompressor().compress(rng.standard_normal((3, 4)).astype(np.float32))

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            FactorCompressor(0.0)

    def test_training_with_factor_compression_converges(self):
        data = make_image_data(300, n_classes=4, size=8, noise=0.4, seed=0)
        task = ClassificationTask(data)
        model = resnet_proxy(n_classes=4, channels=8, rng=3)
        tr = DistributedKfacTrainer(
            model,
            task,
            SimCluster(1, 2, seed=0),
            lr=0.05,
            inv_update_freq=5,
            compressor=CompsoCompressor(4e-3, 4e-3),
            factor_compressor=FactorCompressor(1e-3),
        )
        h = tr.train(iterations=15, batch_size=32, eval_every=15)
        assert h.final_metric() > 60.0
        assert len(tr.factor_ratios) > 0
        assert np.mean(tr.factor_ratios) > 1.5

    def test_timing_model_factor_ratio_helps(self):
        m = KfacIterationModel(
            resnet50_catalog(), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES["resnet50"]
        )
        spec = CompressionSpec.compso(22.0)
        with_fc = m.end_to_end_speedup(spec, factor_ratio=5.0)
        without = m.end_to_end_speedup(spec)
        assert with_fc > without


class TestErrorFeedback:
    def test_repairs_topk_bias(self, rng):
        """EF makes the *time-averaged* compressed gradient unbiased even
        for Top-k, which otherwise permanently drops coordinates."""
        x = rng.standard_normal(500).astype(np.float32)
        plain = TopKCompressor(0.1)
        ef = ErrorFeedback(TopKCompressor(0.1))
        acc_plain = np.zeros(500)
        acc_ef = np.zeros(500)
        rounds = 40
        for _ in range(rounds):
            acc_plain += plain.roundtrip(x)
            acc_ef += ef.decompress(ef.compress(x))
        err_plain = np.abs(acc_plain / rounds - x).mean()
        err_ef = np.abs(acc_ef / rounds - x).mean()
        assert err_ef < err_plain / 3

    def test_memory_overhead_reported(self, rng):
        ef = ErrorFeedback(QsgdCompressor(4))
        ef.compress(rng.standard_normal(1000).astype(np.float32))
        assert ef.memory_overhead_bytes == 4000
        ef.reset()
        assert ef.memory_overhead_bytes == 0

    def test_separate_streams_by_key(self, rng):
        ef = ErrorFeedback(TopKCompressor(0.5))
        a = rng.standard_normal(100).astype(np.float32)
        b = rng.standard_normal(200).astype(np.float32)
        ef.compress(a, key="layer0")
        ef.compress(b, key="layer1")
        assert ef.memory_overhead_bytes == (100 + 200) * 4

    def test_first_round_matches_inner(self, rng):
        x = rng.standard_normal(300).astype(np.float32)
        inner = QsgdCompressor(8, seed=5)
        ef = ErrorFeedback(QsgdCompressor(8, seed=5))
        assert np.array_equal(ef.decompress(ef.compress(x)), inner.roundtrip(x))
