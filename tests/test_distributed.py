"""Network cost models, simulated collectives, and clock accounting."""

import numpy as np
import pytest

from repro.distributed import (
    PLATFORM1,
    PLATFORM2,
    SLINGSHOT10,
    SLINGSHOT11,
    SimClock,
    SimCluster,
    allgather_time,
    allreduce_time,
    broadcast_time,
    reduce_scatter_time,
)


class TestNetworkSpec:
    def test_intra_node_uses_nvlink(self):
        assert SLINGSHOT10.effective_bandwidth(4, 4) == SLINGSHOT10.intra_bw

    def test_cross_node_shares_nic(self):
        bw = SLINGSHOT10.effective_bandwidth(64, 4)
        assert bw == pytest.approx(SLINGSHOT10.inter_bw / 4)

    def test_slingshot11_twice_slingshot10(self):
        assert SLINGSHOT11.inter_bw == pytest.approx(2 * SLINGSHOT10.inter_bw)

    def test_platform_world_size(self):
        assert PLATFORM1.world_size(16) == 64
        assert PLATFORM2.world_size(64) == 256
        with pytest.raises(ValueError):
            PLATFORM1.world_size(17)


class TestCollectiveCosts:
    @pytest.mark.parametrize(
        "fn", [allreduce_time, broadcast_time, reduce_scatter_time]
    )
    def test_zero_for_single_rank(self, fn):
        assert fn(SLINGSHOT10, 1, 1e6, 4) == 0.0

    def test_allgather_zero_payload(self):
        assert allgather_time(SLINGSHOT10, 8, 0, 4) == 0.0

    def test_monotone_in_size(self):
        ts = [allreduce_time(SLINGSHOT10, 64, s, 4) for s in (1e6, 1e7, 1e8)]
        assert ts[0] < ts[1] < ts[2]

    def test_monotone_in_ranks(self):
        ts = [allreduce_time(SLINGSHOT10, p, 1e8, 4) for p in (8, 32, 128)]
        assert ts[0] < ts[1] < ts[2]

    def test_faster_network_faster_collective(self):
        assert allreduce_time(SLINGSHOT11, 64, 1e8, 4) < allreduce_time(SLINGSHOT10, 64, 1e8, 4)

    def test_allreduce_twice_reduce_scatter_bandwidth(self):
        # Ring allreduce = reduce-scatter + allgather: ~2x the volume.
        ar = allreduce_time(SLINGSHOT10, 64, 1e9, 4)
        rs = reduce_scatter_time(SLINGSHOT10, 64, 1e9, 4)
        assert ar == pytest.approx(2 * rs, rel=0.01)

    def test_broadcast_log_scaling(self):
        t8 = broadcast_time(SLINGSHOT10, 8, 1e8, 4)
        t64 = broadcast_time(SLINGSHOT10, 64, 1e8, 4)
        assert t64 == pytest.approx(2 * t8, rel=0.01)  # log2: 3 vs 6 hops


class TestSimClock:
    def test_advance_accumulates_categories(self):
        c = SimClock()
        c.advance(1.0, "a")
        c.advance(2.0, "b")
        c.advance(3.0, "a")
        assert c.now == 6.0
        assert c.breakdown() == {"a": 4.0, "b": 2.0}

    def test_fraction(self):
        c = SimClock()
        c.advance(1.0, "a")
        c.advance(3.0, "b")
        assert c.fraction("b") == pytest.approx(0.75)

    def test_sync_to_only_forward(self):
        c = SimClock()
        c.advance(5.0, "x")
        c.sync_to(3.0)
        assert c.now == 5.0
        c.sync_to(7.0)
        assert c.now == 7.0
        assert c.breakdown()["wait"] == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_reset(self):
        c = SimClock()
        c.advance(1.0, "a")
        c.reset()
        assert c.now == 0.0 and c.breakdown() == {}


class TestSimCluster:
    def test_allreduce_sums(self):
        cl = SimCluster(2, 2)
        out = cl.allreduce([np.full(5, float(r)) for r in range(4)])
        assert all(np.allclose(o, 6.0) for o in out)

    def test_allreduce_average(self):
        cl = SimCluster(1, 4)
        out = cl.allreduce([np.full(5, float(r)) for r in range(4)], average=True)
        assert np.allclose(out[0], 1.5)

    def test_allreduce_results_independent_copies(self):
        cl = SimCluster(1, 2)
        out = cl.allreduce([np.ones(3), np.ones(3)])
        out[0][0] = 99
        assert out[1][0] == 2.0

    def test_allgather_distributes_everything(self):
        cl = SimCluster(1, 3)
        got = cl.allgather([f"obj{r}" for r in range(3)])
        assert got[1] == ["obj0", "obj1", "obj2"]

    def test_broadcast(self):
        cl = SimCluster(1, 4)
        got = cl.broadcast("payload", root=2, nbytes=100)
        assert got == ["payload"] * 4

    def test_broadcast_array_results_independent_copies(self):
        # Regression: non-root ranks used to receive the root's own array
        # object, so one rank's in-place update leaked to every other rank.
        cl = SimCluster(1, 4)
        payload = np.ones(5)
        got = cl.broadcast(payload, root=2)
        assert got[2] is payload  # root keeps its own buffer (MPI semantics)
        got[0][0] = 99.0
        assert got[1][0] == 1.0 and got[3][0] == 1.0 and payload[0] == 1.0

    def test_allgather_array_results_independent_copies(self):
        # Regression: every rank used to see the same array objects.
        cl = SimCluster(1, 3)
        contribs = [np.full(4, float(r)) for r in range(3)]
        got = cl.allgather(contribs)
        got[0][1][0] = 99.0
        assert got[1][1][0] == 1.0 and got[2][1][0] == 1.0
        assert contribs[1][0] == 1.0

    def test_reduce_scatter_chunks(self):
        cl = SimCluster(1, 4)
        arrays = [np.arange(8, dtype=np.float64) for _ in range(4)]
        out = cl.reduce_scatter(arrays)
        assert np.allclose(np.concatenate(out), np.arange(8) * 4)
        assert all(len(c) == 2 for c in out)

    def test_reduce_scatter_nbytes_override(self):
        # Like allreduce/broadcast, reduce_scatter must cost compressed
        # payloads by their wire size, not the raw tensor size.
        arrays = [np.ones(10_000, dtype=np.float32) for _ in range(4)]
        full = SimCluster(1, 4)
        full.reduce_scatter(arrays)
        small = SimCluster(1, 4)
        small.reduce_scatter(arrays, nbytes=500.0)
        assert small.time < full.time
        assert small.time == pytest.approx(
            reduce_scatter_time(small.network, 4, 500.0, small.gpus_per_node)
        )

    def test_reduce_scatter_nbytes_in_span(self):
        from repro import telemetry
        from repro.telemetry import SIM_TRACK

        with telemetry.session() as t:
            cl = SimCluster(1, 4, seed=0)
            cl.reduce_scatter([np.ones(1000, dtype=np.float32) for _ in range(4)], nbytes=77.0)
        spans = t.tracer.spans(track=SIM_TRACK, category="reduce_scatter")
        assert len(spans) == 4
        assert all(s.attrs["nbytes_wire"] == 77.0 for s in spans)
        # raw size is the float64 reduction buffer (8 bytes/element)
        assert all(s.attrs["nbytes_raw"] == 8000 for s in spans)

    def test_collectives_advance_clocks(self):
        cl = SimCluster(2, 4)
        cl.allreduce([np.ones(1000) for _ in range(8)])
        assert cl.time > 0
        assert cl.breakdown()["allreduce"] > 0

    def test_collective_is_barrier(self):
        cl = SimCluster(1, 2)
        cl.advance_rank(0, 1.0, "compute")
        cl.allreduce([np.ones(10), np.ones(10)])
        # Rank 1 must have waited for rank 0 before the collective.
        assert cl.ranks[1].clock.now >= 1.0

    def test_wrong_rank_count_rejected(self):
        cl = SimCluster(1, 4)
        with pytest.raises(ValueError):
            cl.allreduce([np.ones(3)])

    def test_per_rank_rngs_differ(self):
        cl = SimCluster(1, 2, seed=3)
        assert not np.array_equal(cl.ranks[0].rng.random(4), cl.ranks[1].rng.random(4))

    def test_platform_construction(self):
        cl = SimCluster(2, platform=PLATFORM2)
        assert cl.world_size == 8
        assert cl.network is PLATFORM2.network

    def test_reset_clocks(self):
        cl = SimCluster(1, 2)
        cl.allreduce([np.ones(10), np.ones(10)])
        cl.reset_clocks()
        assert cl.time == 0.0
