"""Fault injection, detection, recovery, and determinism."""

import numpy as np
import pytest

from repro import telemetry
from repro.core import AdaptiveCompso, Bounds, CompsoCompressor, StepLrSchedule
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.distributed.collectives import broadcast_time, reduce_scatter_time
from repro.faults import (
    CHECKSUM_BYTES,
    FaultController,
    FaultPlan,
    ReliableChannel,
    corrupt_payload,
    is_sealed,
    payload_crc,
    seal,
    verify,
)
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.train import ClassificationTask


def _counters(snapshot, prefix="faults."):
    return {
        (m["name"], tuple(sorted(m["labels"].items()))): m["value"]
        for m in snapshot
        if m["type"] == "counter" and m["name"].startswith(prefix)
    }


def _tiny_trainer(plan, *, seed=0, compressor="adaptive"):
    data = make_image_data(200, n_classes=4, size=8, noise=0.6, seed=seed)
    task = ClassificationTask(data)
    cluster = SimCluster(1, 4, seed=seed, fault_plan=plan)
    model = resnet_proxy(n_classes=4, channels=8, rng=seed + 3)
    comp = None
    if compressor == "adaptive":
        comp = AdaptiveCompso(StepLrSchedule(3), seed=seed)
    elif compressor == "compso":
        comp = CompsoCompressor(4e-3, 4e-3, seed=seed)
    return DistributedKfacTrainer(
        model, task, cluster, lr=0.05, inv_update_freq=5, compressor=comp
    )


class TestFaultPlan:
    def test_empty_plan_detected(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan().add_straggler(0, start=0).is_empty()

    def test_validate_rejects_out_of_range_rank(self):
        with pytest.raises(ValueError, match="rank 9"):
            FaultPlan().add_straggler(9, start=0).validate(4)
        with pytest.raises(ValueError, match="rank 4"):
            FaultPlan().add_failure(4, iteration=0).validate(4)

    def test_validate_rejects_total_annihilation(self):
        plan = FaultPlan()
        for r in range(4):
            plan.add_failure(r, iteration=1)
        with pytest.raises(ValueError, match="at least one"):
            plan.validate(4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FaultPlan().add_straggler(0, start=0, slowdown=0.5)
        with pytest.raises(ValueError):
            FaultPlan().add_corruption(1.5)
        with pytest.raises(ValueError):
            FaultPlan().add_jitter(0.0)
        with pytest.raises(ValueError):
            FaultPlan().add_link_degradation(start=0, latency_factor=0.2)

    def test_node_failure_expands_to_all_gpus(self):
        plan = FaultPlan().add_node_failure(1, iteration=3, gpus_per_node=4)
        assert sorted(f.rank for f in plan.failures) == [4, 5, 6, 7]

    def test_describe_lists_entries(self):
        text = FaultPlan(seed=7).add_straggler(2, start=1, slowdown=3.0).describe()
        assert "seed=7" in text and "Straggler" in text


class TestEmptyPlanIdentity:
    def test_empty_plan_is_discarded(self):
        assert SimCluster(1, 2, fault_plan=FaultPlan()).faults is None
        assert SimCluster(1, 2, fault_plan=None).faults is None

    def test_empty_plan_run_bit_identical(self):
        """The acceptance bar: FaultPlan() must not perturb a single bit."""

        def run(plan):
            tr = _tiny_trainer(plan)
            tr.train(iterations=4, batch_size=32)
            params = np.concatenate([p.data.ravel() for p in tr.model.parameters()])
            return tr.history.losses, tr.cluster.breakdown(), params, tr.cluster.time

        l0, b0, p0, t0 = run(None)
        l1, b1, p1, t1 = run(FaultPlan())
        assert l0 == l1
        assert b0 == b1
        assert t0 == t1
        assert np.array_equal(p0, p1)


class TestTimePlane:
    def test_straggler_slows_breakdown(self):
        plan = FaultPlan().add_straggler(1, start=0, slowdown=3.0)
        cl = SimCluster(1, 4, fault_plan=plan)
        cl.allreduce([np.ones(1000) for _ in range(4)])
        bd = cl.breakdown()
        assert bd["fault_delay"] > 0
        # The straggler's clock leads by its extra time: (slowdown-1)x base.
        clean = SimCluster(1, 4)
        clean.allreduce([np.ones(1000) for _ in range(4)])
        assert cl.time == pytest.approx(clean.time * 3.0)

    def test_straggler_outside_window_is_free(self):
        plan = FaultPlan().add_straggler(1, start=5, stop=6, slowdown=3.0)
        cl = SimCluster(1, 4, fault_plan=plan)
        cl.begin_iteration(0)
        cl.allreduce([np.ones(1000) for _ in range(4)])
        assert "fault_delay" not in cl.breakdown()

    def test_link_degradation_scales_collective_time(self):
        base = SimCluster(1, 4)
        base.broadcast(np.ones(100_000))
        plan = FaultPlan().add_link_degradation(start=0, latency_factor=2.0, bandwidth_factor=2.0)
        degraded = SimCluster(1, 4, fault_plan=plan)
        degraded.begin_iteration(0)
        degraded.broadcast(np.ones(100_000))
        assert degraded.time > base.time * 1.5
        expected = broadcast_time(degraded.network, 4, 800_000, 4)
        assert degraded.breakdown()["broadcast"] == pytest.approx(expected)

    def test_jitter_adds_positive_time(self):
        plan = FaultPlan(seed=3).add_jitter(1e-4, start=0)
        cl = SimCluster(1, 4, fault_plan=plan)
        cl.allreduce([np.ones(10) for _ in range(4)])
        assert cl.breakdown().get("fault_delay", 0.0) > 0


class TestChecksum:
    def test_seal_and_verify_roundtrip(self, kfac_like_gradient):
        ct = CompsoCompressor(4e-3, 4e-3).compress(kfac_like_gradient)
        assert not is_sealed(ct)
        sealed = seal(ct)
        assert is_sealed(sealed) and verify(sealed)
        assert sealed.nbytes == ct.nbytes  # +CHECKSUM_BYTES charged on the wire
        assert CHECKSUM_BYTES == 4

    def test_corruption_breaks_verification(self, kfac_like_gradient, rng):
        sealed = seal(CompsoCompressor(4e-3, 4e-3).compress(kfac_like_gradient))
        corrupted = corrupt_payload(sealed, rng, 4)
        assert not verify(corrupted)
        assert payload_crc(corrupted) != payload_crc(sealed)

    def test_corrupt_payload_ndarray(self, rng):
        x = np.ones(100, dtype=np.float32)
        y = corrupt_payload(x, rng, 2)
        assert y.shape == x.shape and not np.array_equal(x, y)
        assert np.array_equal(x, np.ones(100, dtype=np.float32))  # original intact


class TestReliableChannel:
    def _sealed_broadcast(self, probability, seed=0, max_retries=8):
        plan = FaultPlan(seed=seed).add_corruption(probability, n_bits=4)
        cl = SimCluster(1, 4, fault_plan=plan)
        cl.begin_iteration(0)
        chan = ReliableChannel(cl, max_retries=max_retries)
        ct = CompsoCompressor(4e-3, 4e-3).compress(np.linspace(-1, 1, 5000).astype(np.float32))
        return chan.broadcast(ct, root=0, category="kfac_allgather"), cl

    def test_clean_channel_single_attempt(self):
        plan = FaultPlan().add_straggler(0, start=0, slowdown=1.5)  # non-empty, no corruption
        cl = SimCluster(1, 4, fault_plan=plan)
        chan = ReliableChannel(cl)
        ct = CompsoCompressor(4e-3, 4e-3).compress(np.ones(100, dtype=np.float32))
        sealed, report = chan.broadcast(ct, root=0, category="kfac_allgather")
        assert report.attempts == 1 and report.detected == 0 and not report.unrecoverable
        assert verify(sealed)

    def test_retransmit_until_clean(self):
        (sealed, report), cl = self._sealed_broadcast(0.4, seed=1)
        assert report.detected > 0
        assert report.attempts > 1 and not report.unrecoverable
        assert verify(sealed)
        assert cl.breakdown().get("fault_backoff", 0.0) > 0

    def test_unrecoverable_after_max_retries(self):
        (sealed, report), _ = self._sealed_broadcast(1.0, max_retries=2)
        assert report.unrecoverable
        assert report.attempts == 3  # 1 try + 2 retries
        assert verify(sealed)  # the root's copy is always clean

    def test_wire_bytes_factor_counts_attempts(self):
        (_, report), _ = self._sealed_broadcast(1.0, max_retries=1)
        assert report.wire_bytes_factor == 2.0


class TestDataPlane:
    def test_drop_rescales_average(self):
        plan = FaultPlan().add_drop(1, iteration=0)
        cl = SimCluster(1, 4, fault_plan=plan)
        cl.begin_iteration(0)
        out = cl.allreduce([np.full(3, float(r + 1)) for r in range(4)], average=True)
        # Ranks 1's contribution (value 2.0) is lost: mean of {1, 3, 4}.
        assert np.allclose(out[0], (1 + 3 + 4) / 3)

    def test_drop_only_named_iteration(self):
        plan = FaultPlan().add_drop(1, iteration=0)
        cl = SimCluster(1, 4, fault_plan=plan)
        cl.begin_iteration(1)
        out = cl.allreduce([np.full(3, float(r + 1)) for r in range(4)], average=True)
        assert np.allclose(out[0], 2.5)

    def test_broadcast_corruption_spares_root(self):
        plan = FaultPlan(seed=0).add_corruption(1.0, n_bits=1)
        cl = SimCluster(1, 4, fault_plan=plan)
        cl.begin_iteration(0)
        payload = np.ones(64, dtype=np.float32)
        got = cl.broadcast(payload, root=2)
        assert got[2] is payload
        assert any(not np.array_equal(got[i], payload) for i in (0, 1, 3))


class TestElasticContinuation:
    def test_rank_failure_shrinks_world(self):
        plan = FaultPlan().add_failure(3, iteration=2)
        tr = _tiny_trainer(plan)
        h = tr.train(iterations=5, batch_size=32)
        assert len(h.losses) == 5
        assert tr.cluster.world_size == 3
        assert tr.cluster.lost_ranks and tr.cluster.lost_ranks[0].rank == 3
        assert max(tr.owners) < 3
        assert np.isfinite(h.losses[-1])

    def test_all_ranks_dead_raises(self):
        # validate() rejects plans that fail every rank, so build the
        # second failure behind its back to exercise the runtime guard.
        from repro.faults.plan import RankFailure

        plan = FaultPlan().add_failure(0, iteration=1)
        cl = SimCluster(1, 2, fault_plan=plan)
        cl.faults.plan.failures.append(RankFailure(1, 1))
        with pytest.raises(RuntimeError, match="every remaining rank"):
            cl.begin_iteration(1)

    def test_failure_counters_and_gauge(self):
        plan = FaultPlan().add_failure(2, iteration=1)
        tr = _tiny_trainer(plan, compressor=None)
        with telemetry.session() as sess:
            tr.train(iterations=3, batch_size=32)
            counters = _counters(sess.metrics.snapshot())
            gauges = {
                m["name"]: m["value"]
                for m in sess.metrics.snapshot()
                if m["type"] == "gauge"
            }
        assert counters[("faults.injected", (("kind", "rank_failure"),))] == 1
        assert counters[("faults.recovered", (("kind", "rank_failure"),))] == 1
        assert gauges["faults.world_size"] == 3


class TestCorruptionRecovery:
    def test_detection_matches_checksummed_injection(self):
        """Every corruption on the checksummed path must be detected."""
        plan = FaultPlan(seed=5).add_corruption(0.4, start=1, stop=4, n_bits=4)
        tr = _tiny_trainer(plan)
        with telemetry.session() as sess:
            tr.train(iterations=5, batch_size=32)
            counters = _counters(sess.metrics.snapshot())
        injected = counters.get(("faults.injected", (("kind", "corruption"),)), 0)
        detected = counters.get(("faults.detected", (("kind", "corruption"),)), 0)
        assert injected > 0
        # Undetected injections can only come from the unchecksummed raw
        # fallback; they never exceed the fallback count.
        fallbacks = counters.get(("faults.recovered", (("kind", "lossless_fallback"),)), 0)
        assert injected - detected <= fallbacks * tr.cluster.world_size

    def test_corruption_run_converges(self):
        plan = FaultPlan(seed=5).add_corruption(0.3, start=1, stop=6, n_bits=4)
        tr = _tiny_trainer(plan)
        h = tr.train(iterations=8, batch_size=32)
        clean = _tiny_trainer(None)
        hc = clean.train(iterations=8, batch_size=32)
        assert h.losses[-1] < h.losses[0]
        assert abs(h.losses[-1] - hc.losses[-1]) / hc.losses[-1] < 0.25


class TestGracefulDegradation:
    def test_degrade_tightens_bounds_then_lapses(self):
        ac = AdaptiveCompso(StepLrSchedule(10), fallback=Bounds(0.0, 1e-4))
        assert ac.bounds.filtering  # loose phase
        ac.degrade(iterations=2)
        assert ac.degraded
        assert not ac.bounds.filtering and ac.bounds.eb_q == pytest.approx(1e-4)
        ac.step()
        assert ac.degraded
        ac.step()
        assert not ac.degraded
        assert ac.bounds.filtering  # schedule re-tightens control

    def test_degrade_validates_window(self):
        ac = AdaptiveCompso(StepLrSchedule(10))
        with pytest.raises(ValueError):
            ac.degrade(iterations=0)

    def test_sgd_ef_residual_guard(self):
        from repro.compression import TopKCompressor
        from repro.compression.error_feedback import ErrorFeedback
        from repro.data import make_image_data
        from repro.optim import Sgd
        from repro.train.trainer import DistributedSgdTrainer

        data = make_image_data(200, n_classes=4, size=8, noise=0.6, seed=0)
        task = ClassificationTask(data)
        model = resnet_proxy(n_classes=4, channels=8, rng=3)
        ef = ErrorFeedback(TopKCompressor(0.2))
        plan = FaultPlan().add_straggler(0, start=0, slowdown=1.1)  # activate fault path
        tr = DistributedSgdTrainer(
            model,
            task,
            Sgd(model.parameters(), lr=0.05),
            SimCluster(1, 2, fault_plan=plan),
            compressor=ef,
            ef_residual_guard=1e-9,  # absurdly low: must trip immediately
        )
        with telemetry.session() as sess:
            tr.train(iterations=2, batch_size=16)
            counters = _counters(sess.metrics.snapshot())
        assert counters[("faults.recovered", (("kind", "ef_reset"),))] >= 1
        assert ef.memory_overhead_bytes == 0 or ef.residual_norm() >= 0  # reset ran


class TestDeterminism:
    def test_same_seed_same_schedule_and_params(self):
        """Same (seed, plan) twice: bit-identical events, params, clocks."""

        def run():
            plan = (
                FaultPlan(seed=11)
                .add_straggler(1, start=1, stop=4, slowdown=2.0)
                .add_jitter(5e-5, start=0, stop=5)
                .add_corruption(0.3, start=1, stop=5, n_bits=2)
                .add_drop(2, iteration=3)
                .add_failure(3, iteration=4)
            )
            tr = _tiny_trainer(plan, seed=2)
            tr.train(iterations=6, batch_size=32)
            params = np.concatenate([p.data.ravel() for p in tr.model.parameters()])
            return tr.cluster.faults.events, params, tr.cluster.breakdown(), tr.history.losses

        e0, p0, b0, l0 = run()
        e1, p1, b1, l1 = run()
        assert e0 == e1
        assert np.array_equal(p0, p1)
        assert b0 == b1
        assert l0 == l1

    def test_different_seeds_differ(self):
        def events(seed):
            plan = FaultPlan(seed=seed).add_corruption(0.5, n_bits=1)
            cl = SimCluster(1, 4, fault_plan=plan)
            cl.begin_iteration(0)
            cl.broadcast(np.ones(128, dtype=np.float32), root=0)
            return cl.faults.events

        assert events(1) != events(2)


class TestChaosHarness:
    def test_make_plan_scales_and_validates(self):
        from repro.faults.chaos import SCENARIOS, make_plan

        for name in SCENARIOS:
            plan = make_plan(name, 4, 12, seed=0)
            assert not plan.is_empty()
            plan.validate(4)
        with pytest.raises(ValueError):
            make_plan("nope", 4, 12)

    def test_smoke_scenario_end_to_end(self):
        from repro.faults.chaos import run_chaos

        r = run_chaos("smoke", nodes=1, gpus_per_node=2, iterations=4, batch_size=16)
        assert r.completed
        assert sum(v for k, v in r.counters.items() if k.startswith("faults.injected")) > 0
        assert r.faulted_sim_time > r.baseline_sim_time
        d = r.to_dict()
        assert d["scenario"] == "smoke" and "counters" in d
