"""The repro.obsv subsystem: ledger, analytics, report, diff, CLI gate."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.cli import main
from repro.core import AdaptiveCompso, CompsoCompressor, StepLrSchedule
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.guard.guard import GuardConfig
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.obsv import (
    DEFAULT_SPECS,
    LedgerConfig,
    LedgerError,
    MetricSpec,
    RunLedger,
    bound_series,
    describe_compressor,
    diff_ledgers,
    fault_plan_digest,
    guard_timeline,
    load_ledger,
    loss_series,
    parse_tolerance,
    per_layer_cr,
    render_html,
    render_markdown,
    summarize,
    write_report,
)
from repro.obsv.ledger import SCHEMA_VERSION
from repro.optim import Sgd
from repro.runtime import ComputeModel, StreamRuntime
from repro.train import ClassificationTask, DistributedSgdTrainer

ITERS = 5


def _task(n=160):
    return ClassificationTask(make_image_data(n, n_classes=4, size=8, noise=0.5, seed=0))


def _record_kfac(
    path,
    *,
    eb=4e-3,
    seed=0,
    guard=True,
    overlap=True,
    use_telemetry=True,
    obsv="ledger",
):
    """One small guarded+overlapped K-FAC run; returns the trainer."""
    cluster = SimCluster(2, 2, seed=0)
    runtime = None
    if overlap:
        runtime = StreamRuntime(
            cluster, overlap=True, n_comm_streams=2, compute=ComputeModel(train_flops=5e7)
        )
    trainer = DistributedKfacTrainer(
        resnet_proxy(n_classes=4, channels=4, rng=3),
        _task(),
        cluster,
        lr=0.05,
        inv_update_freq=2,
        compressor=CompsoCompressor(eb, eb, seed=0),
        runtime=runtime,
        guard=GuardConfig() if guard else None,
        obsv=LedgerConfig(path) if obsv == "ledger" else None,
    )
    if use_telemetry:
        with telemetry.session():
            trainer.train(iterations=ITERS, batch_size=32, eval_every=ITERS, seed=seed)
    else:
        trainer.train(iterations=ITERS, batch_size=32, eval_every=ITERS, seed=seed)
    return trainer


class TestLedger:
    def test_structure_and_load(self, tmp_path):
        path = tmp_path / "run.ledger"
        _record_kfac(path)
        lines = path.read_text().splitlines()
        assert "manifest" in json.loads(lines[0])
        assert "final" in json.loads(lines[-1])
        ledger = load_ledger(path)
        assert ledger.manifest["schema_version"] == SCHEMA_VERSION
        assert ledger.manifest["kind"] == "kfac"
        assert ledger.manifest["seed"] == 0
        assert ledger.manifest["cluster"] == {
            "n_nodes": 2,
            "gpus_per_node": 2,
            "world_size": 4,
            "fabric": "slingshot10",
        }
        assert ledger.manifest["compressor"]["class"] == "CompsoCompressor"
        assert ledger.manifest["runtime"]["overlap"] is True
        assert ledger.manifest["guard"]["enabled"] is True
        assert len(ledger.steps) == ITERS
        assert ledger.final["steps"] == ITERS

    def test_step_records_fold_every_source(self, tmp_path):
        path = tmp_path / "run.ledger"
        _record_kfac(path)
        ledger = load_ledger(path)
        step = ledger.steps[-1]
        # Trainer scalars + wire accounting.
        assert step["loss"] > 0 and step["lr"] == 0.05
        assert step["cr"] == step["dense_bytes"] / step["wire_bytes"]
        assert step["layers"]  # per-layer (layer, wire, dense) triples
        # Cluster, bounds, overlap, span digests, metrics snapshots.
        assert step["sim_time"] > 0 and step["world_size"] == 4
        assert step["bounds"] == {"eb_f": 4e-3, "eb_q": 4e-3}
        assert set(step["overlap"]) == {"hidden", "exposed", "hidden_fraction", "per_category"}
        assert "sim" in step["spans"]
        digest = next(iter(step["spans"]["sim"].values()))
        assert set(digest) == {"count", "total", "p50", "p95", "p99"}
        assert any(m["name"] == "train.loss" for m in step["metrics"])

    def test_determinism_same_seed_same_body(self, tmp_path):
        a, b = tmp_path / "a.ledger", tmp_path / "b.ledger"
        _record_kfac(a)
        _record_kfac(b)
        la, lb = load_ledger(a), load_ledger(b)
        assert la.body_text() == lb.body_text()
        assert la.digest() == lb.digest()
        # Only the timestamp may differ between the raw files.
        ma = dict(la.manifest)
        mb = dict(lb.manifest)
        ma.pop("created_unix")
        mb.pop("created_unix")
        assert ma == mb

    def test_different_seed_different_body(self, tmp_path):
        a, b = tmp_path / "a.ledger", tmp_path / "b.ledger"
        _record_kfac(a, seed=0)
        _record_kfac(b, seed=1)
        assert load_ledger(a).digest() != load_ledger(b).digest()

    def test_obsv_none_is_bit_identical(self, tmp_path):
        with_ledger = _record_kfac(tmp_path / "run.ledger", obsv="ledger")
        without = _record_kfac(tmp_path / "unused.ledger", obsv=None)
        assert with_ledger.history.losses == without.history.losses
        pa = np.concatenate([p.data.ravel() for p in with_ledger.model.parameters()])
        pb = np.concatenate([p.data.ravel() for p in without.model.parameters()])
        assert np.array_equal(pa, pb)
        assert with_ledger.cluster.time == without.cluster.time

    def test_works_without_telemetry_session(self, tmp_path):
        path = tmp_path / "run.ledger"
        _record_kfac(path, use_telemetry=False)
        ledger = load_ledger(path)
        step = ledger.steps[0]
        assert "metrics" not in step and "spans" not in step
        assert step["loss"] > 0

    def test_sgd_trainer_writes_ledger(self, tmp_path):
        path = tmp_path / "sgd.ledger"
        task = _task()
        model = resnet_proxy(n_classes=4, channels=4, rng=3)
        tr = DistributedSgdTrainer(
            model,
            task,
            Sgd(model.parameters(), lr=0.05, momentum=0.9),
            SimCluster(1, 4, seed=0),
            compressor=CompsoCompressor(4e-3, 4e-3, seed=0),
            obsv=LedgerConfig(path),
        )
        tr.train(iterations=ITERS, batch_size=32, eval_every=ITERS)
        ledger = load_ledger(path)
        assert ledger.manifest["kind"] == "sgd"
        assert len(ledger.steps) == ITERS
        assert all(s["cr"] > 1.0 for s in ledger.steps)

    def test_load_rejects_newer_schema(self, tmp_path):
        p = tmp_path / "future.ledger"
        p.write_text(
            json.dumps({"manifest": {"schema_version": SCHEMA_VERSION + 1}})
            + "\n"
            + json.dumps({"final": {}})
            + "\n"
        )
        with pytest.raises(LedgerError, match="newer than supported"):
            load_ledger(p)

    def test_load_rejects_malformed(self, tmp_path):
        p = tmp_path / "bad.ledger"
        p.write_text(json.dumps({"step": 0, "loss": 1.0}) + "\n")
        with pytest.raises(LedgerError):
            load_ledger(p)
        p.write_text(json.dumps({"manifest": {"schema_version": 1}}) + "\n")
        with pytest.raises(LedgerError, match="final"):
            load_ledger(p)

    def test_writer_refuses_after_close(self, tmp_path):
        w = LedgerConfig(tmp_path / "x.ledger").build()
        w.bind(kind="test")
        w.record_step(0, loss=1.0)
        w.close()
        with pytest.raises(LedgerError, match="closed"):
            w.record_step(1, loss=0.5)
        # Re-close is an idempotent no-op.
        assert w.close() == w.path

    def test_describe_compressor_recurses_into_inner(self):
        desc = describe_compressor(AdaptiveCompso(StepLrSchedule(4)))
        assert desc["class"] == "AdaptiveCompso"
        assert desc["inner"]["class"] == "CompsoCompressor"
        assert desc["inner"]["params"]["eb_f"] == pytest.approx(4e-3)
        assert describe_compressor(None) is None

    def test_fault_plan_digest_stability(self):
        from repro.faults.plan import FaultPlan

        plan_a = FaultPlan(seed=7).add_straggler(1, start=2, slowdown=3.0)
        plan_b = FaultPlan(seed=7).add_straggler(1, start=2, slowdown=3.0)
        plan_c = FaultPlan(seed=7).add_straggler(1, start=3, slowdown=3.0)
        assert fault_plan_digest(plan_a) == fault_plan_digest(plan_b)
        assert fault_plan_digest(plan_a) != fault_plan_digest(plan_c)
        assert fault_plan_digest(None) is None


class TestAnalytics:
    def test_summarize_and_series(self, tmp_path):
        path = tmp_path / "run.ledger"
        _record_kfac(path)
        ledger = load_ledger(path)
        s = summarize(ledger)
        assert s["steps"] == ITERS and s["world_size"] == 4
        assert s["final_loss"] == ledger.steps[-1]["loss"]
        assert s["mean_cr"] > 1.0
        assert s["total_wire_mb"] < s["total_dense_mb"]
        assert 0.0 <= s["hidden_fraction"] <= 1.0
        assert s["guard_remediations"] == 0 and s["breaker_trips"] == 0
        assert len(loss_series(ledger)) == ITERS
        assert len(per_layer_cr(ledger)) > 1
        assert guard_timeline(ledger) == []

    def test_bound_series_tracks_adaptive_schedule(self, tmp_path):
        path = tmp_path / "adaptive.ledger"
        trainer = DistributedKfacTrainer(
            resnet_proxy(n_classes=4, channels=4, rng=3),
            _task(),
            SimCluster(1, 2, seed=0),
            lr=0.05,
            inv_update_freq=2,
            compressor=AdaptiveCompso(StepLrSchedule(2)),
            obsv=LedgerConfig(path),
        )
        trainer.train(iterations=4, batch_size=32)
        bounds = bound_series(load_ledger(path))
        assert len(bounds) == 4
        # The schedule loosens -> tightens across the pivot.
        assert bounds[0]["eb_f"] > bounds[-1]["eb_f"] == 0.0


class TestDiff:
    def test_identical_runs_are_ok(self, tmp_path):
        a, b = tmp_path / "a.ledger", tmp_path / "b.ledger"
        _record_kfac(a)
        _record_kfac(b)
        diff = diff_ledgers(load_ledger(a), load_ledger(b))
        assert diff.ok
        assert all(r.status == "ok" for r in diff.rows)
        assert "final_loss" in diff.format_table()

    def test_degraded_run_regresses_and_gates(self, tmp_path):
        base, bad = tmp_path / "base.ledger", tmp_path / "bad.ledger"
        _record_kfac(base, eb=4e-3)
        _record_kfac(bad, eb=0.5)
        diff = diff_ledgers(load_ledger(base), load_ledger(bad))
        assert not diff.ok
        status = {r.metric: r.status for r in diff.rows}
        # The proxy is tiny, so quality damage shows up in the final
        # evaluation metric (accuracy collapse) rather than raw loss.
        assert status["final_metric"] == "regressed"
        # A looser bound compresses *more*: improvement, not regression.
        assert status["mean_cr"] == "improved"
        assert "final_metric" in [r.metric for r in diff.regressions]
        assert diff.to_dict()["ok"] is False

    def test_missing_metric_gates(self):
        a = RunLedger(manifest={}, steps=[], final={"steps": 2, "final_loss": 1.0})
        b = RunLedger(manifest={}, steps=[], final={"steps": 2})
        diff = diff_ledgers(a, b)
        assert {r.metric: r.status for r in diff.rows}["final_loss"] == "missing"
        assert not diff.ok

    def test_drift_on_directionless_metric(self):
        a = RunLedger(manifest={}, steps=[], final={"steps": 4, "final_loss": 1.0})
        b = RunLedger(manifest={}, steps=[], final={"steps": 8, "final_loss": 1.0})
        diff = diff_ledgers(a, b)
        assert {r.metric: r.status for r in diff.rows}["steps"] == "drift"
        assert not diff.ok

    def test_tolerance_band_and_overrides(self):
        a = RunLedger(manifest={}, steps=[], final={"final_loss": 1.0, "steps": 1})
        b = RunLedger(manifest={}, steps=[], final={"final_loss": 1.2, "steps": 1})
        # Default band (rel 0.25) absorbs a 20% loss increase...
        assert diff_ledgers(a, b).ok
        # ...a tightened override does not.
        tight = parse_tolerance("final_loss=0.1", DEFAULT_SPECS)
        assert tight.better == "lower" and tight.rel_tol == 0.1
        assert not diff_ledgers(a, b, tolerances={"final_loss": tight}).ok
        # abs: overrides switch to an absolute band.
        loose = parse_tolerance("final_loss=abs:0.5", DEFAULT_SPECS)
        assert loose.abs_tol == 0.5 and loose.rel_tol == 0.0
        assert diff_ledgers(a, b, tolerances={"final_loss": loose}).ok

    def test_parse_tolerance_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_tolerance("final_loss", DEFAULT_SPECS)

    def test_metric_spec_band(self):
        spec = MetricSpec("x", "lower", rel_tol=0.1, abs_tol=0.5)
        assert spec.band(10.0) == pytest.approx(1.5)
        assert spec.band(-10.0) == pytest.approx(1.5)


class TestReport:
    def test_markdown_and_html_render(self, tmp_path):
        path = tmp_path / "run.ledger"
        _record_kfac(path)
        ledger = load_ledger(path)
        md = render_markdown(ledger)
        assert "# Run report — kfac" in md
        assert "## Summary" in md and "final_loss" in md
        assert "## Guard timeline" in md
        assert "Span digests — sim track" in md
        page = render_html(ledger)
        assert page.startswith("<!doctype html>")
        assert "<script" not in page  # self-contained, no scripts
        assert "<svg" in page and "training loss" in page
        assert "compression ratio" in page

    def test_write_report_paths(self, tmp_path):
        path = tmp_path / "run.ledger"
        _record_kfac(path)
        ledger = load_ledger(path)
        written = write_report(
            ledger, html_path=tmp_path / "r.html", md_path=tmp_path / "r.md"
        )
        assert [p.name for p in written] == ["r.html", "r.md"]
        assert all(p.stat().st_size > 500 for p in written)


class TestCli:
    def test_record_report_diff_gate(self, tmp_path, capsys):
        base = str(tmp_path / "base.ledger")
        cand = str(tmp_path / "cand.ledger")
        bad = str(tmp_path / "bad.ledger")
        for out, preset in ((base, "smoke"), (cand, "smoke"), (bad, "smoke-degraded")):
            assert main(["record", "--preset", preset, "--out", out, "--iterations", "4"]) == 0
        capsys.readouterr()
        # Report renders both artifacts.
        assert main(["report", base]) == 0
        out = capsys.readouterr().out
        assert "# Run report" in out
        assert (tmp_path / "base.html").exists() and (tmp_path / "base.md").exists()
        # Same-config candidate passes the gate; degraded one fails it.
        assert main(["diff", base, cand]) == 0
        capsys.readouterr()
        json_out = str(tmp_path / "diff.json")
        assert main(["diff", base, bad, "--json", json_out]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        result = json.loads((tmp_path / "diff.json").read_text())
        assert result["ok"] is False and "final_loss" in result["regressions"]

    def test_diff_tolerance_override(self, tmp_path, capsys):
        base = str(tmp_path / "base.ledger")
        bad = str(tmp_path / "bad.ledger")
        assert main(["record", "--out", base, "--iterations", "4"]) == 0
        assert main(["record", "--preset", "smoke-degraded", "--out", bad, "--iterations", "4"]) == 0
        capsys.readouterr()
        # A huge tolerance on every regressing metric silences the gate.
        assert (
            main(
                [
                    "diff", base, bad,
                    "--tol", "final_loss=abs:1e9",
                    "--tol", "tail_loss=abs:1e9",
                    "--tol", "total_wire_mb=abs:1e9",
                    "--tol", "sim_time=abs:1e9",
                    "--tol", "hidden_fraction=abs:1e9",
                    "--tol", "hidden_comm_seconds=abs:1e9",
                    "--tol", "exposed_comm_seconds=abs:1e9",
                    "--tol", "final_metric=abs:1e9",
                ]
            )
            == 0
        )
