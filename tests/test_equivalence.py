"""Equivalence: the distributed trainer must match single-worker K-FAC.

With world size 1 and no compression, `DistributedKfacTrainer` executes
exactly the single-worker algorithm (factor accumulate -> eigen ->
precondition -> apply); both paths must produce identical loss
trajectories.  This pins the data plane: any drift would mean the
collectives or the work assignment change the math.
"""

import numpy as np

from repro import nn
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.optim import Kfac
from repro.train import ClassificationTask


def _make(seed_model=3):
    data = make_image_data(300, n_classes=4, size=8, noise=0.4, seed=0)
    task = ClassificationTask(data)
    model = resnet_proxy(n_classes=4, channels=8, rng=seed_model)
    return task, model


def test_world1_matches_single_worker():
    task, model_a = _make()
    _, model_b = _make()

    # Single-worker path.
    kfac = Kfac(model_a, lr=0.05, damping=1e-2, inv_update_freq=3, kl_clip=1e-3)
    losses_a = []
    rng = np.random.default_rng(7)
    batches = [rng.integers(0, task.n, 32) for _ in range(8)]
    for idx in batches:
        x, y = task.batch(idx)
        out = model_a(x)
        loss, dl = task.loss_and_grad(out, y)
        kfac.zero_grad()
        model_a.backward(dl)
        kfac.step()
        losses_a.append(loss)

    # Distributed path, world size 1, identical batches.
    trainer = DistributedKfacTrainer(
        model_b,
        task,
        SimCluster(1, 1, seed=0),
        lr=0.05,
        damping=1e-2,
        inv_update_freq=3,
        kl_clip=1e-3,
    )
    losses_b = [trainer.step(idx) for idx in batches]

    assert np.allclose(losses_a, losses_b, rtol=1e-5), (losses_a, losses_b)


def test_world4_matches_world1_on_same_global_batch():
    """Data parallelism changes only *where* shards are evaluated, not the
    averaged gradients — identical global batches must give identical
    training trajectories regardless of world size.

    BatchNorm computes statistics per shard, so this exact equivalence is
    checked on a BN-free model (as with real sync-free BN in DDP).
    """
    data = make_image_data(300, n_classes=4, size=8, noise=0.4, seed=0)
    task = ClassificationTask(data)

    def build():
        return nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1, rng=5),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(8, 4, rng=6),
        )

    rng = np.random.default_rng(11)
    batches = [rng.integers(0, task.n, 32) for _ in range(6)]

    def run(world):
        model = build()
        tr = DistributedKfacTrainer(
            model, task, SimCluster(1, world, seed=0), lr=0.05, damping=1e-2, inv_update_freq=3
        )
        return [tr.step(idx) for idx in batches]

    l1 = run(1)
    l4 = run(4)
    # Losses are averages of per-shard losses; with deterministic data the
    # global mean is identical, and parameter updates coincide.
    assert np.allclose(l1, l4, rtol=1e-4), (l1, l4)
