"""Property-based tests and failure injection across all compressors.

Invariants every compressor must satisfy on arbitrary float32 input:
shape preservation, finite output, idempotent decompression, and (for
error-bounded compressors) the advertised bound.  Failure injection
verifies corrupt wire data cannot silently round-trip.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    CocktailSgdCompressor,
    CompressedTensor,
    QsgdCompressor,
    SzCompressor,
    TopKCompressor,
)
from repro.core import CompsoCompressor, FactorCompressor
from repro.encoders import EncodeError, get_encoder

COMPRESSOR_FACTORIES = [
    lambda: CompsoCompressor(4e-3, 4e-3, seed=0),
    lambda: CompsoCompressor(0.0, 1e-3, seed=0),
    lambda: QsgdCompressor(8, seed=0),
    lambda: QsgdCompressor(4, seed=0),
    lambda: SzCompressor(4e-3),
    lambda: CocktailSgdCompressor(0.3, 8, seed=0),
    lambda: TopKCompressor(0.2),
]


def _finite_floats(n):
    rng = np.random.default_rng(n)
    kind = n % 4
    if kind == 0:
        return (rng.standard_normal(n or 1) * 10.0 ** float(rng.integers(-6, 3))).astype(
            np.float32
        )
    if kind == 1:
        return np.full(n or 1, float(rng.standard_normal()), dtype=np.float32)
    if kind == 2:
        return np.zeros(n or 1, dtype=np.float32)
    x = rng.standard_normal(n or 1).astype(np.float32)
    x[:: max(n // 7, 1)] *= 1e6  # spiky outliers
    return x


@pytest.mark.parametrize("factory", COMPRESSOR_FACTORIES, ids=lambda f: f().name)
@given(n=st.integers(min_value=1, max_value=5000))
@settings(max_examples=15, deadline=None)
def test_roundtrip_invariants(factory, n):
    comp = factory()
    x = _finite_floats(n)
    ct = comp.compress(x)
    out = comp.decompress(ct)
    assert out.shape == x.shape
    assert out.dtype == np.float32
    assert np.all(np.isfinite(out))
    # Decompression is pure: same compressed tensor, same output.
    assert np.array_equal(comp.decompress(ct), out)


@given(n=st.integers(min_value=1, max_value=5000))
@settings(max_examples=15, deadline=None)
def test_compso_bound_property(n):
    comp = CompsoCompressor(4e-3, 4e-3, seed=0)
    x = _finite_floats(n)
    out = comp.roundtrip(x)
    vmax = float(np.abs(x).max())
    assert np.abs(out - x).max() <= 4e-3 * max(vmax, 1e-30) * 1.001


@given(n=st.integers(min_value=2, max_value=80))
@settings(max_examples=15, deadline=None)
def test_factor_compressor_symmetry_property(n):
    rng = np.random.default_rng(n)
    m = rng.standard_normal((n, n))
    factor = ((m @ m.T) / n).astype(np.float32)
    fc = FactorCompressor(1e-3, seed=0)
    out = fc.decompress(fc.compress(factor))
    assert np.array_equal(out, out.T)
    assert np.abs(out - factor).max() <= 1e-3 * np.abs(np.diag(factor)).max() * 1.001


class TestFailureInjection:
    def test_truncated_encoder_blob_raises(self, rng):
        comp = CompsoCompressor(4e-3, 4e-3)
        ct = comp.compress(rng.standard_normal(2000).astype(np.float32))
        broken = CompressedTensor(
            {**ct.segments, "codes": ct.segments["codes"][:3]}, ct.shape, ct.meta
        )
        with pytest.raises(EncodeError):
            comp.decompress(broken)

    def test_corrupt_frame_kind_raises(self, rng):
        enc = get_encoder("ans")
        blob = enc.encode(rng.integers(0, 256, 1000, dtype=np.uint8).tobytes())
        corrupt = bytes([0x7F]) + blob[1:]
        with pytest.raises(EncodeError):
            enc.decode(corrupt)

    def test_wrong_declared_length_raises(self, rng):
        enc = get_encoder("deflate")
        data = rng.integers(0, 4, 1000, dtype=np.uint8).tobytes()
        blob = bytearray(enc.encode(data))
        blob[1] ^= 0xFF  # mangle the length field
        with pytest.raises(EncodeError):
            enc.decode(bytes(blob))

    @pytest.mark.parametrize("segment", ["bitmap", "codes"])
    def test_swapped_segments_do_not_roundtrip_silently(self, rng, segment):
        comp = CompsoCompressor(4e-3, 4e-3, seed=0)
        x = rng.standard_normal(3000).astype(np.float32)
        ct = comp.compress(x)
        other = comp.compress(rng.standard_normal(3000).astype(np.float32) * 7)
        tampered = CompressedTensor(
            {**ct.segments, segment: other.segments[segment]}, ct.shape, ct.meta
        )
        try:
            out = comp.decompress(tampered)
        except (EncodeError, ValueError, IndexError):
            return  # detected corruption: fine
        # If it decodes structurally, the data must not silently match.
        assert not np.allclose(out, comp.decompress(ct))
