"""Infrastructure extensions: new collectives, NN layers, Shampoo,
checkpointing, CLI."""

import io
from contextlib import redirect_stdout

import numpy as np
import pytest

from repro import nn
from repro.cli import main as cli_main
from repro.data import make_image_data
from repro.distributed import (
    SLINGSHOT10,
    allreduce_time,
    alltoall_time,
    hierarchical_allreduce_time,
)
from repro.models import resnet_proxy
from repro.optim import Kfac, Sgd, Shampoo
from repro.train import ClassificationTask, train_single
from repro.util import load_checkpoint, save_checkpoint
from tests.conftest import assert_gradcheck


class TestNewCollectives:
    def test_alltoall_scales_with_pairs(self):
        t8 = alltoall_time(SLINGSHOT10, 8, 1e6, 4)
        t16 = alltoall_time(SLINGSHOT10, 16, 1e6, 4)
        assert t16 > t8 * 1.8

    def test_alltoall_single_rank_free(self):
        assert alltoall_time(SLINGSHOT10, 1, 1e6, 4) == 0.0

    def test_hierarchical_beats_flat_ring_at_scale(self):
        """Two-level allreduce exploits NVLink + undivided NICs."""
        flat = allreduce_time(SLINGSHOT10, 64, 1e9, 4)
        hier = hierarchical_allreduce_time(SLINGSHOT10, 64, 1e9, 4)
        assert hier < flat

    def test_hierarchical_intra_node_only(self):
        t = hierarchical_allreduce_time(SLINGSHOT10, 4, 1e8, 4)
        assert 0 < t < allreduce_time(SLINGSHOT10, 64, 1e8, 4)

    def test_hierarchical_zero_cases(self):
        assert hierarchical_allreduce_time(SLINGSHOT10, 1, 1e6, 4) == 0.0
        assert hierarchical_allreduce_time(SLINGSHOT10, 8, 0, 4) == 0.0


class TestDropoutGroupNorm:
    def test_dropout_eval_is_identity(self, rng):
        d = nn.Dropout(0.5)
        d.eval()
        x = rng.standard_normal((5, 6)).astype(np.float32)
        assert np.array_equal(d(x), x)

    def test_dropout_preserves_expectation(self, rng):
        d = nn.Dropout(0.3)
        x = np.ones((200, 200), dtype=np.float32)
        y = d(x)
        assert abs(float(y.mean()) - 1.0) < 0.02  # inverted scaling

    def test_dropout_backward_uses_same_mask(self, rng):
        d = nn.Dropout(0.5)
        x = rng.standard_normal((10, 10)).astype(np.float32)
        y = d(x)
        g = d.backward(np.ones_like(x))
        assert np.array_equal(g == 0, y == 0)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_groupnorm_normalises_groups(self, rng):
        gn = nn.GroupNorm(2, 8)
        x = rng.standard_normal((4, 8, 5, 5)).astype(np.float32) * 3 + 2
        y = gn(x)
        grp = y.reshape(4, 2, -1)
        assert np.allclose(grp.mean(axis=2), 0.0, atol=1e-4)
        assert np.allclose(grp.std(axis=2), 1.0, atol=1e-2)

    def test_groupnorm_gradcheck(self, rng):
        x = rng.standard_normal((4, 4, 4, 4))
        t = rng.integers(0, 3, 4)
        model = nn.Sequential(
            nn.Conv2d(4, 4, 3, padding=1, rng=1),
            nn.GroupNorm(2, 4),
            nn.GlobalAvgPool2d(),
            nn.Linear(4, 3, rng=2),
        )
        assert_gradcheck(model, x, lambda y: nn.softmax_cross_entropy(y, t), tol=1e-2)

    def test_groupnorm_divisibility(self):
        with pytest.raises(ValueError):
            nn.GroupNorm(3, 8)


class TestShampoo:
    def test_converges_on_classification(self, rng):
        n, d, c = 300, 12, 4
        W = rng.standard_normal((c, d))
        X = rng.standard_normal((n, d)).astype(np.float32)
        y = (X @ W.T).argmax(1)
        model = nn.Sequential(nn.Linear(d, 16, rng=1), nn.Tanh(), nn.Linear(16, c, rng=2))
        opt = Shampoo(model.parameters(), lr=0.05)
        losses = []
        for _ in range(60):
            idx = rng.integers(0, n, 64)
            out = model(X[idx])
            loss, dl = nn.softmax_cross_entropy(out, y[idx])
            opt.zero_grad()
            model.backward(dl)
            opt.step()
            losses.append(loss)
        assert np.mean(losses[-10:]) < np.mean(losses[:5]) * 0.5

    def test_beats_plain_sgd_on_ill_conditioned_problem(self, rng):
        # Anisotropic quadratic (condition number ~1e4): full-matrix
        # preconditioning converges faster than SGD at a matched LR.
        d = 20
        scales = np.logspace(-2, 0, d)
        X = (rng.standard_normal((400, d)) * scales).astype(np.float32)
        w_true = rng.standard_normal(d).astype(np.float32)
        y = (X @ w_true)[:, None]

        def train(opt_factory):
            model = nn.Sequential(nn.Linear(d, 1, bias=False, rng=1))
            opt = opt_factory(model)
            for _ in range(120):
                out = model(X)
                loss, dl = nn.mse_loss(out, y)
                opt.zero_grad()
                model.backward(dl)
                opt.step()
            return loss

        shampoo_loss = train(lambda m: Shampoo(m.parameters(), lr=0.05, update_freq=2))
        sgd_loss = train(lambda m: Sgd(m.parameters(), lr=0.05, momentum=0.9))
        assert shampoo_loss < sgd_loss

    def test_vector_params_use_diagonal(self, rng):
        model = nn.Sequential(nn.Linear(4, 3, rng=1))  # has a bias vector
        opt = Shampoo(model.parameters(), lr=0.1)
        assert "diag" in opt._state[1]
        assert "L" in opt._state[0]

    def test_invalid_freq(self):
        with pytest.raises(ValueError):
            Shampoo([], update_freq=0)


class TestCheckpoint:
    def test_roundtrip_parameters(self, tmp_path, rng):
        model = resnet_proxy(n_classes=4, channels=8, rng=1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)
        reference = [p.data.copy() for p in model.parameters()]
        for p in model.parameters():
            p.data += 1.0
        load_checkpoint(path, model)
        for p, ref in zip(model.parameters(), reference):
            assert np.array_equal(p.data, ref)

    def test_kfac_factors_restored(self, tmp_path):
        data = make_image_data(100, n_classes=3, size=8, seed=0)
        task = ClassificationTask(data)
        model = resnet_proxy(n_classes=3, channels=8, rng=1)
        kfac = Kfac(model, lr=0.05, inv_update_freq=2)
        train_single(model, task, kfac, iterations=4, batch_size=16)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, kfac)
        model2 = resnet_proxy(n_classes=3, channels=8, rng=99)
        kfac2 = Kfac(model2, lr=0.05)
        load_checkpoint(path, model2, kfac2)
        assert kfac2.state[0].n_updates == kfac.state[0].n_updates
        assert np.allclose(kfac2.state[0].A, kfac.state[0].A)
        assert kfac2.state[0].ready  # eigendecomposition recomputed

    def test_shape_mismatch_raises(self, tmp_path):
        model = resnet_proxy(n_classes=4, channels=8, rng=1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)
        other = resnet_proxy(n_classes=5, channels=8, rng=1)
        with pytest.raises(ValueError):
            load_checkpoint(path, other)

    def test_missing_param_raises(self, tmp_path):
        import numpy as np2

        path = tmp_path / "ckpt.npz"
        np2.savez(path, **{"param/nothing": np2.zeros(1)})
        with pytest.raises(KeyError):
            load_checkpoint(path, resnet_proxy(rng=1))


class TestCli:
    def _run(self, argv):
        buf = io.StringIO()
        with redirect_stdout(buf):
            code = cli_main(argv)
        return code, buf.getvalue()

    def test_info(self):
        code, out = self._run(["info"])
        assert code == 0
        assert "encoders" in out

    def test_compress_synthetic(self):
        code, out = self._run(["compress", "--size", "50000", "--compressor", "compso"])
        assert code == 0
        assert "ratio" in out

    def test_compress_npy_file(self, tmp_path, rng):
        f = tmp_path / "g.npy"
        np.save(f, rng.standard_normal(10_000).astype(np.float32))
        code, out = self._run(["compress", "--input", str(f), "--compressor", "qsgd8"])
        assert code == 0
        assert "qsgd" in out

    def test_unknown_compressor_exits(self):
        with pytest.raises(SystemExit):
            self._run(["compress", "--compressor", "nope"])

    def test_experiments_list(self):
        code, out = self._run(["experiments"])
        assert code == 0
        assert "Fig. 9" in out

    def test_demo_train(self):
        code, out = self._run(["demo-train", "--ranks", "2", "--iterations", "6"])
        assert code == 0
        assert "compression ratio" in out
