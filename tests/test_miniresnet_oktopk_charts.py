"""Mini-ResNet model, Ok-topk sparsifier, and ASCII chart helpers."""

import numpy as np
import pytest

from repro import nn
from repro.compression import OkTopkCompressor
from repro.core import AdaptiveCompso, StepLrSchedule
from repro.data import make_image_data
from repro.models import mini_resnet
from repro.optim import Sgd
from repro.train import ClassificationTask, train_single
from repro.util import bar_chart, stacked_bars
from tests.conftest import assert_gradcheck


class TestMiniResNet:
    def test_forward_shapes(self, rng):
        m = mini_resnet(7, "small", rng=1)
        y = m(rng.standard_normal((3, 3, 8, 8)).astype(np.float32))
        assert y.shape == (3, 7)

    def test_deep_configuration_downsamples(self, rng):
        m = mini_resnet(4, "deep", rng=1)
        y = m(rng.standard_normal((2, 3, 16, 16)).astype(np.float32))
        assert y.shape == (2, 4)
        # Three stages double channels twice: head input = 4x stem.
        assert m.head.in_features == 64

    def test_projection_shortcuts_created(self):
        m = mini_resnet(4, "deep", rng=1)
        projections = [b for b in m.blocks if b.shortcut is not None]
        assert len(projections) == 2  # first block of stages 2 and 3

    def test_gradcheck(self, rng):
        m = mini_resnet(3, "small", rng=1)
        x = rng.standard_normal((2, 3, 8, 8))
        t = rng.integers(0, 3, 2)
        assert_gradcheck(m, x, lambda y: nn.softmax_cross_entropy(y, t), tol=2e-2, n_checks=3)

    def test_layer_size_diversity(self):
        """The property that motivates COMPSO's layer aggregation."""
        m = mini_resnet(10, "deep", rng=1)
        sizes = [l.weight.size for l in m.kfac_layers()]
        assert max(sizes) / min(sizes) > 10

    def test_trains(self):
        data = make_image_data(300, n_classes=4, size=8, noise=0.4, seed=0)
        task = ClassificationTask(data)
        m = mini_resnet(4, "small", rng=1)
        opt = Sgd(m.parameters(), lr=0.05, momentum=0.9)
        h = train_single(m, task, opt, iterations=30, batch_size=32, eval_every=30)
        assert h.final_metric() > 55.0

    def test_unknown_depth(self):
        with pytest.raises(ValueError):
            mini_resnet(4, "enormous")


class TestOkTopk:
    def test_density_approximately_hit(self, rng):
        c = OkTopkCompressor(0.1, seed=0)
        x = rng.standard_normal(50_000).astype(np.float32)
        ct = c.compress(x)
        assert 0.05 < ct.meta["k"] / x.size < 0.2

    def test_threshold_reused_between_reestimates(self, rng):
        c = OkTopkCompressor(0.1, reestimate_every=10, seed=0)
        x = rng.standard_normal(10_000).astype(np.float32)
        c.compress(x)
        t0 = c._threshold
        c.compress(x * 1.01)
        assert c._threshold == t0  # no re-estimate yet

    def test_threshold_reestimated_on_schedule(self, rng):
        c = OkTopkCompressor(0.1, reestimate_every=2, seed=0)
        a = rng.standard_normal(10_000).astype(np.float32)
        b = (rng.standard_normal(10_000) * 100).astype(np.float32)
        c.compress(a)
        t0 = c._threshold
        c.compress(b)  # call 2 -> re-estimate on the new scale
        c.compress(b)
        assert c._threshold != t0

    def test_drift_correction_caps_density(self, rng):
        c = OkTopkCompressor(0.05, reestimate_every=1000, seed=0)
        small = (rng.standard_normal(20_000) * 0.01).astype(np.float32)
        c.compress(small)
        # Now a tensor where nearly everything exceeds the stale threshold.
        big = (rng.standard_normal(20_000) * 100).astype(np.float32)
        ct = c.compress(big)
        assert ct.meta["k"] / big.size < 0.9

    def test_kept_values_exact(self, rng):
        c = OkTopkCompressor(0.2, seed=0)
        x = rng.standard_normal(5_000).astype(np.float32)
        out = c.roundtrip(x)
        kept = out != 0
        assert np.array_equal(out[kept], x[kept])

    def test_fixed_bound_contrast_with_compso(self, kfac_like_gradient):
        """Section 4.3: Ok-topk keeps a fixed selection rule across
        iterations; COMPSO's adaptive schedule changes its ratio when the
        LR drops, Ok-topk's stays flat."""
        ok = OkTopkCompressor(0.1, seed=0)
        ac = AdaptiveCompso(StepLrSchedule(5))
        x = kfac_like_gradient
        ok_ratios, ac_ratios = [], []
        for t in range(10):
            ok_ratios.append(x.nbytes / ok.compress(x).nbytes)
            ac_ratios.append(x.nbytes / ac.compress(x).nbytes)
            ac.step()
        assert np.std(ok_ratios) < 0.05 * np.mean(ok_ratios)
        assert max(ac_ratios) > 1.5 * min(ac_ratios)

    def test_reset(self, rng):
        c = OkTopkCompressor(0.1, seed=0)
        c.compress(rng.standard_normal(1000).astype(np.float32))
        c.reset()
        assert c._threshold is None

    def test_validation(self):
        with pytest.raises(ValueError):
            OkTopkCompressor(0.0)
        with pytest.raises(ValueError):
            OkTopkCompressor(0.1, reestimate_every=0)


class TestCharts:
    def test_bar_chart_scales_to_max(self):
        out = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_title_and_unit(self):
        out = bar_chart(["x"], [1.0], title="T", unit="GB/s")
        assert out.startswith("T\n")
        assert "GB/s" in out

    def test_bar_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_stacked_bars_rows_full_width(self):
        out = stacked_bars(["r1"], {"x": [30.0], "y": [70.0]}, width=40)
        bar_line = out.splitlines()[-1]
        inner = bar_line.split("|")[1]
        assert len(inner) == 40
        assert inner.count("#") == 12  # 30% of 40

    def test_stacked_bars_zero_row(self):
        out = stacked_bars(["r"], {"x": [0.0]}, width=10)
        assert "|          |" in out

    def test_stacked_bars_series_mismatch(self):
        with pytest.raises(ValueError):
            stacked_bars(["a", "b"], {"x": [1.0]})
