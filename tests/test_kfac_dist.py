"""Distributed K-FAC: work assignment, trainer, timing model."""

import numpy as np
import pytest

from repro.core import AdaptiveCompso, CompsoCompressor, StepLrSchedule
from repro.data import make_image_data
from repro.distributed import PLATFORM1, PLATFORM2, SimCluster
from repro.gpusim import PIPELINES
from repro.kfac_dist import (
    MODEL_TIMING_PROFILES,
    CompressionSpec,
    DistributedKfacTrainer,
    KfacIterationModel,
    assign_layers,
    eig_cost,
)
from repro.models import resnet_proxy
from repro.models.catalogs import MODEL_CATALOGS, resnet50_catalog
from repro.train import ClassificationTask


class TestAssignment:
    def test_all_layers_assigned(self):
        owners = assign_layers([1.0] * 10, 4)
        assert len(owners) == 10
        assert set(owners) <= set(range(4))

    def test_balanced_loads(self, rng):
        costs = list(rng.uniform(1, 100, 64))
        owners = assign_layers(costs, 8)
        loads = np.zeros(8)
        for c, o in zip(costs, owners):
            loads[o] += c
        assert loads.max() / loads.min() < 1.5

    def test_more_ranks_than_layers(self):
        owners = assign_layers([5.0, 3.0], 8)
        assert owners[0] != owners[1]

    def test_eig_cost_cubic(self):
        assert eig_cost(200, 100) == pytest.approx(200**3 + 100**3)

    def test_invalid_world(self):
        with pytest.raises(ValueError):
            assign_layers([1.0], 0)


@pytest.fixture(scope="module")
def trained_pair():
    """Train the same proxy with and without COMPSO on a 4-rank cluster."""

    def run(compressor):
        data = make_image_data(400, n_classes=5, size=8, noise=0.4, seed=0)
        task = ClassificationTask(data)
        cluster = SimCluster(1, 4, seed=0)
        model = resnet_proxy(n_classes=5, channels=8, rng=3)
        tr = DistributedKfacTrainer(
            model, task, cluster, lr=0.05, inv_update_freq=5, compressor=compressor
        )
        h = tr.train(iterations=20, batch_size=64, eval_every=20)
        return tr, h

    base_tr, base_h = run(None)
    comp_tr, comp_h = run(CompsoCompressor(4e-3, 4e-3))
    return base_tr, base_h, comp_tr, comp_h


class TestDistributedTrainer:
    def test_baseline_converges(self, trained_pair):
        _, base_h, _, _ = trained_pair
        assert base_h.losses[-1] < base_h.losses[0] * 0.5
        assert base_h.final_metric() > 60.0

    def test_compression_preserves_convergence(self, trained_pair):
        """The paper's core claim: COMPSO does not hurt K-FAC accuracy."""
        _, base_h, _, comp_h = trained_pair
        assert comp_h.final_metric() >= base_h.final_metric() - 5.0

    def test_compression_ratio_recorded(self, trained_pair):
        _, _, comp_tr, _ = trained_pair
        assert comp_tr.mean_compression_ratio() > 1.5
        assert len(comp_tr.bytes_on_wire) == 20

    def test_wire_bytes_shrink_with_compression(self, trained_pair):
        base_tr, _, comp_tr, _ = trained_pair
        assert sum(comp_tr.bytes_on_wire) < sum(base_tr.bytes_on_wire)
        assert comp_tr.bytes_original == base_tr.bytes_original

    def test_clock_categories_populated(self, trained_pair):
        base_tr = trained_pair[0]
        bd = base_tr.cluster.breakdown()
        assert bd["kfac_allgather"] > 0
        assert bd["kfac_allreduce"] > 0
        assert bd["grad_allreduce"] > 0

    def test_adaptive_compressor_steps(self):
        data = make_image_data(200, n_classes=4, size=8, noise=0.4, seed=1)
        task = ClassificationTask(data)
        cluster = SimCluster(1, 2, seed=0)
        model = resnet_proxy(n_classes=4, channels=8, rng=3)
        ac = AdaptiveCompso(StepLrSchedule(3))
        tr = DistributedKfacTrainer(model, task, cluster, lr=0.05, compressor=ac)
        tr.train(iterations=6, batch_size=32)
        assert ac.iteration == 6
        assert not ac.bounds.filtering  # switched to conservative

    def test_owners_cover_all_layers(self, trained_pair):
        tr = trained_pair[0]
        assert len(tr.owners) == len(tr.kfac.layers)


class TestTimingModel:
    @pytest.mark.parametrize(
        "name,targets",
        [
            ("resnet50", (35.1, 10.3, 13.7, 27.3, 13.6)),
            ("maskrcnn", (35.5, 10.1, 13.5, 26.8, 14.1)),
            ("bert-large", (36.0, 12.6, 12.5, 25.4, 13.5)),
            ("gpt-neo-125m", (41.6, 11.4, 12.0, 22.9, 12.1)),
        ],
    )
    def test_fig1_fractions_reproduced(self, name, targets):
        """Calibrated model must match Fig. 1's 16-node columns closely."""
        m = KfacIterationModel(
            MODEL_CATALOGS[name](), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES[name]
        )
        fr = m.breakdown().fractions()
        got = (
            fr["kfac_allgather"],
            fr["kfac_allreduce"],
            fr["kfac_compute"],
            fr["fwd_bwd"],
            fr["others"],
        )
        for g, t in zip(got, targets):
            assert abs(g * 100 - t) < 5.0, (name, got)

    def test_comm_fraction_grows_with_nodes(self):
        """Fig. 1: communication share increases with GPU count."""
        cat = MODEL_CATALOGS["bert-large"]()
        prof = MODEL_TIMING_PROFILES["bert-large"]
        fr = [
            KfacIterationModel(cat, PLATFORM1, n, profile=prof).breakdown().fractions()[
                "kfac_allgather"
            ]
            for n in (4, 8, 16)
        ]
        assert fr[0] < fr[1] < fr[2]

    def test_comm_exceeds_30_percent(self):
        """The paper's motivating observation."""
        for name in MODEL_CATALOGS:
            m = KfacIterationModel(
                MODEL_CATALOGS[name](), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES[name]
            )
            fr = m.breakdown().fractions()
            comm = fr["kfac_allgather"] + fr["kfac_allreduce"]
            assert comm > 0.30, name

    def test_compression_shrinks_allgather(self):
        m = KfacIterationModel(
            resnet50_catalog(), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES["resnet50"]
        )
        spec = CompressionSpec.compso(ratio=20.0)
        assert m.breakdown(spec).kfac_allgather < m.breakdown().kfac_allgather / 5

    def test_end_to_end_speedup_in_paper_range(self):
        """Fig. 9: up to ~1.9x, average ~1.3x."""
        speedups = []
        for name in MODEL_CATALOGS:
            for plat in (PLATFORM1, PLATFORM2):
                m = KfacIterationModel(
                    MODEL_CATALOGS[name](), plat, 16, profile=MODEL_TIMING_PROFILES[name]
                )
                speedups.append(m.end_to_end_speedup(CompressionSpec.compso(22.0)))
        assert 1.0 < min(speedups)
        assert max(speedups) < 2.0
        assert 1.2 < float(np.mean(speedups)) < 1.6

    def test_slower_platform_bigger_speedup(self):
        """Fig. 7/9: Slingshot-10 benefits more than Slingshot-11."""
        cat = resnet50_catalog()
        prof = MODEL_TIMING_PROFILES["resnet50"]
        spec = CompressionSpec.compso(22.0)
        s1 = KfacIterationModel(cat, PLATFORM1, 16, profile=prof).comm_speedup(spec)
        s2 = KfacIterationModel(cat, PLATFORM2, 16, profile=prof).comm_speedup(spec)
        assert s1 > s2

    def test_aggregation_improves_comm_speedup(self):
        """The layer-aggregation mechanism's raison d'etre."""
        m = KfacIterationModel(
            resnet50_catalog(), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES["resnet50"]
        )
        s1 = m.comm_speedup(CompressionSpec.compso(22.0, aggregation=1))
        s4 = m.comm_speedup(CompressionSpec.compso(22.0, aggregation=4))
        assert s4 > s1

    def test_comm_speedup_in_paper_range(self):
        """Fig. 7: up to 14.5x on Platform 1, 11.2x on Platform 2."""
        spec = CompressionSpec.compso(22.0)
        for name in MODEL_CATALOGS:
            m = KfacIterationModel(
                MODEL_CATALOGS[name](), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES[name]
            )
            s = m.comm_speedup(spec)
            assert 6.0 < s < 22.0, (name, s)

    def test_overhead_reduces_speedup(self):
        m = KfacIterationModel(
            resnet50_catalog(), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES["resnet50"]
        )
        spec = CompressionSpec.compso(22.0)
        assert m.comm_speedup(spec, include_overhead=True) < m.comm_speedup(spec)

    def test_pytorch_pipeline_worse_end_to_end(self):
        """GPU optimisation matters: a slow compressor erodes the gain."""
        m = KfacIterationModel(
            resnet50_catalog(), PLATFORM1, 16, profile=MODEL_TIMING_PROFILES["resnet50"]
        )
        fast = CompressionSpec(20.0, PIPELINES["compso-cuda"], 4)
        slow = CompressionSpec(20.0, PIPELINES["cocktail-pytorch"], 4)
        assert m.end_to_end_speedup(fast) > m.end_to_end_speedup(slow)
