"""repro.guard: sentinels, divergence detection, policy engine, watchdog."""

import numpy as np
import pytest

from repro import telemetry
from repro.core import AdaptiveCompso, CompsoCompressor, StepLrSchedule
from repro.core.adaptive import Bounds
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.faults.plan import FaultPlan
from repro.guard import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    CollectiveWatchdog,
    DivergenceDetector,
    Guard,
    GuardConfig,
    PolicyEngine,
    WatchdogTimeoutError,
    contract_error,
    factor_health,
    scan_tensor,
)
from repro.guard.policy import GuardContext
from repro.guard.sentinels import safe_eigen
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.optim import FactorNumericsError, Sgd
from repro.optim.kfac import Kfac
from repro.runtime import StreamRuntime
from repro.telemetry.export import chrome_trace
from repro.train import ClassificationTask, DistributedSgdTrainer


def _params(model) -> np.ndarray:
    return np.concatenate([p.data.ravel() for p in model.parameters()])


def _kfac_trainer(seed=0, *, guard=None, plan=None, reliable_channel=True, **kw):
    data = make_image_data(200, n_classes=4, size=8, noise=1.6, seed=seed)
    task = ClassificationTask(data)
    cluster = SimCluster(2, 2, seed=seed, fault_plan=plan)
    model = resnet_proxy(n_classes=4, channels=8, rng=seed + 3)
    compressor = AdaptiveCompso(StepLrSchedule(4), seed=seed)
    return DistributedKfacTrainer(
        model,
        task,
        cluster,
        lr=0.05,
        inv_update_freq=5,
        compressor=compressor,
        guard=guard,
        reliable_channel=reliable_channel,
        **kw,
    )


# -- sentinels ----------------------------------------------------------------


class TestScanTensor:
    def test_clean_tensor_returned_untouched(self):
        x = np.arange(8, dtype=np.float32)
        result = scan_tensor(x)
        assert result.clean
        assert result.values is x  # no copy on the healthy path

    def test_nonfinite_scrubbed(self):
        x = np.array([1.0, np.nan, -np.inf, 2.0], dtype=np.float32)
        result = scan_tensor(x)
        assert not result.clean
        assert result.n_nonfinite == 2
        assert np.array_equal(result.values, [1.0, 0.0, 0.0, 2.0])
        assert np.isnan(x[1])  # original untouched

    def test_oversized_scrubbed(self):
        """A finite-but-absurd value (exponent bit flip) is caught too."""
        x = np.array([1.0, 1e30, -2.0], dtype=np.float32)
        result = scan_tensor(x, abs_limit=1e6)
        assert result.n_oversized == 1 and result.n_nonfinite == 0
        assert np.array_equal(result.values, [1.0, 0.0, -2.0])


class TestContract:
    def test_contract_held_returns_none(self):
        comp = CompsoCompressor(4e-3, 4e-3, seed=0)
        x = np.random.default_rng(0).standard_normal(4096).astype(np.float32)
        decoded = comp.decompress(comp.compress(x))
        assert contract_error(x, decoded, comp) is None

    def test_violation_reports_ratio(self):
        comp = CompsoCompressor(1e-4, 1e-4, seed=0)
        x = np.ones(64, dtype=np.float32)
        garbage = x + 0.5  # way past (eb_f+eb_q)*max|x|
        ratio = contract_error(x, garbage, comp)
        assert ratio is not None and ratio > 100

    def test_unknown_compressor_is_unknowable(self):
        assert contract_error(np.ones(4), np.ones(4), object()) is None


class TestFactorHealth:
    def test_healthy_factor_passes(self):
        a = np.eye(4) + 0.01
        assert factor_health(a) is None

    def test_nonfinite_and_asymmetry_detected(self):
        bad = np.eye(4)
        bad[0, 0] = np.nan
        assert "non-finite" in factor_health(bad)
        asym = np.eye(4)
        asym[0, 1] = 5.0
        assert "asymmetry" in factor_health(asym)


class TestSafeEigen:
    def _kfac(self, seed=0):
        tr = _kfac_trainer(seed)
        tr.train(iterations=1, batch_size=16, seed=seed)
        return tr.kfac

    def test_healthy_path_is_single_eigen_call(self):
        kfac = self._kfac()
        a_before = kfac.state[0].A.copy()
        assert safe_eigen(kfac, 0) == 0
        assert np.array_equal(kfac.state[0].A, a_before)  # no repair touched it

    def test_poisoned_factor_recovers_with_retries(self):
        kfac = self._kfac()
        kfac.state[0].A[0, 0] = np.nan
        attempts = safe_eigen(kfac, 0)
        assert attempts >= 1
        assert np.isfinite(kfac.state[0].vA).all()

    def test_factor_numerics_error_names_layer(self):
        """Satellite: compute_eigen raises a typed error on a poisoned factor."""
        kfac = self._kfac()
        kfac.state[2].A[:] = np.nan
        with pytest.raises(FactorNumericsError) as ei:
            kfac.compute_eigen(2)
        assert ei.value.layer == 2
        assert "layer 2" in str(ei.value)


# -- divergence detector ------------------------------------------------------


class TestDivergenceDetector:
    def test_nan_loss_is_immediate(self):
        det = DivergenceDetector()
        report = det.observe(0, float("nan"), 1.0)
        assert report.verdicts == ["loss_nan"]

    def test_loss_spike_after_warmup(self):
        det = DivergenceDetector(warmup=3, spike_factor=3.0)
        for t in range(4):
            assert det.observe(t, 1.0, 1.0).ok
        report = det.observe(4, 10.0, 1.0)
        assert "loss_spike" in report.verdicts

    def test_no_spike_during_warmup(self):
        det = DivergenceDetector(warmup=3)
        assert det.observe(0, 1.0, 1.0).ok
        assert det.observe(1, 100.0, 1.0).ok  # not enough baseline yet

    def test_grad_spike(self):
        det = DivergenceDetector(warmup=2, grad_spike_factor=10.0)
        for t in range(3):
            det.observe(t, 1.0, 1.0)
        assert "grad_spike" in det.observe(3, 1.0, 50.0).verdicts

    def test_spikes_do_not_ratchet_baseline(self):
        """A divergence burst must not normalise itself into the median."""
        det = DivergenceDetector(warmup=3, spike_factor=3.0)
        for t in range(4):
            det.observe(t, 1.0, 1.0)
        for t in range(4, 8):
            assert "loss_spike" in det.observe(t, 10.0, 1.0).verdicts

    def test_plateau(self):
        det = DivergenceDetector(plateau_window=3, plateau_tol=1e-3)
        for t in range(10):
            report = det.observe(t, 1.0, 1.0)
        assert "plateau" in report.verdicts


# -- circuit breaker ----------------------------------------------------------


class TestCircuitBreaker:
    def test_full_cycle_closed_open_halfopen_closed(self):
        b = CircuitBreaker(cooldown=2, reclose_after=2)
        assert b.state == BREAKER_CLOSED and b.allows_compression
        assert b.trip(3)
        assert b.state == BREAKER_OPEN and not b.allows_compression
        b.end_iteration(4, clean=True)
        assert b.state == BREAKER_OPEN  # cooldown not elapsed
        b.end_iteration(5, clean=True)
        assert b.state == BREAKER_HALF_OPEN and b.allows_compression
        b.end_iteration(6, clean=True)
        assert b.state == BREAKER_HALF_OPEN  # one good, needs two
        b.end_iteration(7, clean=True)
        assert b.state == BREAKER_CLOSED
        assert b.transitions == [
            (3, "closed", "open"),
            (5, "open", "half_open"),
            (7, "half_open", "closed"),
        ]

    def test_dirty_halfopen_reopens(self):
        b = CircuitBreaker(cooldown=1, reclose_after=1)
        b.trip(0)
        b.end_iteration(1, clean=True)
        assert b.state == BREAKER_HALF_OPEN
        b.end_iteration(2, clean=False)
        assert b.state == BREAKER_OPEN
        assert b.trips == 2

    def test_trip_while_open_rearms_cooldown(self):
        b = CircuitBreaker(cooldown=2, reclose_after=1)
        assert b.trip(0)
        b.end_iteration(1, clean=True)
        assert not b.trip(2)  # already open: not a new trip
        b.end_iteration(3, clean=True)
        assert b.state == BREAKER_OPEN  # cooldown was re-armed
        assert b.trips == 1


# -- policy engine ------------------------------------------------------------


class _StubTrainer:
    def __init__(self):
        self._last_checkpoint = "ckpt.npz"
        self.restored = []

    def restore_state(self, path):
        self.restored.append(path)


class TestPolicyEngine:
    def test_escalates_down_the_rule_list(self):
        """Recurring verdicts escalate: tighten, then trip the breaker."""
        engine = PolicyEngine(CircuitBreaker(), action_cooldown=5)
        comp = AdaptiveCompso(StepLrSchedule(4), seed=0)
        ctx = GuardContext(compressor=comp)
        first = engine.handle("contract_violation", {}, ctx, 10)
        assert first.action == "tighten_bounds"
        second = engine.handle("contract_violation", {}, ctx, 11)
        assert second.action == "trip_breaker"
        assert engine.breaker.state == BREAKER_OPEN

    def test_unavailable_handles_are_skipped(self):
        engine = PolicyEngine(CircuitBreaker())
        action = engine.handle("contract_violation", {}, GuardContext(), 0)
        assert action is None  # no compressor: nothing applicable
        assert engine.timeline == []

    def test_rollback_restores_latest_checkpoint(self):
        engine = PolicyEngine(CircuitBreaker())
        trainer = _StubTrainer()
        action = engine.handle("loss_nan", {}, GuardContext(trainer=trainer), 7)
        assert action.action == "rollback"
        assert trainer.restored == ["ckpt.npz"]

    def test_damping_escalation_is_capped(self):
        engine = PolicyEngine(
            CircuitBreaker(), damping_factor=10.0, damping_cap_factor=100.0,
            action_cooldown=1,
        )
        kfac = type("K", (), {"damping": 1e-2})()
        ctx = GuardContext(kfac=kfac)
        for it in range(5):
            engine.handle("eigh_retry", {}, ctx, it)
        assert kfac.damping == pytest.approx(1.0)  # 1e-2 * cap 100


# -- watchdog -----------------------------------------------------------------


class _StubFaults:
    def __init__(self, stalls):
        self.stalls = list(stalls)

    def collective_extras(self, op, seconds, ranks):
        stall = self.stalls.pop(0) if self.stalls else 0.0
        return {ranks[0]: stall} if stall else {}


class _StubRank:
    def __init__(self, rank):
        self.rank = rank


class _StubCluster:
    def __init__(self, stalls):
        self.faults = _StubFaults(stalls)
        self.ranks = [_StubRank(0), _StubRank(1)]
        self.time = 0.0
        self.backoffs = []

    def advance_all(self, seconds, category):
        self.backoffs.append((seconds, category))
        self.time += seconds


class _StubRuntime:
    def __init__(self, stalls):
        self.cluster = _StubCluster(stalls)

    def pending_report(self):
        return "  rank 0: posted=[-] awaiting-wait=[#1 allreduce (grad, 10.0us)]"


class _StubHandle:
    op = "allreduce"
    seconds = 1e-5
    seq = 1

    def describe(self):
        return "#1 allreduce (grad, 10.0us)"


class TestWatchdog:
    def test_within_deadline_passes_through(self):
        wd = CollectiveWatchdog(deadline_seconds=1.0)
        rt = _StubRuntime([])
        extras = {0: 1e-6}
        assert wd.review(rt, _StubHandle(), extras) is extras
        assert wd.retries == 0

    def test_retry_clears_transient_stall(self):
        """First draw stalls past the deadline; the re-issue is clean."""
        wd = CollectiveWatchdog(deadline_seconds=1e-4, max_retries=2)
        rt = _StubRuntime(stalls=[0.0])  # the redraw after backoff: clean
        out = wd.review(rt, _StubHandle(), {0: 1.0})
        assert out == {}
        assert wd.retries == 1 and wd.timeouts == 0
        assert rt.cluster.backoffs[0][1] == "watchdog_backoff"

    def test_exhausted_retries_raise_with_report(self):
        wd = CollectiveWatchdog(deadline_seconds=1e-4, max_retries=2)
        rt = _StubRuntime(stalls=[1.0, 1.0])  # every redraw stalls again
        with pytest.raises(WatchdogTimeoutError) as ei:
            wd.review(rt, _StubHandle(), {0: 1.0})
        msg = str(ei.value)
        assert "deadline" in msg and "rank 0" in msg and "awaiting-wait" in msg
        assert ei.value.report  # the per-rank dump rides on the exception
        assert wd.timeouts == 1

    def test_streamruntime_integration_deterministic_straggler(self):
        """A deterministic straggler re-stalls every retry -> timeout."""
        plan = FaultPlan(seed=0)
        plan.add_straggler(1, start=0, slowdown=50.0)
        plan.validate(4)
        cluster = SimCluster(1, 4, seed=0, fault_plan=plan)
        cluster.begin_iteration(0)
        rt = StreamRuntime(cluster, overlap=True)
        rt.watchdog = CollectiveWatchdog(deadline_seconds=1e-9, max_retries=1)
        rng = np.random.default_rng(0)
        h = rt.iallreduce(
            [rng.standard_normal(1 << 12).astype(np.float32) for _ in range(4)],
            average=True,
        )
        with pytest.raises(WatchdogTimeoutError) as ei:
            h.wait()
        assert "rank" in str(ei.value)

    def test_guard_config_installs_watchdog_on_runtime(self):
        cluster = SimCluster(1, 2, seed=0)
        rt = StreamRuntime(cluster, overlap=True)
        guard = GuardConfig(watchdog_deadline=1e-3).build()
        guard.attach_runtime(rt)
        assert isinstance(rt.watchdog, CollectiveWatchdog)
        assert rt.watchdog.deadline_seconds == 1e-3


# -- guard facade + trainer integration ---------------------------------------


class TestGuardedTraining:
    def test_guarded_healthy_run_is_bit_identical(self):
        base = _kfac_trainer(seed=0)
        base.train(iterations=6, batch_size=32, seed=0)
        guarded = _kfac_trainer(seed=0, guard=GuardConfig())
        guarded.train(iterations=6, batch_size=32, seed=0)
        assert np.array_equal(_params(base.model), _params(guarded.model))
        assert guarded.guard.report()["verdicts"] == {}

    def test_corruption_trips_breaker_and_run_survives(self, tmp_path):
        plan = FaultPlan(seed=0)
        plan.add_corruption(0.7, start=2, stop=6, n_bits=4, ops=("broadcast",))
        plan.validate(4)
        guard = GuardConfig(breaker_cooldown=2, breaker_reclose_after=1)
        tr = _kfac_trainer(
            seed=0,
            guard=guard,
            plan=plan,
            reliable_channel=False,
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        tr.train(iterations=10, batch_size=32, seed=0)
        report = tr.guard.report()
        assert np.isfinite(tr.history.losses[-1])
        assert np.isfinite(_params(tr.model)).all()
        assert report["breaker"]["trips"] >= 1
        assert report["verdicts"]  # at least one sentinel fired
        assert any(
            frm == "half_open" and to == "closed"
            for _, frm, to in report["breaker"]["transitions"]
        ), "breaker must re-close after the corruption window"

    def test_guard_events_reconcile_with_chrome_trace(self, tmp_path):
        plan = FaultPlan(seed=0)
        plan.add_corruption(0.7, start=2, stop=6, n_bits=4, ops=("broadcast",))
        plan.validate(4)
        tr = _kfac_trainer(
            seed=0, guard=GuardConfig(), plan=plan, reliable_channel=False
        )
        with telemetry.session() as sess:
            tr.train(iterations=8, batch_size=32, seed=0)
            remediations = [
                s for s in sess.tracer.spans() if s.name.startswith("remediate:")
            ]
            verdict_spans = [
                s for s in sess.tracer.spans() if s.name.startswith("verdict:")
            ]
            snapshot = sess.metrics.snapshot()
            doc = chrome_trace(sess.tracer)
        assert len(remediations) == len(tr.guard.timeline)
        total_verdicts = sum(tr.guard.verdict_counts.values())
        assert len(verdict_spans) == total_verdicts
        counted = sum(
            m["value"]
            for m in snapshot
            if m["type"] == "counter" and m["name"] == "guard.remediations"
        )
        assert counted == len(tr.guard.timeline)
        trace_names = {ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "X"}
        for action in tr.guard.timeline:
            assert f"remediate:{action.action}" in trace_names

    def test_sgd_trainer_scrubs_corrupt_gradient(self):
        plan = FaultPlan(seed=0)
        plan.add_corruption(1.0, start=1, stop=3, n_bits=4, ops=("allgather",))
        plan.validate(2)
        data = make_image_data(120, n_classes=3, size=8, noise=1.0, seed=0)
        task = ClassificationTask(data)
        cluster = SimCluster(1, 2, seed=0, fault_plan=plan)
        model = resnet_proxy(n_classes=3, channels=8, rng=1)
        tr = DistributedSgdTrainer(
            model, task, Sgd(model.parameters(), lr=0.05), cluster,
            guard=GuardConfig(),
        )
        tr.train(iterations=5, batch_size=16, seed=0)
        assert np.isfinite(tr.history.losses[-1])
        assert np.isfinite(_params(model)).all()

    def test_sgd_guarded_healthy_bit_identical(self):
        def run(guard):
            data = make_image_data(120, n_classes=3, size=8, noise=1.0, seed=0)
            task = ClassificationTask(data)
            cluster = SimCluster(1, 2, seed=0)
            model = resnet_proxy(n_classes=3, channels=8, rng=1)
            comp = CompsoCompressor(4e-3, 4e-3, seed=0)
            tr = DistributedSgdTrainer(
                model, task, Sgd(model.parameters(), lr=0.05), cluster,
                compressor=comp, guard=guard,
            )
            tr.train(iterations=5, batch_size=16, seed=0)
            return _params(model)

        assert np.array_equal(run(None), run(GuardConfig()))

    def test_rollback_on_nan_loss(self, tmp_path):
        guard = Guard(GuardConfig())
        trainer = _StubTrainer()
        guard.bind(trainer=trainer)
        guard.begin_step(5)
        guard.end_step(loss=float("nan"), grad_norm=1.0)
        assert trainer.restored == ["ckpt.npz"]
        assert guard.timeline[0].action == "rollback"
        assert guard.timeline[0].verdict == "loss_nan"


# -- satellites ---------------------------------------------------------------


class TestBoundsValidation:
    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError, match="eb_f"):
            Bounds(-1e-3, 1e-3)
        with pytest.raises(ValueError, match="eb_q"):
            Bounds(1e-3, -1e-3)

    def test_zero_filter_bound_still_valid(self):
        b = Bounds(0.0, 1e-3)
        assert b.eb_f == 0.0


class TestCheckpointSchema:
    def _save(self, tmp_path, **kw):
        model = resnet_proxy(n_classes=4, channels=8, rng=0)
        from repro.util.checkpoint import save_checkpoint

        save_checkpoint(tmp_path / "c", model, **kw)
        return model

    def test_world_size_round_trip(self, tmp_path):
        from repro.util.checkpoint import load_checkpoint

        model = self._save(tmp_path, world_size=4)
        load_checkpoint(tmp_path / "c", model, expect_world_size=4)  # accepts

    def test_world_size_mismatch_rejected(self, tmp_path):
        from repro.util.checkpoint import CheckpointError, load_checkpoint

        model = self._save(tmp_path, world_size=4)
        with pytest.raises(CheckpointError, match="world_size=4"):
            load_checkpoint(tmp_path / "c", model, expect_world_size=8)

    def test_legacy_archive_without_world_size_rejected_when_required(self, tmp_path):
        from repro.util.checkpoint import CheckpointError, load_checkpoint

        model = self._save(tmp_path)  # no world_size stamped
        with pytest.raises(CheckpointError, match="records no world size"):
            load_checkpoint(tmp_path / "c", model, expect_world_size=4)

    def test_newer_schema_version_rejected(self, tmp_path):
        from repro.util.checkpoint import CheckpointError, load_checkpoint

        model = self._save(tmp_path)
        arrays = dict(np.load(tmp_path / "c.npz"))
        arrays["meta/schema_version"] = np.array(99)
        np.savez_compressed(tmp_path / "future.npz", **arrays)
        with pytest.raises(CheckpointError, match="schema version 99"):
            load_checkpoint(tmp_path / "future.npz", model)

    def test_mutation_free_rejection(self, tmp_path):
        """A rejected restore must not have touched the model."""
        from repro.util.checkpoint import CheckpointError, load_checkpoint

        model = self._save(tmp_path, world_size=4)
        before = _params(model).copy()
        for p in model.parameters():
            p.data = p.data + 1.0
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "c", model, expect_world_size=2)
        assert np.array_equal(_params(model), before + 1.0)  # untouched by the failed load


class TestScenario:
    def test_guard_scenario_smoke(self):
        from repro.guard.scenario import run_guard_scenario

        result = run_guard_scenario(iterations=10, batch_size=16)
        assert result.guarded_completed
        assert np.isfinite(result.guarded_loss)
        assert result.timeline  # at least one remediation fired
        assert result.unguarded_raised or not np.isfinite(
            result.unguarded_loss
        ) or result.unguarded_loss > result.clean_loss
