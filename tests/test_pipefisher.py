"""PipeFisher pipeline-parallel model (paper section 6 comparison)."""

import pytest

from repro.distributed import PLATFORM1
from repro.kfac_dist import MODEL_TIMING_PROFILES, PipeFisherModel
from repro.models.catalogs import bert_large_catalog, resnet50_catalog


@pytest.fixture(scope="module")
def bert_pf():
    return PipeFisherModel(
        bert_large_catalog(),
        PLATFORM1,
        stages=4,
        microbatches=8,
        profile=MODEL_TIMING_PROFILES["bert-large"],
    )


class TestPipeFisherModel:
    def test_stages_cover_all_layers(self, bert_pf):
        n = sum(len(s) for s in bert_pf.stage_layers)
        assert n == len(bert_pf.catalog)
        assert all(len(s) > 0 for s in bert_pf.stage_layers)

    def test_stages_balanced_by_flops(self, bert_pf):
        loads = [sum(l.fwd_flops for l in s) for s in bert_pf.stage_layers]
        assert max(loads) / min(loads) < 1.6

    def test_bubble_fraction_matches_1f1b(self, bert_pf):
        bd = bert_pf.breakdown()
        s, m = 4, 8
        expected = (s - 1) / (m + s - 1)
        assert bd.bubble / (bd.stage_compute + bd.bubble) == pytest.approx(expected, rel=0.01)

    def test_more_microbatches_smaller_bubble(self):
        prof = MODEL_TIMING_PROFILES["bert-large"]
        few = PipeFisherModel(
            bert_large_catalog(), PLATFORM1, stages=4, microbatches=4, profile=prof
        ).breakdown()
        many = PipeFisherModel(
            bert_large_catalog(), PLATFORM1, stages=4, microbatches=32, profile=prof
        ).breakdown()
        assert many.bubble < few.bubble

    def test_kfac_work_partially_hidden(self, bert_pf):
        bd = bert_pf.breakdown()
        assert bd.kfac_hidden > 0
        assert bd.kfac_hidden <= bd.bubble + 1e-12

    def test_deeper_pipeline_more_bubble(self):
        prof = MODEL_TIMING_PROFILES["bert-large"]

        def bubble_frac(stages):
            bd = PipeFisherModel(
                bert_large_catalog(), PLATFORM1, stages=stages, microbatches=8, profile=prof
            ).breakdown()
            return bd.bubble / (bd.stage_compute + bd.bubble)

        assert bubble_frac(16) > bubble_frac(4)

    def test_stage_memory_fraction(self, bert_pf):
        frac = bert_pf.per_stage_memory_fraction()
        assert 0.15 < frac < 0.5  # ~1/4 with imbalance headroom

    def test_works_on_cnn_catalog(self):
        pf = PipeFisherModel(
            resnet50_catalog(),
            PLATFORM1,
            stages=4,
            microbatches=8,
            profile=MODEL_TIMING_PROFILES["resnet50"],
        )
        assert pf.breakdown().total > 0

    def test_validation(self):
        prof = MODEL_TIMING_PROFILES["resnet50"]
        with pytest.raises(ValueError):
            PipeFisherModel(resnet50_catalog(), PLATFORM1, stages=1, profile=prof)
        with pytest.raises(ValueError):
            PipeFisherModel(resnet50_catalog(), PLATFORM1, stages=4, microbatches=0, profile=prof)
