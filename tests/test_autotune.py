"""The repro.autotune subsystem: closed-loop cost-model autotuner."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.autotune import (
    DEFAULT_MENU,
    AlphaBetaEstimator,
    AutotuneConfig,
    CandidateConfig,
    CostModel,
    FidelityBudget,
    HysteresisPolicy,
    aggregation_credit,
    codec_seconds,
    modelled_extra_seconds,
)
from repro.cli import main
from repro.core import CompsoCompressor
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.faults import FaultPlan, LinkDegradation
from repro.fleet import SharedFabric
from repro.guard.guard import Guard, GuardConfig
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.obsv import autotune_timeline, LedgerConfig, load_ledger, render_markdown, summarize
from repro.optim import Sgd
from repro.train import ClassificationTask, DistributedSgdTrainer

ITERS = 8


def _task(n=160):
    return ClassificationTask(make_image_data(n, n_classes=4, size=8, noise=0.5, seed=0))


def _params(model):
    return np.concatenate([np.asarray(p.data).ravel() for p in model.parameters()])


def _run_kfac(path=None, *, autotune=None, degraded=False, channels=16, seed=0):
    """One seeded guarded K-FAC run; the degraded variant injects a
    [3, 6) link-degradation window that makes bytes expensive."""
    plan = None
    if degraded:
        plan = FaultPlan(
            degradations=[
                LinkDegradation(start=3, stop=6, latency_factor=4.0, bandwidth_factor=64.0)
            ]
        )
    cluster = SimCluster(2, 2, seed=0, fault_plan=plan)
    trainer = DistributedKfacTrainer(
        resnet_proxy(n_classes=4, channels=channels, rng=3),
        _task(),
        cluster,
        lr=0.05,
        inv_update_freq=2,
        compressor=CompsoCompressor(4e-3, 4e-3, seed=0),
        guard=GuardConfig(),
        obsv=LedgerConfig(path) if path else None,
        autotune=autotune,
        reliable_channel=False,
    )
    with telemetry.session():
        trainer.train(iterations=ITERS, batch_size=32, eval_every=ITERS, seed=seed)
    return trainer, cluster


class TestFidelityBudget:
    def test_valid_budgets_pass(self):
        FidelityBudget()
        FidelityBudget(min_cosine=1.0, max_rel_l2=1e-9)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5, float("nan")])
    def test_min_cosine_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError, match="min_cosine"):
            FidelityBudget(min_cosine=bad)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
    def test_max_rel_l2_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError, match="max_rel_l2"):
            FidelityBudget(max_rel_l2=bad)

    def test_offline_tuner_reexported(self):
        # One import surface: the offline tuner rides along with the
        # online controller (satellite of the autotune subsystem).
        import repro.autotune as online
        import repro.core.autotune as offline

        assert online.FidelityBudget is offline.FidelityBudget
        assert online.autotune_bounds is offline.autotune_bounds
        assert online.TuneResult is offline.TuneResult


class TestCandidateConfig:
    def test_default_menu_well_formed(self):
        names = [c.name for c in DEFAULT_MENU]
        assert len(set(names)) == len(names)
        assert "identity" in names and "default" in names

    def test_identity_has_zero_error_bound(self):
        identity = next(c for c in DEFAULT_MENU if c.is_identity)
        assert identity.error_bound == 0.0

    def test_bad_compressor_rejected(self):
        with pytest.raises(ValueError, match="compressor"):
            CandidateConfig(name="x", compressor="gzip-the-floats")

    def test_bad_encoder_rejected(self):
        with pytest.raises(ValueError, match="encoder"):
            CandidateConfig(name="x", encoder="no-such-encoder")

    def test_bad_aggregation_rejected(self):
        with pytest.raises(ValueError, match="aggregation"):
            CandidateConfig(name="x", aggregation=0)


class TestHysteresisPolicy:
    def test_warmup_and_dwell(self):
        p = HysteresisPolicy(warmup=2, min_dwell=3, min_improvement=0.1)
        assert not p.ready(1, -1)
        assert p.ready(2, -1)
        assert not p.ready(4, 2)
        assert p.ready(5, 2)

    def test_improvement_band(self):
        p = HysteresisPolicy(warmup=0, min_dwell=1, min_improvement=0.1)
        assert p.should_switch(1.0, 0.85)
        assert not p.should_switch(1.0, 0.95)

    def test_infinite_improvement_never_switches(self):
        p = HysteresisPolicy(warmup=0, min_dwell=1, min_improvement=float("inf"))
        assert not p.should_switch(1.0, 1e-12)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            HysteresisPolicy(warmup=-1)
        with pytest.raises(ValueError):
            HysteresisPolicy(min_dwell=0)


class TestCostModel:
    def test_estimator_recovers_planted_rates(self):
        est = AlphaBetaEstimator()
        alpha, beta = 3e-5, 2e-9
        rng = np.random.default_rng(0)
        for _ in range(50):
            m = float(rng.integers(1, 30))
            b = float(rng.integers(1, 1 << 22))
            est.observe(m, b, alpha * m + beta * b)
        a, b_ = est.fit()
        assert a == pytest.approx(alpha, rel=0.05)
        assert b_ == pytest.approx(beta, rel=0.05)

    def test_prior_keeps_fit_well_posed(self):
        a, b = AlphaBetaEstimator(alpha0=7e-5, beta0=3e-9).fit()
        assert a == pytest.approx(7e-5)
        assert b == pytest.approx(3e-9)

    def test_identity_has_no_codec_cost(self):
        identity = next(c for c in DEFAULT_MENU if c.is_identity)
        assert codec_seconds(identity, dense_bytes=1e6, wire_bytes=1e5, n_layers=10) == 0.0

    def test_aggregation_amortises_codec_overhead(self):
        flat = CandidateConfig(name="flat", aggregation=1)
        agg = CandidateConfig(name="agg", aggregation=8)
        kw = dict(dense_bytes=1e6, wire_bytes=1e5, n_layers=16)
        assert codec_seconds(agg, **kw) < codec_seconds(flat, **kw)
        assert aggregation_credit(agg, n_layers=16, alpha=5e-5) > 0
        assert aggregation_credit(flat, n_layers=16, alpha=5e-5) == 0.0
        assert modelled_extra_seconds(agg, alpha=5e-5, **kw) == pytest.approx(
            codec_seconds(agg, **kw) - aggregation_credit(agg, n_layers=16, alpha=5e-5)
        )

    def test_probe_is_deterministic_and_telemetry_silent(self):
        grad = np.random.default_rng(0).standard_normal(1 << 14).astype(np.float32)

        def probe_once():
            model = CostModel(AlphaBetaEstimator())
            with telemetry.session() as t:
                model.probe(grad, DEFAULT_MENU, seed=0, probe_elements=1 << 12)
                spans = len(t.tracer.spans())
            return model.cr, spans

        cr1, spans1 = probe_once()
        cr2, spans2 = probe_once()
        assert cr1 == cr2
        assert spans1 == spans2 == 0
        assert cr1["identity"] == 1.0
        assert cr1["aggressive"] > cr1["conservative"] > 1.0


class TestControllerValidation:
    def test_duplicate_names_rejected(self):
        menu = (CandidateConfig(name="a"), CandidateConfig(name="a", eb_f=1e-3))
        with pytest.raises(ValueError, match="unique"):
            AutotuneConfig(menu=menu, initial="a").build()

    def test_unknown_initial_rejected(self):
        with pytest.raises(ValueError, match="initial"):
            AutotuneConfig(initial="nope").build()

    def test_unknown_safe_rejected(self):
        with pytest.raises(ValueError, match="safe"):
            AutotuneConfig(safe="nope").build()

    def test_initial_must_satisfy_max_error(self):
        with pytest.raises(ValueError, match="max_error"):
            AutotuneConfig(initial="aggressive", max_error=1e-3).build()

    def test_safe_defaults_to_identity(self):
        assert AutotuneConfig().build().safe_name == "identity"


class FakeBreakerGuard:
    """Minimal guard stand-in: only the veto surface the controller uses."""

    def __init__(self):
        self.vetoing = False
        self.timeline = []

    def autotune_veto(self):
        return self.vetoing


class TestBreakerVeto:
    def test_guard_autotune_veto_follows_breaker(self):
        guard = Guard(GuardConfig())
        assert not guard.autotune_veto()
        guard.breaker.trip(0)
        assert guard.autotune_veto()

    def test_open_breaker_pins_safe_candidate(self):
        controller = AutotuneConfig(initial="default", warmup=0, min_dwell=1).build()
        guard = FakeBreakerGuard()
        controller.bind(guard=guard, compressor=CompsoCompressor(4e-3, 4e-3, seed=0))
        guard.vetoing = True
        for step in range(3):
            controller.end_step(
                step=step, wire_bytes=1e5, dense_bytes=1e6, n_messages=4
            )
        # One veto episode, not one per step; the safe config is pinned.
        assert [d.kind for d in controller.decisions] == ["veto"]
        assert controller.decisions[0].to_config == "identity"
        assert controller.active.name == "identity"

    def test_new_veto_episode_after_reclose(self):
        controller = AutotuneConfig(initial="default", warmup=0, min_dwell=1).build()
        guard = FakeBreakerGuard()
        controller.bind(guard=guard, compressor=CompsoCompressor(4e-3, 4e-3, seed=0))
        guard.vetoing = True
        controller.end_step(step=0, wire_bytes=1e5, dense_bytes=1e6, n_messages=4)
        guard.vetoing = False
        controller.end_step(step=1, wire_bytes=1e5, dense_bytes=1e6, n_messages=4)
        guard.vetoing = True
        controller.end_step(step=2, wire_bytes=1e5, dense_bytes=1e6, n_messages=4)
        assert [d.kind for d in controller.decisions] == ["veto", "veto"]


class TestBitIdentity:
    def test_none_and_never_firing_controller_identical(self):
        base_tr, base_cl = _run_kfac(autotune=None, channels=4)
        idle_tr, idle_cl = _run_kfac(
            autotune=AutotuneConfig(initial="default", min_improvement=float("inf")),
            channels=4,
        )
        assert np.array_equal(_params(base_tr.model), _params(idle_tr.model))
        assert base_tr.history.losses == idle_tr.history.losses
        assert base_cl.time == idle_cl.time
        assert idle_tr.autotune.decisions == []

    def test_decision_events_byte_identical(self, tmp_path):
        def run(tag):
            path = str(tmp_path / f"{tag}.ledger")
            _run_kfac(
                path,
                autotune=AutotuneConfig(initial="identity", warmup=2, min_dwell=1),
                degraded=True,
            )
            ledger = load_ledger(path)
            events = json.dumps(autotune_timeline(ledger), sort_keys=True)
            return events, ledger.digest()

        events_a, digest_a = run("a")
        events_b, digest_b = run("b")
        assert json.loads(events_a)  # the degraded run must actually decide
        assert events_a == events_b
        assert digest_a == digest_b


class TestClosedLoop:
    def test_reacts_to_link_degradation(self, tmp_path):
        path = str(tmp_path / "degraded.ledger")
        trainer, _ = _run_kfac(
            path,
            autotune=AutotuneConfig(initial="identity", warmup=2, min_dwell=1),
            degraded=True,
        )
        decisions = autotune_timeline(load_ledger(path))
        retunes = [d for d in decisions if d["kind"] == "retune"]
        assert retunes, "controller never reacted to the degraded link"
        first = retunes[0]
        assert 3 <= first["step"] < 6, "first retune should land inside the window"
        assert first["to"] != "identity", "degraded link should buy CR with fidelity"
        assert first["signals"]["bw_factor"] > 1.0
        # The ledger manifest records the controller's config.
        manifest = load_ledger(path).manifest
        assert manifest["autotune"]["initial"] == "identity"

    def test_clean_fabric_stays_put(self, tmp_path):
        path = str(tmp_path / "clean.ledger")
        _run_kfac(
            path,
            autotune=AutotuneConfig(initial="identity", warmup=2, min_dwell=1),
            degraded=False,
        )
        ledger = load_ledger(path)
        assert autotune_timeline(ledger) == []
        summary = summarize(ledger)
        assert summary["autotune_retunes"] == 0
        assert summary["autotune_vetoes"] == 0

    def test_report_renders_decisions(self, tmp_path):
        path = str(tmp_path / "degraded.ledger")
        _run_kfac(
            path,
            autotune=AutotuneConfig(initial="identity", warmup=2, min_dwell=1),
            degraded=True,
        )
        md = render_markdown(load_ledger(path))
        assert "## Autotune decisions" in md
        assert "retune" in md

    def test_sgd_trainer_observes(self):
        model = resnet_proxy(n_classes=4, channels=8, rng=1)
        trainer = DistributedSgdTrainer(
            model,
            _task(),
            Sgd(model.parameters(), lr=0.05, momentum=0.9),
            SimCluster(1, 4, seed=0),
            compressor=CompsoCompressor(4e-3, 4e-3, seed=0),
            autotune=AutotuneConfig(initial="default", min_improvement=float("inf")),
        )
        trainer.train(iterations=5, batch_size=32, eval_every=5)
        controller = trainer.autotune
        assert controller.model.estimator.n_observations > 0
        assert controller.model.cr["identity"] == 1.0
        report = controller.report()
        assert report["active"] == "default"
        assert report["model"]["observations"] > 0


class TestFabricHealth:
    def test_degradation_factor_windows_compound(self):
        fabric = SharedFabric()
        fabric.degrade(1.0, 3.0, 2.0)
        fabric.degrade(2.0, 4.0, 3.0)
        assert fabric.degradation_factor(0.5) == 1.0
        assert fabric.degradation_factor(1.5) == 2.0
        assert fabric.degradation_factor(2.5) == 6.0
        assert fabric.degradation_factor(3.5) == 3.0
        assert fabric.degradation_factor(4.0) == 1.0

    def test_health_hook_steers_decisions(self):
        controller = AutotuneConfig(initial="default", warmup=0, min_dwell=1).build()
        controller.bind(health=lambda step: (2.0, 8.0))
        assert controller._network_factors(0) == (2.0, 8.0)
        controller.bind(health=lambda step: 3.0)
        assert controller._network_factors(0) == (3.0, 3.0)


class TestCli:
    def test_autotune_clean_preset_gates_zero_retunes(self, tmp_path, capsys):
        out = str(tmp_path / "clean.ledger")
        rc = main(
            [
                "autotune",
                "--preset",
                "autotuned",
                "--out",
                out,
                "--iterations",
                "8",
                "--max-retunes",
                "0",
            ]
        )
        assert rc == 0
        assert "autotune_retunes       0" in capsys.readouterr().out

    def test_tune_prints_bounds(self, capsys):
        rc = main(["tune", "--size", "16384", "--samples", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chosen eb_f" in out and "achieved ratio" in out

    def test_compress_encoder_flag(self, capsys):
        rc = main(["compress", "--size", "16384", "--encoder", "zstd"])
        assert rc == 0
        assert "compso-zstd" in capsys.readouterr().out

    def test_compress_unknown_encoder_rejected(self):
        with pytest.raises(SystemExit):
            main(["compress", "--size", "4096", "--encoder", "no-such"])
