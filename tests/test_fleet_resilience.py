"""Fleet resilience tests: fault semantics, restart, preemption, SLOs.

Contracts:

1. **Per-fault-class capability check** — the timing track accepts
   time-plane and availability-plane faults and rejects data-plane
   faults with an error naming the fault class and supporting tracks;
   a crashes-only plan is invisible to the cluster entirely.
2. **Crash/restart** — a crashed job restarts from its exact-resume
   checkpoint: the finished trajectory is bit-identical to one that
   never crashed, within a capped-backoff retry budget.
3. **Preemption** — a concurrency cap admits by priority, preemption
   costs zero work and never charges the retry budget.
4. **Determinism** — chaos fleets are byte-reproducible, and an empty
   chaos plan is bit-identical (ledger digest) to a faultless fleet.
5. **SLO/goodput accounting** — JobReport carries restarts, SLO
   verdicts, time lost, and goodput with sane invariants.
"""

import numpy as np
import pytest

from repro.distributed import SimCluster
from repro.faults import FaultPlan, JobCrash
from repro.fleet import (
    FleetScheduler,
    JobSpec,
    SharedFabric,
    apply_chaos,
    chaos_plan,
    preset_options,
    preset_specs,
)
from repro.obsv import load_ledger


def _params(model):
    return np.concatenate([p.data.ravel() for p in model.parameters()])


def _solo(name="solo", **kw):
    return JobSpec(name, world_size=8, iterations=4, batch_size=32, seed=0, **kw)


class TestFaultCapability:
    def test_timing_rejects_corruption_naming_class_and_tracks(self):
        plan = FaultPlan().add_corruption(0.5)
        with pytest.raises(ValueError, match="PayloadCorruption.*timing.*convergence"):
            SimCluster.from_world_size(8, 4, track="timing", fault_plan=plan)

    def test_timing_rejects_drops_naming_class(self):
        plan = FaultPlan().add_drop(0, iteration=1)
        with pytest.raises(ValueError, match="DroppedContribution.*data-plane"):
            SimCluster.from_world_size(8, 4, track="timing", fault_plan=plan)

    def test_timing_accepts_time_and_availability_planes(self):
        plan = (
            FaultPlan()
            .add_straggler(1, start=0, slowdown=2.0)
            .add_link_degradation(start=0, stop=1, bandwidth_factor=2.0)
            .add_failure(2, iteration=1)
            .add_crash(iteration=1)
        )
        cluster = SimCluster.from_world_size(8, 4, track="timing", fault_plan=plan)
        assert cluster.faults is not None

    def test_convergence_still_accepts_data_plane(self):
        plan = FaultPlan().add_corruption(0.5).add_drop(0, iteration=1)
        cluster = SimCluster.from_world_size(8, 4, track="convergence", fault_plan=plan)
        assert cluster.faults is not None

    def test_crashes_only_plan_is_invisible_to_cluster(self):
        # Crashes are interpreted by the fleet scheduler; the cluster
        # must not grow a controller (which would add checksum traffic).
        plan = FaultPlan().add_crash(iteration=1)
        cluster = SimCluster.from_world_size(8, 4, track="timing", fault_plan=plan)
        assert cluster.faults is None
        assert not plan.is_empty()
        assert plan.is_empty_for_cluster()

    def test_crash_validation(self):
        with pytest.raises(ValueError, match="crash iteration"):
            JobCrash(-1)

    def test_plan_entries_and_describe_include_crashes(self):
        plan = FaultPlan().add_crash(iteration=2)
        assert any(isinstance(e, JobCrash) for e in plan.entries())
        assert "JobCrash" in plan.describe()


class TestJobSpecValidation:
    def test_rejects_nonpositive_priority(self):
        with pytest.raises(ValueError, match="priority must be > 0"):
            JobSpec("j", world_size=8, iterations=1, priority=0.0)
        with pytest.raises(ValueError, match="priority must be > 0"):
            JobSpec("j", world_size=8, iterations=1, priority=-1.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            JobSpec("", world_size=8, iterations=1)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError, match="arrival"):
            JobSpec("j", world_size=8, iterations=1, arrival=-0.1)

    def test_rejects_bad_deadline_and_checkpoint_every(self):
        with pytest.raises(ValueError, match="deadline"):
            JobSpec("j", world_size=8, iterations=1, deadline=0.0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            JobSpec("j", world_size=8, iterations=1, checkpoint_every=-1)

    def test_duplicate_names_raise(self):
        specs = [_solo("same"), _solo("same")]
        with pytest.raises(ValueError, match="duplicate"):
            FleetScheduler(specs)

    def test_scheduler_kwargs_validation(self):
        specs = [_solo()]
        with pytest.raises(ValueError, match="max_concurrent"):
            FleetScheduler(specs, max_concurrent=0)
        with pytest.raises(ValueError, match="retry_budget"):
            FleetScheduler(specs, retry_budget=-1)
        with pytest.raises(ValueError, match="backoff"):
            FleetScheduler(specs, backoff_base=1e-3, backoff_cap=1e-4)


class TestCrashRestart:
    def test_restart_resumes_from_checkpoint_bit_identical(self):
        # Checkpoint every 2 steps, crash at iteration 3: one completed
        # step is rolled back and re-run from the restored checkpoint.
        # Exact-resume checkpoints make the finished trajectory
        # bit-identical to the run that never crashed.
        crash = _solo(fault_plan=FaultPlan().add_crash(iteration=3), checkpoint_every=2)
        clean = _solo()
        s_crash = FleetScheduler([crash])
        s_clean = FleetScheduler([clean])
        r_crash = s_crash.run().by_name("solo")
        r_clean = s_clean.run().by_name("solo")
        assert r_crash.state == "done"
        assert r_crash.restarts == 1
        assert r_crash.steps == crash.iterations
        assert r_crash.final_loss == r_clean.final_loss
        np.testing.assert_array_equal(
            _params(s_crash.jobs[0].trainer.model), _params(s_clean.jobs[0].trainer.model)
        )
        # One step of sim time was rolled back, plus backoff.
        assert r_crash.time_lost_s > 0.0
        assert r_crash.fleet_end > r_clean.fleet_end
        assert r_crash.goodput < 1.0

    def test_crash_fires_once_and_counts_in_ledger(self, tmp_path):
        spec = _solo(fault_plan=FaultPlan().add_crash(iteration=1))
        result = FleetScheduler([spec], ledger_dir=tmp_path).run()
        report = result.by_name("solo")
        assert report.restarts == 1
        assert result.total_restarts == 1
        fleet = load_ledger(tmp_path / "solo.ledger").manifest["fleet"]
        assert fleet["restarts"] == 1
        assert fleet["state"] == "done"
        assert 0.0 < fleet["goodput"] < 1.0

    def test_retry_budget_exhaustion_fails_job(self):
        plan = FaultPlan()
        for it in (1, 2, 3):
            plan.add_crash(iteration=it)
        spec = _solo(fault_plan=plan, deadline=10.0)
        other = JobSpec("peer", world_size=8, iterations=2, batch_size=32, seed=1)
        result = FleetScheduler([spec, other], retry_budget=2).run()
        report = result.by_name("solo")
        assert report.state == "failed"
        assert report.restarts == 2  # budget, not the number of crashes
        assert report.slo_met is False
        assert result.jobs_failed == 1
        assert result.slo_missed == 1
        # The healthy peer is unaffected.
        assert result.by_name("peer").state == "done"

    def test_backoff_is_capped_exponential(self):
        plan = FaultPlan()
        for it in (1, 2, 3):
            plan.add_crash(iteration=it)
        spec = _solo(fault_plan=plan)
        sched = FleetScheduler([spec], retry_budget=3, backoff_base=1e-3, backoff_cap=1.5e-3)
        report = sched.run().by_name("solo")
        assert report.state == "done"
        assert report.restarts == 3
        # Backoffs: 1e-3, then capped at 1.5e-3 twice.
        job = sched.jobs[0]
        assert job.backoff_total == pytest.approx(1e-3 + 1.5e-3 + 1.5e-3)


class TestPreemption:
    def test_high_priority_preempts_lowest(self):
        specs = [
            JobSpec("low", world_size=8, iterations=4, batch_size=32, seed=0, priority=1.0),
            JobSpec(
                "high", world_size=8, iterations=2, batch_size=32, seed=1,
                priority=3.0, arrival=0.0005,
            ),
        ]
        result = FleetScheduler(specs, max_concurrent=1).run()
        low = result.by_name("low")
        high = result.by_name("high")
        assert low.state == "done" and high.state == "done"
        assert low.preemptions >= 1
        assert high.preemptions == 0
        assert result.total_preemptions == low.preemptions
        # Preemption costs queue position, never the retry budget.
        assert low.restarts == 0
        assert low.steps == 4

    def test_equal_priority_queues_instead_of_preempting(self):
        specs = [
            JobSpec("a", world_size=8, iterations=2, batch_size=32, seed=0),
            JobSpec("b", world_size=8, iterations=2, batch_size=32, seed=1, arrival=0.0005),
        ]
        result = FleetScheduler(specs, max_concurrent=1).run()
        assert result.total_preemptions == 0
        assert all(r.state == "done" for r in result.reports)
        # b could only start after a finished.
        assert result.by_name("b").fleet_end > result.by_name("a").fleet_end

    def test_preempted_job_never_starved_past_budget(self):
        # A low-priority job repeatedly preempted by later high-priority
        # arrivals still completes with its restart budget untouched.
        specs = [
            JobSpec("victim", world_size=8, iterations=4, batch_size=32, seed=0, priority=1.0),
            JobSpec("h1", world_size=8, iterations=2, batch_size=32, seed=1,
                    priority=2.0, arrival=0.0004),
            JobSpec("h2", world_size=8, iterations=2, batch_size=32, seed=2,
                    priority=2.0, arrival=0.0008),
        ]
        result = FleetScheduler(specs, max_concurrent=1, retry_budget=1).run()
        victim = result.by_name("victim")
        assert victim.state == "done"
        assert victim.restarts == 0
        assert victim.steps == 4


class TestElasticShrink:
    def test_node_failure_shrinks_world_and_continues(self):
        plan = FaultPlan().add_node_failure(1, iteration=1, gpus_per_node=4)
        spec = JobSpec("elastic", world_size=16, iterations=3, batch_size=32,
                       seed=0, fault_plan=plan)
        sched = FleetScheduler([spec])
        report = sched.run().by_name("elastic")
        assert report.state == "done"
        assert report.steps == 3
        # Handled inside the trainer (elastic continuation), not by the
        # scheduler's restart machinery.
        assert report.restarts == 0
        assert sched.jobs[0].cluster.world_size == 12
        assert np.isfinite(report.final_loss)


class TestFabricDegradation:
    def test_degradation_window_stretches_overlap_only(self):
        fabric = SharedFabric()
        fabric.register("j")
        fabric.degrade(1.0, 2.0, 3.0)
        # Fully inside the window: 3x.
        assert fabric.acquire("j", "allreduce", 1.0, 0.5) == pytest.approx(1.5)
        # Fully outside: nominal.
        assert fabric.acquire("j", "allreduce", 5.0, 0.5) == pytest.approx(0.5)
        # Half overlap: only the overlapped half is stretched.
        assert fabric.acquire("j", "allreduce", 1.75, 0.5) == pytest.approx(
            0.5 + 2.0 * 0.25
        )
        assert fabric.degraded_seconds["j"] > 0.0
        assert fabric.contended_seconds["j"] == 0.0

    def test_degrade_validation(self):
        fabric = SharedFabric()
        with pytest.raises(ValueError, match="empty"):
            fabric.degrade(1.0, 1.0, 2.0)
        with pytest.raises(ValueError, match="factor"):
            fabric.degrade(0.0, 1.0, 0.5)

    def test_fleet_degradation_slows_solo_job(self):
        plain = FleetScheduler([_solo()]).run().by_name("solo")
        slowed = FleetScheduler(
            [_solo()], fabric_degradations=[(0.0, 1.0, 2.0)]
        ).run().by_name("solo")
        assert slowed.sim_time > plain.sim_time
        assert slowed.contended_seconds == 0.0
        assert slowed.goodput < 1.0


class TestChaosDeterminism:
    def test_empty_chaos_is_bit_identical_to_faultless(self, tmp_path):
        specs = preset_specs("smoke")
        assert apply_chaos(specs, rate=0.0) == specs
        FleetScheduler(specs, ledger_dir=tmp_path / "plain").run()
        FleetScheduler(apply_chaos(specs, rate=0.0), ledger_dir=tmp_path / "chaos0").run()
        for spec in specs:
            a = load_ledger(tmp_path / "plain" / f"{spec.name}.ledger")
            b = load_ledger(tmp_path / "chaos0" / f"{spec.name}.ledger")
            assert a.digest() == b.digest()

    def test_chaos_reruns_are_byte_identical(self, tmp_path):
        specs = apply_chaos(preset_specs("smoke"), rate=1.0, seed=7)
        FleetScheduler(specs, ledger_dir=tmp_path / "a").run()
        FleetScheduler(specs, ledger_dir=tmp_path / "b").run()
        for spec in specs:
            a = load_ledger(tmp_path / "a" / f"{spec.name}.ledger")
            b = load_ledger(tmp_path / "b" / f"{spec.name}.ledger")
            assert a.digest() == b.digest()

    def test_chaos_plan_is_deterministic_and_rate_scaled(self):
        spec = _solo()
        p1 = chaos_plan(spec, 0, rate=1.0, seed=3)
        p2 = chaos_plan(spec, 0, rate=1.0, seed=3)
        assert p1 is not None and p2 is not None
        assert p1.describe() == p2.describe()
        assert chaos_plan(spec, 0, rate=0.0, seed=3) is None
        with pytest.raises(ValueError, match="rate"):
            chaos_plan(spec, 0, rate=-1.0, seed=3)

    def test_tiebreak_orders_by_priority_then_name(self):
        # Identical arrivals: the higher-priority job is admitted first;
        # among equals, lexicographic name order breaks the tie.
        specs = [
            JobSpec("b", world_size=8, iterations=1, batch_size=32, seed=0),
            JobSpec("a", world_size=8, iterations=1, batch_size=32, seed=1),
            JobSpec("z", world_size=8, iterations=1, batch_size=32, seed=2, priority=2.0),
        ]
        sched = FleetScheduler(specs, max_concurrent=1)
        keys = sorted(sched.jobs, key=sched._key)
        assert [j.spec.name for j in keys] == ["z", "a", "b"]

    def test_chaos_smoke_preset_restarts_and_converges(self, tmp_path):
        result = FleetScheduler(
            preset_specs("chaos-smoke"),
            ledger_dir=tmp_path,
            **preset_options("chaos-smoke"),
        ).run()
        assert result.total_restarts >= 1
        assert result.total_preemptions >= 1
        assert result.jobs_failed == 0
        assert all(np.isfinite(r.final_loss) for r in result.reports)
        assert all(r.slo_met is not False for r in result.reports)


class TestSLOGoodput:
    def test_solo_faultless_goodput_is_one_and_slo_met(self):
        report = FleetScheduler([_solo(deadline=10.0)]).run().by_name("solo")
        assert report.goodput == pytest.approx(1.0)
        assert report.slo_met is True
        assert report.time_lost_s == 0.0

    def test_impossible_deadline_is_missed(self):
        report = FleetScheduler([_solo(deadline=1e-9)]).run().by_name("solo")
        assert report.slo_met is False

    def test_no_deadline_means_no_slo(self):
        result = FleetScheduler([_solo()]).run()
        assert result.by_name("solo").slo_met is None
        assert result.slo_missed == 0

    def test_fleet_summary_counts(self):
        specs = [
            _solo("crashy", fault_plan=FaultPlan().add_crash(iteration=1), deadline=10.0),
            JobSpec("fine", world_size=8, iterations=2, batch_size=32, seed=1, deadline=10.0),
        ]
        result = FleetScheduler(specs).run()
        assert result.total_restarts == 1
        assert result.slo_missed == 0
        assert result.jobs_failed == 0
