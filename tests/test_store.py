"""Durable state: sealed store, corruption fallback, crash sweep, fsck."""

import json

import numpy as np
import pytest

from repro.faults.plan import FaultPlan
from repro.faults.storage import StorageCrash, StorageFaultController
from repro.models import resnet_proxy
from repro.obsv.ledger import LedgerConfig, fsck_ledger, load_ledger
from repro.store import (
    MANIFEST_NAME,
    STORE_SAVE_POINTS,
    CheckpointStore,
    Generation,
    StoreError,
    fsck_ledger_file,
    fsck_store,
    is_store,
)
from repro.store.store import manifest_text, parse_manifest
from repro.util.checkpoint import save_checkpoint, verify_checkpoint


def _model(seed=0):
    return resnet_proxy(n_classes=4, channels=8, rng=seed)


def _params(model) -> np.ndarray:
    return np.concatenate([p.data.ravel() for p in model.parameters()])


def _nudge(model, delta=0.01):
    for p in model.parameters():
        p.data += delta


def _fill(store, steps):
    """One generation per step, nudging the model between saves.

    Returns the model and a ``{step: params}`` snapshot map.
    """
    model = _model()
    snaps = {}
    for step in steps:
        _nudge(model)
        store.save(model, step=step)
        snaps[step] = _params(model).copy()
    return model, snaps


def _flip_byte(path, offset=200):
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestManifestSeal:
    def test_round_trip(self):
        gens = [Generation(gen=1, file="gen-00000001.npz", step=3, nbytes=10, crc32=7)]
        assert parse_manifest(manifest_text(gens)) == gens

    def test_tampered_body_fails_the_seal(self):
        gens = [Generation(gen=1, file="gen-00000001.npz", step=3, nbytes=10, crc32=7)]
        doc = json.loads(manifest_text(gens))
        doc["body"]["generations"][0]["step"] = 99  # lie about the step
        with pytest.raises(StoreError, match="seal mismatch"):
            parse_manifest(json.dumps(doc))

    def test_garbage_is_a_store_error(self):
        with pytest.raises(StoreError, match="unreadable"):
            parse_manifest("not json at all {")

    def test_wrong_schema_version_rejected(self):
        doc = {"body": {"schema_version": 99, "generations": []}}
        body = json.dumps(doc["body"], sort_keys=True, separators=(",", ":"))
        import zlib

        doc["seal"] = zlib.crc32(body.encode()) & 0xFFFFFFFF
        with pytest.raises(StoreError, match="schema version"):
            parse_manifest(json.dumps(doc))


class TestStoreLifecycle:
    def test_saves_commit_monotone_generations(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _fill(store, [1, 2])
        gens = store.generations()
        assert [g.gen for g in gens] == [1, 2]
        assert [g.step for g in gens] == [1, 2]
        assert store.latest().gen == 2
        assert (tmp_path / "gen-00000001.npz").exists()
        assert (tmp_path / MANIFEST_NAME).exists()
        assert is_store(tmp_path)

    def test_retention_trims_manifest_before_deleting_files(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        _fill(store, [1, 2, 3])
        assert [g.gen for g in store.generations()] == [2, 3]
        assert not (tmp_path / "gen-00000001.npz").exists()
        assert any(ev.kind == "retention" for ev in store.events)
        # Retention is normal operation, not damage.
        assert store.abnormal_events() == []

    def test_load_latest_restores_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _, snaps = _fill(store, [1, 2])
        fresh = _model(seed=5)
        gen = CheckpointStore(tmp_path).load_latest(fresh)
        assert gen.step == 2
        assert np.array_equal(_params(fresh), snaps[2])

    def test_empty_store_loads_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load_latest(_model()) is None

    def test_next_gen_number_skips_orphans(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _fill(store, [1])
        # A crash between archive replace and manifest replace leaves an
        # orphan the manifest doesn't know about; its number must not be
        # reused by the next save.
        save_checkpoint(tmp_path / "gen-00000007.npz", _model(), step=9)
        model = _model()
        entry = store.save(model, step=2)
        assert entry.gen == 8


class TestCorruptionFallback:
    def test_truncated_newest_falls_back_one_generation(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _, snaps = _fill(store, [1, 2])
        path = tmp_path / store.latest().file
        with open(path, "r+b") as fh:
            fh.truncate(path.stat().st_size // 2)

        reader = CheckpointStore(tmp_path)
        fresh = _model(seed=5)
        gen = reader.load_latest(fresh)
        assert gen.step == 1
        assert np.array_equal(_params(fresh), snaps[1])
        kinds = [ev.kind for ev in reader.events]
        assert "fallback" in kinds and "quarantine" in kinds
        assert (tmp_path / "quarantine" / "gen-00000002.npz").exists()
        # The pruned manifest is persisted: the next reader never
        # re-walks the known-bad generation.
        assert [g.gen for g in CheckpointStore(tmp_path).generations()] == [1]

    def test_flipped_byte_fails_the_file_seal(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _, snaps = _fill(store, [1, 2])
        _flip_byte(tmp_path / store.latest().file)

        reader = CheckpointStore(tmp_path)
        fresh = _model(seed=5)
        assert reader.load_latest(fresh).step == 1
        assert np.array_equal(_params(fresh), snaps[1])

    def test_content_seal_catches_what_a_lying_manifest_misses(self, tmp_path):
        """Even a manifest that vouches for the damaged bytes can't pass it."""
        store = CheckpointStore(tmp_path)
        _fill(store, [1, 2])
        newest = store.latest()
        path = tmp_path / newest.file
        # Tamper with decoded content while keeping the stale seal: the
        # file-level CRC can be made to vouch for these bytes, but the
        # content seal inside the archive cannot.
        data = dict(np.load(path).items())
        key = next(k for k in data if k.startswith("param/"))
        data[key] = data[key] + 1.0
        np.savez_compressed(path, **data)
        # Re-seal the *manifest* over the damaged file: the file CRC now
        # matches, so only the archive's own content seal can object.
        from repro.store.store import file_crc32

        gens = store.generations()
        gens[-1] = Generation(
            gen=newest.gen,
            file=newest.file,
            step=newest.step,
            nbytes=path.stat().st_size,
            crc32=file_crc32(path),
        )
        (tmp_path / MANIFEST_NAME).write_text(manifest_text(gens))

        reader = CheckpointStore(tmp_path)
        assert reader.load_latest(_model(seed=5)).step == 1
        assert any(ev.kind == "fallback" for ev in reader.events)

    def test_all_generations_damaged_raises_store_error(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _fill(store, [1, 2])
        for gen in store.generations():
            _flip_byte(tmp_path / gen.file)
        with pytest.raises(StoreError, match="no generation passed"):
            CheckpointStore(tmp_path).load_latest(_model(seed=5))

    def test_missing_generation_file_is_an_event_not_a_crash(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _, snaps = _fill(store, [1, 2])
        (tmp_path / store.latest().file).unlink()
        reader = CheckpointStore(tmp_path)
        fresh = _model(seed=5)
        assert reader.load_latest(fresh).step == 1
        assert np.array_equal(_params(fresh), snaps[1])
        assert any(ev.kind == "missing" for ev in reader.events)

    def test_garbage_manifest_rebuilt_from_verified_archives(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _, snaps = _fill(store, [1, 2])
        (tmp_path / MANIFEST_NAME).write_text("{torn garbage")
        reader = CheckpointStore(tmp_path)
        fresh = _model(seed=5)
        gen = reader.load_latest(fresh)
        assert gen.step == 2
        assert np.array_equal(_params(fresh), snaps[2])
        assert any(ev.kind == "manifest_rebuilt" for ev in reader.events)

    def test_summary_counts_are_deterministic_fields_only(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _fill(store, [1, 2])
        _flip_byte(tmp_path / store.latest().file)
        reader = CheckpointStore(tmp_path)
        reader.load_latest(_model(seed=5))
        summary = reader.summary()
        assert summary["fallbacks"] == 1 and summary["quarantined"] == 1
        # Events never carry CRC values or byte offsets (zlib builds
        # disagree on CRCs; ledgers must stay bit-portable).
        for ev in reader.events:
            assert "0x" not in ev.detail


class TestCrashConsistency:
    """A simulated process death at every injection point of save()."""

    @pytest.mark.parametrize("point", STORE_SAVE_POINTS)
    def test_crash_at_every_point_restores_a_verified_generation(self, tmp_path, point):
        plan = FaultPlan().add_save_crash(save_index=1, point=point)
        store = CheckpointStore(
            tmp_path, hooks_factory=StorageFaultController(plan).hooks_for
        )
        model = _model()
        _nudge(model)
        store.save(model, step=1)
        committed = _params(model).copy()
        _nudge(model)
        with pytest.raises(StorageCrash, match=point):
            store.save(model, step=2)
        second = _params(model).copy()

        # The "reboot": a fresh store over the same directory.
        fresh = _model(seed=5)
        gen = CheckpointStore(tmp_path).load_latest(fresh)
        assert gen is not None, f"{point}: nothing restorable after crash"
        if point in ("manifest:replaced", "sealed"):
            # The save was fully committed before the crash.
            assert gen.step == 2
            assert np.array_equal(_params(fresh), second)
        else:
            # The previous committed state must be untouched.
            assert gen.step == 1
            assert np.array_equal(_params(fresh), committed)
        # No torn writer temp files survive the crash.
        assert not [p for p in tmp_path.iterdir() if ".tmp." in p.name]

    def test_torn_write_is_caught_by_the_content_seal(self, tmp_path):
        plan = FaultPlan().add_torn_write(save_index=1)
        store = CheckpointStore(
            tmp_path, hooks_factory=StorageFaultController(plan).hooks_for
        )
        model = _model()
        _nudge(model)
        store.save(model, step=1)
        committed = _params(model).copy()
        _nudge(model)
        store.save(model, step=2)  # tmp torn mid-window; commit completes

        fresh = _model(seed=5)
        reader = CheckpointStore(tmp_path)
        assert reader.load_latest(fresh).step == 1
        assert np.array_equal(_params(fresh), committed)
        assert any(ev.kind == "fallback" for ev in reader.events)

    def test_seeded_bit_rot_is_replayable(self, tmp_path):
        def rot(root):
            plan = FaultPlan(seed=3).add_bit_rot(save_index=1, n_bytes=2)
            controller = StorageFaultController(plan)
            store = CheckpointStore(root, hooks_factory=controller.hooks_for)
            _fill(store, [1, 2])
            log = [
                (idx, kind, {k: v for k, v in detail.items() if k != "file"})
                for idx, kind, detail in controller.log
            ]
            return log, (root / "gen-00000002.npz").read_bytes()

        log_a, bytes_a = rot(tmp_path / "a")
        log_b, bytes_b = rot(tmp_path / "b")
        assert log_a == log_b  # same plan, same damaged positions
        assert bytes_a == bytes_b


class TestTmpWriterCollision:
    def test_interleaved_writers_use_distinct_temp_files(self, tmp_path):
        """Two writers saving to the same destination must never share a
        temp file — the second writer's partial bytes would be swapped
        into the first writer's os.replace."""
        dest = tmp_path / "ckpt.npz"
        tmp_names = []

        def inner_hook(point, path):
            if point == "save:tmp_written":
                tmp_names.append(path.name)

        def outer_hook(point, path):
            if point == "save:tmp_written":
                tmp_names.append(path.name)
                if len(tmp_names) == 1:
                    # A second writer completes a full save to the same
                    # destination while the first sits in its tmp window.
                    save_checkpoint(dest, _model(seed=9), step=9, hooks=inner_hook)

        save_checkpoint(dest, _model(seed=1), step=1, hooks=outer_hook)
        assert len(tmp_names) == 2 and tmp_names[0] != tmp_names[1]
        # The first writer finished last; its content won the replace
        # and is intact (no torn mix of the two writers).
        assert verify_checkpoint(dest)["step"] == 1
        assert not [p for p in tmp_path.iterdir() if ".tmp." in p.name]


class TestFsckStore:
    def test_clean_store_scans_clean(self, tmp_path):
        _fill(CheckpointStore(tmp_path), [1, 2])
        verdicts = fsck_store(tmp_path)
        assert all(v.status == "ok" for v in verdicts)

    def test_scan_reports_and_repair_quarantines(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _fill(store, [1, 2])
        _flip_byte(tmp_path / store.latest().file)

        scan = {v.path: v for v in fsck_store(tmp_path)}
        assert scan[str(tmp_path / "gen-00000002.npz")].status == "corrupt"

        fsck_store(tmp_path, repair=True)
        assert (tmp_path / "quarantine" / "gen-00000002.npz").exists()
        # Post-repair the store is healthy again.
        assert all(v.status == "ok" for v in fsck_store(tmp_path))
        assert CheckpointStore(tmp_path).load_latest(_model(seed=5)).step == 1

    def test_repair_adopts_verified_orphans(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _fill(store, [1])
        # A crash after archive replace but before the manifest update.
        orphan = _model(seed=2)
        save_checkpoint(tmp_path / "gen-00000002.npz", orphan, step=2)

        scan = {v.path: v for v in fsck_store(tmp_path)}
        assert scan[str(tmp_path / "gen-00000002.npz")].status == "orphan"

        verdicts = fsck_store(tmp_path, repair=True)
        assert any(v.status == "adopted" for v in verdicts)
        fresh = _model(seed=5)
        gen = CheckpointStore(tmp_path).load_latest(fresh)
        assert gen.gen == 2 and gen.step == 2
        assert np.array_equal(_params(fresh), _params(orphan))

    def test_repair_rebuilds_garbage_manifest_and_sweeps_tmps(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _fill(store, [1, 2])
        (tmp_path / MANIFEST_NAME).write_text("][")
        stray = tmp_path / ".gen-00000009.tmp.1234-0.npz"
        stray.write_bytes(b"partial")

        verdicts = fsck_store(tmp_path, repair=True)
        statuses = {v.status for v in verdicts}
        assert "rebuilt" in statuses and "swept" in statuses
        assert not stray.exists()
        assert [g.gen for g in CheckpointStore(tmp_path).generations()] == [1, 2]


def _write_ledger(path, n_steps=3):
    w = LedgerConfig(path).build()
    w.bind(kind="test")
    for i in range(n_steps):
        w.record_step(i, loss=1.0 / (i + 1), wire_bytes=100.0, dense_bytes=400.0)
    w.close()
    return path


class TestLedgerFsck:
    def test_complete_ledger_is_ok(self, tmp_path):
        p = _write_ledger(tmp_path / "run.ledger")
        assert fsck_ledger(p).status == "ok"
        assert fsck_ledger_file(p).status == "ok"

    def test_torn_tail_repaired_to_the_written_final(self, tmp_path):
        """The synthesized final must match what close() would have
        written, byte for byte, modulo the ``repaired`` marker."""
        p = _write_ledger(tmp_path / "run.ledger")
        intact = load_ledger(p)
        with open(p, "r+b") as fh:
            fh.truncate(p.stat().st_size - 30)  # tear the final record

        result = fsck_ledger(p, repair=True)
        assert result.status == "repaired"
        assert result.synthesized_final
        assert (tmp_path / "run.ledger.pre-fsck").exists()

        repaired = load_ledger(p)
        final = dict(repaired.final)
        assert final.pop("repaired") is True
        assert final == intact.final
        assert repaired.steps == intact.steps

    def test_scan_mode_reports_without_writing(self, tmp_path):
        p = _write_ledger(tmp_path / "run.ledger")
        with open(p, "r+b") as fh:
            fh.truncate(p.stat().st_size - 30)
        before = p.read_bytes()
        verdict = fsck_ledger_file(p)
        assert verdict.status == "corrupt"
        assert p.read_bytes() == before

    def test_mid_file_corruption_is_unrepairable(self, tmp_path):
        p = _write_ledger(tmp_path / "run.ledger")
        lines = p.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # damage an interior record
        p.write_text("\n".join(lines) + "\n")
        result = fsck_ledger(p, repair=True)
        assert result.status == "unrepairable"
        assert not (tmp_path / "run.ledger.pre-fsck").exists()

    def test_missing_manifest_is_unrepairable(self, tmp_path):
        p = tmp_path / "run.ledger"
        p.write_text(json.dumps({"step": 0, "loss": 1.0}) + "\n")
        assert fsck_ledger(p).status == "unrepairable"


class TestStreamMode:
    def test_killed_stream_is_a_repairable_crash_artifact(self, tmp_path):
        p = tmp_path / "run.ledger"
        w = LedgerConfig(p, stream=True).build()
        w.bind(kind="test")
        w.record_step(0, loss=1.0)
        w.record_step(1, loss=0.5)
        # The process dies here: no close(), no final record.
        result = fsck_ledger(p, repair=True)
        assert result.status == "repaired" and result.synthesized_final
        ledger = load_ledger(p)
        assert len(ledger.steps) == 2
        assert ledger.final["final_loss"] == 0.5
        assert ledger.final["repaired"] is True

    def test_completed_stream_is_byte_identical_to_buffered(self, tmp_path):
        def run(path, stream):
            w = LedgerConfig(path, stream=stream).build()
            w.bind(kind="test")
            for i in range(3):
                w.record_step(i, loss=1.0 / (i + 1))
            w.close()
            return load_ledger(path).digest()

        assert run(tmp_path / "a.ledger", True) == run(tmp_path / "b.ledger", False)


class TestDiffGating:
    def test_store_summary_surfaces_in_diff_metrics(self):
        from repro.obsv import RunLedger, diff_ledgers, summarize

        manifest = {"store": {"fallbacks": 1, "quarantined": 1, "repairs": 0}}
        ledger = RunLedger(
            manifest=manifest, steps=[], final={"steps": 1, "final_loss": 1.0}
        )
        summary = dict(summarize(ledger))
        assert summary["store_fallbacks"] == 1.0
        assert summary["store_quarantined"] == 1.0

        clean = RunLedger(manifest={}, steps=[], final={"steps": 1, "final_loss": 1.0})
        diff = diff_ledgers(clean, ledger)
        assert not diff.ok and "store_fallbacks" in [r.metric for r in diff.regressions]

    def test_repaired_final_gates_against_an_intact_baseline(self):
        from repro.obsv import RunLedger, diff_ledgers

        base = RunLedger(manifest={}, steps=[], final={"steps": 1, "final_loss": 1.0})
        cand = RunLedger(
            manifest={},
            steps=[],
            final={"steps": 1, "final_loss": 1.0, "repaired": True},
        )
        diff = diff_ledgers(base, cand)
        assert not diff.ok
        assert "ledger_repaired" in [r.metric for r in diff.regressions]


class TestTrainerIntegration:
    def _trainer(self, store=None, seed=0):
        from repro.core import AdaptiveCompso, StepLrSchedule
        from repro.data import make_image_data
        from repro.distributed import SimCluster
        from repro.kfac_dist import DistributedKfacTrainer
        from repro.train import ClassificationTask

        data = make_image_data(120, n_classes=4, size=8, noise=0.6, seed=seed)
        task = ClassificationTask(data)
        cluster = SimCluster(1, 2, seed=seed)
        model = resnet_proxy(n_classes=4, channels=8, rng=seed + 3)
        compressor = AdaptiveCompso(StepLrSchedule(4), seed=seed)
        return DistributedKfacTrainer(
            model, task, cluster, lr=0.05, inv_update_freq=3, compressor=compressor,
            checkpoint_store=store,
        )

    def test_save_state_requires_a_target(self):
        tr = self._trainer()
        with pytest.raises(ValueError, match="checkpoint_store"):
            tr.save_state()

    def test_store_round_trip_restores_trainer_clock(self, tmp_path):
        tr = self._trainer(CheckpointStore(tmp_path))
        tr.train(iterations=2, batch_size=16)
        tr.save_state()

        tr2 = self._trainer(CheckpointStore(tmp_path), seed=0)
        gen = tr2.restore_latest()
        assert gen.step == 2 and tr2.t == 2
        assert np.array_equal(_params(tr2.model), _params(tr.model))

    def test_corrupt_newest_falls_back_then_replays_bit_identically(self, tmp_path):
        tr = self._trainer(CheckpointStore(tmp_path))
        tr.train(iterations=2, batch_size=16)
        tr.save_state()
        tr.train(iterations=2, batch_size=16)
        tr.save_state()
        reference = _params(tr.model).copy()
        _flip_byte(tmp_path / "gen-00000002.npz")

        tr2 = self._trainer(CheckpointStore(tmp_path), seed=0)
        gen = tr2.restore_latest()
        assert gen.step == 2  # fell back one generation
        assert tr2.checkpoint_store.summary()["fallbacks"] == 1
        tr2.train(iterations=2, batch_size=16)  # replay the lost steps
        assert np.array_equal(_params(tr2.model), reference)

    def test_healthy_store_is_invisible_in_run_artifacts(self, tmp_path):
        store = CheckpointStore(tmp_path)
        tr = self._trainer(store)
        plain = self._trainer()
        tr.train(iterations=3, batch_size=16)
        tr.save_state()
        plain.train(iterations=3, batch_size=16)
        assert np.array_equal(_params(tr.model), _params(plain.model))
        assert store.abnormal_events() == []
