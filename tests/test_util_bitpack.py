"""Bit-packing round trips and properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitpack import (
    pack_bitmap,
    pack_uints,
    required_width,
    unpack_bitmap,
    unpack_uints,
)


class TestRequiredWidth:
    def test_zero_needs_one_bit(self):
        assert required_width(0) == 1

    @pytest.mark.parametrize("value,width", [(1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9), (2**31 - 1, 31)])
    def test_known_widths(self, value, width):
        assert required_width(value) == width

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            required_width(-1)


class TestPackUints:
    @pytest.mark.parametrize("width", [1, 3, 7, 8, 11, 16, 32])
    def test_roundtrip_random(self, rng, width):
        values = rng.integers(0, 1 << width, 1000).astype(np.uint64)
        blob = pack_uints(values, width)
        out = unpack_uints(blob, width, 1000)
        assert np.array_equal(out, values.astype(np.uint32))

    def test_packed_size_is_minimal(self, rng):
        values = rng.integers(0, 8, 1000).astype(np.uint64)  # 3 bits each
        blob = pack_uints(values, 3)
        assert len(blob) == (1000 * 3 + 7) // 8

    def test_empty(self):
        assert pack_uints(np.empty(0, dtype=np.uint64), 5) == b""
        assert unpack_uints(b"", 5, 0).size == 0

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_uints(np.array([8], dtype=np.uint64), 3)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            pack_uints(np.array([1], dtype=np.uint64), 0)
        with pytest.raises(ValueError):
            pack_uints(np.array([1], dtype=np.uint64), 33)

    @given(
        st.lists(st.integers(min_value=0, max_value=2**16 - 1), max_size=300),
        st.integers(min_value=16, max_value=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values, width):
        arr = np.array(values, dtype=np.uint64)
        out = unpack_uints(pack_uints(arr, width), width, len(values))
        assert np.array_equal(out, arr.astype(np.uint32))


class TestBitmap:
    def test_roundtrip(self, rng):
        mask = rng.random(777) < 0.3
        assert np.array_equal(unpack_bitmap(pack_bitmap(mask), 777), mask)

    def test_density_preserved(self, rng):
        mask = rng.random(10_000) < 0.15
        out = unpack_bitmap(pack_bitmap(mask), 10_000)
        assert out.sum() == mask.sum()

    def test_empty(self):
        assert unpack_bitmap(b"", 0).size == 0

    @given(st.lists(st.booleans(), max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, bits):
        mask = np.array(bits, dtype=bool)
        assert np.array_equal(unpack_bitmap(pack_bitmap(mask), len(bits)), mask)
