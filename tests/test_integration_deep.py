"""Deeper integration scenarios: mini-ResNet under distributed K-FAC,
factor compression end to end, checkpoint/resume mid-training, and
determinism across the full pipeline."""

import numpy as np
import pytest

from repro.core import AdaptiveCompso, CompsoCompressor, FactorCompressor, StepLrSchedule
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import mini_resnet
from repro.optim import Kfac
from repro.train import ClassificationTask, train_single
from repro.util import load_checkpoint, save_checkpoint


def _task(seed=0):
    return ClassificationTask(make_image_data(400, n_classes=5, size=8, noise=0.45, seed=seed))


class TestMiniResNetDistributed:
    def test_kfac_compso_on_residual_network(self):
        """The full pipeline on a model with projection shortcuts and
        realistic layer-size diversity."""
        task = _task()
        model = mini_resnet(5, "small", rng=3)
        tr = DistributedKfacTrainer(
            model,
            task,
            SimCluster(1, 4, seed=0),
            lr=0.05,
            inv_update_freq=5,
            compressor=AdaptiveCompso(StepLrSchedule(10)),
            factor_compressor=FactorCompressor(1e-3),
        )
        h = tr.train(iterations=20, batch_size=64, eval_every=20)
        assert h.final_metric() > 70.0
        assert tr.mean_compression_ratio() > 1.0
        assert np.mean(tr.factor_ratios) > 1.0

    def test_all_kfac_layers_owned_and_preconditioned(self):
        task = _task()
        model = mini_resnet(5, "deep", rng=3)
        tr = DistributedKfacTrainer(model, task, SimCluster(1, 4, seed=0), lr=0.05)
        tr.train(iterations=2, batch_size=32)
        assert len(tr.owners) == len(model.kfac_layers())
        for i in range(len(tr.owners)):
            assert tr.kfac.state[i].ready


class TestCheckpointResume:
    def test_resume_continues_training_seamlessly(self, tmp_path):
        """Train 10 iters, checkpoint, train 10 more; vs fresh 20 — the
        resumed model must be at least as good as the 10-iter one and the
        restored factors must let K-FAC keep converging."""
        task = _task()
        model = mini_resnet(5, "small", rng=3)
        kfac = Kfac(model, lr=0.05, inv_update_freq=5)
        h1 = train_single(model, task, kfac, iterations=10, batch_size=64, eval_every=10, seed=0)
        path = tmp_path / "mid.npz"
        save_checkpoint(path, model, kfac)

        model2 = mini_resnet(5, "small", rng=999)  # different init
        kfac2 = Kfac(model2, lr=0.05, inv_update_freq=5)
        load_checkpoint(path, model2, kfac2)
        h2 = train_single(model2, task, kfac2, iterations=10, batch_size=64, eval_every=10, seed=1)
        assert h2.losses[0] <= h1.losses[0]  # starts from the trained state
        assert h2.final_metric() >= h1.final_metric() - 5.0


class TestDeterminism:
    def test_full_pipeline_deterministic(self):
        """Same seeds everywhere -> bit-identical losses, ratios, clocks."""

        def run():
            task = _task()
            model = mini_resnet(5, "small", rng=3)
            cluster = SimCluster(1, 4, seed=0)
            tr = DistributedKfacTrainer(
                model, task, cluster, lr=0.05, inv_update_freq=5,
                compressor=CompsoCompressor(4e-3, 4e-3, seed=11),
            )
            h = tr.train(iterations=8, batch_size=32, seed=0)
            return h.losses, tr.bytes_on_wire, cluster.time

        a = run()
        b = run()
        assert a[0] == b[0]
        assert a[1] == b[1]
        assert a[2] == pytest.approx(b[2])

    def test_different_compressor_seed_same_convergence_class(self):
        """SR randomness changes bits but not convergence."""

        def run(seed):
            task = _task()
            model = mini_resnet(5, "small", rng=3)
            tr = DistributedKfacTrainer(
                model, task, SimCluster(1, 2, seed=0), lr=0.05, inv_update_freq=5,
                compressor=CompsoCompressor(4e-3, 4e-3, seed=seed),
            )
            return tr.train(iterations=12, batch_size=32, eval_every=12, seed=0).final_metric()

        accs = [run(s) for s in (1, 2, 3)]
        assert max(accs) - min(accs) < 15.0
