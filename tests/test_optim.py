"""First-order optimizers, LR schedules, and the K-FAC optimizer."""

import numpy as np
import pytest

from repro import nn
from repro.optim import Adam, ConstantLr, Kfac, Lamb, Sgd, SmoothLr, StepLr


def _quadratic_problem(rng, n=200, d=10):
    """Linear regression: analytically solvable, good optimizer testbed."""
    X = rng.standard_normal((n, d)).astype(np.float32)
    w_true = rng.standard_normal(d).astype(np.float32)
    y = X @ w_true
    return X, y[:, None], w_true


def _run(optimizer_factory, rng, iters=200):
    X, y, w_true = _quadratic_problem(rng)
    model = nn.Sequential(nn.Linear(10, 1, bias=False, rng=1))
    opt = optimizer_factory(model)
    for _ in range(iters):
        out = model(X)
        loss, dl = nn.mse_loss(out, y)
        opt.zero_grad()
        model.backward(dl)
        opt.step()
    return loss, model


class TestFirstOrder:
    def test_sgd_converges(self, rng):
        loss, _ = _run(lambda m: Sgd(m.parameters(), lr=0.05, momentum=0.9), rng)
        assert loss < 1e-3

    def test_adam_converges(self, rng):
        loss, _ = _run(lambda m: Adam(m.parameters(), lr=0.05), rng)
        assert loss < 1e-3

    def test_lamb_converges(self, rng):
        loss, _ = _run(lambda m: Lamb(m.parameters(), lr=0.02), rng)
        assert loss < 1e-2

    def test_momentum_accelerates(self, rng):
        loss_mom, _ = _run(lambda m: Sgd(m.parameters(), lr=0.02, momentum=0.9), rng, iters=50)
        loss_plain, _ = _run(lambda m: Sgd(m.parameters(), lr=0.02, momentum=0.0), rng, iters=50)
        assert loss_mom < loss_plain

    def test_weight_decay_shrinks_weights(self, rng):
        _, m1 = _run(lambda m: Sgd(m.parameters(), lr=0.01, weight_decay=0.5), rng, iters=100)
        _, m2 = _run(lambda m: Sgd(m.parameters(), lr=0.01, weight_decay=0.0), rng, iters=100)
        n1 = np.linalg.norm(m1.parameters()[0].data)
        n2 = np.linalg.norm(m2.parameters()[0].data)
        assert n1 < n2

    def test_zero_grad(self, rng):
        model = nn.Sequential(nn.Linear(3, 2, rng=1))
        opt = Sgd(model.parameters(), lr=0.1)
        model.parameters()[0].grad += 1.0
        opt.zero_grad()
        assert np.all(model.parameters()[0].grad == 0)


class TestSchedulers:
    def test_step_lr_drops(self):
        s = StepLr(1.0, [10, 20], gamma=0.1)
        assert s.lr_at(0) == 1.0
        assert s.lr_at(10) == pytest.approx(0.1)
        assert s.lr_at(25) == pytest.approx(0.01)
        assert s.first_drop == 10

    def test_step_lr_requires_sorted_milestones(self):
        with pytest.raises(ValueError):
            StepLr(1.0, [20, 10])

    def test_smooth_lr_warmup_then_cosine(self):
        s = SmoothLr(1.0, total_iterations=100, warmup=10)
        assert s.lr_at(0) < s.lr_at(9)
        assert s.lr_at(9) == pytest.approx(1.0)
        assert s.lr_at(55) == pytest.approx(0.5, abs=0.02)
        assert s.lr_at(99) < 0.01

    def test_smooth_lr_monotone_after_warmup(self):
        s = SmoothLr(1.0, 200, warmup=20)
        lrs = [s.lr_at(t) for t in range(20, 200)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_constant(self):
        assert ConstantLr(0.3).lr_at(12345) == 0.3

    def test_smooth_validation(self):
        with pytest.raises(ValueError):
            SmoothLr(1.0, 0)
        with pytest.raises(ValueError):
            SmoothLr(1.0, 10, warmup=10)


class TestKfac:
    def _classification_setup(self, rng):
        n, d, c = 400, 16, 5
        W = rng.standard_normal((c, d))
        X = rng.standard_normal((n, d)).astype(np.float32)
        y = (X @ W.T).argmax(1)
        model = nn.Sequential(nn.Linear(d, 24, rng=2), nn.Tanh(), nn.Linear(24, c, rng=3))
        return model, X, y

    def _train_kfac(self, model, X, y, rng, iters=50, **kw):
        opt = Kfac(model, lr=0.05, damping=1e-2, inv_update_freq=5, **kw)
        losses = []
        for _ in range(iters):
            idx = rng.integers(0, len(y), 64)
            out = model(X[idx])
            loss, dl = nn.softmax_cross_entropy(out, y[idx])
            opt.zero_grad()
            model.backward(dl)
            opt.step()
            losses.append(loss)
        return losses

    def test_converges_faster_than_sgd(self, rng):
        model_k, X, y = self._classification_setup(rng)
        k_losses = self._train_kfac(model_k, X, y, np.random.default_rng(0))
        model_s, _, _ = self._classification_setup(np.random.default_rng(12345))
        opt = Sgd(model_s.parameters(), lr=0.05, momentum=0.9)
        s_losses = []
        srng = np.random.default_rng(0)
        for _ in range(50):
            idx = srng.integers(0, len(y), 64)
            out = model_s(X[idx])
            loss, dl = nn.softmax_cross_entropy(out, y[idx])
            opt.zero_grad()
            model_s.backward(dl)
            opt.step()
            s_losses.append(loss)
        assert np.mean(k_losses[-10:]) < np.mean(s_losses[-10:])

    def test_identity_factors_reduce_to_scaled_gradient(self, rng):
        """With A = G = I the preconditioner is 1/(1+damping) * I."""
        model = nn.Sequential(nn.Linear(4, 3, bias=False, rng=1))
        opt = Kfac(model, lr=0.1, damping=0.5, kl_clip=0)
        layer = model.kfac_layers()[0]
        opt.accumulate_factors(0, np.eye(4), np.eye(3))
        opt.compute_eigen(0)
        layer.weight.grad = rng.standard_normal((3, 4)).astype(np.float32)
        pg = opt.precondition(0)
        assert np.allclose(pg, layer.weight.grad / 1.5, atol=1e-5)

    def test_eigen_flat_roundtrip(self, rng):
        model = nn.Sequential(nn.Linear(4, 3, rng=1))
        opt = Kfac(model, lr=0.1)
        A = rng.standard_normal((5, 5))
        G = rng.standard_normal((3, 3))
        opt.accumulate_factors(0, A @ A.T, G @ G.T)
        opt.compute_eigen(0)
        flat = opt.eigen_flat(0)
        QA, vA = opt.state[0].QA.copy(), opt.state[0].vA.copy()
        opt.state[0].QA = None
        opt.set_eigen_flat(0, flat)
        assert np.allclose(opt.state[0].QA, QA, atol=1e-5)
        assert np.allclose(opt.state[0].vA, vA, atol=1e-4)

    def test_factor_running_average(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=1))
        opt = Kfac(model, factor_decay=0.5)
        opt.accumulate_factors(0, np.full((3, 3), 1.0), np.full((2, 2), 1.0))
        opt.accumulate_factors(0, np.full((3, 3), 3.0), np.full((2, 2), 3.0))
        assert np.allclose(opt.state[0].A, 2.0)  # 0.5*1 + 0.5*3

    def test_kl_clip_bounds_update(self, rng):
        model = nn.Sequential(nn.Linear(4, 3, bias=False, rng=1))
        opt = Kfac(model, lr=1.0, damping=1e-8, kl_clip=1e-6, momentum=0)
        layer = model.kfac_layers()[0]
        opt.accumulate_factors(0, np.eye(4) * 1e-6, np.eye(3) * 1e-6)
        opt.compute_eigen(0)
        layer.weight.grad = np.full((3, 4), 10.0, dtype=np.float32)
        before = layer.weight.data.copy()
        pg = opt.precondition(0)
        unclipped_norm = float(np.linalg.norm(pg))
        opt.apply({0: pg})
        step_norm = float(np.linalg.norm(layer.weight.data - before))
        # Tiny factors make the raw preconditioned step enormous; the KL
        # clip must shrink it by orders of magnitude.
        assert unclipped_norm > 1e8
        assert step_norm < unclipped_norm * 1e-6

    def test_non_kfac_params_get_sgd_update(self, rng):
        model = nn.Sequential(nn.Linear(4, 4, rng=1), nn.LayerNorm(4), nn.Linear(4, 2, rng=2))
        opt = Kfac(model, lr=0.1, momentum=0)
        assert len(opt.other_params) == 2  # LayerNorm gamma/beta
        gamma = opt.other_params[0]
        gamma.grad += 1.0
        before = gamma.data.copy()
        opt.apply({})
        assert np.allclose(gamma.data, before - 0.1)

    def test_gradient_sizes(self):
        model = nn.Sequential(nn.Linear(4, 3, rng=1), nn.ReLU(), nn.Linear(3, 2, bias=False, rng=2))
        opt = Kfac(model)
        assert opt.gradient_sizes() == [3 * 5, 2 * 3]

    def test_invalid_config(self):
        model = nn.Sequential(nn.Linear(2, 2))
        with pytest.raises(ValueError):
            Kfac(model, factor_decay=0.0)
        with pytest.raises(ValueError):
            Kfac(model, inv_update_freq=0)
