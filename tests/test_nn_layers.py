"""Per-layer gradient checks and K-FAC statistics capture."""

import numpy as np
import pytest

from repro import nn
from tests.conftest import assert_gradcheck


def _ce_loss(targets):
    return lambda y: nn.softmax_cross_entropy(y, targets)


class TestLinear:
    def test_gradcheck(self, rng):
        x = rng.standard_normal((8, 10))
        t = rng.integers(0, 4, 8)
        model = nn.Sequential(nn.Linear(10, 4, rng=1))
        assert_gradcheck(model, x, _ce_loss(t))

    def test_kfac_stats_shapes(self, rng):
        lin = nn.Linear(10, 4, rng=1)
        x = rng.standard_normal((8, 10)).astype(np.float32)
        y = lin(x)
        lin.backward(np.ones_like(y))
        assert lin.last_a.shape == (8, 11)  # bias column appended
        assert lin.last_g.shape == (8, 4)
        assert np.allclose(lin.last_a[:, -1], 1.0)

    def test_kfac_g_scaled_by_batch(self, rng):
        lin = nn.Linear(5, 3, rng=1)
        x = rng.standard_normal((4, 5)).astype(np.float32)
        g = rng.standard_normal((4, 3)).astype(np.float32)
        lin(x)
        lin.backward(g)
        assert np.allclose(lin.last_g, g * 4)

    def test_no_stats_in_eval_mode(self, rng):
        lin = nn.Linear(5, 3, rng=1)
        lin.eval()
        x = rng.standard_normal((4, 5)).astype(np.float32)
        lin(x)
        lin.backward(np.ones((4, 3), dtype=np.float32))
        assert lin.last_a is None

    def test_kfac_weight_grad_roundtrip(self, rng):
        lin = nn.Linear(5, 3, rng=1)
        x = rng.standard_normal((4, 5)).astype(np.float32)
        lin(x)
        lin.backward(np.ones((4, 3), dtype=np.float32))
        combined = lin.kfac_weight_grad()
        assert combined.shape == (3, 6)
        lin.set_kfac_weight_grad(combined * 2)
        assert np.allclose(lin.kfac_weight_grad(), combined * 2)

    def test_leading_dims_flattened(self, rng):
        lin = nn.Linear(6, 2, rng=1)
        x = rng.standard_normal((3, 5, 6)).astype(np.float32)
        y = lin(x)
        assert y.shape == (3, 5, 2)
        gx = lin.backward(np.ones_like(y))
        assert gx.shape == x.shape

    def test_no_bias(self, rng):
        lin = nn.Linear(5, 3, bias=False, rng=1)
        x = rng.standard_normal((4, 5)).astype(np.float32)
        lin(x)
        lin.backward(np.ones((4, 3), dtype=np.float32))
        assert lin.last_a.shape == (4, 5)
        assert lin.kfac_weight_grad().shape == (3, 5)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_gradcheck(self, rng, stride, padding):
        x = rng.standard_normal((3, 2, 8, 8))
        t = rng.integers(0, 3, 3)
        model = nn.Sequential(
            nn.Conv2d(2, 4, 3, stride=stride, padding=padding, rng=1),
            nn.GlobalAvgPool2d(),
            nn.Linear(4, 3, rng=2),
        )
        assert_gradcheck(model, x, _ce_loss(t))

    def test_output_shape(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=1)
        y = conv(rng.standard_normal((2, 3, 16, 16)).astype(np.float32))
        assert y.shape == (2, 8, 8, 8)

    def test_matches_direct_convolution(self, rng):
        conv = nn.Conv2d(1, 1, 3, padding=0, bias=False, rng=1)
        x = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
        y = conv(x)
        w = conv.weight.data[0, 0]
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = (x[0, 0, i : i + 3, j : j + 3] * w).sum()
        assert np.allclose(y[0, 0], expected, atol=1e-5)

    def test_kfac_stats_spatial_samples(self, rng):
        conv = nn.Conv2d(2, 4, 3, padding=1, rng=1)
        x = rng.standard_normal((3, 2, 6, 6)).astype(np.float32)
        y = conv(x)
        conv.backward(np.ones_like(y))
        assert conv.last_a.shape == (3 * 36, 2 * 9 + 1)
        assert conv.last_g.shape == (3 * 36, 4)

    def test_im2col_col2im_adjoint(self, rng):
        """col2im must be the exact adjoint of im2col."""
        from repro.nn.conv import col2im, im2col

        x = rng.standard_normal((2, 3, 7, 7))
        cols = im2col(x, 3, 3, 2, 1)
        u = rng.standard_normal(cols.shape)
        v = rng.standard_normal(x.shape)
        lhs = (im2col(v, 3, 3, 2, 1) * u).sum()
        rhs = (col2im(u, v.shape, 3, 3, 2, 1) * v).sum()
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestActivations:
    @pytest.mark.parametrize("act", [nn.GELU, nn.Tanh, nn.Sigmoid])
    def test_gradcheck_smooth(self, rng, act):
        x = rng.standard_normal((6, 5))
        t = rng.integers(0, 3, 6)
        model = nn.Sequential(nn.Linear(5, 8, rng=1), act(), nn.Linear(8, 3, rng=2))
        assert_gradcheck(model, x, _ce_loss(t))

    def test_relu_gradient_mask(self, rng):
        r = nn.ReLU()
        x = np.array([[-1.0, 2.0, -3.0, 4.0]])
        r(x)
        g = r.backward(np.ones_like(x))
        assert np.array_equal(g, [[0.0, 1.0, 0.0, 1.0]])

    def test_gelu_matches_reference_points(self):
        g = nn.GELU()
        assert g(np.array([0.0]))[0] == pytest.approx(0.0)
        assert g(np.array([1.0]))[0] == pytest.approx(0.8412, abs=1e-3)


class TestNormalisation:
    def test_layernorm_gradcheck(self, rng):
        x = rng.standard_normal((6, 5))
        t = rng.integers(0, 3, 6)
        model = nn.Sequential(nn.Linear(5, 8, rng=1), nn.LayerNorm(8), nn.Linear(8, 3, rng=2))
        assert_gradcheck(model, x, _ce_loss(t))

    def test_layernorm_output_standardised(self, rng):
        ln = nn.LayerNorm(64)
        x = rng.standard_normal((10, 64)).astype(np.float32) * 5 + 3
        y = ln(x)
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-5)
        assert np.allclose(y.std(axis=-1), 1.0, atol=1e-2)

    def test_batchnorm_train_vs_eval(self, rng):
        bn = nn.BatchNorm2d(4)
        x = rng.standard_normal((8, 4, 5, 5)).astype(np.float32) * 3 + 1
        y_train = bn(x)
        assert abs(float(y_train.mean())) < 1e-5
        for _ in range(50):
            bn(x)
        bn.eval()
        y_eval = bn(x)
        assert abs(float(y_eval.mean())) < 0.2  # running stats converged

    def test_batchnorm_gradcheck(self, rng):
        x = rng.standard_normal((5, 2, 4, 4))
        t = rng.integers(0, 3, 5)
        model = nn.Sequential(
            nn.Conv2d(2, 3, 3, padding=1, rng=1),
            nn.BatchNorm2d(3),
            nn.GlobalAvgPool2d(),
            nn.Linear(3, 3, rng=2),
        )
        assert_gradcheck(model, x, _ce_loss(t), tol=1e-2)


class TestPooling:
    def test_maxpool_forward(self):
        mp = nn.MaxPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        y = mp(x)
        assert np.array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self):
        mp = nn.MaxPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        mp(x)
        g = mp.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        assert g.sum() == 4
        assert g[0, 0, 1, 1] == 1  # position of 5

    def test_avgpool_backward_uniform(self):
        ap = nn.AvgPool2d(2)
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        ap(x)
        g = ap.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        assert np.allclose(g, 0.25)

    def test_pool_requires_divisible_dims(self):
        with pytest.raises(ValueError):
            nn.MaxPool2d(3)(np.ones((1, 1, 4, 4)))


class TestContainers:
    def test_residual_gradcheck(self, rng):
        x = rng.standard_normal((5, 6))
        t = rng.integers(0, 3, 5)
        model = nn.Sequential(
            nn.Linear(6, 6, rng=1),
            nn.Residual(nn.Sequential(nn.Linear(6, 6, rng=2), nn.Tanh())),
            nn.Linear(6, 3, rng=3),
        )
        assert_gradcheck(model, x, _ce_loss(t))

    def test_sequential_indexing(self):
        s = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert len(s) == 2
        assert isinstance(s[1], nn.Tanh)

    def test_parameter_discovery_recursive(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.Residual(nn.Sequential(nn.Linear(4, 4))))
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == 4  # two weights + two biases
        assert any("inner" in n for n in names)

    def test_kfac_layers_in_order(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Conv2d(1, 1, 3))
        layers = model.kfac_layers()
        assert len(layers) == 2
        assert isinstance(layers[0], nn.Linear)
        assert isinstance(layers[1], nn.Conv2d)


class TestEmbeddingAttention:
    def test_embedding_lookup(self, rng):
        emb = nn.Embedding(10, 4, rng=1)
        ids = np.array([[1, 2], [3, 1]])
        y = emb(ids)
        assert y.shape == (2, 2, 4)
        assert np.array_equal(y[0, 0], emb.weight.data[1])

    def test_embedding_grad_accumulates_repeats(self):
        emb = nn.Embedding(10, 4, rng=1)
        ids = np.array([[1, 1, 1]])
        emb(ids)
        emb.backward(np.ones((1, 3, 4), dtype=np.float32))
        assert np.allclose(emb.weight.grad[1], 3.0)

    def test_embedding_rejects_float_ids(self, rng):
        with pytest.raises(TypeError):
            nn.Embedding(10, 4)(rng.standard_normal((2, 3)))

    def test_attention_gradcheck(self, rng):
        x = rng.standard_normal((2, 4, 8))
        t = rng.integers(0, 3, (2, 4))

        class Wrap(nn.Module):
            def __init__(self):
                super().__init__()
                self.attn = nn.MultiHeadSelfAttention(8, 2, rng=1)
                self.fc = nn.Linear(8, 3, rng=2)

            def forward(self, x):
                return self.fc(self.attn(x))

            def backward(self, g):
                return self.attn.backward(self.fc.backward(g))

        assert_gradcheck(Wrap(), x, _ce_loss(t))

    def test_causal_mask_blocks_future(self, rng):
        attn = nn.MultiHeadSelfAttention(8, 2, causal=True, rng=1)
        x = rng.standard_normal((1, 5, 8)).astype(np.float32)
        y1 = attn(x)
        x2 = x.copy()
        x2[0, 4] += 100.0  # changing the future...
        y2 = attn(x2)
        assert np.allclose(y1[0, :4], y2[0, :4], atol=1e-5)  # ...must not leak back

    def test_dim_head_divisibility(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, 3)
