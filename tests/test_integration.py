"""End-to-end integration: the paper's qualitative claims on proxy workloads.

These tests are slower than unit tests (each trains a model or several);
they pin the *directional* results the paper reports: SR beats RN at the
same bound, looser bounds raise CR but can cost accuracy, COMPSO matches
the no-compression baseline where cruder compression does not, and the
full pipeline (perf model + adaptive schedule + distributed K-FAC)
composes.
"""

import numpy as np
import pytest

from repro.compression import QsgdCompressor, SzCompressor
from repro.core import (
    AdaptiveCompso,
    CompsoCompressor,
    PerformanceModel,
    SmoothLrSchedule,
    StepLrSchedule,
)
from repro.data import make_image_data
from repro.distributed import SLINGSHOT10, SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.optim import StepLr
from repro.train import ClassificationTask


def _train_kfac(compressor, *, iterations=24, seed=0, lr_schedule=None):
    data = make_image_data(500, n_classes=5, size=8, noise=0.45, seed=0)
    task = ClassificationTask(data)
    cluster = SimCluster(1, 4, seed=seed)
    model = resnet_proxy(n_classes=5, channels=8, rng=3)
    tr = DistributedKfacTrainer(
        model,
        task,
        cluster,
        lr=0.05,
        inv_update_freq=5,
        lr_schedule=lr_schedule,
        compressor=compressor,
    )
    h = tr.train(iterations=iterations, batch_size=64, eval_every=iterations, seed=seed)
    return tr, h


class TestPaperClaims:
    def test_compso_matches_baseline_accuracy(self):
        """Fig. 6: KFAC+COMPSO tracks KFAC without compression."""
        _, base = _train_kfac(None)
        _, compso = _train_kfac(CompsoCompressor(4e-3, 4e-3))
        assert compso.final_metric() >= base.final_metric() - 5.0

    def test_very_loose_sz_hurts_accuracy_more_than_compso(self):
        """Fig. 3: SZ at 1E-1 (RN, huge bound) degrades; COMPSO holds."""
        _, base = _train_kfac(None, iterations=20)
        _, sz_loose = _train_kfac(SzCompressor(3e-1), iterations=20)
        _, compso = _train_kfac(CompsoCompressor(4e-3, 4e-3), iterations=20)
        drop_sz = base.final_metric() - sz_loose.final_metric()
        drop_compso = base.final_metric() - compso.final_metric()
        assert drop_compso <= drop_sz + 1.0

    def test_compso_cr_beats_accuracy_preserving_baselines(self, kfac_like_gradient):
        """Section 5.2: COMPSO's ratio tops cuSZ 4E-3 and QSGD 8-bit at
        matched accuracy settings."""
        x = kfac_like_gradient
        compso = CompsoCompressor(4e-3, 4e-3).ratio(x)
        sz = SzCompressor(4e-3).ratio(x)
        qsgd = QsgdCompressor(8).ratio(x)
        assert compso > sz
        assert compso > qsgd

    def test_adaptive_schedule_with_steplr_training(self):
        """Algorithm 1 end to end: aggressive before the LR drop, SR-only
        after, convergence preserved, higher average CR than SR-only."""
        sched = StepLr(0.05, [12], gamma=0.1)
        adaptive = AdaptiveCompso(StepLrSchedule(12))
        tr_a, h_a = _train_kfac(adaptive, lr_schedule=sched)
        sr_only = CompsoCompressor(0.0, 4e-3)
        tr_s, h_s = _train_kfac(sr_only, lr_schedule=sched)
        _, base = _train_kfac(None, lr_schedule=sched)
        assert h_a.final_metric() >= base.final_metric() - 6.0
        assert tr_a.mean_compression_ratio() > tr_s.mean_compression_ratio()

    def test_perf_model_on_real_training_gradients(self):
        """Offline-online mechanism on gradients from an actual run.

        The proxy's gradients are tiny (KBs), so the latency-dominated
        exchange gains nothing from compression — the performance model's
        end-to-end guarantee must *decline* to compress.  Scaled to
        catalog-size gradients, it must accept.
        """
        tr, _ = _train_kfac(None, iterations=3)
        grads = [tr.kfac.precondition(i) for i in range(len(tr.kfac.layers))]
        pm = PerformanceModel(SLINGSHOT10, world_size=64)
        c = CompsoCompressor(4e-3, 4e-3)
        tiny_stats = pm.profile(grads, c, r=0.45, aggregation=4)
        assert not pm.should_compress(tiny_stats)
        # Same value distribution, real-model payload size.
        big_grads = [np.tile(g.ravel(), 4000) for g in grads[:3]]
        big_stats = pm.profile(big_grads, c, r=0.45, aggregation=4)
        assert pm.should_compress(big_stats)
        assert pm.end_to_end_speedup(pm.comm_speedup(big_stats), 0.45) > 1.0

    def test_smooth_schedule_tightens_and_preserves_accuracy(self):
        adaptive = AdaptiveCompso(SmoothLrSchedule(24, z=4))
        _, h = _train_kfac(adaptive)
        _, base = _train_kfac(None)
        assert not adaptive.bounds.filtering  # ended conservative
        assert h.final_metric() >= base.final_metric() - 6.0

    def test_deterministic_replay(self):
        """Same seeds -> bit-identical loss trajectories."""
        _, h1 = _train_kfac(CompsoCompressor(4e-3, 4e-3, seed=1), iterations=6)
        _, h2 = _train_kfac(CompsoCompressor(4e-3, 4e-3, seed=1), iterations=6)
        assert h1.losses == h2.losses
