"""Rounding-mode properties (paper section 4.2) and quantiser bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.compression.quantize import (
    BitBudgetQuantizer,
    ErrorBoundedQuantizer,
    round_nearest,
    round_p05,
    round_stochastic,
)


class TestRoundingModes:
    def test_rn_deterministic(self, rng):
        v = rng.standard_normal(1000) * 10
        assert np.array_equal(round_nearest(v), round_nearest(v))

    def test_rn_error_at_most_half(self, rng):
        v = rng.standard_normal(10_000) * 10
        assert np.abs(round_nearest(v) - v).max() <= 0.5

    def test_sr_error_below_one(self, rng):
        v = rng.standard_normal(10_000) * 10
        assert np.abs(round_stochastic(v, rng) - v).max() < 1.0

    def test_sr_unbiased(self, rng):
        v = np.full(200_000, 3.3)
        r = round_stochastic(v, rng)
        assert abs(r.mean() - 3.3) < 0.01
        assert set(np.unique(r)) <= {3.0, 4.0}

    def test_p05_splits_half_half(self, rng):
        v = np.full(100_000, 7.9)
        r = round_p05(v, rng)
        up = (r == 8.0).mean()
        assert 0.48 < up < 0.52  # P0.5: equal probability regardless of fraction

    def test_p05_keeps_exact_integers(self, rng):
        v = np.arange(100, dtype=float)
        assert np.array_equal(round_p05(v, rng), v)

    def test_sr_probability_matches_fraction(self, rng):
        v = np.full(200_000, 1.25)
        up = (round_stochastic(v, rng) == 2.0).mean()
        assert 0.24 < up < 0.26


class TestErrorDistributionShapes:
    """The section 4.2 finding: RN error is uniform, SR error triangular."""

    @staticmethod
    def _errors(mode_fn, rng, n=200_000):
        v = rng.uniform(-50, 50, n)
        return mode_fn(v, rng) - v

    def test_rn_error_uniform(self, rng):
        err = self._errors(round_nearest, rng)
        # Kolmogorov-Smirnov against U(-0.5, 0.5).
        stat, _ = sps.kstest(err, sps.uniform(loc=-0.5, scale=1.0).cdf)
        assert stat < 0.01

    def test_sr_error_triangular(self, rng):
        err = self._errors(round_stochastic, rng)
        stat_tri, _ = sps.kstest(err, sps.triang(c=0.5, loc=-1.0, scale=2.0).cdf)
        stat_uni, _ = sps.kstest(err, sps.uniform(loc=-1.0, scale=2.0).cdf)
        assert stat_tri < 0.01
        assert stat_tri < stat_uni  # much closer to triangular than uniform

    def test_p05_error_uniform_but_wide(self, rng):
        err = self._errors(round_p05, rng)
        stat, _ = sps.kstest(err, sps.uniform(loc=-1.0, scale=2.0).cdf)
        assert stat < 0.01

    def test_sr_error_zero_mean(self, rng):
        err = self._errors(round_stochastic, rng)
        assert abs(err.mean()) < 5e-3


class TestBitBudgetQuantizer:
    @pytest.mark.parametrize("bits", [2, 4, 8, 16])
    def test_levels_respect_budget(self, bits, rng):
        q = BitBudgetQuantizer(bits, "rn")
        x = rng.standard_normal(10_000).astype(np.float32)
        qt = q.quantize(x)
        assert qt.n_levels <= (1 << bits)

    def test_more_bits_less_error(self, rng):
        x = rng.standard_normal(10_000).astype(np.float32)
        e4 = np.abs(BitBudgetQuantizer(4, "rn").roundtrip(x) - x).max()
        e8 = np.abs(BitBudgetQuantizer(8, "rn").roundtrip(x) - x).max()
        assert e8 < e4

    def test_zero_tensor(self):
        q = BitBudgetQuantizer(8)
        out = q.roundtrip(np.zeros(100, dtype=np.float32))
        assert np.all(out == 0)

    def test_shape_preserved(self, rng):
        x = rng.standard_normal((4, 5, 6)).astype(np.float32)
        assert BitBudgetQuantizer(8).roundtrip(x).shape == (4, 5, 6)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BitBudgetQuantizer(1)
        with pytest.raises(ValueError):
            BitBudgetQuantizer(8, "bogus")


class TestErrorBoundedQuantizer:
    @pytest.mark.parametrize("mode", ["rn", "sr", "p05"])
    def test_bound_holds_absolute(self, mode, rng):
        x = (rng.standard_normal(20_000) * 3).astype(np.float32)
        q = ErrorBoundedQuantizer(1e-2, mode, relative=False)
        err = np.abs(q.roundtrip(x) - x)
        assert err.max() <= 1e-2 * 1.0001

    @pytest.mark.parametrize("mode", ["rn", "sr"])
    def test_bound_holds_relative(self, mode, kfac_like_gradient):
        x = kfac_like_gradient
        q = ErrorBoundedQuantizer(4e-3, mode, relative=True)
        err = np.abs(q.roundtrip(x) - x)
        assert err.max() <= 4e-3 * np.abs(x).max() * 1.0001

    def test_rn_uses_double_step(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        q_rn = ErrorBoundedQuantizer(1e-2, "rn", relative=False)
        q_sr = ErrorBoundedQuantizer(1e-2, "sr", relative=False)
        assert q_rn.step_for(x) == pytest.approx(2 * q_sr.step_for(x))

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            ErrorBoundedQuantizer(0.0)

    @given(st.floats(min_value=1e-4, max_value=0.5))
    @settings(max_examples=20, deadline=None)
    def test_bound_property(self, eb):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(2000).astype(np.float32)
        q = ErrorBoundedQuantizer(eb, "sr", relative=False, seed=rng)
        assert np.abs(q.roundtrip(x) - x).max() <= eb * 1.0001
