"""COMPSO compressor: filter semantics, error bounds, aggregation, encoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compso import CompsoCompressor
from repro.encoders.registry import NVCOMP_CANDIDATES


class TestFilter:
    def test_small_values_zeroed(self, rng):
        x = rng.standard_normal(10_000).astype(np.float32)
        c = CompsoCompressor(eb_f=0.1, eb_q=0.01)
        out = c.roundtrip(x)
        vmax = np.abs(x).max()
        small = np.abs(x) < 0.1 * vmax
        assert np.all(out[small] == 0.0)

    def test_large_values_survive(self, rng):
        x = rng.standard_normal(10_000).astype(np.float32)
        c = CompsoCompressor(eb_f=0.1, eb_q=0.01)
        out = c.roundtrip(x)
        vmax = np.abs(x).max()
        large = np.abs(x) >= 0.1 * vmax
        assert np.all(out[large] != 0.0)

    def test_zero_eb_f_disables_filter(self, rng):
        x = (rng.standard_normal(10_000) * 0.01).astype(np.float32)
        c = CompsoCompressor(eb_f=0.0, eb_q=1e-3)
        ct = c.compress(x)
        assert ct.meta["n_kept"] == x.size

    def test_overall_error_bounded(self, kfac_like_gradient):
        """Both branches respect the bound: filtered values were < eb_f*max,
        kept values are SR-quantised to eb_q*max."""
        x = kfac_like_gradient
        c = CompsoCompressor(eb_f=4e-3, eb_q=4e-3)
        err = np.abs(c.roundtrip(x) - x)
        assert err.max() <= 4e-3 * np.abs(x).max() * 1.0001


class TestCompressionRatio:
    def test_aggressive_beats_sr_only(self, kfac_like_gradient):
        x = kfac_like_gradient
        aggressive = CompsoCompressor(4e-3, 4e-3).ratio(x)
        sr_only = CompsoCompressor(0.0, 4e-3).ratio(x)
        assert aggressive > sr_only

    def test_beats_qsgd8_on_kfac_gradients(self, kfac_like_gradient):
        from repro.compression import QsgdCompressor

        x = kfac_like_gradient
        assert CompsoCompressor(4e-3, 4e-3).ratio(x) > QsgdCompressor(8).ratio(x)

    def test_width_tracks_error_bound(self, rng):
        """Fine-grained bounds drive the code width (byte-aligned for the
        entropy coder); looser bounds never need more bytes per code."""
        x = rng.uniform(-1, 1, 50_000).astype(np.float32)
        tight = CompsoCompressor(0.0, 1e-4).compress(x)  # ~20k bins
        loose = CompsoCompressor(0.0, 1e-2).compress(x)  # ~200 bins
        assert tight.meta["width"] == 16
        assert loose.meta["width"] == 8
        assert loose.nbytes < tight.nbytes

    def test_loose_bound_fits_one_byte_per_code(self, rng):
        x = rng.uniform(-1, 1, 50_000).astype(np.float32)
        ct = CompsoCompressor(0.0, 0.2).compress(x)  # ~10 bins
        assert ct.meta["width"] == 8


class TestRoundtripFidelity:
    @pytest.mark.parametrize("encoder", NVCOMP_CANDIDATES)
    def test_all_encoders_lossless_on_codes(self, encoder, kfac_like_gradient):
        x = kfac_like_gradient[:5000]
        c_ans = CompsoCompressor(4e-3, 4e-3, encoder="ans", seed=7)
        c_other = CompsoCompressor(4e-3, 4e-3, encoder=encoder, seed=7)
        # Same seed -> same SR decisions -> identical reconstruction.
        assert np.array_equal(c_ans.roundtrip(x), c_other.roundtrip(x))

    def test_shape_preserved(self, rng):
        x = rng.standard_normal((13, 17, 3)).astype(np.float32)
        assert CompsoCompressor().roundtrip(x).shape == (13, 17, 3)

    def test_zero_tensor(self):
        out = CompsoCompressor().roundtrip(np.zeros(1000, dtype=np.float32))
        assert np.all(out == 0)

    def test_constant_tensor(self):
        x = np.full(1000, 0.5, dtype=np.float32)
        out = CompsoCompressor(4e-3, 4e-3).roundtrip(x)
        assert np.abs(out - x).max() <= 4e-3 * 0.5 * 1.001

    @given(st.integers(min_value=1, max_value=3000))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_sizes(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n).astype(np.float32)
        c = CompsoCompressor(4e-3, 4e-3, seed=0)
        err = np.abs(c.roundtrip(x) - x)
        assert err.max() <= 4e-3 * np.abs(x).max() * 1.0001


class TestAggregatedPath:
    def test_per_layer_scales_not_mixed(self, rng):
        """Section 4.5: a huge layer must not destroy a tiny layer's accuracy."""
        big = (rng.standard_normal(5000) * 100).astype(np.float32)
        small = (rng.standard_normal(5000) * 1e-4).astype(np.float32)
        c = CompsoCompressor(0.0, 4e-3)
        outs = c.decompress_many(c.compress_many([big, small]))
        assert np.abs(outs[1] - small).max() <= 4e-3 * np.abs(small).max() * 1.0001

    def test_matches_individual_bounds(self, rng):
        tensors = [rng.standard_normal(s).astype(np.float32) for s in (100, 2000, 7)]
        c = CompsoCompressor(4e-3, 4e-3)
        outs = c.decompress_many(c.compress_many(tensors))
        for t, o in zip(tensors, outs):
            assert o.shape == (t.size,)
            assert np.abs(o - t.ravel()).max() <= 4e-3 * np.abs(t).max() * 1.0001

    def test_aggregation_reduces_total_bytes(self, rng):
        """One encoder invocation over the aggregate beats many small ones."""
        tensors = [rng.standard_normal(300).astype(np.float32) * 1e-3 for _ in range(32)]
        c = CompsoCompressor(4e-3, 4e-3)
        separate = sum(c.compress(t).nbytes for t in tensors)
        together = c.compress_many(tensors).nbytes
        assert together < separate

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            CompsoCompressor().compress_many([])


class TestConfiguration:
    def test_set_bounds(self):
        c = CompsoCompressor(4e-3, 4e-3)
        c.set_bounds(0.0, 2e-3)
        assert c.eb_f == 0.0 and c.eb_q == 2e-3

    def test_set_bounds_validation(self):
        c = CompsoCompressor()
        with pytest.raises(ValueError):
            c.set_bounds(-1.0, 1e-3)
        with pytest.raises(ValueError):
            c.set_bounds(0.0, 0.0)

    def test_set_encoder(self, rng):
        c = CompsoCompressor()
        c.set_encoder("bitcomp")
        assert c.encoder_name == "bitcomp"
        x = rng.standard_normal(1000).astype(np.float32)
        assert c.roundtrip(x).shape == x.shape

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CompsoCompressor(eb_f=-1.0)
        with pytest.raises(ValueError):
            CompsoCompressor(eb_q=0.0)
        with pytest.raises(ValueError):
            CompsoCompressor(rounding="nope")

    def test_rn_mode_also_bounded(self, kfac_like_gradient):
        x = kfac_like_gradient
        c = CompsoCompressor(0.0, 4e-3, rounding="rn")
        assert np.abs(c.roundtrip(x) - x).max() <= 4e-3 * np.abs(x).max() * 1.0001
