"""Performance model (Eq. 5): lookup table, speedup math, decisions."""

import numpy as np
import pytest

from repro.core import CompsoCompressor, PerformanceModel
from repro.core.perf_model import CommLookupTable, ProfiledStats
from repro.distributed import SLINGSHOT10, SLINGSHOT11


@pytest.fixture
def grads(rng):
    return [
        (rng.standard_normal(s) * np.exp(rng.standard_normal(s))).astype(np.float32) * 1e-3
        for s in (100_000, 20_000, 300_000, 5_000)
    ]


class TestCommLookupTable:
    def test_throughput_interpolates_model(self):
        from repro.distributed.collectives import allgather_time

        lut = CommLookupTable(SLINGSHOT10)
        n = 7.3e6  # off-grid size
        direct = n / allgather_time(SLINGSHOT10, 64, n / 64, 4)
        assert lut.throughput(64, n) == pytest.approx(direct, rel=0.1)

    def test_larger_messages_higher_throughput(self):
        lut = CommLookupTable(SLINGSHOT10)
        assert lut.throughput(64, 1e8) > lut.throughput(64, 1e4)

    def test_single_rank_free(self):
        lut = CommLookupTable(SLINGSHOT10)
        assert lut.time(1, 1e9) == 0.0

    def test_nearest_gpu_count(self):
        lut = CommLookupTable(SLINGSHOT10, gpu_counts=(8, 64))
        # p=60 snaps to 64's column.
        assert lut.throughput(60, 1e7) == lut.throughput(64, 1e7)


class TestEq5:
    def test_end_to_end_speedup_formula(self):
        # Paper's example: r=50%, s=10x -> 1.8x end to end.
        assert PerformanceModel.end_to_end_speedup(10.0, 0.5) == pytest.approx(1.818, abs=0.01)

    def test_no_comm_no_gain(self):
        assert PerformanceModel.end_to_end_speedup(100.0, 0.0) == 1.0

    def test_comm_speedup_accounts_overhead(self):
        pm = PerformanceModel(SLINGSHOT10, world_size=64)
        fast = ProfiledStats(L_o=1e8, L_c=5e6, T_comp=1e11, T_decomp=1e11, r=0.4)
        slow = ProfiledStats(L_o=1e8, L_c=5e6, T_comp=1e8, T_decomp=1e8, r=0.4)
        assert pm.comm_speedup(fast) > pm.comm_speedup(slow)
        assert pm.comm_speedup(slow) < 1.0  # slow compressor is a net loss

    def test_better_ratio_better_speedup(self):
        pm = PerformanceModel(SLINGSHOT10, world_size=64)
        hi = ProfiledStats(1e8, 4e6, 1e11, 1e11, 0.4)
        lo = ProfiledStats(1e8, 4e7, 1e11, 1e11, 0.4)
        assert pm.comm_speedup(hi) > pm.comm_speedup(lo)


class TestProfiling:
    def test_profile_measures_real_sizes(self, grads):
        pm = PerformanceModel(SLINGSHOT10, world_size=64)
        stats = pm.profile(grads, CompsoCompressor(4e-3, 4e-3), r=0.4)
        assert stats.L_o == sum(g.nbytes for g in grads)
        assert 1 < stats.ratio < 200

    def test_aggregation_reduces_compressed_size_overheads(self, grads):
        pm = PerformanceModel(SLINGSHOT10, world_size=64)
        c = CompsoCompressor(4e-3, 4e-3)
        s1 = pm.profile(grads, c, r=0.4, aggregation=1)
        s4 = pm.profile(grads, c, r=0.4, aggregation=4)
        assert s4.T_comp > s1.T_comp  # fewer kernel invocations

    def test_choose_aggregation_prefers_m_gt_1(self, grads):
        pm = PerformanceModel(SLINGSHOT10, world_size=64)
        m, scores = pm.choose_aggregation(grads, CompsoCompressor(4e-3, 4e-3), r=0.4)
        assert m > 1
        assert scores[m] == max(scores.values())

    def test_choose_encoder_returns_candidate(self, grads):
        pm = PerformanceModel(SLINGSHOT10, world_size=64)
        c = CompsoCompressor(4e-3, 4e-3)
        best, results = pm.choose_encoder(
            grads, c, candidates=("ans", "bitcomp", "zstd"), aggregation=4
        )
        assert best in results
        assert c.encoder_name == "ans"  # restored after probing

    def test_ans_wins_encoder_selection(self, grads):
        """Paper Table 2: ANS is the overall best encoder."""
        pm = PerformanceModel(SLINGSHOT10, world_size=64)
        best, _ = pm.choose_encoder(grads, CompsoCompressor(4e-3, 4e-3))
        assert best == "ans"

    def test_slower_network_bigger_gain(self, grads):
        """Paper section 5.2: slower fabrics benefit more from compression."""
        c = CompsoCompressor(4e-3, 4e-3)
        pm10 = PerformanceModel(SLINGSHOT10, world_size=64)
        pm11 = PerformanceModel(SLINGSHOT11, world_size=64)
        s10 = pm10.comm_speedup(pm10.profile(grads, c, r=0.4))
        s11 = pm11.comm_speedup(pm11.profile(grads, c, r=0.4))
        assert s10 >= s11 * 0.95  # at worst comparable; typically larger
