"""Iteration-wise adaptive schedules and layer aggregation."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveCompso, Bounds, SmoothLrSchedule, StepLrSchedule
from repro.core.layer_aggregation import LayerAggregator


class TestStepLrSchedule:
    def test_loose_before_drop_tight_after(self):
        s = StepLrSchedule(first_lr_drop=100)
        assert s.bounds_at(0) == s.loose
        assert s.bounds_at(99) == s.loose
        assert s.bounds_at(100) == s.tight
        assert s.bounds_at(10_000) == s.tight

    def test_default_tight_is_sr_only(self):
        s = StepLrSchedule(50)
        assert s.bounds_at(60).filtering is False
        assert s.bounds_at(10).filtering is True

    def test_negative_drop_rejected(self):
        with pytest.raises(ValueError):
            StepLrSchedule(-1)


class TestSmoothLrSchedule:
    def test_stage_boundaries(self):
        s = SmoothLrSchedule(1000, z=4)
        assert s.stage_at(0) == 0
        assert s.stage_at(249) == 0
        assert s.stage_at(250) == 1
        assert s.stage_at(999) == 3
        assert s.stage_at(5000) == 3  # clamped

    def test_bounds_decay_per_stage(self):
        s = SmoothLrSchedule(1000, z=4, alpha=0.5)
        assert s.bounds_at(0).eb_q == pytest.approx(4e-3)
        assert s.bounds_at(300).eb_q == pytest.approx(2e-3)
        assert s.bounds_at(600).eb_q == pytest.approx(1e-3)
        assert s.bounds_at(900).eb_q == pytest.approx(5e-4)

    def test_filter_only_in_first_stage(self):
        s = SmoothLrSchedule(1000, z=4)
        assert s.bounds_at(100).filtering
        assert not s.bounds_at(400).filtering

    def test_min_eb_floor(self):
        s = SmoothLrSchedule(10_000, z=100, alpha=0.1, min_eb=1e-5)
        assert s.bounds_at(9999).eb_q == 1e-5

    def test_validation(self):
        with pytest.raises(ValueError):
            SmoothLrSchedule(0)
        with pytest.raises(ValueError):
            SmoothLrSchedule(100, z=0)
        with pytest.raises(ValueError):
            SmoothLrSchedule(100, alpha=1.5)


class TestAdaptiveCompso:
    def test_step_advances_bounds(self):
        ac = AdaptiveCompso(StepLrSchedule(3))
        assert ac.bounds.filtering
        for _ in range(3):
            ac.step()
        assert not ac.bounds.filtering
        assert ac.inner.eb_f == 0.0

    def test_compression_still_bounded_after_transition(self, kfac_like_gradient):
        x = kfac_like_gradient
        ac = AdaptiveCompso(SmoothLrSchedule(40, z=4))
        for t in range(40):
            out = ac.roundtrip(x)
            b = ac.bounds
            tol = max(b.eb_f, b.eb_q) * np.abs(x).max() * 1.0001
            assert np.abs(out - x).max() <= tol, t
            ac.step()

    def test_aggressive_stage_higher_ratio(self, kfac_like_gradient):
        x = kfac_like_gradient
        ac = AdaptiveCompso(StepLrSchedule(5))
        early = x.nbytes / ac.compress(x).nbytes
        for _ in range(6):
            ac.step()
        late = x.nbytes / ac.compress(x).nbytes
        assert early > late


class TestLayerAggregator:
    def test_groups_cover_all_layers(self):
        agg = LayerAggregator(4)
        groups = agg.groups(10)
        assert [i for g in groups for i in g] == list(range(10))
        assert len(groups) == 3

    def test_m1_is_identity(self):
        assert LayerAggregator(1).groups(5) == [[0], [1], [2], [3], [4]]

    def test_group_bytes(self):
        agg = LayerAggregator(2)
        assert agg.group_bytes([10, 20, 30]) == [4 * 30, 4 * 30]

    def test_aggregate_partitions_tensors(self, rng):
        tensors = [rng.standard_normal(5) for _ in range(7)]
        parts = LayerAggregator(3).aggregate(tensors)
        assert [len(p) for p in parts] == [3, 3, 1]

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            LayerAggregator(0)
