"""Model catalogs, proxies, and synthetic datasets."""

import numpy as np
import pytest

from repro.data import (
    make_detection_data,
    make_image_data,
    make_lm_data,
    make_mlm_batches,
    make_squad_data,
    shard,
)
from repro.models import (
    MODEL_CATALOGS,
    bert_large_catalog,
    bert_proxy,
    catalog_param_count,
    gpt_neo_125m_catalog,
    gpt_proxy,
    maskrcnn_catalog,
    maskrcnn_proxy,
    resnet50_catalog,
    resnet_proxy,
)
from repro.models.squad import SpanQaModel


class TestCatalogs:
    def test_resnet50_param_count(self):
        # Real ResNet-50: 25.56M parameters.
        p = catalog_param_count(resnet50_catalog())
        assert 24e6 < p < 27e6

    def test_resnet50_layer_count(self):
        assert len(resnet50_catalog()) == 54  # 53 convs + fc

    def test_bert_large_param_count(self):
        # Encoder blocks of BERT-large: ~302M of the 340M total.
        p = catalog_param_count(bert_large_catalog())
        assert 290e6 < p < 320e6

    def test_gpt_neo_kfac_params(self):
        p = catalog_param_count(gpt_neo_125m_catalog())
        assert 80e6 < p < 90e6

    def test_maskrcnn_param_count(self):
        p = catalog_param_count(maskrcnn_catalog())
        assert 40e6 < p < 50e6

    def test_grad_bytes_consistent(self):
        for layers in (resnet50_catalog(), gpt_neo_125m_catalog()):
            for l in layers:
                assert l.grad_bytes == 4 * l.out_f * l.in_f
                assert l.factor_elems == l.in_f**2 + l.out_f**2

    def test_all_catalogs_positive_flops(self):
        for name, fn in MODEL_CATALOGS.items():
            assert all(l.fwd_flops > 0 for l in fn()), name

    def test_bias_column_included(self):
        fc = resnet50_catalog()[-1]
        assert fc.in_f == 2049  # 2048 + bias


class TestProxies:
    def test_resnet_proxy_forward(self, rng):
        m = resnet_proxy(n_classes=7, rng=1)
        y = m(rng.standard_normal((3, 3, 16, 16)).astype(np.float32))
        assert y.shape == (3, 7)

    def test_resnet_proxy_has_conv_and_linear_kfac_layers(self):
        m = resnet_proxy(rng=1)
        kinds = {type(l).__name__ for l in m.kfac_layers()}
        assert kinds == {"Conv2d", "Linear"}

    def test_detection_proxy_heads(self, rng):
        m = maskrcnn_proxy(n_classes=5, n_boxes=3, rng=1)
        y = m(rng.standard_normal((2, 3, 16, 16)).astype(np.float32))
        assert y.shape == (2, 5 + 12)

    def test_detection_proxy_backward(self, rng):
        m = maskrcnn_proxy(rng=1)
        x = rng.standard_normal((2, 3, 16, 16)).astype(np.float32)
        y = m(x)
        gx = m.backward(np.ones_like(y))
        assert gx.shape == x.shape
        assert all(np.abs(p.grad).sum() > 0 for p in m.parameters())

    @pytest.mark.parametrize("factory,causal", [(bert_proxy, False), (gpt_proxy, True)])
    def test_transformer_proxies(self, rng, factory, causal):
        m = factory(vocab=32, dim=16, n_layers=1, max_seq=8, rng=1)
        ids = rng.integers(0, 32, (2, 8))
        y = m(ids)
        assert y.shape == (2, 8, 32)
        assert m.causal is causal

    def test_transformer_backward_populates_all_grads(self, rng):
        m = gpt_proxy(vocab=16, dim=16, n_layers=1, max_seq=8, rng=1)
        ids = rng.integers(0, 16, (2, 8))
        y = m(ids)
        m.backward(np.ones_like(y))
        for name, p in m.named_parameters():
            assert np.abs(p.grad).sum() > 0, name

    def test_span_qa_model(self, rng):
        m = SpanQaModel(vocab=16, dim=16, n_layers=1, max_seq=12, rng=1)
        ids = rng.integers(0, 16, (3, 12))
        y = m(ids)
        assert y.shape == (3, 12, 2)
        m.backward(np.ones_like(y))
        assert np.abs(m.span_head.weight.grad).sum() > 0


class TestSyntheticData:
    def test_image_data_learnable_structure(self):
        ds = make_image_data(200, n_classes=4, noise=0.1, seed=0)
        # With low noise, same-class images correlate strongly.
        c0 = ds.x[ds.y == 0]
        c1 = ds.x[ds.y == 1]
        within = np.corrcoef(c0[0].ravel(), c0[1].ravel())[0, 1]
        across = np.corrcoef(c0[0].ravel(), c1[0].ravel())[0, 1]
        assert within > 0.8 > abs(across)

    def test_image_data_deterministic(self):
        a = make_image_data(10, seed=5)
        b = make_image_data(10, seed=5)
        assert np.array_equal(a.x, b.x)

    def test_detection_boxes_in_unit_range(self):
        ds = make_detection_data(100, seed=0)
        assert ds.y_box.min() > -0.3 and ds.y_box.max() < 1.3

    def test_detection_class_determines_boxes(self):
        ds = make_detection_data(300, n_classes=4, seed=0)
        same = ds.y_box[ds.y_cls == 0]
        assert same.std(axis=0).max() < 0.1  # jitter only

    def test_lm_data_markov_structure(self):
        ds = make_lm_data(500, seq=20, vocab=32, concentration=0.05, seed=0)
        assert ds.ids.min() >= 2 and ds.ids.max() < 32
        # Peaked transitions: the most frequent successor of a token
        # dominates.
        succ = {}
        for row in ds.ids:
            for a, b in zip(row[:-1], row[1:]):
                succ.setdefault(a, []).append(b)
        tok = max(succ, key=lambda k: len(succ[k]))
        counts = np.bincount(succ[tok])
        assert counts.max() / len(succ[tok]) > 0.3

    def test_lm_inputs_targets_shifted(self):
        ds = make_lm_data(5, seq=10, seed=0)
        assert np.array_equal(ds.inputs[:, 1:], ds.targets[:, :-1])

    def test_mlm_masking(self):
        ds = make_lm_data(100, seq=20, seed=0)
        mlm = make_mlm_batches(ds, mask_prob=0.15, seed=1)
        masked = mlm.inputs == 1
        assert masked.any(axis=1).all()  # every sequence has a mask
        assert np.array_equal(mlm.targets[masked] > 0, np.ones(masked.sum(), dtype=bool))
        assert (mlm.targets[~masked] == 0).all()

    def test_squad_answer_span_marked(self):
        ds = make_squad_data(100, seq=24, vocab=32, seed=0)
        for i in range(100):
            q = ds.ids[i, 0]
            s, e = ds.starts[i], ds.ends[i]
            assert (ds.ids[i, s : e + 1] == q).all()
            assert 1 <= s <= e < 24

    def test_squad_vocab_validation(self):
        with pytest.raises(ValueError):
            make_squad_data(10, vocab=6, n_markers=4)


class TestSharding:
    def test_shard_partitions(self):
        idx = np.arange(12)
        shards = shard(idx, 4)
        assert len(shards) == 4
        assert np.array_equal(np.concatenate(shards), idx)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            shard(np.arange(10), 4)
