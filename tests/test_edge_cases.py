"""API edge cases not covered by the feature-focused suites."""

import numpy as np
import pytest

from repro.compression import CompressedTensor, IdentityCompressor, SzCompressor
from repro.core import CompsoCompressor
from repro.core.perf_model import ProfiledStats
from repro.distributed import SimCluster
from repro.encoders import get_encoder
from repro.gpusim import H100, A100, PIPELINES
from repro.kfac_dist.timing import CompressionSpec
from repro.optim import SmoothLr


class TestAbsoluteModeCompressors:
    def test_compso_absolute_bounds(self, rng):
        x = (rng.standard_normal(5000) * 100).astype(np.float32)
        c = CompsoCompressor(0.0, 0.5, relative=False)
        assert np.abs(c.roundtrip(x) - x).max() <= 0.5 * 1.0001

    def test_compso_absolute_filter(self, rng):
        x = rng.standard_normal(5000).astype(np.float32)
        c = CompsoCompressor(0.5, 0.1, relative=False)
        out = c.roundtrip(x)
        assert np.all(out[np.abs(x) < 0.5] == 0)

    def test_sz_absolute_bound(self, rng):
        x = (rng.standard_normal(5000) * 7).astype(np.float32)
        c = SzCompressor(0.25, relative=False)
        assert np.abs(c.roundtrip(x) - x).max() <= 0.25 * 1.0001


class TestTinyAndDegenerateInputs:
    @pytest.mark.parametrize("n", [1, 2, 7, 8, 9])
    def test_compso_tiny_tensors(self, n, rng):
        x = rng.standard_normal(n).astype(np.float32)
        c = CompsoCompressor(4e-3, 4e-3)
        assert c.roundtrip(x).shape == (n,)

    def test_single_element_encoders(self):
        for name in ("ans", "huffman", "bitcomp", "cascaded"):
            enc = get_encoder(name)
            assert enc.decode(enc.encode(b"\x42")) == b"\x42"

    def test_all_identical_bytes(self):
        data = b"\x07" * 5000
        for name in ("ans", "huffman", "cascaded"):
            enc = get_encoder(name)
            assert enc.decode(enc.encode(data)) == data
            # Entropy coders pay their code-table headers; RLE crushes it.
            assert enc.ratio(data) > 5
        assert get_encoder("cascaded").ratio(data) > 100

    def test_negative_only_gradient(self, rng):
        x = -np.abs(rng.standard_normal(2000)).astype(np.float32) - 0.1
        out = CompsoCompressor(0.0, 4e-3).roundtrip(x)
        assert np.all(out < 0)

    def test_compressed_tensor_scalar_shape(self):
        ct = CompressedTensor({"raw": b"1234"}, ())
        assert ct.n_elements == 1


class TestHundredGpuDevice:
    def test_h100_faster_than_a100(self):
        p = PIPELINES["compso-cuda"]
        assert p.throughput(60e6, H100) > p.throughput(60e6, A100)

    def test_h100_specs_ordered(self):
        assert H100.mem_bw > A100.mem_bw
        assert H100.tensor_flops > A100.tensor_flops
        assert H100.eig_time(2048) < A100.eig_time(2048)


class TestMiscApi:
    def test_profiled_stats_ratio_guard(self):
        assert ProfiledStats(100, 0, 1, 1, 0.5).ratio == 1.0

    def test_smooth_lr_min_lr_floor(self):
        s = SmoothLr(1.0, 100, min_lr=0.05)
        assert s.lr_at(99) >= 0.05

    def test_compression_spec_factory(self):
        spec = CompressionSpec.compso(20.0)
        assert spec.pipeline.name == "compso-cuda"
        assert spec.aggregation == 4

    def test_identity_compressor_is_exact(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        assert np.array_equal(IdentityCompressor().roundtrip(x), x)

    def test_cluster_single_rank_collectives(self):
        cl = SimCluster(1, 1)
        out = cl.allreduce([np.arange(4.0)])
        assert np.array_equal(out[0], np.arange(4.0))
        assert cl.time == 0.0  # p=1 collectives are free

    def test_compressor_repr(self):
        assert "compso" in repr(CompsoCompressor())
