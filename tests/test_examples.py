"""Examples must run end to end (smoke level; the fast ones fully)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "ratio" in out
    assert "True" in out  # error-bound check printed


def test_autotune_example_runs():
    out = _run("autotune_bounds.py")
    assert "CR" in out
    assert "budget" in out


@pytest.mark.slow
def test_perf_model_explorer_runs():
    out = _run("perf_model_explorer.py", timeout=400)
    assert "end-to-end" in out


@pytest.mark.slow
def test_train_example_runs():
    out = _run("train_resnet_kfac_compso.py", timeout=500)
    assert "accuracy" in out


@pytest.mark.slow
def test_squad_example_runs():
    out = _run("squad_finetune.py", timeout=500)
    assert "F1" in out
