"""The repro.telemetry subsystem: spans, metrics, exporters, wiring."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.core import CompsoCompressor
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.distributed.network import PLATFORM1
from repro.gpusim.kernels import PIPELINES
from repro.kfac_dist import DistributedKfacTrainer, KfacIterationModel, MODEL_TIMING_PROFILES
from repro.models import resnet_proxy
from repro.models.catalogs import MODEL_CATALOGS
from repro.telemetry import (
    DEVICE_TRACK,
    HOST_TRACK,
    NULL_METRICS,
    NULL_TRACER,
    SIM_TRACK,
    MetricsRegistry,
    Tracer,
    category_fractions,
    chrome_trace,
    get_metrics,
    get_tracer,
    load_metrics_jsonl,
    metrics_jsonl,
    summary_table,
    write_metrics_jsonl,
)
from repro.telemetry.metrics import SAMPLE_CAP
from repro.train import ClassificationTask


def tiny_trainer(compressor="default"):
    task = ClassificationTask(make_image_data(96, n_classes=4, size=8, noise=0.5, seed=0))
    if compressor == "default":
        compressor = CompsoCompressor(4e-3, 4e-3, seed=0)
    return DistributedKfacTrainer(
        resnet_proxy(n_classes=4, channels=4, rng=3),
        task,
        SimCluster(2, 2, seed=0),
        lr=0.05,
        inv_update_freq=2,
        compressor=compressor,
    )


class TestTracer:
    def test_nesting_depths(self):
        t = Tracer()
        with t.span("outer", "a"):
            with t.span("inner", "b"):
                with t.span("leaf", "c"):
                    pass
        by_name = {s.name: s for s in t.spans()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["leaf"].depth == 2

    def test_measured_span_contains_children(self):
        t = Tracer()
        with t.span("outer", "a"):
            with t.span("inner", "b"):
                pass
        outer, inner = (
            next(s for s in t.spans() if s.name == n) for n in ("outer", "inner")
        )
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_add_span_stacks_at_cursor(self):
        t = Tracer()
        t.add_span("k1", "kernel", 2.0, track=DEVICE_TRACK)
        t.add_span("k2", "kernel", 3.0, track=DEVICE_TRACK)
        spans = t.spans(track=DEVICE_TRACK)
        assert spans[0].start == 0.0 and spans[0].end == 2.0
        assert spans[1].start == 2.0 and spans[1].end == 5.0
        assert t.cursor(DEVICE_TRACK, 0) == 5.0

    def test_explicit_start_and_clock(self):
        t = Tracer()
        t.add_span("x", "cat", 1.5, start=10.0, rank=3)
        (s,) = t.spans(track=SIM_TRACK)
        assert (s.start, s.end, s.rank) == (10.0, 11.5, 3)
        fake_now = iter([5.0, 9.0])
        with t.span("clocked", "cat", track=SIM_TRACK, clock=lambda: next(fake_now)):
            pass
        s = next(s for s in t.spans() if s.name == "clocked")
        assert (s.start, s.duration) == (5.0, 4.0)

    def test_category_totals_mean_across_ranks(self):
        t = Tracer()
        for rank in range(4):
            t.add_span("op", "comm", 2.0, start=0.0, rank=rank)
        assert t.category_totals() == {"comm": 2.0}
        assert t.category_totals(rank=1) == {"comm": 2.0}

    def test_category_totals_depth_filter(self):
        t = Tracer()
        t.add_span("parent", "p", 4.0, track=HOST_TRACK, depth=0)
        t.add_span("child", "c", 1.0, track=HOST_TRACK, depth=1)
        assert t.category_totals(track=HOST_TRACK) == {"p": 4.0}
        assert t.category_totals(track=HOST_TRACK, depth=1) == {"c": 1.0}

    def test_clear(self):
        t = Tracer()
        t.add_span("x", "c", 1.0)
        t.clear()
        assert t.spans() == [] and t.cursor(SIM_TRACK) == 0.0


class TestDisabledPath:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS
        assert not get_tracer().enabled

    def test_null_tracer_span_is_shared_noop(self):
        t = NULL_TRACER
        cm1 = t.span("a", "b", anything=1)
        cm2 = t.span("c")
        assert cm1 is cm2  # one reusable context manager, no allocation
        with cm1:
            pass
        assert t.add_span("a", "b", 1.0) is None
        assert t.spans() == [] and t.category_totals() == {}

    def test_null_metrics_shared_noop(self):
        m = NULL_METRICS
        c = m.counter("x", label="y")
        c.inc(5)
        assert c is m.histogram("z") and c.value == 0.0
        assert m.snapshot() == [] and m.record_step(0) == {}

    def test_disabled_training_records_nothing_and_matches_traced_run(self):
        # Identical seeds, with and without telemetry: step outputs must
        # be byte-identical, and the disabled run must record nothing.
        plain = tiny_trainer()
        losses_plain = [plain.step(np.arange(32)) for _ in range(3)]
        assert get_tracer().spans() == []

        traced = tiny_trainer()
        with telemetry.session() as t:
            losses_traced = [traced.step(np.arange(32)) for _ in range(3)]
        assert losses_plain == losses_traced
        for p_a, p_b in zip(plain.model.parameters(), traced.model.parameters()):
            assert p_a.data.tobytes() == p_b.data.tobytes()
        assert len(t.tracer.spans()) > 0

    def test_session_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry.session():
                assert get_tracer().enabled
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS


class TestMetrics:
    def test_counter_gauge_histogram(self):
        m = MetricsRegistry()
        m.counter("c", op="x").inc()
        m.counter("c", op="x").inc(2)
        m.gauge("g").set(7.5)
        h = m.histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert m.counter("c", op="x").value == 3.0
        assert m.gauge("g").value == 7.5
        assert (h.count, h.total, h.vmin, h.vmax, h.last) == (3, 6.0, 1.0, 3.0, 2.0)
        assert h.mean == pytest.approx(2.0)

    def test_labels_separate_instruments(self):
        m = MetricsRegistry()
        m.counter("c", op="a").inc()
        m.counter("c", op="b").inc(10)
        assert m.counter("c", op="a").value == 1.0
        assert m.counter("c", op="b").value == 10.0

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_type_conflict_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_snapshot_and_steps(self):
        m = MetricsRegistry()
        m.counter("c").inc(1)
        m.record_step(0)
        m.counter("c").inc(1)
        m.record_step(1, sim_time=0.5)
        snaps = m.steps
        assert [s["step"] for s in snaps] == [0, 1]
        assert snaps[0]["metrics"][0]["value"] == 1.0
        assert snaps[1]["metrics"][0]["value"] == 2.0
        assert snaps[1]["sim_time"] == 0.5

    def test_histogram_percentiles_exact_below_cap(self):
        h = MetricsRegistry().histogram("h")
        for v in range(1, 101):  # 1..100, shuffled order must not matter
            h.observe(float(101 - v))
        assert h.percentile(50.0) == 50.0
        assert h.percentile(95.0) == 95.0
        assert h.percentile(99.0) == 99.0
        assert h.percentile(0.0) == 1.0
        assert h.percentile(100.0) == 100.0

    def test_histogram_percentile_validation_and_empty(self):
        h = MetricsRegistry().histogram("h")
        assert h.percentile(50.0) is None
        h.observe(3.0)
        with pytest.raises(ValueError):
            h.percentile(101.0)
        with pytest.raises(ValueError):
            h.percentile(-1.0)
        # Single observation: every percentile is that value.
        assert h.percentile(1.0) == h.percentile(99.0) == 3.0

    def test_histogram_decimation_bounded_and_deterministic(self):
        def fill(n):
            h = MetricsRegistry().histogram("h")
            for v in range(n):
                h.observe(float(v))
            return h

        n = SAMPLE_CAP * 5
        a, b = fill(n), fill(n)
        assert len(a.samples) < SAMPLE_CAP
        assert a.stride > 1
        assert a.samples == b.samples and a.stride == b.stride
        assert (a.count, a.total) == (n, sum(range(n)))
        # Decimated percentiles stay close to the exact ones.
        assert a.percentile(50.0) == pytest.approx(n / 2, rel=0.05)
        assert a.percentile(99.0) == pytest.approx(0.99 * n, rel=0.05)

    def test_histogram_snapshot_has_percentiles(self):
        m = MetricsRegistry()
        h = m.histogram("lat", op="x")
        for v in (5.0, 1.0, 9.0, 3.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4 and snap["sum"] == 18.0
        assert snap["p50"] == 3.0
        assert snap["p95"] == snap["p99"] == 9.0

    def test_null_histogram_percentile(self):
        h = NULL_METRICS.histogram("h")
        h.observe(1.0)
        assert h.percentile(50.0) is None
        assert h.samples == ()

    def test_jsonl_parses(self):
        m = MetricsRegistry()
        m.counter("c", op="x").inc(3)
        m.record_step(0)
        lines = metrics_jsonl(m).strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["step"] == 0
        assert parsed[-1]["final"] is True
        assert parsed[-1]["metrics"][0] == {
            "type": "counter",
            "name": "c",
            "labels": {"op": "x"},
            "value": 3.0,
        }

    def test_jsonl_roundtrip_lossless(self, tmp_path):
        m = MetricsRegistry()
        # Multi-label instruments exercise label ordering; a histogram
        # exercises the nested percentile fields.
        m.counter("wire", op="allgather", layer="0").inc(7)
        m.gauge("train.loss").set(0.5)
        h = m.histogram("cr", phase="aggressive")
        for v in (22.0, 19.5, 24.0):
            h.observe(v)
        m.record_step(0, sim_time=0.25)
        m.counter("wire", op="allgather", layer="0").inc(1)
        m.record_step(1, sim_time=0.5)
        path = write_metrics_jsonl(m, tmp_path / "metrics.jsonl")
        original = path.read_text()
        log = load_metrics_jsonl(path)
        # Byte-exact export -> load -> export round trip.
        assert log.dumps() == original == metrics_jsonl(m)
        assert [r["step"] for r in log.steps] == [0, 1]
        assert log.final["final"] is True
        assert any(f["name"] == "cr" for f in log.final_metrics())
        assert log.series("train.loss") == [(0, 0.5), (1, 0.5)]
        # And the re-serialised file loads identically once more.
        (tmp_path / "again.jsonl").write_text(log.dumps())
        assert load_metrics_jsonl(tmp_path / "again.jsonl").dumps() == original

    def test_load_jsonl_rejects_malformed(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"step": 0}\n')  # no final record
        with pytest.raises(ValueError):
            load_metrics_jsonl(p)
        p.write_text('{"loss": 1.0}\n{"final": true}\n')  # step without "step"
        with pytest.raises(ValueError):
            load_metrics_jsonl(p)


class TestInstrumentation:
    def test_collective_spans_match_breakdown_exactly(self):
        with telemetry.session() as t:
            cl = SimCluster(2, 2, seed=0)
            cl.advance_rank(0, 1e-3, "compute")
            cl.allreduce([np.ones(1000) for _ in range(4)])
            cl.allgather([np.ones(50) for _ in range(4)])
            cl.broadcast(np.ones(100), root=1)
            cl.reduce_scatter([np.ones(64) for _ in range(4)])
            expected = cl.breakdown()
        totals = t.tracer.category_totals(track=SIM_TRACK)
        assert set(totals) == set(expected)
        for cat, sec in expected.items():
            assert totals[cat] == pytest.approx(sec, abs=1e-12), cat

    def test_collective_span_attrs_and_metrics(self):
        with telemetry.session() as t:
            cl = SimCluster(1, 4, seed=0)
            cl.allreduce([np.ones(1000, dtype=np.float32) for _ in range(4)], nbytes=123.0)
        spans = t.tracer.spans(track=SIM_TRACK, category="allreduce")
        assert len(spans) == 4  # one per rank
        assert all(s.attrs["nbytes_wire"] == 123.0 for s in spans)
        assert all(s.attrs["nbytes_raw"] == 4000 for s in spans)
        assert t.metrics.counter("comm.calls", op="allreduce").value == 1.0
        assert t.metrics.counter("comm.wire_bytes", op="allreduce").value == 123.0

    def test_compressor_stage_spans_and_metrics(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(4096).astype(np.float32)
        comp = CompsoCompressor(4e-3, 4e-3, seed=0)
        with telemetry.session() as t:
            ct = comp.compress(x)
            comp.decompress(ct)
        cats = {s.category for s in t.tracer.spans(track=HOST_TRACK)}
        assert {
            "compress",
            "compress.filter",
            "compress.quantise",
            "compress.pack",
            "compress.encode",
            "decompress",
        } <= cats
        ratio = t.metrics.histogram("compress.ratio", compressor=comp.name)
        assert ratio.count == 1 and ratio.last == pytest.approx(x.nbytes / ct.nbytes)
        hit = t.metrics.histogram("compso.filter_hit_rate")
        assert 0.0 <= hit.last <= 1.0

    def test_kernel_pipeline_device_spans(self):
        pipe = PIPELINES["compso-cuda"]
        with telemetry.session() as t:
            total = pipe.compress_time(1 << 20)
        spans = t.tracer.spans(track=DEVICE_TRACK)
        parents = [s for s in spans if s.depth == 0]
        children = [s for s in spans if s.depth == 1]
        assert len(parents) == 1 and parents[0].duration == pytest.approx(total)
        assert sum(c.duration for c in children) == pytest.approx(total)
        assert {"launch", "hbm", "alu", "reduce", "encode"} == {c.name for c in children}

    def test_trainer_phase_spans(self):
        trainer = tiny_trainer()
        with telemetry.session() as t:
            trainer.step(np.arange(32))
        cats = t.tracer.category_totals(track=HOST_TRACK, depth=1)
        for phase in ("forward", "backward", "factor", "inverse", "precondition", "comm"):
            assert phase in cats, phase
        assert t.metrics.counter("train.steps").value == 1.0
        assert len(t.metrics.steps) == 1

    def test_trainer_trace_reconciles_with_cluster_breakdown(self):
        trainer = tiny_trainer()
        with telemetry.session() as t:
            trainer.train(iterations=3, batch_size=32)
        expected = trainer.cluster.breakdown()
        totals = t.tracer.category_totals(track=SIM_TRACK)
        assert set(totals) == set(expected)
        for cat, sec in expected.items():
            assert totals[cat] == pytest.approx(sec, rel=1e-12, abs=1e-15), cat


class TestExporters:
    def _traced_run(self):
        trainer = tiny_trainer()
        with telemetry.session() as t:
            trainer.train(iterations=2, batch_size=32)
        return t

    def test_chrome_trace_valid_and_monotonic(self, tmp_path):
        t = self._traced_run()
        path = telemetry.write_chrome_trace(t.tracer, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events, "trace must not be empty"
        last_ts: dict[tuple, float] = {}
        for e in events:
            assert e["ph"] in ("X", "M", "s", "f")
            if e["ph"] != "X":
                continue
            key = (e["pid"], e["tid"])
            assert e["ts"] >= last_ts.get(key, -1.0), "events must be time-ordered per rank"
            assert e["dur"] >= 0.0
            last_ts[key] = e["ts"]

    def test_chrome_trace_flow_events_pair_up(self):
        t = self._traced_run()
        doc = chrome_trace(t.tracer)
        starts = {e["id"]: e for e in doc["traceEvents"] if e["ph"] == "s"}
        ends = {e["id"]: e for e in doc["traceEvents"] if e["ph"] == "f"}
        assert starts, "a collective run must emit flow events"
        assert set(starts) == set(ends)
        for fid, s in starts.items():
            f = ends[fid]
            assert s["cat"] == f["cat"] and s["cat"] in ("collective", "wait")
            assert f["bp"] == "e"
        # "parent" nesting never becomes an arrow — it is slice containment.
        assert all(e["cat"] != "parent" for e in starts.values())

    def test_chrome_trace_byte_stable_without_edges(self):
        t = Tracer()
        t.add_span("op", "compute", 1.0, start=0.0)
        doc = chrome_trace(t)
        assert all(e["ph"] in ("X", "M") for e in doc["traceEvents"])

    def test_chrome_trace_one_thread_per_rank(self):
        t = self._traced_run()
        doc = chrome_trace(t.tracer)
        sim_threads = {
            e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 0
        }
        assert sim_threads == {0, 1, 2, 3}

    def test_summary_table_renders(self):
        t = self._traced_run()
        table = summary_table(t.tracer)
        assert "kfac_allgather" in table and "share%" in table

    def test_category_fractions_sum_to_one(self):
        t = self._traced_run()
        fr = category_fractions(t.tracer)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_record_trace_matches_analytic_breakdown(self):
        m = KfacIterationModel(
            MODEL_CATALOGS["resnet50"](),
            PLATFORM1,
            4,
            profile=MODEL_TIMING_PROFILES["resnet50"],
        )
        tracer = Tracer()
        bd = m.record_trace(tracer)
        fr = category_fractions(tracer)
        expect = bd.fractions()
        for cat in ("kfac_allgather", "kfac_allreduce", "kfac_compute", "fwd_bwd"):
            assert fr[cat] == pytest.approx(expect[cat])


class TestCli:
    def test_trace_subcommand_writes_parseable_outputs(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.jsonl"
        rc = main(
            [
                "trace",
                "--model",
                "mini-resnet",
                "--nodes",
                "2",
                "--gpus-per-node",
                "2",
                "--iterations",
                "2",
                "--out",
                str(trace),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert len(doc["traceEvents"]) > 0
        lines = [json.loads(line) for line in metrics.read_text().splitlines()]
        assert lines[-1]["final"] is True
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        # Telemetry must be torn down after the command.
        assert get_tracer() is NULL_TRACER
