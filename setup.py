"""Legacy setup shim.

`pip install -e .` requires the `wheel` package for PEP 660 editable
installs; on offline machines without it, run `python setup.py develop`
instead (equivalent editable install).
"""
from setuptools import setup

setup()
