"""Distributed K-FAC training with COMPSO on the simulated cluster.

Trains the ResNet-style proxy on synthetic image classification with a
16-rank simulated A100 cluster, comparing no compression vs COMPSO with
the adaptive StepLR schedule.  Reports convergence, measured compression
ratio, and the simulated communication-time savings.

Run with:  python examples/train_resnet_kfac_compso.py
"""

from repro.core import AdaptiveCompso, StepLrSchedule
from repro.data import make_image_data
from repro.distributed import PLATFORM1, SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.optim import StepLr
from repro.train import ClassificationTask

ITERS = 30
LR_DROP = 15


def run(compressor, label):
    data = make_image_data(800, n_classes=8, size=8, noise=0.8, seed=0)
    task = ClassificationTask(data)
    cluster = SimCluster(4, platform=PLATFORM1, seed=0)  # 16 ranks
    model = resnet_proxy(n_classes=8, channels=8, rng=3)
    trainer = DistributedKfacTrainer(
        model,
        task,
        cluster,
        lr=0.05,
        inv_update_freq=5,
        lr_schedule=StepLr(0.05, [LR_DROP], gamma=0.1),
        compressor=compressor,
    )
    history = trainer.train(iterations=ITERS, batch_size=64, eval_every=10)
    comm = cluster.breakdown()
    print(f"\n=== {label} ===")
    print(f"loss: {history.losses[0]:.3f} -> {history.losses[-1]:.4f}")
    for it, acc in history.metrics:
        print(f"  iter {it:3d}: accuracy {acc:.1f}%")
    if compressor is not None:
        print(f"mean compression ratio: {trainer.mean_compression_ratio():.1f}x")
    print(f"simulated comm time: allgather {comm['kfac_allgather'] * 1e3:.2f} ms, "
          f"factor allreduce {comm['kfac_allreduce'] * 1e3:.2f} ms")
    return comm["kfac_allgather"]


baseline_allgather = run(None, "K-FAC, no compression")
compso_allgather = run(
    AdaptiveCompso(StepLrSchedule(LR_DROP)), "K-FAC + COMPSO (adaptive)"
)
print(f"\nallgather time reduction: {baseline_allgather / compso_allgather:.1f}x")
print(
    "note: the proxy's layers are tiny (KBs), so wire metadata and latency cap\n"
    "the measured gain — convergence behaviour is the point of this example.\n"
    "For communication/speedup at real model scale, see\n"
    "examples/perf_model_explorer.py and benchmarks/bench_fig07/09."
)
