"""Fine-tune the span-QA (SQuAD-style) proxy under gradient compression.

Reproduces Table 1's workflow interactively: fine-tune with distributed
K-FAC using the staged COMPSO schedule (bounds 4E-3 -> 2E-3) and compare
exact-match / F1 against the no-compression target.

Run with:  python examples/squad_finetune.py
"""

from repro.core import AdaptiveCompso, SmoothLrSchedule
from repro.data import make_squad_data
from repro.distributed import SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models.squad import SpanQaModel
from repro.train import SquadTask

ITERS = 60


def finetune(compressor, label):
    task = SquadTask(make_squad_data(600, seq=16, vocab=24, seed=0))
    model = SpanQaModel(vocab=24, dim=24, n_layers=2, max_seq=16, rng=1)
    trainer = DistributedKfacTrainer(
        model, task, SimCluster(1, 4, seed=0), lr=0.1, inv_update_freq=5,
        compressor=compressor,
    )
    history = trainer.train(iterations=ITERS, batch_size=64, eval_every=20)
    print(f"\n=== {label} ===")
    for it, (em, f1) in history.metrics:
        print(f"  iter {it:3d}: EM {em:5.1f}%  F1 {f1:5.1f}%")
    if compressor is not None:
        print(f"  mean compression ratio: {trainer.mean_compression_ratio():.1f}x")
    return history.metrics[-1][1]


target_em, target_f1 = finetune(None, "K-FAC (no compression) — the Table 1 target")

# The paper's BERT recipe: four stages, bounds refined 4E-3 -> 2E-3.
adaptive = AdaptiveCompso(SmoothLrSchedule(ITERS, z=4, alpha=0.5))
em, f1 = finetune(adaptive, "K-FAC + COMPSO (staged 4E-3 -> 2E-3)")

print(f"\nF1 delta vs target: {f1 - target_f1:+.2f} "
      f"(paper: COMPSO within ~0.2 of the 90.44 target)")
