"""Explore the COMPSO performance model (paper section 4.4, Eq. 5).

Builds the offline communication lookup table for both platforms,
profiles COMPSO on BERT-large-sized gradients, sweeps the layer
aggregation factor, runs online encoder selection, and predicts the
end-to-end speedup across cluster scales.

Run with:  python examples/perf_model_explorer.py
"""

import numpy as np

from repro.core import CompsoCompressor, PerformanceModel
from repro.distributed import PLATFORM1, PLATFORM2
from repro.kfac_dist import CompressionSpec, KfacIterationModel, MODEL_TIMING_PROFILES
from repro.models.catalogs import bert_large_catalog
from repro.util.tables import format_table

# --- synthetic K-FAC gradients at BERT-large layer sizes --------------------
rng = np.random.default_rng(0)
catalog = bert_large_catalog()
grads = []
for layer in catalog[:24]:
    n = min(layer.grad_elems, 150_000)
    small = rng.standard_normal(n) * 1e-4
    big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
    grads.append(np.where(rng.random(n) < 0.12, big, small).astype(np.float32))

compso = CompsoCompressor(4e-3, 4e-3)

for platform in (PLATFORM1, PLATFORM2):
    pm = PerformanceModel(platform.network, world_size=64)
    print(f"\n===== {platform.name} ({platform.network.name}) =====")

    # Offline lookup table sample.
    rows = [[f"{s / 1e6:.1f} MB", pm.lookup.throughput(64, s) / 1e9] for s in (1e6, 1e7, 1e8, 1e9)]
    print(format_table(["message", "allgather GB/s"], rows,
                       title="offline lookup table (64 GPUs)", floatfmt=".2f"))

    # Aggregation-factor decision.
    m, scores = pm.choose_aggregation(grads, compso, r=0.45)
    print(f"\naggregation sweep: " + ", ".join(f"m={k}: {v:.3f}x" for k, v in scores.items()))
    print(f"chosen m = {m}")

    # Encoder selection.
    best, results = pm.choose_encoder(grads, compso, aggregation=m)
    print(f"encoder selection -> {best} "
          f"(sizes: {', '.join(f'{k}={int(v[0] / 1e3)}KB' for k, v in results.items())})")

    # Eq. 5 prediction.
    stats = pm.profile(grads, compso, r=0.45, aggregation=m)
    s = pm.comm_speedup(stats)
    print(f"measured CR {stats.ratio:.1f}x -> comm speedup {s:.1f}x -> "
          f"end-to-end {pm.end_to_end_speedup(s, 0.45):.2f}x "
          f"(compress? {pm.should_compress(stats)})")

# --- full iteration model across scales --------------------------------------
print("\n===== end-to-end speedup across scales (BERT-large, CR 22x) =====")
rows = []
for nodes in (2, 4, 8, 16):
    row = [nodes * 4]
    for platform in (PLATFORM1, PLATFORM2):
        model = KfacIterationModel(
            catalog, platform, nodes, profile=MODEL_TIMING_PROFILES["bert-large"]
        )
        row.append(model.end_to_end_speedup(CompressionSpec.compso(22.0)))
    rows.append(row)
print(format_table(["GPUs", "Platform 1", "Platform 2"], rows, floatfmt=".2f"))
