"""Quickstart: compress a K-FAC gradient tensor with COMPSO.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.compression import QsgdCompressor, SzCompressor
from repro.core import AdaptiveCompso, CompsoCompressor, StepLrSchedule

# --- a K-FAC-gradient-like tensor: mostly tiny values, heavy tail --------
rng = np.random.default_rng(0)
n = 1 << 20
small = rng.standard_normal(n) * 1e-4
big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
grad = np.where(rng.random(n) < 0.12, big, small).astype(np.float32)

# --- basic compression -----------------------------------------------------
compso = CompsoCompressor(eb_f=4e-3, eb_q=4e-3, encoder="ans")
blob = compso.compress(grad)
restored = compso.decompress(blob)

err = np.abs(restored - grad).max()
bound = 4e-3 * np.abs(grad).max()
print(f"original {grad.nbytes / 1e6:.1f} MB -> {blob.nbytes / 1e6:.3f} MB "
      f"(ratio {grad.nbytes / blob.nbytes:.1f}x)")
print(f"max error {err:.2e} <= bound {bound:.2e}: {err <= bound * 1.0001}")

# --- compare against the paper's baselines ----------------------------------
for comp in (QsgdCompressor(8), SzCompressor(4e-3), CompsoCompressor(0.0, 4e-3)):
    print(f"{comp.name:14s} ratio {comp.ratio(grad):6.1f}x")

# --- iteration-wise adaptive bounds (Algorithm 1) ---------------------------
adaptive = AdaptiveCompso(StepLrSchedule(first_lr_drop=100))
print(f"\niteration   0: bounds {adaptive.bounds} "
      f"ratio {grad.nbytes / adaptive.compress(grad).nbytes:.1f}x")
for _ in range(100):
    adaptive.step()
print(f"iteration 100: bounds {adaptive.bounds} "
      f"ratio {grad.nbytes / adaptive.compress(grad).nbytes:.1f}x")

# --- layer aggregation: one encoder invocation over several layers ----------
layers = [grad[:100_000], grad[100_000:140_000] * 10, grad[140_000:150_000]]
agg_blob = compso.compress_many(layers)
separate = sum(compso.compress(t).nbytes for t in layers)
print(f"\naggregated 3 layers: {agg_blob.nbytes} B vs {separate} B separate")
