"""Auto-tune COMPSO's error bounds (paper section 7, future work).

Collects real K-FAC preconditioned gradients from a short proxy training
run, then searches (eb_f, eb_q) for the best compression ratio under a
gradient-fidelity budget — replacing the paper's empirical 4E-3 setting
with a data-driven one.

Run with:  python examples/autotune_bounds.py
"""

import numpy as np

from repro.core import CompsoCompressor, FidelityBudget, autotune_bounds
from repro.data import make_image_data
from repro.distributed import SimCluster
from repro.kfac_dist import DistributedKfacTrainer
from repro.models import resnet_proxy
from repro.train import ClassificationTask

# --- harvest real K-FAC gradients -------------------------------------------
task = ClassificationTask(make_image_data(400, n_classes=5, size=8, noise=0.5, seed=0))
trainer = DistributedKfacTrainer(
    resnet_proxy(n_classes=5, channels=16, rng=3), task, SimCluster(1, 4, seed=0),
    lr=0.05, inv_update_freq=5,
)
trainer.train(iterations=6, batch_size=64)
grads = [trainer.kfac.precondition(i) for i in range(len(trainer.kfac.layers))]
print(f"harvested {len(grads)} layer gradients "
      f"({sum(g.nbytes for g in grads) / 1e3:.0f} KB total)")

default = CompsoCompressor(4e-3, 4e-3)
default_cr = sum(g.nbytes for g in grads) / sum(default.compress(g).nbytes for g in grads)
print(f"paper's empirical bounds (4E-3/4E-3): CR {default_cr:.1f}x")

# --- tune under three budgets -------------------------------------------------
for label, budget in [
    ("strict", FidelityBudget(min_cosine=0.9999, max_rel_l2=0.01)),
    ("moderate", FidelityBudget(min_cosine=0.999, max_rel_l2=0.05)),
    ("relaxed", FidelityBudget(min_cosine=0.995, max_rel_l2=0.10)),
]:
    result = autotune_bounds(grads, budget=budget)
    print(
        f"{label:8s} budget (cos>={budget.min_cosine}, l2<={budget.max_rel_l2}): "
        f"eb_f={result.eb_f:g} eb_q={result.eb_q:.2g} -> CR {result.ratio:.1f}x "
        f"(cos {result.cosine:.5f}, rel-l2 {result.rel_l2:.3f}, "
        f"{len(result.trace)} probes)"
    )
