"""Counters, gauges, and histograms with per-step snapshots.

A :class:`MetricsRegistry` holds labelled instruments keyed by
``(name, labels)``; instrumented code fetches them by name each call
(get-or-create), so hot paths need no registry handle of their own.
When telemetry is disabled, :func:`get_metrics` returns the singleton
:data:`NULL_METRICS` whose instruments are shared no-ops.

The registry is thread-safe and supports *per-step snapshots*: trainers
call ``record_step(step)`` once per iteration, freezing every
instrument's current value so the JSONL export can reconstruct metric
time series (compression ratio per step, wire bytes per step, ...).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "get_metrics",
    "set_metrics",
]


@dataclass
class Counter:
    """Monotonically increasing total."""

    name: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "name": self.name, "labels": self.labels, "value": self.value}


@dataclass
class Gauge:
    """Last-write-wins scalar."""

    name: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"type": "gauge", "name": self.name, "labels": self.labels, "value": self.value}


#: Sample-buffer size above which a Histogram halves its buffer and
#: doubles its keep-every-Nth stride (bounded memory, deterministic).
SAMPLE_CAP = 2048


@dataclass
class Histogram:
    """Streaming summary: count / sum / min / max / last + percentiles.

    Percentiles come from a bounded sample buffer: every ``stride``-th
    observation is kept, and when the buffer reaches :data:`SAMPLE_CAP`
    it is halved (every other kept sample survives) and the stride
    doubles.  The decimation depends only on the observation sequence,
    never on wall-clock or randomness, so two identical runs produce
    identical percentile digests.  Below the cap (the common case for
    per-step trainer metrics) percentiles are exact.
    """

    name: str
    labels: dict = field(default_factory=dict)
    count: int = 0
    total: float = 0.0
    vmin: float = float("inf")
    vmax: float = float("-inf")
    last: float = 0.0
    samples: list = field(default_factory=list)
    stride: int = 1

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.last = value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        if (self.count - 1) % self.stride == 0:
            self.samples.append(value)
            if len(self.samples) >= SAMPLE_CAP:
                self.samples = self.samples[::2]
                self.stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile (``q`` in [0, 100]) over kept samples."""
        if not self.samples:
            return None
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.samples)
        rank = max(int(-(-q * len(ordered) // 100)), 1)  # ceil, 1-based
        return ordered[rank - 1]

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": self.labels,
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "mean": self.mean,
            "last": self.last,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


def _key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Thread-safe get-or-create store of labelled instruments."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}
        #: Per-step frozen snapshots appended by :meth:`record_step`.
        self.steps: list[dict] = []

    def _get(self, cls, name: str, labels: dict):
        key = _key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = cls(name, dict(labels))
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r}{labels} already registered as {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def snapshot(self) -> list[dict]:
        """Stable-ordered snapshot of every instrument's current state."""
        with self._lock:
            metrics = sorted(self._metrics.items(), key=lambda kv: kv[0])
        return [m.snapshot() for _, m in metrics]

    def record_step(self, step: int, **extra) -> dict:
        """Freeze all instruments under a step index (plus extra fields)."""
        record = {"step": int(step), **extra, "metrics": self.snapshot()}
        with self._lock:
            self.steps.append(record)
        return record

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
            self.steps.clear()


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0
    last = 0.0
    samples: tuple = ()

    def percentile(self, q: float) -> None:
        return None

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: every instrument is the shared no-op."""

    enabled = False
    steps: list[dict] = []

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> list[dict]:
        return []

    def record_step(self, step: int, **extra) -> dict:
        return {}

    def clear(self) -> None:
        pass


NULL_METRICS = NullMetricsRegistry()

_active_metrics: MetricsRegistry | NullMetricsRegistry = NULL_METRICS


def get_metrics() -> MetricsRegistry | NullMetricsRegistry:
    """The process-wide active registry (the null registry when disabled)."""
    return _active_metrics


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | NullMetricsRegistry:
    """Install ``registry`` (None disables); returns the previous one."""
    global _active_metrics
    previous = _active_metrics
    _active_metrics = registry if registry is not None else NULL_METRICS
    return previous
