"""Hierarchical span tracing over the simulator's three timelines.

A :class:`Span` is a named, categorised interval on one *track*:

* ``sim`` — the simulated cluster timeline.  One sub-track (``rank``) per
  simulated GPU; span start/end are :class:`~repro.distributed.clock.SimClock`
  values, so per-rank per-category span totals reconcile exactly with
  ``SimCluster.breakdown()``.
* ``host`` — real (wall-clock) time spent in the Python process: trainer
  phases, compressor stages.  This is an honest profile of the
  reproduction itself, kept on its own timeline so it never pollutes the
  modelled one.
* ``device`` — modelled GPU kernel time from :mod:`repro.gpusim`; spans
  are stacked sequentially by a per-track cursor.

Tracing is disabled by default: :func:`get_tracer` returns the singleton
:data:`NULL_TRACER` whose ``span`` hands back one reusable no-op context
manager, so instrumentation costs a function call and a truthiness check
when off.  Enable with :func:`set_tracer` or ``repro.telemetry.session``.

The collector is thread-safe (one lock around the span list, thread-local
nesting stacks), matching the "in-process collector" contract even though
the simulator itself is single-threaded today.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "DEVICE_TRACK",
    "HOST_TRACK",
    "NULL_TRACER",
    "NullTracer",
    "SIM_TRACK",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
]

SIM_TRACK = "sim"
HOST_TRACK = "host"
DEVICE_TRACK = "device"


@dataclass
class Span:
    """One named interval on a (track, rank) timeline."""

    name: str
    category: str
    #: Start time in seconds on the span's track timeline.
    start: float
    duration: float
    track: str = SIM_TRACK
    #: Sub-track: simulated rank on ``sim``, thread/stream index elsewhere.
    rank: int = 0
    #: Execution stream within the rank: 0 is the compute stream (the
    #: rank's :class:`SimClock` timeline); 1.. are comm streams used by
    #: :mod:`repro.runtime`'s nonblocking collectives.  The Chrome-trace
    #: exporter renders each (rank, stream) pair as its own lane.
    stream: int = 0
    #: Nesting depth (0 = top level) for summary rendering.
    depth: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class _SpanContext:
    """Context manager recording one measured span on enter/exit."""

    __slots__ = ("_tracer", "_name", "_category", "_track", "_rank", "_clock", "_attrs", "_t0")

    def __init__(self, tracer, name, category, track, rank, clock, attrs):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._track = track
        self._rank = rank
        self._clock = clock
        self._attrs = attrs

    def _now(self) -> float:
        return self._clock() if self._clock is not None else self._tracer.host_now()

    def __enter__(self) -> "_SpanContext":
        self._t0 = self._now()
        self._tracer._push(self._track, self._rank)
        return self

    def __exit__(self, *exc) -> bool:
        depth = self._tracer._pop(self._track, self._rank)
        t1 = self._now()
        self._tracer._append(
            Span(
                self._name,
                self._category,
                self._t0,
                max(t1 - self._t0, 0.0),
                track=self._track,
                rank=self._rank,
                depth=depth,
                attrs=self._attrs,
            )
        )
        return False


class Tracer:
    """Thread-safe in-process span collector."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._cursors: dict[tuple[str, int], float] = {}
        self._local = threading.local()
        self._origin = time.perf_counter()

    # -- time sources --------------------------------------------------------

    def host_now(self) -> float:
        """Seconds of real time since this tracer was created."""
        return time.perf_counter() - self._origin

    def cursor(self, track: str, rank: int = 0) -> float:
        """End of the latest span on (track, rank); 0.0 if none yet."""
        with self._lock:
            return self._cursors.get((track, rank), 0.0)

    # -- nesting bookkeeping -------------------------------------------------

    def _depths(self) -> dict[tuple[str, int], int]:
        d = getattr(self._local, "depths", None)
        if d is None:
            d = self._local.depths = {}
        return d

    def _push(self, track: str, rank: int) -> None:
        depths = self._depths()
        depths[(track, rank)] = depths.get((track, rank), 0) + 1

    def _pop(self, track: str, rank: int) -> int:
        depths = self._depths()
        depth = depths.get((track, rank), 1) - 1
        depths[(track, rank)] = depth
        return depth

    def _append(self, span: Span) -> None:
        key = (span.track, span.rank)
        with self._lock:
            self._spans.append(span)
            if span.end > self._cursors.get(key, 0.0):
                self._cursors[key] = span.end

    # -- recording -----------------------------------------------------------

    def span(
        self,
        name: str,
        category: str = "host",
        *,
        track: str = HOST_TRACK,
        rank: int = 0,
        clock=None,
        **attrs,
    ) -> _SpanContext:
        """Context manager measuring a span from enter to exit.

        ``clock`` is an optional zero-arg callable returning the current
        time on the span's timeline (e.g. a simulated rank clock's
        ``now``); without it, real host time is measured.
        """
        return _SpanContext(self, name, category, track, rank, clock, attrs)

    def add_span(
        self,
        name: str,
        category: str,
        duration: float,
        *,
        start: float | None = None,
        track: str = SIM_TRACK,
        rank: int = 0,
        stream: int = 0,
        depth: int = 0,
        **attrs,
    ) -> Span:
        """Record a span with a known duration.

        With ``start=None`` the span is stacked at the (track, rank)
        cursor — the end of the latest span there — which is how modelled
        device kernels build a sequential timeline.  ``stream`` places the
        span on a comm-stream sub-lane of the rank (0 = compute stream).
        """
        if start is None:
            start = self.cursor(track, rank)
        span = Span(
            name,
            category,
            start,
            duration,
            track=track,
            rank=rank,
            stream=stream,
            depth=depth,
            attrs=attrs,
        )
        self._append(span)
        return span

    # -- reading -------------------------------------------------------------

    def spans(
        self,
        *,
        track: str | None = None,
        rank: int | None = None,
        category: str | None = None,
    ) -> list[Span]:
        """Snapshot of recorded spans, optionally filtered."""
        with self._lock:
            out = list(self._spans)
        if track is not None:
            out = [s for s in out if s.track == track]
        if rank is not None:
            out = [s for s in out if s.rank == rank]
        if category is not None:
            out = [s for s in out if s.category == category]
        return out

    def tracks(self) -> list[str]:
        """Track names with at least one span, in first-seen order."""
        seen: dict[str, None] = {}
        for s in self.spans():
            seen.setdefault(s.track, None)
        return list(seen)

    def ranks(self, track: str = SIM_TRACK) -> list[int]:
        """Sorted ranks with at least one span on ``track``."""
        return sorted({s.rank for s in self.spans(track=track)})

    def streams(self, track: str = SIM_TRACK) -> list[int]:
        """Sorted stream indices with at least one span on ``track``."""
        return sorted({s.stream for s in self.spans(track=track)})

    def category_totals(
        self,
        *,
        track: str = SIM_TRACK,
        rank: int | None = None,
        depth: int = 0,
        stream: int | None = 0,
    ) -> dict[str, float]:
        """Total span seconds per category at one nesting depth of a track.

        Summing a single depth (default: top level) means nested child
        spans never double-count their parents' time.  With ``rank=None``
        the totals are the *mean across ranks* present on the track — the
        same convention as ``SimCluster.breakdown()``.

        ``stream`` defaults to 0 (the compute stream, i.e. the rank's
        ``SimClock`` timeline) so sim-track totals keep reconciling
        exactly with ``SimCluster.breakdown()`` even when comm-stream
        spans from :mod:`repro.runtime` are present; pass ``stream=None``
        to aggregate every lane.
        """
        spans = [s for s in self.spans(track=track) if s.depth == depth]
        if stream is not None:
            spans = [s for s in spans if s.stream == stream]
        if rank is not None:
            spans = [s for s in spans if s.rank == rank]
            n_ranks = 1
        else:
            n_ranks = max(len({s.rank for s in spans}), 1)
        out: dict[str, float] = {}
        for s in spans:
            out[s.category] = out.get(s.category, 0.0) + s.duration / n_ranks
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._cursors.clear()


class _NullSpanContext:
    """Reusable no-op context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every operation is a cheap no-op."""

    enabled = False

    def host_now(self) -> float:
        return 0.0

    def cursor(self, track: str, rank: int = 0) -> float:
        return 0.0

    def span(self, *args, **kwargs) -> _NullSpanContext:
        return _NULL_SPAN

    def add_span(self, *args, **kwargs) -> None:
        return None

    def spans(self, **kwargs) -> list[Span]:
        return []

    def tracks(self) -> list[str]:
        return []

    def ranks(self, track: str = SIM_TRACK) -> list[int]:
        return []

    def streams(self, track: str = SIM_TRACK) -> list[int]:
        return []

    def category_totals(self, **kwargs) -> dict[str, float]:
        return {}

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()

_active_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide active tracer (the null tracer when disabled)."""
    return _active_tracer


def set_tracer(tracer: Tracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` (None disables); returns the previous one."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer if tracer is not None else NULL_TRACER
    return previous
