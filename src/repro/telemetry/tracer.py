"""Hierarchical span tracing over the simulator's three timelines.

A :class:`Span` is a named, categorised interval on one *track*:

* ``sim`` — the simulated cluster timeline.  One sub-track (``rank``) per
  simulated GPU; span start/end are :class:`~repro.distributed.clock.SimClock`
  values, so per-rank per-category span totals reconcile exactly with
  ``SimCluster.breakdown()``.
* ``host`` — real (wall-clock) time spent in the Python process: trainer
  phases, compressor stages.  This is an honest profile of the
  reproduction itself, kept on its own timeline so it never pollutes the
  modelled one.
* ``device`` — modelled GPU kernel time from :mod:`repro.gpusim`; spans
  are stacked sequentially by a per-track cursor.

Tracing is disabled by default: :func:`get_tracer` returns the singleton
:data:`NULL_TRACER` whose ``span`` hands back one reusable no-op context
manager, so instrumentation costs a function call and a truthiness check
when off.  Enable with :func:`set_tracer` or ``repro.telemetry.session``.

The collector is thread-safe (one lock around the span list, thread-local
nesting stacks), matching the "in-process collector" contract even though
the simulator itself is single-threaded today.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "DEVICE_TRACK",
    "Edge",
    "HOST_TRACK",
    "NULL_TRACER",
    "NullTracer",
    "SIM_TRACK",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span_sort_key",
]

SIM_TRACK = "sim"
HOST_TRACK = "host"
DEVICE_TRACK = "device"


@dataclass
class Span:
    """One named interval on a (track, rank) timeline."""

    name: str
    category: str
    #: Start time in seconds on the span's track timeline.
    start: float
    duration: float
    track: str = SIM_TRACK
    #: Sub-track: simulated rank on ``sim``, thread/stream index elsewhere.
    rank: int = 0
    #: Execution stream within the rank: 0 is the compute stream (the
    #: rank's :class:`SimClock` timeline); 1.. are comm streams used by
    #: :mod:`repro.runtime`'s nonblocking collectives.  The Chrome-trace
    #: exporter renders each (rank, stream) pair as its own lane.
    stream: int = 0
    #: Nesting depth (0 = top level) for summary rendering.
    depth: int = 0
    attrs: dict = field(default_factory=dict)
    #: Stable per-tracer id, assigned on append (monotone in emission
    #: order).  ``-1`` means "not yet collected"; causal :class:`Edge`
    #: records reference spans by this id.
    id: int = -1

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class Edge:
    """One causal edge between two spans, by span id.

    ``src`` causally precedes (or encloses) ``dst``.  Kinds used by the
    simulator:

    * ``"parent"`` — lexical nesting: ``src`` is the enclosing span.
    * ``"collective"`` — couples the per-rank legs of one collective
      operation; the edge chain orders ranks ascending.
    * ``"wait"`` — couples a comm-stream transfer span to the stream-0
      span that blocked on it (the exposed tail / barrier wait).
    """

    src: int
    dst: int
    kind: str


def span_sort_key(span: Span):
    """The documented stable ordering for span streams.

    Sorts by ``(track, rank, stream, start, -duration, depth, id)`` with
    ranks keyed so integer ranks order numerically and string ranks (the
    timing track's ``"*"``) sort after them — no ``int < str`` comparisons.
    The trailing ``id`` tiebreak makes the order total and equal to
    emission order among otherwise-identical spans, so xray DAG
    construction never depends on collection-time races.
    """
    rank = span.rank
    rank_key = (1, 0, str(rank)) if isinstance(rank, str) else (0, rank, "")
    return (span.track, rank_key, span.stream, span.start, -span.duration, span.depth, span.id)


class _SpanContext:
    """Context manager recording one measured span on enter/exit."""

    __slots__ = ("_tracer", "_name", "_category", "_track", "_rank", "_clock", "_attrs", "_t0")

    def __init__(self, tracer, name, category, track, rank, clock, attrs):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._track = track
        self._rank = rank
        self._clock = clock
        self._attrs = attrs

    def _now(self) -> float:
        return self._clock() if self._clock is not None else self._tracer.host_now()

    def __enter__(self) -> "_SpanContext":
        self._t0 = self._now()
        self._tracer._push(self._track, self._rank)
        return self

    def __exit__(self, *exc) -> bool:
        depth, span_id, parent_id = self._tracer._pop(self._track, self._rank)
        t1 = self._now()
        self._tracer._append(
            Span(
                self._name,
                self._category,
                self._t0,
                max(t1 - self._t0, 0.0),
                track=self._track,
                rank=self._rank,
                depth=depth,
                attrs=self._attrs,
                id=span_id,
            )
        )
        if parent_id is not None:
            self._tracer.add_edge(parent_id, span_id, "parent")
        return False


class Tracer:
    """Thread-safe in-process span collector."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._edges: list[Edge] = []
        self._cursors: dict[tuple[str, int], float] = {}
        self._local = threading.local()
        self._origin = time.perf_counter()
        self._next_id = 0

    # -- time sources --------------------------------------------------------

    def host_now(self) -> float:
        """Seconds of real time since this tracer was created."""
        return time.perf_counter() - self._origin

    def cursor(self, track: str, rank: int = 0) -> float:
        """End of the latest span on (track, rank); 0.0 if none yet."""
        with self._lock:
            return self._cursors.get((track, rank), 0.0)

    # -- nesting bookkeeping -------------------------------------------------
    #
    # Open-span state is a per-thread stack of reserved span ids keyed by
    # (track, rank).  Depth is derived from stack length, so unbalanced
    # ``_pop`` calls can never drive it negative (the pre-PR-10 ``_depths``
    # counter underflowed and recorded spans at depth < 0 forever after).

    def _stacks(self) -> dict[tuple[str, int], list[int]]:
        d = getattr(self._local, "stacks", None)
        if d is None:
            d = self._local.stacks = {}
        return d

    def _reserve_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _push(self, track: str, rank: int) -> int:
        """Reserve an id for an opening span and push it on the stack."""
        span_id = self._reserve_id()
        self._stacks().setdefault((track, rank), []).append(span_id)
        return span_id

    def _pop(self, track: str, rank: int) -> tuple[int, int, int | None]:
        """Close the innermost open span on (track, rank).

        Returns ``(depth, span_id, parent_id)``; depth is clamped at 0
        even for unbalanced pops.
        """
        stack = self._stacks().setdefault((track, rank), [])
        span_id = stack.pop() if stack else self._reserve_id()
        depth = len(stack)
        parent_id = stack[-1] if stack else None
        return depth, span_id, parent_id

    def _append(self, span: Span) -> None:
        key = (span.track, span.rank)
        with self._lock:
            if span.id < 0:
                span.id = self._next_id
                self._next_id += 1
            self._spans.append(span)
            if span.end > self._cursors.get(key, 0.0):
                self._cursors[key] = span.end

    # -- recording -----------------------------------------------------------

    def span(
        self,
        name: str,
        category: str = "host",
        *,
        track: str = HOST_TRACK,
        rank: int = 0,
        clock=None,
        **attrs,
    ) -> _SpanContext:
        """Context manager measuring a span from enter to exit.

        ``clock`` is an optional zero-arg callable returning the current
        time on the span's timeline (e.g. a simulated rank clock's
        ``now``); without it, real host time is measured.
        """
        return _SpanContext(self, name, category, track, rank, clock, attrs)

    def add_span(
        self,
        name: str,
        category: str,
        duration: float,
        *,
        start: float | None = None,
        track: str = SIM_TRACK,
        rank: int = 0,
        stream: int = 0,
        depth: int = 0,
        **attrs,
    ) -> Span:
        """Record a span with a known duration.

        With ``start=None`` the span is stacked at the (track, rank)
        cursor — the end of the latest span there — which is how modelled
        device kernels build a sequential timeline.  ``stream`` places the
        span on a comm-stream sub-lane of the rank (0 = compute stream).
        """
        if start is None:
            start = self.cursor(track, rank)
        span = Span(
            name,
            category,
            start,
            duration,
            track=track,
            rank=rank,
            stream=stream,
            depth=depth,
            attrs=attrs,
        )
        self._append(span)
        return span

    def add_edge(self, src: int, dst: int, kind: str) -> Edge | None:
        """Record a causal edge between two collected span ids.

        Negative ids (uncollected spans, or spans recorded through the
        null tracer) are ignored so call sites can pass ``span.id``
        without guarding.
        """
        if src < 0 or dst < 0:
            return None
        edge = Edge(src, dst, kind)
        with self._lock:
            self._edges.append(edge)
        return edge

    # -- reading -------------------------------------------------------------

    def edges(self, *, kind: str | None = None) -> list[Edge]:
        """Snapshot of recorded causal edges, optionally filtered by kind."""
        with self._lock:
            out = list(self._edges)
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        return out

    def ordered_spans(
        self,
        *,
        track: str | None = None,
        rank: int | None = None,
        category: str | None = None,
    ) -> list[Span]:
        """Spans in the documented stable order (see :func:`span_sort_key`).

        This — not raw :meth:`spans` insertion order — is the ordering
        contract downstream consumers (xray DAG construction, digest
        writers) should build on: it is a pure function of the recorded
        span set, independent of collection-time interleaving.
        """
        return sorted(
            self.spans(track=track, rank=rank, category=category), key=span_sort_key
        )

    def spans(
        self,
        *,
        track: str | None = None,
        rank: int | None = None,
        category: str | None = None,
    ) -> list[Span]:
        """Snapshot of recorded spans, optionally filtered."""
        with self._lock:
            out = list(self._spans)
        if track is not None:
            out = [s for s in out if s.track == track]
        if rank is not None:
            out = [s for s in out if s.rank == rank]
        if category is not None:
            out = [s for s in out if s.category == category]
        return out

    def tracks(self) -> list[str]:
        """Track names with at least one span, in first-seen order."""
        seen: dict[str, None] = {}
        for s in self.spans():
            seen.setdefault(s.track, None)
        return list(seen)

    def ranks(self, track: str = SIM_TRACK) -> list[int]:
        """Sorted ranks with at least one span on ``track``."""
        return sorted({s.rank for s in self.spans(track=track)})

    def streams(self, track: str = SIM_TRACK) -> list[int]:
        """Sorted stream indices with at least one span on ``track``."""
        return sorted({s.stream for s in self.spans(track=track)})

    def category_totals(
        self,
        *,
        track: str = SIM_TRACK,
        rank: int | None = None,
        depth: int = 0,
        stream: int | None = 0,
    ) -> dict[str, float]:
        """Total span seconds per category at one nesting depth of a track.

        Summing a single depth (default: top level) means nested child
        spans never double-count their parents' time.  With ``rank=None``
        the totals are the *mean across ranks* present on the track — the
        same convention as ``SimCluster.breakdown()``.

        ``stream`` defaults to 0 (the compute stream, i.e. the rank's
        ``SimClock`` timeline) so sim-track totals keep reconciling
        exactly with ``SimCluster.breakdown()`` even when comm-stream
        spans from :mod:`repro.runtime` are present; pass ``stream=None``
        to aggregate every lane.
        """
        spans = [s for s in self.spans(track=track) if s.depth == depth]
        if stream is not None:
            spans = [s for s in spans if s.stream == stream]
        if rank is not None:
            spans = [s for s in spans if s.rank == rank]
            n_ranks = 1
        else:
            n_ranks = max(len({s.rank for s in spans}), 1)
        out: dict[str, float] = {}
        for s in spans:
            out[s.category] = out.get(s.category, 0.0) + s.duration / n_ranks
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._edges.clear()
            self._cursors.clear()
            self._next_id = 0


class _NullSpanContext:
    """Reusable no-op context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every operation is a cheap no-op."""

    enabled = False

    def host_now(self) -> float:
        return 0.0

    def cursor(self, track: str, rank: int = 0) -> float:
        return 0.0

    def span(self, *args, **kwargs) -> _NullSpanContext:
        return _NULL_SPAN

    def add_span(self, *args, **kwargs) -> None:
        return None

    def add_edge(self, src: int, dst: int, kind: str) -> None:
        return None

    def spans(self, **kwargs) -> list[Span]:
        return []

    def edges(self, **kwargs) -> list[Edge]:
        return []

    def ordered_spans(self, **kwargs) -> list[Span]:
        return []

    def tracks(self) -> list[str]:
        return []

    def ranks(self, track: str = SIM_TRACK) -> list[int]:
        return []

    def streams(self, track: str = SIM_TRACK) -> list[int]:
        return []

    def category_totals(self, **kwargs) -> dict[str, float]:
        return {}

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()

_active_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide active tracer (the null tracer when disabled)."""
    return _active_tracer


def set_tracer(tracer: Tracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` (None disables); returns the previous one."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer if tracer is not None else NULL_TRACER
    return previous
