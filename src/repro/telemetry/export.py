"""Trace and metric exporters.

Three output formats:

* **Chrome trace** — ``trace_event`` JSON loadable in ``chrome://tracing``
  or Perfetto.  Each track (sim / host / device) becomes a process, each
  simulated rank a thread, so a trained eye reads the run like an
  ``nsys`` timeline: per-rank collective bars on the sim process, Python
  phase bars on the host process, modelled kernels on the device process.
* **Metrics JSONL** — one JSON object per line: per-step snapshots first
  (``{"step": ..., "metrics": [...]}``), then one ``{"final": ...}``
  record with the end-of-run state of every instrument.
* **Summary table** — plain-text per-category totals via
  :mod:`repro.util.tables`, the same renderer the benchmarks use.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import SIM_TRACK, Tracer
from repro.util.tables import format_table

__all__ = [
    "MetricsLog",
    "category_fractions",
    "chrome_trace",
    "load_metrics_jsonl",
    "metrics_jsonl",
    "summary_table",
    "write_chrome_trace",
    "write_metrics_jsonl",
]

#: Stable process ids per track; unknown tracks get ids after these.
_TRACK_PIDS = {"sim": 0, "host": 1, "device": 2}


def _pid_map(tracer: Tracer) -> dict[str, int]:
    pids = dict(_TRACK_PIDS)
    next_pid = max(pids.values()) + 1
    for track in tracer.tracks():
        if track not in pids:
            pids[track] = next_pid
            next_pid += 1
    return pids


def chrome_trace(tracer: Tracer) -> dict:
    """Render all spans as a Chrome ``trace_event`` document.

    Events are complete ("ph": "X") events in microseconds, sorted so
    timestamps are monotonically non-decreasing within each (pid, tid)
    row, parents before their children.

    Each (rank, stream) pair renders as its own thread lane with
    ``tid = rank * n_streams + stream`` (``n_streams`` per track), so the
    comm streams of :mod:`repro.runtime` appear directly beneath their
    rank's compute lane.  Tracks without comm-stream spans keep
    ``tid == rank``, preserving the pre-stream layout.
    """
    pids = _pid_map(tracer)
    n_streams = {
        track: max(tracer.streams(track), default=0) + 1 for track in tracer.tracks()
    }

    def tid_of(track: str, rank: int, stream: int) -> int:
        return rank * n_streams[track] + stream

    events: list[dict] = []
    for track in tracer.tracks():
        pid = pids[track]
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": track},
            }
        )
        lanes = sorted({(s.rank, s.stream) for s in tracer.spans(track=track)})
        for rank, stream in lanes:
            base = f"rank {rank}" if track == SIM_TRACK else f"{track} {rank}"
            label = base if stream == 0 else f"{base} · comm{stream}"
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid_of(track, rank, stream),
                    "args": {"name": label},
                }
            )
    spans = sorted(
        tracer.spans(),
        key=lambda s: (pids[s.track], tid_of(s.track, s.rank, s.stream), s.start, -s.duration, s.depth),
    )
    for s in spans:
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.category,
                "pid": pids[s.track],
                "tid": tid_of(s.track, s.rank, s.stream),
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
                "args": s.attrs,
            }
        )
    # Causal edges become flow events ("s" at the source span's end, "f"
    # bound to the destination span) so Perfetto draws cross-stream wait
    # and collective arrows.  "parent" edges are skipped — lexical nesting
    # is already visible as slice containment.  With no edges recorded the
    # document is byte-identical to the pre-flow exporter.
    by_id = {s.id: s for s in spans}
    flow_id = 0
    for edge in tracer.edges():
        if edge.kind == "parent":
            continue
        src = by_id.get(edge.src)
        dst = by_id.get(edge.dst)
        if src is None or dst is None:
            continue
        events.append(
            {
                "ph": "s",
                "name": edge.kind,
                "cat": edge.kind,
                "id": flow_id,
                "pid": pids[src.track],
                "tid": tid_of(src.track, src.rank, src.stream),
                "ts": src.end * 1e6,
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "name": edge.kind,
                "cat": edge.kind,
                "id": flow_id,
                "pid": pids[dst.track],
                "tid": tid_of(dst.track, dst.rank, dst.stream),
                "ts": dst.start * 1e6,
            }
        )
        flow_id += 1
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer), indent=1))
    return path


def metrics_jsonl(registry: MetricsRegistry) -> str:
    """Per-step snapshot lines followed by one final-state line."""
    lines = [json.dumps(record) for record in registry.steps]
    lines.append(json.dumps({"final": True, "metrics": registry.snapshot()}))
    return "\n".join(lines) + "\n"


def write_metrics_jsonl(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the metrics JSONL dump; returns the path written."""
    path = Path(path)
    path.write_text(metrics_jsonl(registry))
    return path


@dataclass
class MetricsLog:
    """A parsed metrics JSONL dump (see :func:`load_metrics_jsonl`).

    ``steps`` holds the raw per-step records in file order; ``final`` is
    the trailing ``{"final": true, "metrics": [...]}`` record.  Records
    keep their original key and label ordering (JSON objects preserve
    insertion order), so :meth:`dumps` reproduces the exported text
    byte-for-byte — the lossless round-trip the regression tests assert.
    """

    steps: list[dict] = field(default_factory=list)
    final: dict = field(default_factory=dict)

    def dumps(self) -> str:
        """Re-serialise exactly as :func:`metrics_jsonl` wrote it."""
        lines = [json.dumps(record) for record in self.steps]
        lines.append(json.dumps(self.final))
        return "\n".join(lines) + "\n"

    def final_metrics(self) -> list[dict]:
        return list(self.final.get("metrics", []))

    def series(self, name: str, *, key: str = "value") -> list[tuple[int, object]]:
        """Per-step ``(step, value)`` trajectory of one instrument."""
        out: list[tuple[int, object]] = []
        for record in self.steps:
            for m in record.get("metrics", []):
                if m.get("name") == name:
                    out.append((record["step"], m.get(key)))
        return out


def load_metrics_jsonl(path: str | Path) -> MetricsLog:
    """Parse a :func:`write_metrics_jsonl` dump back into records.

    The reader is strict about the contract the writer keeps: every line
    is one JSON object, per-step records carry ``step``, and the last
    line is the ``final`` record.
    """
    text = Path(path).read_text()
    records = [json.loads(line) for line in text.splitlines() if line.strip()]
    if not records or not records[-1].get("final"):
        raise ValueError(f"{path}: missing trailing final record")
    steps = records[:-1]
    for r in steps:
        if "step" not in r:
            raise ValueError(f"{path}: per-step record without 'step': {r}")
    return MetricsLog(steps=steps, final=records[-1])


def category_fractions(tracer: Tracer, *, track: str = SIM_TRACK) -> dict[str, float]:
    """Share of total top-level span time per category on one track."""
    totals = tracer.category_totals(track=track)
    grand = sum(totals.values())
    if grand <= 0:
        return {k: 0.0 for k in totals}
    return {k: v / grand for k, v in totals.items()}


def summary_table(
    tracer: Tracer, *, track: str = SIM_TRACK, depth: int = 0, title: str | None = None
) -> str:
    """Per-category totals at one depth of ``track`` as a text table.

    Seconds are the mean across ranks (the ``SimCluster.breakdown()``
    convention); span counts are totals across all ranks.  Pass
    ``depth=1`` on the host track to see trainer phases instead of the
    enclosing per-step spans.
    """
    totals = tracer.category_totals(track=track, depth=depth)
    grand = sum(totals.values())
    counts: dict[str, int] = {}
    for s in tracer.spans(track=track):
        if s.depth == depth:
            counts[s.category] = counts.get(s.category, 0) + 1
    rows = [
        [cat, counts.get(cat, 0), seconds, 100.0 * seconds / grand if grand else 0.0]
        for cat, seconds in sorted(totals.items(), key=lambda kv: -kv[1])
    ]
    rows.append(["total", sum(counts.values()), grand, 100.0 if grand else 0.0])
    return format_table(
        ["category", "spans", "seconds/rank", "share%"],
        rows,
        title=title or f"telemetry summary — {track} track",
        floatfmt=".6f",
    )
