"""Tracing, metrics, and profiling for the COMPSO reproduction.

The subsystem has three parts, all zero-cost when disabled:

* :class:`Tracer` — hierarchical spans over the simulated-cluster,
  host, and modelled-device timelines (:mod:`repro.telemetry.tracer`);
* :class:`MetricsRegistry` — counters/gauges/histograms with per-step
  snapshots (:mod:`repro.telemetry.metrics`);
* exporters — Chrome ``trace_event`` JSON, metrics JSONL, and plain-text
  summary tables (:mod:`repro.telemetry.export`).

Instrumented code (collectives, compressors, kernels, trainers) fetches
the active tracer/registry via :func:`get_tracer` / :func:`get_metrics`;
both return no-op singletons until a session is opened::

    from repro import telemetry

    with telemetry.session() as t:
        trainer.train(iterations=5, batch_size=32)
    telemetry.write_chrome_trace(t.tracer, "trace.json")
    print(telemetry.summary_table(t.tracer))
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import NamedTuple

from repro.telemetry.export import (
    MetricsLog,
    category_fractions,
    chrome_trace,
    load_metrics_jsonl,
    metrics_jsonl,
    summary_table,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.telemetry.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.telemetry.tracer import (
    DEVICE_TRACK,
    HOST_TRACK,
    NULL_TRACER,
    SIM_TRACK,
    Edge,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span_sort_key,
)

__all__ = [
    "Counter",
    "DEVICE_TRACK",
    "Edge",
    "Gauge",
    "HOST_TRACK",
    "Histogram",
    "MetricsLog",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "SIM_TRACK",
    "Span",
    "TelemetrySession",
    "Tracer",
    "category_fractions",
    "chrome_trace",
    "get_metrics",
    "get_tracer",
    "load_metrics_jsonl",
    "metrics_jsonl",
    "session",
    "set_metrics",
    "set_tracer",
    "span_sort_key",
    "summary_table",
    "write_chrome_trace",
    "write_metrics_jsonl",
]


class TelemetrySession(NamedTuple):
    """The tracer/registry pair active inside a :func:`session`."""

    tracer: Tracer
    metrics: MetricsRegistry


@contextmanager
def session(tracer: Tracer | None = None, metrics: MetricsRegistry | None = None):
    """Enable telemetry for the duration of the ``with`` block.

    Fresh collectors are created unless provided; the previously active
    pair (normally the null singletons) is restored on exit, including on
    exceptions, so a crashed traced run never leaves tracing enabled.
    """
    tracer = tracer if tracer is not None else Tracer()
    metrics = metrics if metrics is not None else MetricsRegistry()
    prev_tracer = set_tracer(tracer)
    prev_metrics = set_metrics(metrics)
    try:
        yield TelemetrySession(tracer, metrics)
    finally:
        set_tracer(prev_tracer if isinstance(prev_tracer, Tracer) else None)
        set_metrics(prev_metrics if isinstance(prev_metrics, MetricsRegistry) else None)
