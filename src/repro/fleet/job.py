"""One fleet job: a timing-track COMPSO training run on shared fabric.

A :class:`FleetJob` wraps the standard :class:`DistributedKfacTrainer`
on a representative-rank timing cluster (O(1) payload memory in world
size — a 16k-rank job costs the same RAM as a 4-rank one), wires the
cluster's contention hook to the shared :class:`SharedFabric`, and
exposes single-step execution so the scheduler can interleave tens of
jobs in simulated-time order.

Jobs have a failure lifecycle (``waiting -> running -> done``, with
crash/preempt excursions back to ``waiting`` and a terminal ``failed``):

* the job checkpoints every ``JobSpec.checkpoint_every`` completed
  steps via the trainer's atomic exact-resume checkpoint (model, K-FAC
  eigen state, momentum, adaptive bounds, SR RNG);
* a :class:`~repro.faults.plan.JobCrash` in the job's fault plan raises
  :class:`JobCrashed` at the scheduled iteration — the scheduler rolls
  the job back to its checkpoint and requeues it with backoff;
* preemption checkpoints at the *current* step, so a preempted job
  loses queue position but no work;
* rank/node failures inside the plan never reach the scheduler — the
  trainer's elastic continuation (``repro.faults.recovery`` semantics)
  shrinks the world and reassigns layer ownership mid-run.

Fleet-time bookkeeping: ``offset`` is the fleet time at which the
current segment's cluster clock started (the arrival for the first
segment, the resume time after a crash or preemption), so ``now =
offset + cluster.time`` is always the job's true position on the fleet
clock, and fabric windows from rolled-back segments stay priced — the
lost work really did occupy the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.plan import FaultPlan
from repro.faults.storage import StorageCrash, StorageFaultController
from repro.fleet.fabric import SharedFabric

__all__ = ["JobSpec", "FleetJob", "JobCrashed"]


class JobCrashed(RuntimeError):
    """Raised by :meth:`FleetJob.step` when a scheduled crash fires."""

    def __init__(self, name: str, iteration: int):
        super().__init__(f"job {name!r} crashed at iteration {iteration}")
        self.name = name
        self.iteration = iteration


@dataclass(frozen=True)
class JobSpec:
    """Static description of one job submitted to the fleet."""

    name: str
    world_size: int
    iterations: int
    batch_size: int = 64
    #: Fair-share weight on the fabric (higher = slowed less) and the
    #: scheduler's preemption rank (higher priority can preempt lower).
    priority: float = 1.0
    gpus_per_node: int = 4
    #: COMPSO error bound for the preconditioned-gradient compressor;
    #: ``None`` runs the job uncompressed.
    eb: float | None = 4e-3
    seed: int = 0
    #: Fleet time at which the job starts (seconds).
    arrival: float = 0.0
    #: Latency SLO: the job should finish within ``deadline`` fleet
    #: seconds of its arrival.  ``None`` means no SLO.
    deadline: float | None = None
    #: Checkpoint every N completed steps (0 disables checkpointing;
    #: a crashed job then restarts from step 0).
    checkpoint_every: int = 1
    #: Per-job fault schedule.  Crashes are interpreted by the fleet
    #: scheduler; everything else by the job's own SimCluster (which
    #: rejects data-plane faults on the timing track).
    fault_plan: FaultPlan | None = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("job name must be a non-empty string")
        if self.iterations < 1:
            raise ValueError(f"job {self.name!r}: iterations must be >= 1")
        if self.batch_size < 1:
            raise ValueError(f"job {self.name!r}: batch_size must be >= 1")
        if self.priority <= 0.0:
            raise ValueError(
                f"job {self.name!r}: priority must be > 0, got {self.priority!r}"
            )
        if self.arrival < 0.0:
            raise ValueError(f"job {self.name!r}: arrival must be >= 0")
        if self.deadline is not None and self.deadline <= 0.0:
            raise ValueError(
                f"job {self.name!r}: deadline must be > 0 seconds past arrival"
            )
        if self.checkpoint_every < 0:
            raise ValueError(f"job {self.name!r}: checkpoint_every must be >= 0")


class FleetJob:
    """A job's live state: cluster, trainer, batch cursor, lifecycle."""

    def __init__(
        self,
        spec: JobSpec,
        fabric: SharedFabric,
        *,
        network=None,
        ledger_path: str | Path | None = None,
        checkpoint_path: str | Path | None = None,
        store_dir: str | Path | None = None,
    ):
        self.spec = spec
        self.fabric = fabric
        fabric.register(spec.name, spec.priority)
        self._network = network
        self.ledger_path = Path(ledger_path) if ledger_path is not None else None
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        # Durable state: with a ``store_dir`` the job checkpoints into a
        # sealed, versioned CheckpointStore (its own subdirectory) and
        # restores fall back across generations on damage.  The store —
        # and the storage fault controller interpreting the spec's
        # storage-plane faults against it — persist across segment
        # rebuilds: a restarted job keeps its generation lineage, and
        # each scheduled fault fires exactly once per job lifetime.
        self.store = None
        self.storage_faults: StorageFaultController | None = None
        if store_dir is not None:
            from repro.store import CheckpointStore

            hooks_factory = None
            if spec.fault_plan is not None and spec.fault_plan.storage:
                self.storage_faults = StorageFaultController(spec.fault_plan)
                hooks_factory = self.storage_faults.hooks_for
            self.store = CheckpointStore(
                Path(store_dir) / spec.name, hooks_factory=hooks_factory
            )
        # -- lifecycle state --------------------------------------------------
        self.state = "waiting"
        #: Fleet time at which the job can (re)start.
        self.ready_time = spec.arrival
        #: Fleet time at which the current segment's cluster clock started.
        self.offset = spec.arrival
        #: Fleet time at which the job finished or permanently failed.
        self.end: float | None = None
        self.restarts = 0
        self.preemptions = 0
        #: Sim seconds of work rolled back by crashes.
        self.lost_work = 0.0
        #: Fleet seconds spent waiting out restart backoff.
        self.backoff_total = 0.0
        #: Priced sim seconds of earlier (crashed or preempted) segments.
        self.sim_time_past = 0.0
        #: Fault-injected collective stall from earlier segments.
        self._fault_delay_past = 0.0
        self.checkpoint_step = 0
        self._ckpt_sim_time = 0.0
        self._pending_restore = False
        #: Crash iterations that already fired — a crash happens once,
        #: so the restarted job runs past it.
        self._crashes_fired: set[int] = set()
        self._crash_iters = (
            {c.iteration for c in spec.fault_plan.crashes}
            if spec.fault_plan is not None
            else set()
        )
        self.steps_done = 0
        self._build()

    def _build(self) -> None:
        """(Re)construct cluster, trainer, and ledger for one segment."""
        from repro.core import CompsoCompressor
        from repro.data import make_image_data
        from repro.data.loaders import batch_indices
        from repro.distributed import SLINGSHOT10, SimCluster
        from repro.kfac_dist import DistributedKfacTrainer
        from repro.models import resnet_proxy
        from repro.obsv import LedgerConfig
        from repro.train import ClassificationTask

        spec = self.spec
        self.cluster = SimCluster.from_world_size(
            spec.world_size,
            spec.gpus_per_node,
            seed=spec.seed,
            network=self._network if self._network is not None else SLINGSHOT10,
            track="timing",
            fault_plan=spec.fault_plan,
        )
        # Every collective this cluster prices goes through the shared
        # fabric, translated from job-local to fleet time.
        self.cluster.contention = self._price
        task = ClassificationTask(
            make_image_data(256, n_classes=5, size=8, noise=0.5, seed=spec.seed)
        )
        self.trainer = DistributedKfacTrainer(
            resnet_proxy(n_classes=5, channels=8, rng=spec.seed + 3),
            task,
            self.cluster,
            lr=0.05,
            inv_update_freq=2,
            compressor=(
                CompsoCompressor(spec.eb, spec.eb, seed=spec.seed)
                if spec.eb is not None
                else None
            ),
            checkpoint_store=self.store,
            obsv=(
                LedgerConfig(self.ledger_path, note=f"fleet job={spec.name}")
                if self.ledger_path is not None
                else None
            ),
        )
        if self.trainer.obsv is not None:
            self.trainer.obsv.update_manifest(
                seed=spec.seed,
                iterations=spec.iterations,
                batch_size=spec.batch_size,
                fleet=self._fleet_manifest(),
            )
        self._batches = list(
            batch_indices(task.n, spec.batch_size, iterations=spec.iterations, seed=spec.seed)
        )

    def _price(self, op: str, start: float, seconds: float) -> float:
        return self.fabric.acquire(self.spec.name, op, self.offset + start, seconds)

    # -- clocks & accounting --------------------------------------------------

    @property
    def done(self) -> bool:
        return self.steps_done >= len(self._batches)

    @property
    def now(self) -> float:
        """The job's position on the fleet clock."""
        return self.offset + self.cluster.time

    @property
    def work_time(self) -> float:
        """Sim seconds priced across all segments (including lost work)."""
        return self.sim_time_past + self.cluster.time

    @property
    def fault_delay_time(self) -> float:
        """Critical-path sim seconds lost to straggler/jitter stalls."""
        return self._fault_delay_past + self.cluster.fault_delay_seconds

    @property
    def critpath_s(self) -> float:
        """Critical-path sim seconds: on the timing track the shared
        clock plane *is* the critical path (every barrier folds the
        slowest rank into the base), so elapsed work time is exact."""
        return self.work_time

    @property
    def straggler_skew_s(self) -> float:
        """Mean per-rank barrier-wait seconds in the current segment
        (the plane's straggler accounting resets when a crash or
        preemption rebuilds the cluster)."""
        plane = getattr(self.cluster, "_plane", None)
        return plane.barrier_wait_s if plane is not None else 0.0

    def top_straggler(self) -> tuple[int, float] | None:
        """The rank that led the most barrier time, with its seconds."""
        plane = getattr(self.cluster, "_plane", None)
        return plane.top_straggler() if plane is not None else None

    @property
    def useful_time(self) -> float:
        """Sim seconds of surviving work, net of fabric and fault stretch.

        Work rolled back by crashes, seconds spent waiting on fabric
        contention or degradation windows, and straggler/jitter stalls
        are not useful (waste inside a later-rolled-back segment is
        subtracted once under each heading — a conservative
        approximation).
        """
        waste = (
            self.lost_work
            + self.fault_delay_time
            + self.fabric.contended_seconds.get(self.spec.name, 0.0)
            + self.fabric.degraded_seconds.get(self.spec.name, 0.0)
        )
        return max(self.work_time - waste, 0.0)

    def goodput(self) -> float:
        """Useful sim seconds per fleet second of residency (1.0 = a solo
        faultless job; crashes, backoff, queueing, contention, and fabric
        degradation all lower it)."""
        end = self.end if self.end is not None else self.now
        residency = end - self.spec.arrival
        if residency <= 0.0:
            return 1.0
        return self.useful_time / residency

    def slo_met(self) -> bool | None:
        """Whether the job finished inside its deadline (None = no SLO)."""
        if self.spec.deadline is None:
            return None
        if self.state != "done" or self.end is None:
            return False
        return self.end - self.spec.arrival <= self.spec.deadline

    # -- lifecycle ------------------------------------------------------------

    def resume(self, at: float) -> None:
        """Admit (or re-admit) the job at fleet time ``at``.

        After a crash or preemption the cluster/trainer are rebuilt from
        scratch and the exact-resume checkpoint is restored, so the
        continued trajectory is bit-identical to one that never stopped.
        """
        if self.state != "waiting":
            raise RuntimeError(f"job {self.spec.name!r} is {self.state}, not waiting")
        if self._pending_restore:
            self._build()
            if self.store is not None:
                # Newest *verified* generation wins: a corrupt newest
                # checkpoint is quarantined and the job resumes from the
                # generation before it (replaying the steps in between
                # bit-identically) instead of failing the restart.
                gen = self.trainer.restore_latest()
                self.steps_done = gen.step if gen is not None else 0
                self.checkpoint_step = self.steps_done
            else:
                if self.checkpoint_path is not None and self.checkpoint_step > 0:
                    self.trainer.restore_state(self.checkpoint_path)
                self.steps_done = self.checkpoint_step
            self._ckpt_sim_time = 0.0
            self._pending_restore = False
        self.offset = at
        self.state = "running"

    def checkpoint(self) -> None:
        """Lightweight exact-resume checkpoint of the current step.

        With a store this commits a sealed generation; a storage-plane
        :class:`~repro.faults.storage.StorageCrash` scheduled inside the
        save sequence surfaces as :class:`JobCrashed` — the process died
        mid-save, and the scheduler's crash machinery takes over (the
        store guarantees the previous committed generation survives).
        """
        if self.store is not None:
            try:
                self.trainer.save_state()
            except StorageCrash as exc:
                raise JobCrashed(self.spec.name, self.steps_done) from exc
            self.checkpoint_step = self.steps_done
            self._ckpt_sim_time = self.cluster.time
            return
        if self.checkpoint_path is None:
            return
        self.trainer.save_state(self.checkpoint_path)
        self.checkpoint_step = self.steps_done
        self._ckpt_sim_time = self.cluster.time

    def crash_rollback(self) -> float:
        """Account a crash: everything past the checkpoint is lost work.

        Returns the sim seconds rolled back.  The segment's fabric
        windows stay recorded — the lost work really occupied the wire.
        """
        lost = self.cluster.time - self._ckpt_sim_time
        self.sim_time_past += self.cluster.time
        self._fault_delay_past += self.cluster.fault_delay_seconds
        self.lost_work += lost
        self._pending_restore = True
        self.state = "waiting"
        return lost

    def preempt(self) -> None:
        """Suspend the job at its current step (checkpoint first, so a
        preemption costs queue position but zero work)."""
        if self.state != "running":
            raise RuntimeError(f"job {self.spec.name!r} is {self.state}, not running")
        try:
            self.checkpoint()
        except JobCrashed:
            # The process died while checkpointing for preemption: the
            # preemption becomes a crash rollback (work past the last
            # committed generation is lost) but charges no retry budget.
            self.preemptions += 1
            self.crash_rollback()
            self.ready_time = self.now
            return
        self.sim_time_past += self.cluster.time
        self._fault_delay_past += self.cluster.fault_delay_seconds
        self.preemptions += 1
        self._pending_restore = True
        self.state = "waiting"
        self.ready_time = self.now

    def mark_failed(self, at: float) -> None:
        """Terminal failure: retry budget exhausted."""
        self.state = "failed"
        self.end = at
        self._finalize_ledger()

    def step(self) -> float:
        """Run one training iteration; closes the ledger on the last.

        Raises :class:`JobCrashed` when the fault plan schedules a whole-
        job crash at this iteration (each crash fires exactly once)."""
        if self.state != "running":
            raise RuntimeError(f"job {self.spec.name!r} is {self.state}, not running")
        nxt = self.steps_done
        if nxt in self._crash_iters and nxt not in self._crashes_fired:
            self._crashes_fired.add(nxt)
            raise JobCrashed(self.spec.name, nxt)
        loss = self.trainer.step(self._batches[nxt])
        self.steps_done += 1
        if self.done:
            self.state = "done"
            self.end = self.now
            self._finalize_ledger()
        elif self.spec.checkpoint_every and self.steps_done % self.spec.checkpoint_every == 0:
            self.checkpoint()
        return loss

    # -- reporting ------------------------------------------------------------

    def _fleet_manifest(self) -> dict:
        return {
            "job": self.spec.name,
            "priority": self.spec.priority,
            "world_size": self.spec.world_size,
            "arrival": self.spec.arrival,
            "state": self.state,
            "restarts": self.restarts,
            "preemptions": self.preemptions,
            "time_lost_s": self.lost_work + self.backoff_total,
            "goodput": self.goodput(),
            "deadline": self.spec.deadline,
            "slo_met": self.slo_met(),
        }

    def _finalize_ledger(self) -> None:
        obsv = self.trainer.obsv
        if obsv is None:
            return
        obsv.update_manifest(fleet=self._fleet_manifest())
        if self.store is not None and self.store.abnormal_events():
            # Damage only: a healthy store leaves the ledger byte-
            # identical to a store-less fleet run, so committed fleet
            # baselines stay valid.
            obsv.update_manifest(store=self.store.summary())
        obsv.close()

    @property
    def final_loss(self) -> float:
        losses = self.trainer.history.losses
        return losses[-1] if losses else float("nan")
