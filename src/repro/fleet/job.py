"""One fleet job: a timing-track COMPSO training run on shared fabric.

A :class:`FleetJob` wraps the standard :class:`DistributedKfacTrainer`
on a representative-rank timing cluster (O(1) payload memory in world
size — a 16k-rank job costs the same RAM as a 4-rank one), wires the
cluster's contention hook to the shared :class:`SharedFabric`, and
exposes single-step execution so the scheduler can interleave tens of
jobs in simulated-time order.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.fleet.fabric import SharedFabric

__all__ = ["JobSpec", "FleetJob"]


@dataclass(frozen=True)
class JobSpec:
    """Static description of one job submitted to the fleet."""

    name: str
    world_size: int
    iterations: int
    batch_size: int = 64
    #: Fair-share weight on the fabric (higher = slowed less).
    priority: float = 1.0
    gpus_per_node: int = 4
    #: COMPSO error bound for the preconditioned-gradient compressor;
    #: ``None`` runs the job uncompressed.
    eb: float | None = 4e-3
    seed: int = 0
    #: Fleet time at which the job starts (seconds).
    arrival: float = 0.0

    def __post_init__(self):
        if self.iterations < 1:
            raise ValueError(f"job {self.name!r}: iterations must be >= 1")
        if self.batch_size < 1:
            raise ValueError(f"job {self.name!r}: batch_size must be >= 1")
        if self.arrival < 0.0:
            raise ValueError(f"job {self.name!r}: arrival must be >= 0")


class FleetJob:
    """A job's live state: cluster, trainer, batch cursor, ledger."""

    def __init__(
        self,
        spec: JobSpec,
        fabric: SharedFabric,
        *,
        network=None,
        ledger_path: str | Path | None = None,
    ):
        from repro.core import CompsoCompressor
        from repro.data import make_image_data
        from repro.data.loaders import batch_indices
        from repro.distributed import SLINGSHOT10, SimCluster
        from repro.kfac_dist import DistributedKfacTrainer
        from repro.models import resnet_proxy
        from repro.obsv import LedgerConfig
        from repro.train import ClassificationTask

        self.spec = spec
        self.fabric = fabric
        fabric.register(spec.name, spec.priority)
        self.cluster = SimCluster.from_world_size(
            spec.world_size,
            spec.gpus_per_node,
            seed=spec.seed,
            network=network if network is not None else SLINGSHOT10,
            track="timing",
        )
        # Every collective this cluster prices goes through the shared
        # fabric, translated from job-local to fleet time.
        self.cluster.contention = self._price
        task = ClassificationTask(
            make_image_data(256, n_classes=5, size=8, noise=0.5, seed=spec.seed)
        )
        self.ledger_path = Path(ledger_path) if ledger_path is not None else None
        self.trainer = DistributedKfacTrainer(
            resnet_proxy(n_classes=5, channels=8, rng=spec.seed + 3),
            task,
            self.cluster,
            lr=0.05,
            inv_update_freq=2,
            compressor=(
                CompsoCompressor(spec.eb, spec.eb, seed=spec.seed)
                if spec.eb is not None
                else None
            ),
            obsv=(
                LedgerConfig(self.ledger_path, note=f"fleet job={spec.name}")
                if self.ledger_path is not None
                else None
            ),
        )
        if self.trainer.obsv is not None:
            self.trainer.obsv.update_manifest(
                seed=spec.seed,
                iterations=spec.iterations,
                batch_size=spec.batch_size,
                fleet={
                    "job": spec.name,
                    "priority": spec.priority,
                    "world_size": spec.world_size,
                    "arrival": spec.arrival,
                },
            )
        self._batches = list(
            batch_indices(task.n, spec.batch_size, iterations=spec.iterations, seed=spec.seed)
        )
        self.steps_done = 0

    def _price(self, op: str, start: float, seconds: float) -> float:
        return self.fabric.acquire(self.spec.name, op, self.spec.arrival + start, seconds)

    @property
    def done(self) -> bool:
        return self.steps_done >= len(self._batches)

    @property
    def now(self) -> float:
        """The job's position on the fleet clock."""
        return self.spec.arrival + self.cluster.time

    def step(self) -> float:
        """Run one training iteration; closes the ledger on the last."""
        if self.done:
            raise RuntimeError(f"job {self.spec.name!r} already finished")
        loss = self.trainer.step(self._batches[self.steps_done])
        self.steps_done += 1
        if self.done and self.trainer.obsv is not None:
            self.trainer.obsv.close()
        return loss

    @property
    def final_loss(self) -> float:
        losses = self.trainer.history.losses
        return losses[-1] if losses else float("nan")
