"""Fleet scheduler: interleave many jobs over one shared fabric.

Discrete-event style: among live jobs, always advance the one whose
fleet clock (a running job's ``offset + sim time``, a waiting job's
ready time) is furthest behind.  By the time a job prices a collective,
every job that could overlap it in fleet time has already recorded its
transfer windows, so the fabric's weighted fair sharing sees the true
concurrent load.  After each step the fabric prunes windows behind the
slowest live job — memory stays bounded by in-flight transfers, not run
length.

**Determinism.** The event ordering key is the tuple
``(fleet_time, -priority, name)``: ties on the fleet clock go to the
higher-priority job, then lexicographically by name.  Every component
is a float or a str with version-independent comparison semantics, and
``min`` over a list is stable, so two runs of the same spec set produce
byte-identical ledgers on any Python version.

**Failure lifecycle.** Jobs checkpoint periodically (exact-resume).  A
scheduled :class:`~repro.faults.plan.JobCrash` raises out of the job's
step; the scheduler rolls the job back to its checkpoint and requeues
it with capped exponential backoff (``min(base * 2**restarts, cap)``)
until the retry budget is exhausted, at which point the job is marked
``failed``.  When ``max_concurrent`` caps running jobs, an arriving
higher-priority job preempts the lowest-priority running one
(checkpoint first — preemption costs queue position, not work);
preemptions never charge the retry budget, so a preempted job cannot be
starved past it.  Rank/node failures inside a job are invisible here:
the trainer's elastic continuation handles them mid-run.

Because every job runs on a representative-rank timing cluster, payload
memory per job is O(1) in world size: a fleet of tens of 1k–16k-rank
jobs fits on a laptop-class host.
"""

from __future__ import annotations

import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.fleet.fabric import SharedFabric
from repro.fleet.job import FleetJob, JobCrashed, JobSpec

__all__ = [
    "JobReport",
    "FleetResult",
    "FleetScheduler",
    "PRESETS",
    "preset_specs",
    "preset_options",
]


@dataclass(frozen=True)
class JobReport:
    """Per-job outcome of one fleet run."""

    name: str
    world_size: int
    priority: float
    arrival: float
    steps: int
    #: Job-local simulated seconds priced across all segments (its own
    #: wallclock, including work later rolled back by crashes).
    sim_time: float
    #: Fleet time at which the job finished (or permanently failed).
    fleet_end: float
    final_loss: float
    #: Extra seconds lost to fabric contention.
    contended_seconds: float
    #: Mean contention stretch on this job's transfers (1.0 = alone).
    slowdown: float
    #: Largest per-collective payload residency (bytes) — flat in
    #: world size on the representative path.
    peak_payload_bytes: float
    ledger: str | None
    #: Terminal lifecycle state: "done" or "failed".
    state: str = "done"
    restarts: int = 0
    preemptions: int = 0
    #: Sim seconds rolled back by crashes plus fleet seconds of backoff.
    time_lost_s: float = 0.0
    #: Useful sim seconds per fleet second of residency (1.0 = solo
    #: faultless job).
    goodput: float = 1.0
    #: Latency SLO relative to arrival; None = no SLO.
    deadline: float | None = None
    #: Whether the job finished inside its deadline (None = no SLO).
    slo_met: bool | None = None
    #: Durable-state events (all zero without a store or with a healthy
    #: one): restores that fell back past a damaged newest generation,
    #: files quarantined (or found missing), and repairs (manifest
    #: rebuilds, orphan adoptions).
    store_fallbacks: int = 0
    store_quarantined: int = 0
    store_repairs: int = 0
    #: Critical-path summary (xray-lite for the timing track): on a
    #: virtual-clock plane the elapsed work time *is* the critical path,
    #: and barrier accounting names the rank the others waited on most.
    critpath_s: float = 0.0
    straggler_skew_s: float = 0.0
    top_straggler_rank: int | None = None

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class FleetResult:
    """Outcome of a whole fleet run."""

    reports: tuple[JobReport, ...]
    #: Fleet time at which the last job finished.
    makespan: float
    total_contended_seconds: float
    total_restarts: int = 0
    total_preemptions: int = 0
    jobs_failed: int = 0
    #: Jobs with an SLO that missed it (failed jobs count as misses).
    slo_missed: int = 0

    def by_name(self, name: str) -> JobReport:
        for report in self.reports:
            if report.name == name:
                return report
        raise KeyError(f"no job named {name!r} in fleet result")

    def to_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "total_contended_seconds": self.total_contended_seconds,
            "total_restarts": self.total_restarts,
            "total_preemptions": self.total_preemptions,
            "jobs_failed": self.jobs_failed,
            "slo_missed": self.slo_missed,
            "jobs": [r.to_dict() for r in self.reports],
        }


class FleetScheduler:
    """Run a set of :class:`JobSpec` jobs over one shared fabric."""

    def __init__(
        self,
        specs: list[JobSpec],
        *,
        network=None,
        ledger_dir: str | Path | None = None,
        checkpoint_dir: str | Path | None = None,
        store_dir: str | Path | None = None,
        max_concurrent: int | None = None,
        retry_budget: int = 3,
        backoff_base: float = 1e-3,
        backoff_cap: float = 8e-3,
        fabric_degradations: list[tuple[float, float, float]] | None = None,
    ):
        if not specs:
            raise ValueError("fleet needs at least one job")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate job names in fleet: {sorted(names)}")
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {retry_budget}")
        if backoff_base <= 0.0 or backoff_cap < backoff_base:
            raise ValueError(
                f"need 0 < backoff_base <= backoff_cap, got "
                f"{backoff_base} / {backoff_cap}"
            )
        self.max_concurrent = max_concurrent
        self.retry_budget = retry_budget
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.fabric = SharedFabric()
        for start, stop, factor in fabric_degradations or []:
            self.fabric.degrade(start, stop, factor)
        self.ledger_dir = Path(ledger_dir) if ledger_dir is not None else None
        if self.ledger_dir is not None:
            self.ledger_dir.mkdir(parents=True, exist_ok=True)
        # Checkpoints are required by the restart/preemption machinery;
        # without a caller-provided directory they live in a temp dir
        # tied to the scheduler's lifetime.
        self._tmpdir = None
        if checkpoint_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="fleet-ckpt-")
            checkpoint_dir = self._tmpdir.name
        self.checkpoint_dir = Path(checkpoint_dir)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        # With a store_dir, each job checkpoints into a sealed versioned
        # CheckpointStore under ``store_dir/<job name>`` (and the job's
        # storage-plane faults become live); without one, jobs keep the
        # single-file checkpoint path, bit-identical to before.
        self.store_dir = Path(store_dir) if store_dir is not None else None
        if self.store_dir is not None:
            self.store_dir.mkdir(parents=True, exist_ok=True)
        self.jobs = [
            FleetJob(
                spec,
                self.fabric,
                network=network,
                ledger_path=(
                    self.ledger_dir / f"{spec.name}.ledger"
                    if self.ledger_dir is not None
                    else None
                ),
                checkpoint_path=self.checkpoint_dir / f"{spec.name}.npz",
                store_dir=self.store_dir,
            )
            for spec in specs
        ]

    # -- event loop -----------------------------------------------------------

    def _key(self, job: FleetJob):
        """Deterministic event order: fleet time, then priority, then name."""
        t = job.ready_time if job.state == "waiting" else job.now
        return (t, -job.spec.priority, job.spec.name)

    def run(self) -> FleetResult:
        """Advance jobs in least-fleet-time-first order until none are live."""
        while True:
            live = [j for j in self.jobs if j.state in ("waiting", "running")]
            if not live:
                break
            job = min(live, key=self._key)
            if job.state == "waiting":
                if self._admit(job, job.ready_time):
                    continue
                # Blocked on capacity: wake when a running job passes this
                # ready time; if none is ahead, step the furthest-behind
                # running job so fleet time makes progress.
                running = [j for j in self.jobs if j.state == "running"]
                ahead = [r.now for r in running if r.now > job.ready_time]
                if ahead:
                    job.ready_time = min(ahead)
                    continue
                job = min(running, key=self._key)
            self._step(job)
            live = [j for j in self.jobs if j.state in ("waiting", "running")]
            if live:
                self.fabric.prune(min(self._key(j)[0] for j in live))
        reports = tuple(self._report(job) for job in self.jobs)
        return FleetResult(
            reports=reports,
            makespan=max(r.fleet_end for r in reports),
            total_contended_seconds=sum(r.contended_seconds for r in reports),
            total_restarts=sum(r.restarts for r in reports),
            total_preemptions=sum(r.preemptions for r in reports),
            jobs_failed=sum(1 for r in reports if r.state == "failed"),
            slo_missed=sum(1 for r in reports if r.slo_met is False),
        )

    def _admit(self, job: FleetJob, now: float) -> bool:
        """Start a waiting job, preempting a lower-priority one if the
        concurrency cap is reached.  Victim choice is deterministic:
        lowest priority, then name."""
        running = [j for j in self.jobs if j.state == "running"]
        if self.max_concurrent is None or len(running) < self.max_concurrent:
            job.resume(now)
            return True
        victim = min(running, key=lambda j: (j.spec.priority, j.spec.name))
        if victim.spec.priority < job.spec.priority:
            victim.preempt()
            job.resume(now)
            return True
        return False

    def _step(self, job: FleetJob) -> None:
        """Run one step; on a crash, roll back and requeue with backoff."""
        try:
            job.step()
        except JobCrashed:
            at = job.now
            job.crash_rollback()
            if job.restarts >= self.retry_budget:
                job.mark_failed(at)
                return
            backoff = min(self.backoff_base * (2.0 ** job.restarts), self.backoff_cap)
            job.restarts += 1
            job.backoff_total += backoff
            job.ready_time = at + backoff

    def _report(self, job: FleetJob) -> JobReport:
        spec = job.spec
        store = job.store.summary() if job.store is not None else {}
        straggler = job.top_straggler()
        return JobReport(
            name=spec.name,
            world_size=spec.world_size,
            priority=spec.priority,
            arrival=spec.arrival,
            steps=job.steps_done,
            sim_time=job.work_time,
            fleet_end=job.end if job.end is not None else job.now,
            final_loss=job.final_loss,
            contended_seconds=self.fabric.contended_seconds[spec.name],
            slowdown=self.fabric.slowdown(spec.name),
            peak_payload_bytes=job.cluster.peak_payload_bytes,
            ledger=str(job.ledger_path) if job.ledger_path is not None else None,
            state=job.state,
            restarts=job.restarts,
            preemptions=job.preemptions,
            time_lost_s=job.lost_work + job.backoff_total,
            goodput=job.goodput(),
            deadline=spec.deadline,
            slo_met=job.slo_met(),
            store_fallbacks=store.get("fallbacks", 0),
            store_quarantined=store.get("quarantined", 0),
            store_repairs=store.get("repairs", 0),
            critpath_s=job.critpath_s,
            straggler_skew_s=job.straggler_skew_s,
            top_straggler_rank=straggler[0] if straggler is not None else None,
        )


def _smoke_specs() -> list[JobSpec]:
    """Three small jobs; job0 is the deterministic CI diff anchor."""
    return [
        JobSpec("job0", world_size=32, iterations=3, priority=2.0, seed=0),
        JobSpec("job1", world_size=16, iterations=3, priority=1.0, seed=1, arrival=0.001),
        JobSpec("job2", world_size=8, iterations=2, batch_size=32, seed=2, arrival=0.002),
    ]


def _scale_specs() -> list[JobSpec]:
    """Ten jobs at 1k–4k ranks, mixed priorities and arrivals."""
    worlds = [1024, 2048, 4096, 1024, 2048, 4096, 1024, 2048, 1024, 4096]
    return [
        JobSpec(
            f"job{i}",
            world_size=w,
            iterations=2,
            priority=2.0 if i % 3 == 0 else 1.0,
            seed=i,
            arrival=0.01 * i,
        )
        for i, w in enumerate(worlds)
    ]


def _chaos_smoke_specs() -> list[JobSpec]:
    """The smoke fleet under a deterministic fault schedule.

    job0 (the CI diff anchor) crashes once and restarts from its
    checkpoint; job1 runs with a straggler and a link-degradation
    window; job2 loses a whole node mid-run and continues elastically;
    job3 arrives late at high priority and preempts under the
    ``max_concurrent=2`` cap that ``preset_options`` pairs with this
    preset.
    """
    from repro.faults.plan import FaultPlan

    crashy = FaultPlan().add_crash(iteration=1)
    shaky = (
        FaultPlan()
        .add_straggler(0, start=0, stop=2, slowdown=3.0)
        .add_link_degradation(start=1, stop=2, bandwidth_factor=2.0)
    )
    failing = FaultPlan().add_node_failure(1, iteration=1, gpus_per_node=4)
    return [
        JobSpec(
            "job0", world_size=32, iterations=3, priority=2.0, seed=0,
            deadline=0.05, fault_plan=crashy,
        ),
        JobSpec(
            "job1", world_size=16, iterations=3, priority=1.0, seed=1,
            arrival=0.001, deadline=0.05, fault_plan=shaky,
        ),
        JobSpec(
            "job2", world_size=8, iterations=2, batch_size=32, seed=2,
            arrival=0.002, fault_plan=failing,
        ),
        JobSpec(
            "job3", world_size=8, iterations=2, batch_size=32, priority=4.0,
            seed=3, arrival=0.004, deadline=0.05,
        ),
    ]


def _storage_smoke_specs() -> list[JobSpec]:
    """The smoke fleet under a deterministic *storage* fault schedule.

    Requires a scheduler ``store_dir`` (the CLI's ``repro fleet
    --preset storage-smoke`` supplies one) — the faults live on the
    checkpoint save path.  Every job checkpoints each step (saves land
    at save indices 0, 1, 2, ...):

    * job0: bit rot eats the newest generation at rest (save index 2),
      then the job crashes — restart must fall back one generation and
      replay to a bit-identical finish;
    * job1: a torn write tears the save at index 2 inside the tmp-write
      window; the crash-restart detects the broken content seal,
      quarantines the generation, and falls back;
    * job2: the process dies *inside* the save sequence (crash at the
      ``save:tmp_written`` injection point) — the previous committed
      generation must survive and the restart resume from it.

    All three must end ``done`` with zero failed jobs: storage damage
    costs replayed steps, never a job.
    """
    from repro.faults.plan import FaultPlan

    rotten = FaultPlan().add_crash(iteration=3).add_bit_rot(save_index=2)
    torn = FaultPlan().add_crash(iteration=3).add_torn_write(save_index=2)
    dying = FaultPlan().add_save_crash(save_index=1, point="save:tmp_written")
    return [
        JobSpec(
            "job0", world_size=32, iterations=4, priority=2.0, seed=0,
            fault_plan=rotten,
        ),
        JobSpec(
            "job1", world_size=16, iterations=4, priority=1.0, seed=1,
            arrival=0.001, fault_plan=torn,
        ),
        JobSpec(
            "job2", world_size=8, iterations=3, batch_size=32, seed=2,
            arrival=0.002, fault_plan=dying,
        ),
    ]


PRESETS = {
    "smoke": _smoke_specs,
    "scale": _scale_specs,
    "chaos-smoke": _chaos_smoke_specs,
    "storage-smoke": _storage_smoke_specs,
}

#: Scheduler keyword arguments each preset expects (empty = defaults).
PRESET_OPTIONS: dict[str, dict] = {
    "chaos-smoke": {"max_concurrent": 2, "retry_budget": 3},
    "storage-smoke": {"retry_budget": 3},
}


def preset_specs(name: str) -> list[JobSpec]:
    if name not in PRESETS:
        raise KeyError(f"unknown fleet preset {name!r}; have {sorted(PRESETS)}")
    return PRESETS[name]()


def preset_options(name: str) -> dict:
    """Scheduler kwargs that pair with ``preset_specs(name)``."""
    if name not in PRESETS:
        raise KeyError(f"unknown fleet preset {name!r}; have {sorted(PRESETS)}")
    return dict(PRESET_OPTIONS.get(name, {}))
