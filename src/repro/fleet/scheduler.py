"""Fleet scheduler: interleave many jobs over one shared fabric.

Discrete-event style: among unfinished jobs, always step the one whose
fleet clock (arrival + job-local sim time) is furthest behind.  By the
time a job prices a collective, every job that could overlap it in
fleet time has already recorded its transfer windows, so the fabric's
weighted fair sharing sees the true concurrent load.  After each step
the fabric prunes windows behind the slowest live job — memory stays
bounded by in-flight transfers, not run length.

Because every job runs on a representative-rank timing cluster, payload
memory per job is O(1) in world size: a fleet of tens of 1k–16k-rank
jobs fits on a laptop-class host.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path

from repro.fleet.fabric import SharedFabric
from repro.fleet.job import FleetJob, JobSpec

__all__ = ["JobReport", "FleetResult", "FleetScheduler", "PRESETS", "preset_specs"]


@dataclass(frozen=True)
class JobReport:
    """Per-job outcome of one fleet run."""

    name: str
    world_size: int
    priority: float
    arrival: float
    steps: int
    #: Job-local simulated seconds (its own wallclock).
    sim_time: float
    #: Fleet time at which the job finished.
    fleet_end: float
    final_loss: float
    #: Extra seconds lost to fabric contention.
    contended_seconds: float
    #: Mean contention stretch on this job's transfers (1.0 = alone).
    slowdown: float
    #: Largest per-collective payload residency (bytes) — flat in
    #: world size on the representative path.
    peak_payload_bytes: float
    ledger: str | None

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class FleetResult:
    """Outcome of a whole fleet run."""

    reports: tuple[JobReport, ...]
    #: Fleet time at which the last job finished.
    makespan: float
    total_contended_seconds: float

    def by_name(self, name: str) -> JobReport:
        for report in self.reports:
            if report.name == name:
                return report
        raise KeyError(f"no job named {name!r} in fleet result")

    def to_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "total_contended_seconds": self.total_contended_seconds,
            "jobs": [r.to_dict() for r in self.reports],
        }


class FleetScheduler:
    """Run a set of :class:`JobSpec` jobs over one shared fabric."""

    def __init__(
        self,
        specs: list[JobSpec],
        *,
        network=None,
        ledger_dir: str | Path | None = None,
    ):
        if not specs:
            raise ValueError("fleet needs at least one job")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate job names in fleet: {sorted(names)}")
        self.fabric = SharedFabric()
        self.ledger_dir = Path(ledger_dir) if ledger_dir is not None else None
        if self.ledger_dir is not None:
            self.ledger_dir.mkdir(parents=True, exist_ok=True)
        self.jobs = [
            FleetJob(
                spec,
                self.fabric,
                network=network,
                ledger_path=(
                    self.ledger_dir / f"{spec.name}.ledger"
                    if self.ledger_dir is not None
                    else None
                ),
            )
            for spec in specs
        ]

    def run(self) -> FleetResult:
        """Step jobs in least-fleet-time-first order until all finish."""
        pending = list(self.jobs)
        while pending:
            job = min(pending, key=lambda j: (j.now, j.spec.name))
            job.step()
            if job.done:
                pending.remove(job)
            if pending:
                self.fabric.prune(min(j.now for j in pending))
        reports = tuple(self._report(job) for job in self.jobs)
        return FleetResult(
            reports=reports,
            makespan=max(r.fleet_end for r in reports),
            total_contended_seconds=sum(r.contended_seconds for r in reports),
        )

    def _report(self, job: FleetJob) -> JobReport:
        spec = job.spec
        return JobReport(
            name=spec.name,
            world_size=spec.world_size,
            priority=spec.priority,
            arrival=spec.arrival,
            steps=job.steps_done,
            sim_time=job.cluster.time,
            fleet_end=job.now,
            final_loss=job.final_loss,
            contended_seconds=self.fabric.contended_seconds[spec.name],
            slowdown=self.fabric.slowdown(spec.name),
            peak_payload_bytes=job.cluster.peak_payload_bytes,
            ledger=str(job.ledger_path) if job.ledger_path is not None else None,
        )


def _smoke_specs() -> list[JobSpec]:
    """Three small jobs; job0 is the deterministic CI diff anchor."""
    return [
        JobSpec("job0", world_size=32, iterations=3, priority=2.0, seed=0),
        JobSpec("job1", world_size=16, iterations=3, priority=1.0, seed=1, arrival=0.001),
        JobSpec("job2", world_size=8, iterations=2, batch_size=32, seed=2, arrival=0.002),
    ]


def _scale_specs() -> list[JobSpec]:
    """Ten jobs at 1k–4k ranks, mixed priorities and arrivals."""
    worlds = [1024, 2048, 4096, 1024, 2048, 4096, 1024, 2048, 1024, 4096]
    return [
        JobSpec(
            f"job{i}",
            world_size=w,
            iterations=2,
            priority=2.0 if i % 3 == 0 else 1.0,
            seed=i,
            arrival=0.01 * i,
        )
        for i, w in enumerate(worlds)
    ]


PRESETS = {"smoke": _smoke_specs, "scale": _scale_specs}


def preset_specs(name: str) -> list[JobSpec]:
    if name not in PRESETS:
        raise KeyError(f"unknown fleet preset {name!r}; have {sorted(PRESETS)}")
    return PRESETS[name]()
