"""Seeded chaos harness for fleet runs (``repro fleet --chaos``).

Builds per-job :class:`~repro.faults.plan.FaultPlan`s for an arbitrary
spec list from one RNG seeded by ``(seed, job index)`` — the same
``(specs, rate, seed)`` always yields the same fault schedule, so chaos
fleets are byte-reproducible.  ``rate`` scales every fault probability:
``rate=0`` attaches nothing (the specs are returned unchanged, so the
run is bit-identical to a faultless fleet), ``rate=1`` is the nominal
chaos level, and larger values push toward every-job-faulted.

Only time-plane and availability-plane faults are drawn — stragglers,
fabric link degradation, recoverable node failures, and whole-job
crashes — because fleet jobs run on the timing track, which rejects
data-plane faults (DESIGN.md decision 9).  Per-rank jitter is
deliberately excluded: it costs O(world) RNG draws per collective,
which at 1k–4k ranks would dominate the harness.
"""

from __future__ import annotations

from dataclasses import replace

from repro.faults.plan import FaultPlan
from repro.fleet.job import JobSpec
from repro.util.seeding import spawn_rng

__all__ = ["chaos_plan", "apply_chaos", "fabric_degradations"]

#: Spawn-key base for per-job chaos streams (offset by job index).
_CHAOS_STREAM = 7300

#: Nominal per-job fault probabilities at ``rate=1.0``.
P_STRAGGLER = 0.6
P_DEGRADATION = 0.5
P_NODE_FAILURE = 0.35
P_CRASH = 0.5


def _p(base: float, rate: float) -> float:
    return min(base * rate, 1.0)


def chaos_plan(spec: JobSpec, index: int, *, rate: float, seed: int) -> FaultPlan | None:
    """Draw one job's fault plan; ``None`` when nothing was drawn.

    The drawn schedule only references iterations/ranks the job actually
    has, so any ``JobSpec`` (any world size, any length) can be chaosed.
    """
    if rate < 0.0:
        raise ValueError(f"chaos rate must be >= 0, got {rate}")
    if rate == 0.0:
        return None
    rng = spawn_rng(seed, _CHAOS_STREAM + index)
    plan = FaultPlan(seed=seed + index)
    iters = spec.iterations
    if rng.random() < _p(P_STRAGGLER, rate):
        rank = int(rng.integers(0, spec.world_size))
        start = int(rng.integers(0, iters))
        plan.add_straggler(
            rank,
            start=start,
            stop=min(start + 1 + int(rng.integers(0, 2)), iters),
            slowdown=2.0 + 2.0 * float(rng.random()),
        )
    if rng.random() < _p(P_DEGRADATION, rate):
        start = int(rng.integers(0, iters))
        plan.add_link_degradation(
            start=start,
            stop=min(start + 1, iters),
            bandwidth_factor=1.5 + float(rng.random()),
        )
    # Node failures need a surviving remainder and a node to lose.
    n_nodes = spec.world_size // spec.gpus_per_node
    if n_nodes > 1 and rng.random() < _p(P_NODE_FAILURE, rate):
        plan.add_node_failure(
            int(rng.integers(0, n_nodes)),
            iteration=int(rng.integers(0, iters)),
            gpus_per_node=spec.gpus_per_node,
            recoverable=True,
        )
    if iters > 1 and rng.random() < _p(P_CRASH, rate):
        plan.add_crash(iteration=int(rng.integers(1, iters)))
    return None if plan.is_empty() else plan


def apply_chaos(
    specs: list[JobSpec], *, rate: float = 1.0, seed: int = 0
) -> list[JobSpec]:
    """Return ``specs`` with seeded chaos plans attached.

    A spec that already carries a fault plan keeps it (hand-authored
    schedules win over drawn ones).  ``rate=0`` returns the specs
    unchanged, guaranteeing bit-identity with the faultless fleet.
    """
    out: list[JobSpec] = []
    for i, spec in enumerate(specs):
        if spec.fault_plan is not None or rate == 0.0:
            out.append(spec)
            continue
        plan = chaos_plan(spec, i, rate=rate, seed=seed)
        out.append(spec if plan is None else replace(spec, fault_plan=plan))
    return out


def fabric_degradations(
    specs: list[JobSpec], *, rate: float = 1.0, seed: int = 0
) -> list[tuple[float, float, float]]:
    """Fleet-time spine brownout windows for ``FleetScheduler``.

    Windows are drawn inside the fleet's arrival span so they actually
    overlap early transfers; each slows the whole fabric for every job.
    """
    if rate <= 0.0:
        return []
    rng = spawn_rng(seed, _CHAOS_STREAM - 1)
    horizon = max((s.arrival for s in specs), default=0.0) + 0.01
    windows: list[tuple[float, float, float]] = []
    n = int(rng.integers(0, 1 + max(1, round(rate))))
    for _ in range(n):
        start = float(rng.random()) * horizon
        width = (0.2 + 0.8 * float(rng.random())) * horizon * 0.5
        windows.append((start, start + width, 1.5 + float(rng.random())))
    return windows
