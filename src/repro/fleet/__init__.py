"""Multi-job fleet simulation on the representative-rank timing track.

A :class:`FleetScheduler` time-shares one simulated interconnect
(:class:`SharedFabric`, weighted fair sharing) between tens of
concurrent training jobs at 1k–16k ranks each, with per-job priorities,
arrivals, and observability ledgers.  Jobs run on the timing track's
representative-rank data plane, so payload memory is O(1) in world
size — the whole fleet fits on a laptop-class host.

Fleets are resilient: jobs checkpoint periodically and the scheduler
restarts crashed jobs from their checkpoint with capped exponential
backoff (up to a retry budget), preempts lower-priority jobs when a
concurrency cap binds, and accounts per-job SLOs, restarts, and goodput
in each :class:`JobReport`.  The seeded chaos harness
(:mod:`repro.fleet.chaos`, ``repro fleet --chaos``) attaches
deterministic fault plans to any spec list.
"""

from repro.fleet.chaos import apply_chaos, chaos_plan, fabric_degradations
from repro.fleet.fabric import SharedFabric
from repro.fleet.job import FleetJob, JobCrashed, JobSpec
from repro.fleet.scheduler import (
    PRESETS,
    FleetResult,
    FleetScheduler,
    JobReport,
    preset_options,
    preset_specs,
)

__all__ = [
    "SharedFabric",
    "FleetJob",
    "JobCrashed",
    "JobSpec",
    "FleetScheduler",
    "FleetResult",
    "JobReport",
    "PRESETS",
    "preset_specs",
    "preset_options",
    "apply_chaos",
    "chaos_plan",
    "fabric_degradations",
]
