"""Multi-job fleet simulation on the representative-rank timing track.

A :class:`FleetScheduler` time-shares one simulated interconnect
(:class:`SharedFabric`, weighted fair sharing) between tens of
concurrent training jobs at 1k–16k ranks each, with per-job priorities,
arrivals, and observability ledgers.  Jobs run on the timing track's
representative-rank data plane, so payload memory is O(1) in world
size — the whole fleet fits on a laptop-class host.
"""

from repro.fleet.fabric import SharedFabric
from repro.fleet.job import FleetJob, JobSpec
from repro.fleet.scheduler import (
    PRESETS,
    FleetResult,
    FleetScheduler,
    JobReport,
    preset_specs,
)

__all__ = [
    "SharedFabric",
    "FleetJob",
    "JobSpec",
    "FleetScheduler",
    "FleetResult",
    "JobReport",
    "PRESETS",
    "preset_specs",
]
