"""Shared-fabric contention model for multi-job fleets.

Tens of jobs time-share one interconnect.  Each job registers with a
weight (its scheduling priority); when a job's collective would occupy
the fabric for ``seconds``, the fabric looks at every other job's
recorded transfer windows overlapping that interval and stretches the
transfer by the weighted-fair-sharing factor

    factor = (own_weight + sum_j other_weight_j * overlap_fraction_j) / own_weight

so a transfer that fully overlaps one equal-weight competitor takes 2x
as long, and a high-priority job is slowed less than the low-priority
jobs contending with it.  An uncontended fabric prices every transfer
at exactly its nominal alpha-beta cost — a single-job fleet is
bit-identical to running the job alone.

Windows are recorded in *fleet* time (job arrival offset + job-local
sim time) and pruned once every live job's clock has moved past them,
keeping the window list bounded by the number of in-flight transfers
rather than the length of the run.

The fabric can also carry *degradation windows* (``degrade``): fleet-time
intervals during which the whole interconnect runs ``factor``x slower —
the chaos harness uses these to model spine-link brownouts that slow
every job at once, on top of each job's own fault plan.  A transfer
overlapping a degradation window is stretched by the overlapped fraction
before contention is priced, so degradation and fair sharing compose.
"""

from __future__ import annotations

__all__ = ["SharedFabric"]


class SharedFabric:
    """Weighted fair-sharing interconnect shared by fleet jobs."""

    def __init__(self):
        self._weights: dict[str, float] = {}
        # (start, end, name, weight) transfer windows in fleet time.
        self._windows: list[tuple[float, float, str, float]] = []
        #: Extra seconds each job spent waiting on contention.
        self.contended_seconds: dict[str, float] = {}
        #: Nominal (uncontended) seconds each job put on the wire.
        self.nominal_seconds: dict[str, float] = {}
        #: Extra seconds each job lost to fabric degradation windows.
        self.degraded_seconds: dict[str, float] = {}
        # (start, stop, factor) fleet-time windows of fabric slowdown.
        self._degradations: list[tuple[float, float, float]] = []
        #: Total transfers priced.
        self.acquisitions = 0

    def register(self, name: str, weight: float = 1.0) -> None:
        """Add a job to the fabric; ``weight`` is its fair-share priority."""
        if not name:
            raise ValueError("fabric job name must be non-empty")
        if name in self._weights:
            raise ValueError(f"job {name!r} already registered on fabric")
        weight = float(weight)
        if weight <= 0.0:
            raise ValueError(f"fabric weight must be positive, got {weight}")
        self._weights[name] = weight
        self.contended_seconds[name] = 0.0
        self.nominal_seconds[name] = 0.0
        self.degraded_seconds[name] = 0.0

    def degrade(self, start: float, stop: float, factor: float) -> None:
        """Slow the whole fabric ``factor``x inside ``[start, stop)``."""
        if stop <= start:
            raise ValueError(f"degradation window [{start}, {stop}) is empty")
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {factor}")
        self._degradations.append((float(start), float(stop), float(factor)))

    def acquire(self, name: str, op: str, start: float, seconds: float) -> float:
        """Price one transfer: returns the contention-stretched duration
        and records the job's occupancy window for later arrivals."""
        if name not in self._weights:
            raise KeyError(f"job {name!r} is not registered on fabric")
        if seconds <= 0.0:
            return seconds
        own = self._weights[name]
        # Fabric degradation first: the overlapped fraction of the
        # transfer runs factor-x slower, stretching the window that
        # contention is then priced over.
        degraded = seconds
        for d_start, d_stop, d_factor in self._degradations:
            overlap = min(start + seconds, d_stop) - max(start, d_start)
            if overlap > 0.0:
                degraded += (d_factor - 1.0) * overlap
        end = start + degraded
        load = own
        for w_start, w_end, w_name, w_weight in self._windows:
            if w_name == name:
                continue
            overlap = min(end, w_end) - max(start, w_start)
            if overlap > 0.0:
                load += w_weight * (overlap / degraded)
        slowed = degraded * (load / own)
        self._windows.append((start, start + slowed, name, own))
        self.nominal_seconds[name] += seconds
        self.degraded_seconds[name] += degraded - seconds
        self.contended_seconds[name] += slowed - degraded
        self.acquisitions += 1
        return slowed

    def degradation_factor(self, at: float) -> float:
        """Instantaneous fabric slowdown at fleet time ``at`` (1.0 =
        healthy).  Overlapping windows compound multiplicatively; the
        online autotuner polls this as its fabric-health signal."""
        factor = 1.0
        for d_start, d_stop, d_factor in self._degradations:
            if d_start <= at < d_stop:
                factor *= d_factor
        return factor

    def slowdown(self, name: str) -> float:
        """Mean contention stretch for ``name`` (1.0 = never contended)."""
        nominal = self.nominal_seconds.get(name, 0.0)
        if nominal <= 0.0:
            return 1.0
        return 1.0 + self.contended_seconds[name] / nominal

    def prune(self, frontier: float) -> int:
        """Drop windows ending before ``frontier`` (every live job's
        clock has passed them); returns how many were dropped."""
        before = len(self._windows)
        self._windows = [w for w in self._windows if w[1] > frontier]
        self._degradations = [d for d in self._degradations if d[1] > frontier]
        return before - len(self._windows)

    @property
    def n_windows(self) -> int:
        return len(self._windows)
