"""Typed candidate/decision records for the online autotuner.

A :class:`CandidateConfig` names one point in the compression design
space the controller can move to — ``{compressor, encoder, aggregation
factor, (eb_f, eb_q)}`` — and a :class:`Decision` is one recorded
controller action (a retune, or a breaker veto pin).  Both serialise to
deterministic JSON-safe dicts so the obsv ledger can store them
byte-identically across runs with the same ``(seed, config)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["CandidateConfig", "Decision", "DEFAULT_MENU", "round6"]

#: Compressor families the controller knows how to realise online.
_COMPRESSORS = ("compso", "identity")


def round6(value: float) -> float:
    """Round to 6 significant digits for stable, readable JSON floats."""
    v = float(value)
    if not math.isfinite(v) or v == 0.0:
        return v
    return float(f"{v:.6g}")


@dataclass(frozen=True)
class CandidateConfig:
    """One selectable configuration of the compression stack.

    ``aggregation`` is the COMPSO message-aggregation factor the cost
    model credits (fewer, larger encoder invocations and collective
    launches); it is honoured by the *model* — see DESIGN.md decision 10
    for why the simulated data plane keeps per-layer transfers.
    """

    name: str
    compressor: str = "compso"
    encoder: str = "ans"
    eb_f: float = 4e-3
    eb_q: float = 4e-3
    aggregation: int = 1

    def __post_init__(self):
        if not self.name:
            raise ValueError("candidate needs a non-empty name")
        if self.compressor not in _COMPRESSORS:
            raise ValueError(
                f"candidate {self.name!r}: unknown compressor {self.compressor!r}; "
                f"choose from {_COMPRESSORS}"
            )
        if self.compressor == "compso":
            from repro.encoders.registry import list_encoders

            if self.encoder not in list_encoders():
                raise ValueError(
                    f"candidate {self.name!r}: unknown encoder {self.encoder!r}; "
                    f"choose from {list_encoders()}"
                )
        if self.eb_f < 0 or self.eb_q < 0:
            raise ValueError(f"candidate {self.name!r}: error bounds must be >= 0")
        if self.aggregation < 1:
            raise ValueError(f"candidate {self.name!r}: aggregation must be >= 1")

    @property
    def is_identity(self) -> bool:
        return self.compressor == "identity"

    @property
    def error_bound(self) -> float:
        """Worst-case relative point error the candidate can introduce
        (the ``(eb_f + eb_q) * max|g|`` contract); 0 for identity."""
        return 0.0 if self.is_identity else self.eb_f + self.eb_q

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "compressor": self.compressor,
            "encoder": self.encoder if not self.is_identity else None,
            "eb_f": round6(self.eb_f),
            "eb_q": round6(self.eb_q),
            "aggregation": int(self.aggregation),
        }


#: Default controller menu: the lossless escape hatch plus COMPSO at the
#: paper's conservative/aggressive bounds, with and without modelled
#: message aggregation, and one alternative-encoder point.
DEFAULT_MENU: tuple[CandidateConfig, ...] = (
    CandidateConfig("identity", compressor="identity", encoder="ans", eb_f=0.0, eb_q=0.0),
    CandidateConfig("conservative", encoder="ans", eb_f=2e-3, eb_q=2e-3, aggregation=1),
    CandidateConfig("default", encoder="ans", eb_f=4e-3, eb_q=4e-3, aggregation=4),
    CandidateConfig("aggressive", encoder="ans", eb_f=8e-3, eb_q=8e-3, aggregation=8),
    CandidateConfig("aggressive-bitcomp", encoder="bitcomp", eb_f=8e-3, eb_q=8e-3, aggregation=8),
)


@dataclass(frozen=True)
class Decision:
    """One controller action, recorded as a typed ledger event.

    ``kind`` is ``"retune"`` (the cost model re-picked the active
    candidate) or ``"veto"`` (the guard's circuit breaker left the
    closed state and the controller pinned the safe candidate).
    ``signals`` carries the model state behind the decision — fitted
    alpha/beta, fabric factors, and the per-candidate predictions.
    """

    step: int
    kind: str
    from_config: str
    to_config: str
    reason: str
    signals: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "step": int(self.step),
            "kind": self.kind,
            "from": self.from_config,
            "to": self.to_config,
            "reason": self.reason,
            "signals": {k: self.signals[k] for k in sorted(self.signals)},
        }
