"""Closed-loop cost-model autotuning for the compression stack.

COMPSO picks its aggregation factor and encoder from an *offline*
performance model, and :func:`repro.core.autotune.autotune_bounds`
searches error bounds on sample gradients *before* training starts.
This subsystem closes the loop: an :class:`AutotuneController` observes
live signals each step — per-layer wire/dense bytes, what the simulated
clock charged each collective category, fabric health from the fault
plane's link-degradation windows (or a fleet fabric's
:meth:`~repro.fleet.SharedFabric.degrade` windows via the ``health``
hook), and the guard's verdicts — fits an online alpha-beta cost model,
and re-picks ``{compressor, encoder, aggregation factor, (eb_f, eb_q)}``
on the fly with bounded hysteresis.

Trainers take ``autotune=AutotuneConfig(...)``; ``autotune=None`` (the
default) is bit-identical to a build without this subsystem.  The
guard's circuit breaker is the safety net: while it is not closed the
controller is vetoed and pins the safe candidate (DESIGN.md decision
10).  Every decision is a typed event in the obsv run ledger and
rendered by ``repro report``; ``repro autotune`` runs the static /
autotuned / autotuned-degraded presets.

This package is also the single import surface for the *offline* bound
tuner (:func:`autotune_bounds`, :class:`FidelityBudget`), re-exported
from :mod:`repro.core.autotune`.
"""

from repro.autotune.controller import AutotuneConfig, AutotuneController, as_autotune
from repro.autotune.cost_model import (
    AlphaBetaEstimator,
    CostModel,
    aggregation_credit,
    codec_seconds,
    modelled_extra_seconds,
    replay_extra_seconds,
)
from repro.autotune.policy import HysteresisPolicy
from repro.autotune.types import DEFAULT_MENU, CandidateConfig, Decision
from repro.core.autotune import FidelityBudget, TuneResult, autotune_bounds

__all__ = [
    "DEFAULT_MENU",
    "AlphaBetaEstimator",
    "AutotuneConfig",
    "AutotuneController",
    "CandidateConfig",
    "CostModel",
    "Decision",
    "FidelityBudget",
    "HysteresisPolicy",
    "TuneResult",
    "aggregation_credit",
    "as_autotune",
    "autotune_bounds",
    "codec_seconds",
    "modelled_extra_seconds",
    "replay_extra_seconds",
]
