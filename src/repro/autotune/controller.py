"""The closed-loop autotune controller and its trainer-facing config.

:class:`AutotuneConfig` is the single knob surface; trainers accept
``autotune=AutotuneConfig(...)`` (or a prebuilt controller) and call
:meth:`AutotuneController.end_step` once per iteration, *before* the
obsv ledger folds the step — so every decision lands in the step record
that produced it.  ``autotune=None`` (the default) is bit-identical to
a build without this subsystem: the controller only ever reads trainer
state, owns its own seeded probe compressors, and mutates the training
compressor exclusively through ``set_bounds``/``set_encoder`` when a
decision actually fires.

Decision loop, per step:

1. observe what the clock charged the bound collective category
   (``SimCluster.breakdown()`` delta) and fold it into the alpha-beta
   fit, normalising out the fabric's current degradation factors;
2. if the guard's circuit breaker has left the closed state, *veto*:
   pin the safe candidate and record a ``veto`` decision — the breaker
   owns the data path until it has proven clean again
   (:meth:`repro.guard.Guard.autotune_veto`, DESIGN.md decision 10);
3. otherwise predict every feasible menu candidate's modelled step time
   under the current fabric factors and, if the best beats the active
   config past the hysteresis band, apply it and record a ``retune``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.autotune.cost_model import (
    AlphaBetaEstimator,
    CostModel,
    modelled_extra_seconds,
)
from repro.autotune.policy import HysteresisPolicy
from repro.autotune.types import DEFAULT_MENU, CandidateConfig, Decision, round6
from repro.telemetry import SIM_TRACK, get_metrics, get_tracer

__all__ = ["AutotuneConfig", "AutotuneController", "as_autotune"]


@dataclass
class AutotuneConfig:
    """Declarative configuration for the online autotuner.

    ``initial`` names the menu entry that *describes the compressor the
    trainer was constructed with* — the controller never mutates
    anything until a decision fires, which is what keeps a
    never-firing controller bit-identical to the plain run.
    ``max_error`` is the fidelity gate: candidates whose worst-case
    relative point error (``eb_f + eb_q``) exceeds it are never chosen.
    """

    menu: tuple[CandidateConfig, ...] = DEFAULT_MENU
    initial: str = "default"
    #: Candidate pinned while the guard's breaker vetoes the controller;
    #: defaults to ``"identity"`` if present, else the tightest bounds.
    safe: str | None = None
    max_error: float = 0.05
    warmup: int = 2
    min_dwell: int = 3
    min_improvement: float = 0.1
    probe_elements: int = 65536
    cr_smoothing: float = 0.5
    #: Layers smaller than this travel dense regardless of the active
    #: candidate (per-layer decision: tiny payloads are alpha-dominated).
    min_payload_bytes: int = 0
    alpha0: float = 5e-5
    beta0: float = 1e-9
    seed: int = 0

    def build(self) -> "AutotuneController":
        return AutotuneController(self)


def as_autotune(
    autotune: "AutotuneConfig | AutotuneController | None",
) -> "AutotuneController | None":
    """Normalise a trainer's ``autotune=`` argument to a controller."""
    if autotune is None:
        return None
    if isinstance(autotune, AutotuneConfig):
        return autotune.build()
    return autotune


class AutotuneController:
    """Online cost-model controller over the compression stack."""

    def __init__(self, config: AutotuneConfig | None = None):
        self.config = config if config is not None else AutotuneConfig()
        c = self.config
        names = [cand.name for cand in c.menu]
        if len(set(names)) != len(names):
            raise ValueError(f"menu candidate names must be unique, got {names}")
        by_name = {cand.name: cand for cand in c.menu}
        if c.initial not in by_name:
            raise ValueError(f"initial {c.initial!r} is not in the menu {names}")
        safe = c.safe
        if safe is None:
            safe = (
                "identity"
                if "identity" in by_name
                else min(c.menu, key=lambda cand: (cand.error_bound, cand.name)).name
            )
        if safe not in by_name:
            raise ValueError(f"safe {safe!r} is not in the menu {names}")
        if c.max_error <= 0:
            raise ValueError(f"max_error must be > 0, got {c.max_error}")
        if c.probe_elements < 1:
            raise ValueError(f"probe_elements must be >= 1, got {c.probe_elements}")
        if not 0 < c.cr_smoothing <= 1:
            raise ValueError(f"cr_smoothing must be in (0, 1], got {c.cr_smoothing}")
        if c.min_payload_bytes < 0:
            raise ValueError(f"min_payload_bytes must be >= 0, got {c.min_payload_bytes}")
        for cand in (by_name[c.initial], by_name[safe]):
            if cand.error_bound > c.max_error:
                raise ValueError(
                    f"candidate {cand.name!r} violates max_error={c.max_error}"
                )
        self._by_name = by_name
        self.safe_name = safe
        self.active: CandidateConfig = by_name[c.initial]
        self.policy = HysteresisPolicy(
            warmup=c.warmup, min_dwell=c.min_dwell, min_improvement=c.min_improvement
        )
        self.model = CostModel(
            AlphaBetaEstimator(alpha0=c.alpha0, beta0=c.beta0),
            cr_smoothing=c.cr_smoothing,
        )
        #: Append-only decision timeline (the obsv ledger keeps a cursor).
        self.decisions: list[Decision] = []
        #: Modelled codec-minus-aggregation seconds accumulated so far —
        #: the clock-uncharged half of the end-to-end metric.
        self.modelled_extra_seconds = 0.0
        self._probed = False
        self._last_change = -1
        self._veto_active = False
        self._last_breakdown: dict[str, float] = {}
        # Bound subsystems (all optional; duck-typed).
        self._trainer = None
        self._cluster = None
        self._guard = None
        self._compressor = None
        self._health = None
        self._category = "kfac_allgather"

    # -- wiring ----------------------------------------------------------------

    def bind(
        self,
        *,
        trainer=None,
        cluster=None,
        guard=None,
        compressor=None,
        category: str | None = None,
        health=None,
    ) -> "AutotuneController":
        """Attach the run's subsystems (None leaves a binding as-is).

        ``category`` is the collective category whose clock charges feed
        the alpha-beta fit (``kfac_allgather`` for the K-FAC trainer,
        ``grad_allreduce`` for SGD).  ``health`` is an optional callable
        ``step -> (lat_factor, bw_factor)`` (or a scalar factor) layered
        on top of the fault plane's link degradation — e.g. a fleet job
        can pass ``lambda t: fabric.degradation_factor(now(t))`` so
        :meth:`repro.fleet.SharedFabric.degrade` windows steer decisions.
        """
        if trainer is not None:
            self._trainer = trainer
        if cluster is not None:
            self._cluster = cluster
            self._last_breakdown = dict(cluster.breakdown())
        if guard is not None:
            self._guard = guard
        if compressor is not None:
            self._compressor = compressor
        if category is not None:
            self._category = category
        if health is not None:
            self._health = health
        return self

    # -- data-path hooks ---------------------------------------------------------

    @property
    def wants_sample(self) -> bool:
        """True until the one-shot CR probe has run (trainers pass a live
        gradient slice to :meth:`end_step` while this is set)."""
        return not self._probed

    def active_compressor(self, compressor):
        """The step's compressor under the active candidate (None = dense)."""
        if compressor is None or self.active.is_identity:
            return None if self.active.is_identity else compressor
        return compressor

    def layer_compressor(self, layer: int, nbytes: float, compressor):
        """Per-layer decision: identity for sub-threshold payloads."""
        if compressor is None or self.active.is_identity:
            return None if self.active.is_identity else compressor
        if nbytes < self.config.min_payload_bytes:
            return None
        return compressor

    # -- signals ---------------------------------------------------------------

    def _now(self) -> float:
        return float(self._cluster.time) if self._cluster is not None else 0.0

    def _observed_comm(self) -> float:
        """Seconds the bound category charged since the last step."""
        if self._cluster is None:
            return 0.0
        bd = dict(self._cluster.breakdown())
        delta = bd.get(self._category, 0.0) - self._last_breakdown.get(self._category, 0.0)
        self._last_breakdown = bd
        return max(delta, 0.0)

    def _network_factors(self, step: int) -> tuple[float, float]:
        """(latency, bandwidth) cost multipliers for the current step."""
        lat = bw = 1.0
        cluster = self._cluster
        if cluster is not None and cluster.faults is not None:
            lat, bw = cluster.faults.network_factors()
        if self._health is not None:
            h = self._health(step)
            try:
                h_lat, h_bw = h
            except TypeError:
                h_lat = h_bw = float(h)
            lat *= h_lat
            bw *= h_bw
        return lat, bw

    def _mutation_target(self):
        """Innermost bound compressor exposing ``set_bounds``."""
        comp = self._compressor
        while comp is not None and not hasattr(comp, "set_bounds"):
            comp = getattr(comp, "inner", None)
        return comp

    # -- decision loop ---------------------------------------------------------

    def end_step(
        self,
        *,
        step: int,
        wire_bytes: float,
        dense_bytes: float,
        n_messages: int,
        sample=None,
    ) -> None:
        """Observe one finished iteration and possibly retune.

        Called by the trainer after the update is applied and before the
        obsv ledger records the step.  ``n_messages`` is the number of
        collective launches the step's payload travelled in (layer count
        for K-FAC's per-layer broadcast, bucket count for SGD).
        """
        step = int(step)
        n_layers = max(int(n_messages), 1)
        comm = self._observed_comm()
        lat, bw = self._network_factors(step)
        travelled = wire_bytes if wire_bytes > 0 else dense_bytes
        if travelled > 0 and comm > 0:
            # Normalise the fabric factors out so the fit stays a
            # clean-fabric property; predictions scale them back in.
            self.model.estimator.observe(n_layers * lat, travelled * bw, comm)
        if sample is not None and not self._probed:
            self.model.probe(
                sample,
                self.config.menu,
                seed=self.config.seed,
                probe_elements=self.config.probe_elements,
            )
            self._probed = True
        if not self.active.is_identity and wire_bytes > 0 and dense_bytes > 0:
            self.model.update_cr(self.active.name, dense_bytes / wire_bytes)
        self.modelled_extra_seconds += modelled_extra_seconds(
            self.active,
            dense_bytes=dense_bytes,
            wire_bytes=wire_bytes if wire_bytes > 0 else dense_bytes,
            n_layers=n_layers,
            alpha=self.config.alpha0,
        )

        # Breaker veto: the guard owns the data path until it recloses.
        guard = self._guard
        veto = getattr(guard, "autotune_veto", None)
        if veto is not None and veto():
            if not self._veto_active:
                self._veto_active = True
                safe = self._by_name[self.safe_name]
                frm = self.active.name
                self._apply(safe, step)
                self._record(
                    Decision(
                        step=step,
                        kind="veto",
                        from_config=frm,
                        to_config=safe.name,
                        reason="breaker_not_closed",
                        signals={"lat_factor": round6(lat), "bw_factor": round6(bw)},
                    )
                )
            return
        self._veto_active = False

        if not self._probed or not self.policy.ready(step, self._last_change):
            return
        dense = dense_bytes if dense_bytes > 0 else travelled
        if dense <= 0:
            return
        predictions = {
            cand.name: self.model.predict(
                cand,
                dense_bytes=dense,
                n_layers=n_layers,
                lat_factor=lat,
                bw_factor=bw,
            )
            for cand in self.config.menu
            if cand.error_bound <= self.config.max_error
        }
        t_active = predictions.get(self.active.name)
        if t_active is None:
            return
        # Deterministic argmin: predicted time, then name.
        best_name = min(predictions, key=lambda n: (predictions[n], n))
        if best_name == self.active.name:
            return
        t_best = predictions[best_name]
        if not self.policy.should_switch(t_active, t_best):
            return
        frm = self.active.name
        self._apply(self._by_name[best_name], step)
        signals = {
            "lat_factor": round6(lat),
            "bw_factor": round6(bw),
            **{f"pred_{name}": round6(t) for name, t in predictions.items()},
        }
        alpha, beta = self.model.estimator.fit()
        signals["alpha"] = round6(alpha)
        signals["beta"] = round6(beta)
        if guard is not None:
            signals["guard_events"] = len(guard.timeline)
        self._record(
            Decision(
                step=step,
                kind="retune",
                from_config=frm,
                to_config=best_name,
                reason="predicted_improvement",
                signals=signals,
            )
        )

    def _apply(self, candidate: CandidateConfig, step: int) -> None:
        """Realise a candidate on the bound compressor stack."""
        self.active = candidate
        self._last_change = step
        if candidate.is_identity:
            # Realised by active_compressor()/layer_compressor() returning
            # None — the trainer's lossless broadcast path.
            return
        target = self._mutation_target()
        if target is not None:
            target.set_bounds(candidate.eb_f, candidate.eb_q)
            if hasattr(target, "set_encoder"):
                target.set_encoder(candidate.encoder)

    def _record(self, decision: Decision) -> None:
        self.decisions.append(decision)
        m = get_metrics()
        if m.enabled:
            m.counter("autotune.decisions", kind=decision.kind).inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_span(
                f"autotune:{decision.kind}:{decision.to_config}",
                "autotune_event",
                0.0,
                start=self._now(),
                track=SIM_TRACK,
                iteration=decision.step,
            )

    # -- reporting -------------------------------------------------------------

    def describe(self) -> dict:
        """JSON-safe config description for the ledger manifest."""
        c = self.config
        return {
            "menu": [cand.to_dict() for cand in c.menu],
            "initial": c.initial,
            "safe": self.safe_name,
            "max_error": round6(c.max_error),
            "warmup": c.warmup,
            "min_dwell": c.min_dwell,
            "min_improvement": round6(c.min_improvement)
            if math.isfinite(c.min_improvement)
            else "inf",
            "probe_elements": c.probe_elements,
            "cr_smoothing": round6(c.cr_smoothing),
            "min_payload_bytes": c.min_payload_bytes,
            "alpha0": round6(c.alpha0),
            "beta0": round6(c.beta0),
            "seed": c.seed,
            "category": self._category,
        }

    def report(self) -> dict:
        """End-of-run summary folded into the ledger's final record."""
        kinds: dict[str, int] = {}
        for d in self.decisions:
            kinds[d.kind] = kinds.get(d.kind, 0) + 1
        return {
            "active": self.active.name,
            "retunes": kinds.get("retune", 0),
            "vetoes": kinds.get("veto", 0),
            "decisions": [d.to_dict() for d in self.decisions],
            "modelled_extra_seconds": round6(self.modelled_extra_seconds),
            "model": self.model.snapshot(),
        }
