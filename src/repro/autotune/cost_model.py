"""Online alpha-beta cost model for the closed-loop autotuner.

The controller's objective is COMPSO's Eq. 5 made *live*: one step's
communication cost is ``alpha * messages + beta * bytes`` (latency and
inverse-bandwidth terms), plus the modelled GPU codec time of the
active encoder, minus the modelled credit of message aggregation.  The
(alpha, beta) pair is fitted online from what the simulated clock
actually charged (``SimCluster.breakdown()`` deltas per step), with
fabric degradation factors normalised *out* of the observations so the
fit stays a clean-fabric property and the current factors scale the
prediction back in.

Everything here is plain deterministic arithmetic: no RNG, no wall
clock — decisions derived from this model are a pure function of
``(seed, config)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autotune.types import CandidateConfig, round6
from repro.gpusim.encoder_perf import ENCODER_PERF

__all__ = [
    "AlphaBetaEstimator",
    "CostModel",
    "aggregation_credit",
    "codec_seconds",
    "modelled_extra_seconds",
    "replay_extra_seconds",
]

#: Fraction of the dense payload COMPSO feeds the lossless encoder
#: (filter + bitmap + variable-width packing shrink it first; paper
#: Fig. 4's pipeline leaves the encoder roughly a third of the input).
_ENCODER_INPUT_FRACTION = 0.3


class AlphaBetaEstimator:
    """Ridge least-squares fit of ``seconds ~ alpha*messages + beta*bytes``.

    The priors act as two pseudo-observations — one pure-latency
    message and one pure-bandwidth megabyte — so the fit is well-posed
    from the first step and degrades gracefully when the run only ever
    shows one (messages, bytes) operating point (the usual case: layer
    count is constant and payload sizes move slowly).
    """

    def __init__(self, alpha0: float = 5e-5, beta0: float = 1e-9):
        self.alpha0 = float(alpha0)
        self.beta0 = float(beta0)
        # Normal-equation sums, seeded with the two prior points
        # (m=1, B=0, t=alpha0) and (m=0, B=1e6, t=beta0*1e6).
        self._s_mm = 1.0
        self._s_mb = 0.0
        self._s_bb = 1e12
        self._s_mt = self.alpha0
        self._s_bt = self.beta0 * 1e12
        self.n_observations = 0

    def observe(self, messages: float, nbytes: float, seconds: float) -> None:
        m = float(messages)
        b = float(nbytes)
        t = float(seconds)
        if m <= 0 and b <= 0:
            return
        self._s_mm += m * m
        self._s_mb += m * b
        self._s_bb += b * b
        self._s_mt += m * t
        self._s_bt += b * t
        self.n_observations += 1

    def fit(self) -> tuple[float, float]:
        """Current (alpha, beta); clamped non-negative."""
        det = self._s_mm * self._s_bb - self._s_mb * self._s_mb
        if det <= 0:
            return self.alpha0, self.beta0
        alpha = (self._s_bb * self._s_mt - self._s_mb * self._s_bt) / det
        beta = (self._s_mm * self._s_bt - self._s_mb * self._s_mt) / det
        return max(alpha, 0.0), max(beta, 0.0)


def codec_seconds(
    candidate: CandidateConfig,
    *,
    dense_bytes: float,
    wire_bytes: float,
    n_layers: int,
) -> float:
    """Modelled GPU compress+decompress seconds for one step.

    Aggregation batches ``n_layers`` payloads into
    ``ceil(n_layers / aggregation)`` encoder invocations, amortising the
    per-invocation overhead that dominates at K-FAC layer sizes
    (paper Table 2 calibration via :data:`ENCODER_PERF`).
    """
    if candidate.is_identity or dense_bytes <= 0:
        return 0.0
    perf = ENCODER_PERF[candidate.encoder]
    invocations = max(1, math.ceil(n_layers / candidate.aggregation))
    enc_in = dense_bytes * _ENCODER_INPUT_FRACTION / invocations
    dec_in = max(wire_bytes, 0.0) / invocations
    return invocations * (perf.compress_time(enc_in) + perf.decompress_time(dec_in))


def aggregation_credit(
    candidate: CandidateConfig, *, n_layers: int, alpha: float, lat_factor: float = 1.0
) -> float:
    """Seconds of per-message launch latency modelled aggregation saves."""
    invocations = max(1, math.ceil(n_layers / candidate.aggregation))
    return max(n_layers - invocations, 0) * alpha * lat_factor


def modelled_extra_seconds(
    candidate: CandidateConfig,
    *,
    dense_bytes: float,
    wire_bytes: float,
    n_layers: int,
    alpha: float,
    lat_factor: float = 1.0,
) -> float:
    """Codec cost minus aggregation credit — the modelled step-time
    delta the simulated clock does not charge.  The benchmark adds this
    to ``SimCluster.time`` to score runs on modelled end-to-end time,
    and the controller accumulates the same quantity."""
    return codec_seconds(
        candidate, dense_bytes=dense_bytes, wire_bytes=wire_bytes, n_layers=n_layers
    ) - aggregation_credit(candidate, n_layers=n_layers, alpha=alpha, lat_factor=lat_factor)


def replay_extra_seconds(steps, candidate: CandidateConfig, *, alpha: float) -> float:
    """Modelled extra seconds for a recorded run that held ``candidate``
    every step — the static counterpart of the controller's live
    ``modelled_extra_seconds`` accumulator.  ``steps`` are ledger step
    records (``wire_bytes``/``dense_bytes``/``layers``)."""
    total = 0.0
    for r in steps:
        dense = r.get("dense_bytes", 0.0)
        if dense <= 0:
            continue
        wire = r.get("wire_bytes", 0.0) or dense
        n_layers = len(r.get("layers", [])) or 1
        total += modelled_extra_seconds(
            candidate, dense_bytes=dense, wire_bytes=wire, n_layers=n_layers, alpha=alpha
        )
    return total


class CostModel:
    """Alpha-beta comm fit plus per-candidate compression-ratio estimates.

    CR estimates start from a one-shot deterministic *probe*: each
    COMPSO candidate compresses a capped slice of a live gradient with
    a controller-owned seeded compressor (trainer RNG untouched), then
    the active candidate's estimate tracks the observed per-step ratio
    with an EWMA.
    """

    def __init__(self, estimator: AlphaBetaEstimator, cr_smoothing: float = 0.5):
        self.estimator = estimator
        self.cr_smoothing = float(cr_smoothing)
        self.cr: dict[str, float] = {}

    # -- compression-ratio estimation ---------------------------------------

    def probe(
        self,
        sample: np.ndarray,
        candidates: tuple[CandidateConfig, ...],
        *,
        seed: int,
        probe_elements: int,
    ) -> None:
        """Fill CR estimates by compressing ``sample`` under each candidate.

        Telemetry is silenced for the duration: probe work is controller
        bookkeeping, not training traffic, and must not perturb the
        ledger's metrics/span record.
        """
        from repro.core.compso import CompsoCompressor
        from repro.telemetry import (
            NULL_METRICS,
            NULL_TRACER,
            get_metrics,
            get_tracer,
            set_metrics,
            set_tracer,
        )

        chunk = np.asarray(sample, dtype=np.float32).ravel()[: max(int(probe_elements), 1)]
        prev_metrics, prev_tracer = get_metrics(), get_tracer()
        set_metrics(NULL_METRICS)
        set_tracer(NULL_TRACER)
        try:
            for cand in candidates:
                if cand.is_identity:
                    self.cr[cand.name] = 1.0
                    continue
                comp = CompsoCompressor(
                    cand.eb_f, cand.eb_q, encoder=cand.encoder, seed=seed
                )
                ct = comp.compress(chunk)
                self.cr[cand.name] = chunk.nbytes / max(float(ct.nbytes), 1.0)
        finally:
            set_metrics(prev_metrics)
            set_tracer(prev_tracer)

    def update_cr(self, name: str, observed: float) -> None:
        """EWMA-fold an observed live ratio into a candidate's estimate."""
        if observed <= 0:
            return
        prev = self.cr.get(name)
        if prev is None:
            self.cr[name] = float(observed)
        else:
            s = self.cr_smoothing
            self.cr[name] = (1.0 - s) * prev + s * float(observed)

    # -- prediction ---------------------------------------------------------

    def predict(
        self,
        candidate: CandidateConfig,
        *,
        dense_bytes: float,
        n_layers: int,
        lat_factor: float = 1.0,
        bw_factor: float = 1.0,
    ) -> float:
        """Predicted modelled step seconds under ``candidate`` now.

        ``lat_factor``/``bw_factor`` are the fabric's current health
        multipliers (>= 1 under link degradation), applied on top of the
        clean-fabric (alpha, beta) fit.
        """
        alpha, beta = self.estimator.fit()
        cr = self.cr.get(candidate.name, 1.0)
        wire = dense_bytes / max(cr, 1e-9)
        invocations = max(1, math.ceil(n_layers / candidate.aggregation))
        comm = alpha * invocations * lat_factor + beta * wire * bw_factor
        return comm + codec_seconds(
            candidate, dense_bytes=dense_bytes, wire_bytes=wire, n_layers=n_layers
        )

    def snapshot(self) -> dict:
        """JSON-safe model state for ledger decisions and reports."""
        alpha, beta = self.estimator.fit()
        return {
            "alpha": round6(alpha),
            "beta": round6(beta),
            "observations": self.estimator.n_observations,
            "cr": {name: round6(v) for name, v in sorted(self.cr.items())},
        }
