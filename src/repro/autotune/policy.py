"""Hysteresis policy: when the controller is *allowed* to move.

Separated from the controller so the thrash-prevention rules are one
small, testable object: a warmup before the first decision (the cost
model needs observations), a minimum dwell between moves (a retune
invalidates the very signals that justified it — give the new config
time to show up in the clock), and a relative-improvement threshold
(predictions are estimates; only act on margins that survive noise).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HysteresisPolicy"]


@dataclass(frozen=True)
class HysteresisPolicy:
    """Bounded-hysteresis gate for retune decisions."""

    #: Steps before the first decision may fire.
    warmup: int = 2
    #: Minimum steps between configuration changes.
    min_dwell: int = 3
    #: Required relative predicted improvement, e.g. 0.1 = 10%.
    #: ``float("inf")`` makes the policy never fire (useful for the
    #: bit-identity tests).
    min_improvement: float = 0.1

    def __post_init__(self):
        if self.warmup < 0 or self.min_dwell < 1:
            raise ValueError(
                f"warmup must be >= 0 and min_dwell >= 1, got "
                f"warmup={self.warmup}, min_dwell={self.min_dwell}"
            )
        if self.min_improvement < 0:
            raise ValueError(f"min_improvement must be >= 0, got {self.min_improvement}")

    def ready(self, step: int, last_change: int) -> bool:
        """May a decision fire at ``step``? ``last_change`` < 0 = never moved."""
        if step < self.warmup:
            return False
        return last_change < 0 or step - last_change >= self.min_dwell

    def should_switch(self, t_active: float, t_best: float) -> bool:
        """Is the best candidate's predicted win past the hysteresis band?"""
        return t_best < t_active * (1.0 - self.min_improvement)
