"""COMPSO reproduction: gradient compression for distributed second-order
(K-FAC) training.

Reproduces Sun et al., "COMPSO: Optimizing Gradient Compression for
Distributed Training with Second-Order Optimizers", PPoPP 2025 — the
COMPSO compressor plus every substrate it depends on: a NumPy NN stack
with K-FAC statistics capture, distributed (KAISA-style) K-FAC on a
simulated multi-GPU cluster, baseline compressors (QSGD, cuSZ-style,
CocktailSGD), eight lossless encoders, an analytical A100 execution
model, and the paper's performance model.

Quick start::

    import numpy as np
    from repro.core import CompsoCompressor

    grad = np.random.default_rng(0).standard_normal(1 << 20).astype(np.float32)
    compso = CompsoCompressor(eb_f=4e-3, eb_q=4e-3, encoder="ans")
    blob = compso.compress(grad)
    restored = compso.decompress(blob)
    print(grad.nbytes / blob.nbytes)  # compression ratio

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "compression",
    "encoders",
    "nn",
    "models",
    "optim",
    "distributed",
    "runtime",
    "kfac_dist",
    "fleet",
    "gpusim",
    "faults",
    "guard",
    "autotune",
    "obsv",
    "xray",
    "data",
    "train",
    "telemetry",
    "util",
]
