"""QSGD (Alistarh et al., NeurIPS'17): SR quantisation + Elias coding.

The classic first-order gradient compressor used as a baseline throughout
the paper.  An n-bit budget normalises the tensor to its max magnitude
(Eq. 3), stochastically rounds (Eq. 4), then codes sign bits as a bitmap
and magnitudes with Elias gamma.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedTensor, GradientCompressor
from repro.compression.quantize import BitBudgetQuantizer
from repro.encoders.elias import elias_gamma_decode, elias_gamma_encode
from repro.telemetry import get_tracer
from repro.util.bitpack import pack_bitmap, unpack_bitmap
from repro.util.seeding import spawn_rng

__all__ = ["QsgdCompressor"]


class QsgdCompressor(GradientCompressor):
    """n-bit QSGD with stochastic rounding and Elias-gamma magnitude coding."""

    def __init__(self, bits: int = 8, *, seed: int | np.random.Generator | None = 0):
        self.bits = bits
        self.name = f"qsgd-{bits}bit"
        self._quantizer = BitBudgetQuantizer(bits, "sr", seed=spawn_rng(seed))

    def compress(self, x: np.ndarray) -> CompressedTensor:
        x = np.asarray(x, dtype=np.float32)
        tracer = get_tracer()
        with tracer.span("compress", "compress", compressor=self.name, nbytes=x.nbytes):
            with tracer.span("quantise", "compress.quantise"):
                qt = self._quantizer.quantize(x)
                codes = qt.codes
                signs = codes < 0
                mags = np.abs(codes).astype(np.uint64)
            with tracer.span("encode", "compress.encode", encoder="elias-gamma"):
                segments = {
                    "signs": pack_bitmap(signs),
                    # Elias gamma requires values >= 1; shift zero up by one.
                    "mags": elias_gamma_encode(mags + 1),
                }
        ct = CompressedTensor(segments, x.shape, meta={"scale": qt.scale})
        return self._record_compression(x.nbytes, ct)

    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        n = ct.n_elements
        mags = elias_gamma_decode(ct.segments["mags"], n).astype(np.int64) - 1
        signs = unpack_bitmap(ct.segments["signs"], n)
        codes = np.where(signs, -mags, mags).astype(np.float32)
        scale = np.float32(ct.meta["scale"])
        return (codes * scale).reshape(ct.shape)
