"""Compressor interface shared by COMPSO and all baselines.

A ``GradientCompressor`` turns a float32 tensor into a
:class:`CompressedTensor` — an honest container whose ``nbytes`` counts
every byte a real implementation would put on the wire (payload segments
plus fixed per-tensor metadata) — and back.  Compression ratios reported
by the benchmarks are computed from these sizes, never estimated.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry import get_metrics

__all__ = ["CompressedTensor", "GradientCompressor", "METADATA_BYTES"]

#: Fixed per-tensor wire overhead we charge every compressor: shape/dtype
#: descriptor, scale factors, segment lengths.  Kept small and identical
#: across compressors so ratio comparisons are fair.
METADATA_BYTES = 16


@dataclass
class CompressedTensor:
    """Wire representation of one compressed gradient tensor."""

    #: Named binary segments (e.g. "bitmap", "codes", "outliers").
    segments: dict[str, bytes]
    shape: tuple[int, ...]
    #: Scalar metadata needed for decompression (scales, counts...).
    meta: dict[str, float | int] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Total wire size in bytes, including fixed metadata overhead."""
        return sum(len(seg) for seg in self.segments.values()) + METADATA_BYTES

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1


class GradientCompressor(ABC):
    """Lossy gradient compressor: float32 tensor <-> wire bytes."""

    #: Human-readable identifier used in benchmark tables.
    name: str = "base"

    @abstractmethod
    def compress(self, x: np.ndarray) -> CompressedTensor:
        """Compress ``x`` (any shape, float32) into wire form."""

    @abstractmethod
    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        """Reconstruct a float32 tensor of ``ct.shape``."""

    def roundtrip(self, x: np.ndarray) -> np.ndarray:
        """The lossy channel: compress then decompress."""
        return self.decompress(self.compress(x))

    def ratio(self, x: np.ndarray) -> float:
        """Compression ratio = original bytes / wire bytes."""
        x = np.asarray(x, dtype=np.float32)
        if x.size == 0:
            return 1.0
        return x.nbytes / self.compress(x).nbytes

    def _record_compression(self, raw_nbytes: int, ct: CompressedTensor) -> CompressedTensor:
        """Feed the active metrics registry with honest wire accounting."""
        m = get_metrics()
        if m.enabled and raw_nbytes:
            m.counter("compress.raw_bytes", compressor=self.name).inc(raw_nbytes)
            m.counter("compress.wire_bytes", compressor=self.name).inc(ct.nbytes)
            m.histogram("compress.ratio", compressor=self.name).observe(raw_nbytes / ct.nbytes)
        return ct

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class IdentityCompressor(GradientCompressor):
    """No-compression baseline: stores raw float32 bytes."""

    name = "none"

    def compress(self, x: np.ndarray) -> CompressedTensor:
        x = np.asarray(x, dtype=np.float32)
        return CompressedTensor({"raw": x.tobytes()}, x.shape)

    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        return np.frombuffer(ct.segments["raw"], dtype=np.float32).reshape(ct.shape).copy()
