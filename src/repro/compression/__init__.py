"""Lossy gradient compressors: quantisation primitives and baselines.

COMPSO itself lives in :mod:`repro.core`; this package holds the shared
compressor interface, the rounding/quantisation primitives of sections
2.3 and 4.2, and the three baseline compressors the paper evaluates
against (QSGD, cuSZ, CocktailSGD) plus a generic Top-k sparsifier.
"""

from repro.compression.base import (
    METADATA_BYTES,
    CompressedTensor,
    GradientCompressor,
    IdentityCompressor,
)
from repro.compression.cocktail import CocktailSgdCompressor
from repro.compression.error_feedback import ErrorFeedback
from repro.compression.oktopk import OkTopkCompressor
from repro.compression.qsgd import QsgdCompressor
from repro.compression.quantize import (
    ROUNDING_MODES,
    BitBudgetQuantizer,
    ErrorBoundedQuantizer,
    QuantizedTensor,
    round_nearest,
    round_p05,
    round_stochastic,
)
from repro.compression.szlike import SzCompressor
from repro.compression.topk import TopKCompressor, topk_mask

__all__ = [
    "CompressedTensor",
    "GradientCompressor",
    "IdentityCompressor",
    "METADATA_BYTES",
    "QsgdCompressor",
    "SzCompressor",
    "CocktailSgdCompressor",
    "ErrorFeedback",
    "OkTopkCompressor",
    "TopKCompressor",
    "topk_mask",
    "BitBudgetQuantizer",
    "ErrorBoundedQuantizer",
    "QuantizedTensor",
    "ROUNDING_MODES",
    "round_nearest",
    "round_stochastic",
    "round_p05",
]
