"""Rounding and quantisation primitives (paper sections 2.3 and 4.2).

Three rounding modes are studied by the paper:

* **RN** — round to nearest: deterministic, uniform error distribution.
* **SR** — stochastic rounding (Eq. 4): rounds up with probability equal
  to the fractional part; unbiased, *triangular* aggregate error
  distribution, which section 4.2 identifies as the accuracy-preserving
  property.
* **P0.5** — "mode-2" stochastic rounding (Croci et al. 2022): rounds
  up/down with equal probability; non-deterministic but *uniform* error —
  the control experiment showing non-determinism alone does not preserve
  accuracy.

On top of these, two quantiser families:

* :class:`BitBudgetQuantizer` — QSGD-style n-bit quantisation of values
  normalised to the tensor range (Eq. 3).
* :class:`ErrorBoundedQuantizer` — SZ/COMPSO-style quantisation with a
  guaranteed pointwise bound ``|dequant(x) - x| <= eb`` (absolute, or
  relative to the tensor's max magnitude).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.seeding import spawn_rng

__all__ = [
    "round_nearest",
    "round_stochastic",
    "round_p05",
    "ROUNDING_MODES",
    "BitBudgetQuantizer",
    "ErrorBoundedQuantizer",
    "QuantizedTensor",
]


def round_nearest(v: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
    """Round to nearest integer (ties to even, as numpy's rint)."""
    return np.rint(v)


def round_stochastic(v: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
    """Stochastic rounding, Eq. 4: E[round(v)] == v."""
    rng = spawn_rng(rng)
    floor = np.floor(v)
    frac = v - floor
    return floor + (rng.random(v.shape) < frac)


def round_p05(v: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
    """Mode-2 stochastic rounding: up/down with probability 0.5 each.

    Exact integers are left unchanged (there is nothing to round), which
    also keeps the scheme idempotent.
    """
    rng = spawn_rng(rng)
    floor = np.floor(v)
    frac = v - floor
    up = rng.random(v.shape) < 0.5
    rounded = floor + up
    return np.where(frac == 0.0, floor, rounded)


ROUNDING_MODES = {
    "rn": round_nearest,
    "sr": round_stochastic,
    "p05": round_p05,
}


@dataclass
class QuantizedTensor:
    """Integer codes plus the metadata needed to dequantise them."""

    codes: np.ndarray  # int32 codes
    scale: float  # value represented by one code step
    shape: tuple[int, ...]

    def dequantize(self) -> np.ndarray:
        return (self.codes.astype(np.float32) * np.float32(self.scale)).reshape(self.shape)

    @property
    def n_levels(self) -> int:
        """Number of distinct code values actually used."""
        if self.codes.size == 0:
            return 0
        return int(self.codes.max()) - int(self.codes.min()) + 1


class BitBudgetQuantizer:
    """QSGD-style n-bit quantisation (Eq. 3 normalisation + rounding).

    Values are scaled so the tensor's max magnitude maps to
    ``2**(bits-1) - 1`` and rounded with the chosen mode; codes are signed
    integers in ``[-(2**(bits-1)-1)-1, 2**(bits-1)-1 + 1]`` (SR may round
    the extreme value outward by one step).
    """

    def __init__(self, bits: int, mode: str = "sr", *, seed: int | np.random.Generator | None = 0):
        if not 2 <= bits <= 16:
            raise ValueError(f"bits must be in [2, 16], got {bits}")
        if mode not in ROUNDING_MODES:
            raise ValueError(f"mode must be one of {sorted(ROUNDING_MODES)}, got {mode!r}")
        self.bits = bits
        self.mode = mode
        self._rng = spawn_rng(seed)

    def quantize(self, x: np.ndarray) -> QuantizedTensor:
        x = np.asarray(x, dtype=np.float32)
        flat = x.ravel()
        vmax = float(np.abs(flat).max()) if flat.size else 0.0
        levels = (1 << (self.bits - 1)) - 1
        if vmax == 0.0:
            return QuantizedTensor(np.zeros(flat.size, dtype=np.int32), 0.0, x.shape)
        scale = vmax / levels
        codes = ROUNDING_MODES[self.mode](flat / scale, self._rng).astype(np.int32)
        return QuantizedTensor(codes, scale, x.shape)

    def roundtrip(self, x: np.ndarray) -> np.ndarray:
        """Quantise then dequantise (the lossy channel seen by training)."""
        return self.quantize(x).dequantize()


class ErrorBoundedQuantizer:
    """Uniform quantiser with a guaranteed pointwise error bound.

    The step is chosen per rounding mode so that ``|err| <= eb`` always
    holds: RN has half-step worst case (step = 2*eb) while SR/P0.5 have
    full-step worst case (step = eb).  ``relative=True`` scales ``eb`` by
    the tensor's max magnitude (cuSZ's "relative to value range" mode).
    """

    def __init__(
        self,
        eb: float,
        mode: str = "sr",
        *,
        relative: bool = True,
        seed: int | np.random.Generator | None = 0,
    ):
        if eb <= 0:
            raise ValueError(f"error bound must be positive, got {eb}")
        if mode not in ROUNDING_MODES:
            raise ValueError(f"mode must be one of {sorted(ROUNDING_MODES)}, got {mode!r}")
        self.eb = float(eb)
        self.mode = mode
        self.relative = relative
        self._rng = spawn_rng(seed)

    def step_for(self, x: np.ndarray) -> float:
        """Quantisation step honouring the bound for this tensor."""
        eb = self.eb
        if self.relative:
            vmax = float(np.abs(x).max()) if x.size else 0.0
            eb = self.eb * vmax if vmax > 0 else self.eb
        return 2.0 * eb if self.mode == "rn" else eb

    def quantize(self, x: np.ndarray) -> QuantizedTensor:
        x = np.asarray(x, dtype=np.float32)
        flat = x.ravel()
        step = self.step_for(flat)
        if flat.size == 0 or step == 0.0:
            return QuantizedTensor(np.zeros(flat.size, dtype=np.int32), 0.0, x.shape)
        codes = ROUNDING_MODES[self.mode](flat / step, self._rng).astype(np.int32)
        return QuantizedTensor(codes, step, x.shape)

    def roundtrip(self, x: np.ndarray) -> np.ndarray:
        return self.quantize(x).dequantize()
