"""Ok-topk-style threshold sparsification (Li & Hoefler, PPoPP'22).

The related-work sparsifier the paper contrasts COMPSO with: Ok-topk
keeps a near-optimal sparse allreduce by estimating the global top-k
*threshold* once and re-estimating it only periodically, instead of
selecting exact top-k every iteration.  Between re-estimations the
threshold is fixed — which is precisely the "fixed error bound across
all iterations" behaviour section 4.3 contrasts with COMPSO's
LR-adaptive bounds.

This implementation keeps the per-tensor semantics: a magnitude
threshold is fitted to hit the target density from a value sample, then
reused for ``reestimate_every`` calls with a multiplicative correction
when the realised density drifts.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedTensor, GradientCompressor
from repro.util.bitpack import pack_bitmap, unpack_bitmap
from repro.util.seeding import spawn_rng

__all__ = ["OkTopkCompressor"]


class OkTopkCompressor(GradientCompressor):
    """Threshold sparsifier with periodic threshold re-estimation."""

    def __init__(
        self,
        density: float = 0.05,
        *,
        reestimate_every: int = 32,
        sample_size: int = 4096,
        seed: int | np.random.Generator | None = 0,
    ):
        if not 0 < density <= 1:
            raise ValueError(f"density must be in (0, 1], got {density}")
        if reestimate_every < 1:
            raise ValueError("reestimate_every must be >= 1")
        self.density = density
        self.reestimate_every = reestimate_every
        self.sample_size = sample_size
        self.name = f"oktopk-{density:g}"
        self._rng = spawn_rng(seed)
        self._threshold: float | None = None
        self._calls = 0

    def _estimate_threshold(self, mags: np.ndarray) -> float:
        n = mags.size
        sample = mags if n <= self.sample_size else self._rng.choice(mags, self.sample_size)
        return float(np.quantile(sample, 1.0 - self.density))

    def compress(self, x: np.ndarray) -> CompressedTensor:
        x = np.asarray(x, dtype=np.float32)
        flat = x.ravel()
        mags = np.abs(flat)
        if self._threshold is None or self._calls % self.reestimate_every == 0:
            self._threshold = self._estimate_threshold(mags)
        self._calls += 1
        mask = mags >= self._threshold
        realised = mask.mean() if flat.size else 0.0
        # Drift detection: when the stale threshold badly misses the
        # target density (value scale shifted), re-estimate immediately —
        # the same trigger-based refresh Ok-topk uses.
        if realised > 2 * self.density and self._threshold >= 0:
            self._threshold = self._estimate_threshold(mags)
            mask = mags >= self._threshold
        return CompressedTensor(
            {"bitmap": pack_bitmap(mask), "values": flat[mask].tobytes()},
            x.shape,
            meta={"k": int(mask.sum()), "threshold": float(self._threshold)},
        )

    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        n = ct.n_elements
        mask = unpack_bitmap(ct.segments["bitmap"], n)
        out = np.zeros(n, dtype=np.float32)
        out[mask] = np.frombuffer(ct.segments["values"], dtype=np.float32)
        return out.reshape(ct.shape)

    def reset(self) -> None:
        self._threshold = None
        self._calls = 0
