"""CocktailSGD (Wang et al., ICML'23): random sampling + Top-k + quantisation.

The strongest first-order baseline in the paper.  The pipeline keeps a
fixed *density* of entries (paper: 20%), found by top-k over a randomly
sampled candidate pool (random sampling makes GPU top-k cheap at the cost
of selection quality), then quantises survivors to ``bits`` bits with
stochastic rounding.  Positions travel as a packed bitmap and both bitmap
and value codes are entropy-coded with rANS, which is how the paper's
"constant ~20x" ratio arises from 20% density + 8-bit values.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedTensor, GradientCompressor
from repro.compression.quantize import BitBudgetQuantizer
from repro.compression.topk import topk_mask
from repro.encoders.ans import RansEncoder
from repro.telemetry import get_tracer
from repro.util.bitpack import pack_bitmap, unpack_bitmap
from repro.util.seeding import spawn_rng

__all__ = ["CocktailSgdCompressor"]


class CocktailSgdCompressor(GradientCompressor):
    """Random-sample top-k sparsification + SR quantisation + rANS."""

    def __init__(
        self,
        density: float = 0.2,
        bits: int = 8,
        *,
        candidate_factor: float = 2.0,
        seed: int | np.random.Generator | None = 0,
    ):
        if not 0 < density <= 1:
            raise ValueError(f"density must be in (0, 1], got {density}")
        if candidate_factor < 1.0:
            raise ValueError("candidate_factor must be >= 1")
        self.density = density
        self.bits = bits
        self.candidate_factor = candidate_factor
        self.name = f"cocktail-{int(density * 100)}pct-{bits}bit"
        self._rng = spawn_rng(seed)
        self._quantizer = BitBudgetQuantizer(bits, "sr", seed=spawn_rng(seed, 1))
        self._encoder = RansEncoder()

    def compress(self, x: np.ndarray) -> CompressedTensor:
        x = np.asarray(x, dtype=np.float32)
        flat = x.ravel()
        n = flat.size
        tracer = get_tracer()
        with tracer.span("compress", "compress", compressor=self.name, nbytes=x.nbytes):
            with tracer.span("select", "compress.filter"):
                k = max(1, int(round(self.density * n))) if n else 0
                pool = min(n, int(round(self.candidate_factor * k)))
                if pool < n:
                    candidates = self._rng.choice(n, size=pool, replace=False)
                    sub_mask = topk_mask(flat[candidates], k)
                    mask = np.zeros(n, dtype=bool)
                    mask[candidates[sub_mask]] = True
                else:
                    mask = topk_mask(flat, k)
                kept = flat[mask]
            with tracer.span("quantise", "compress.quantise"):
                qt = self._quantizer.quantize(kept)
                # Signed codes -> unsigned bytes around the midpoint.
                offset = 1 << (self.bits - 1)
                byte_codes = (qt.codes + offset).astype(np.uint8)
            with tracer.span("encode", "compress.encode", encoder="ans"):
                segments = {
                    "bitmap": self._encoder.encode(pack_bitmap(mask)),
                    "codes": self._encoder.encode(byte_codes.tobytes()),
                }
        ct = CompressedTensor(segments, x.shape, meta={"scale": qt.scale, "k": int(mask.sum())})
        return self._record_compression(x.nbytes, ct)

    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        n = ct.n_elements
        mask = unpack_bitmap(self._encoder.decode(ct.segments["bitmap"]), n)
        byte_codes = np.frombuffer(self._encoder.decode(ct.segments["codes"]), dtype=np.uint8)
        offset = 1 << (self.bits - 1)
        codes = byte_codes.astype(np.int32) - offset
        out = np.zeros(n, dtype=np.float32)
        out[mask] = codes.astype(np.float32) * np.float32(ct.meta["scale"])
        return out.reshape(ct.shape)
