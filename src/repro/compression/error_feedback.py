"""Error feedback (EF) wrapper (paper section 6, related work).

EF compensates compression error by carrying the residual
``original - decompressed`` into the next iteration's gradient (Lim et
al. 3LC; Gorbunov et al.).  The paper *avoids* EF because the residual
buffer costs one extra model-sized tensor per worker — a problem for
large-batch K-FAC training memory budgets — and because COMPSO's
SR-based design is unbiased and does not need it.

We implement EF as a wrapper so the trade-off is measurable: it repairs
biased compressors (e.g. Top-k, which silently drops mass) at the cost
of ``memory_overhead_bytes`` of state per wrapped tensor stream.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedTensor, GradientCompressor

__all__ = ["ErrorFeedback"]


class ErrorFeedback(GradientCompressor):
    """Wrap a compressor with residual accumulation.

    Each distinct tensor shape+key gets its own residual buffer, so one
    wrapper instance can serve a whole model's layer stream (pass
    ``key=layer_index`` to keep streams separate).
    """

    def __init__(self, inner: GradientCompressor):
        self.inner = inner
        self.name = f"ef({inner.name})"
        self._residuals: dict[object, np.ndarray] = {}

    def compress(self, x: np.ndarray, *, key: object = None) -> CompressedTensor:
        x = np.asarray(x, dtype=np.float32)
        residual = self._residuals.get((key, x.shape))
        corrected = x if residual is None else x + residual
        ct = self.inner.compress(corrected)
        decompressed = self.inner.decompress(ct)
        self._residuals[(key, x.shape)] = corrected - decompressed
        return ct

    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        return self.inner.decompress(ct)

    def reset(self) -> None:
        """Drop all residual state."""
        self._residuals.clear()

    def residual_norm(self) -> float:
        """L2 norm over every residual buffer.

        The fault-tolerance layer watches this: an exploding residual
        means the compressor is systematically dropping signal (e.g.
        after corruption-induced bound loosening) and the trainer should
        reset EF state and degrade to a conservative compression mode.
        """
        total = 0.0
        for r in self._residuals.values():
            total += float(np.dot(r.ravel(), r.ravel()))
        return float(np.sqrt(total))

    @property
    def memory_overhead_bytes(self) -> int:
        """Bytes of residual state currently held — the cost the paper
        cites as the reason to avoid EF."""
        return sum(r.nbytes for r in self._residuals.values())
