"""Top-k magnitude sparsification (Strom'15 / Ok-topk family baseline).

Keeps the k largest-magnitude entries; positions go into a packed bitmap,
values stay float32.  Used both standalone and as CocktailSGD's selection
stage.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedTensor, GradientCompressor
from repro.telemetry import get_tracer
from repro.util.bitpack import pack_bitmap, unpack_bitmap

__all__ = ["TopKCompressor", "topk_mask"]


def topk_mask(x: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask of the ``k`` largest-|x| entries (ties broken arbitrarily)."""
    flat = np.abs(np.asarray(x)).ravel()
    mask = np.zeros(flat.size, dtype=bool)
    if k <= 0:
        return mask
    if k >= flat.size:
        mask[:] = True
        return mask
    idx = np.argpartition(flat, flat.size - k)[flat.size - k :]
    mask[idx] = True
    return mask


class TopKCompressor(GradientCompressor):
    """Keep a fixed density of largest-magnitude gradient entries."""

    def __init__(self, density: float = 0.01):
        if not 0 < density <= 1:
            raise ValueError(f"density must be in (0, 1], got {density}")
        self.density = density
        self.name = f"topk-{density:g}"

    def compress(self, x: np.ndarray) -> CompressedTensor:
        x = np.asarray(x, dtype=np.float32)
        flat = x.ravel()
        tracer = get_tracer()
        with tracer.span("compress", "compress", compressor=self.name, nbytes=x.nbytes):
            with tracer.span("select", "compress.filter"):
                k = max(1, int(round(self.density * flat.size))) if flat.size else 0
                mask = topk_mask(flat, k)
            with tracer.span("pack", "compress.pack"):
                segments = {"bitmap": pack_bitmap(mask), "values": flat[mask].tobytes()}
        ct = CompressedTensor(segments, x.shape, meta={"k": int(mask.sum())})
        return self._record_compression(x.nbytes, ct)

    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        n = ct.n_elements
        mask = unpack_bitmap(ct.segments["bitmap"], n)
        out = np.zeros(n, dtype=np.float32)
        out[mask] = np.frombuffer(ct.segments["values"], dtype=np.float32)
        return out.reshape(ct.shape)
