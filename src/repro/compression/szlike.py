"""cuSZ-style error-bounded lossy compressor.

Faithful to cuSZ's *dual-quantisation* design (Tian et al., PACT'20):

1. **Prequantisation** — round-to-nearest of ``x / step`` with
   ``step = 2 * eb * range`` (relative error bound; |err| <= eb*range).
2. **Lorenzo (delta) prediction** — first-order differences of the
   prequantised integers; fully vectorised and exactly reversible.
3. **Encoding** — deltas within ±127 become one byte each; larger deltas
   emit an escape byte plus a raw int32 outlier.  The byte stream is then
   Huffman-coded (SZ's lossless backend).

This is the paper's "cuSZ" baseline: RN-based quantisation, so it shows
the uniform-error accuracy penalty of section 4.2.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedTensor, GradientCompressor
from repro.encoders.huffman import HuffmanEncoder
from repro.telemetry import get_tracer

__all__ = ["SzCompressor"]

_RADIUS = 127
_ESCAPE = 255


class SzCompressor(GradientCompressor):
    """cuSZ stand-in: RN prequantisation + Lorenzo deltas + Huffman."""

    def __init__(self, eb: float = 4e-3, *, relative: bool = True):
        if eb <= 0:
            raise ValueError(f"error bound must be positive, got {eb}")
        self.eb = float(eb)
        self.relative = relative
        self.name = f"sz-{eb:g}"
        self._encoder = HuffmanEncoder()

    def _step(self, x: np.ndarray) -> float:
        eb = self.eb
        if self.relative:
            vmax = float(np.abs(x).max()) if x.size else 0.0
            eb = self.eb * vmax if vmax > 0 else self.eb
        return 2.0 * eb

    def compress(self, x: np.ndarray) -> CompressedTensor:
        x = np.asarray(x, dtype=np.float32)
        flat = x.ravel()
        step = self._step(flat)
        if flat.size == 0 or step == 0.0:
            return CompressedTensor({"codes": b"", "outliers": b""}, x.shape, meta={"step": 0.0})
        tracer = get_tracer()
        with tracer.span("compress", "compress", compressor=self.name, nbytes=x.nbytes):
            with tracer.span("prequantise", "compress.quantise"):
                q = np.rint(flat / step).astype(np.int64)
            with tracer.span("lorenzo", "compress.pack"):
                deltas = np.diff(q, prepend=0)
                small = np.abs(deltas) <= _RADIUS
                codes = np.where(small, deltas + _RADIUS, _ESCAPE).astype(np.uint8)
                outliers = deltas[~small].astype(np.int32)
            with tracer.span("encode", "compress.encode", encoder="huffman"):
                segments = {
                    "codes": self._encoder.encode(codes),
                    "outliers": outliers.tobytes(),
                }
        ct = CompressedTensor(segments, x.shape, meta={"step": step})
        return self._record_compression(x.nbytes, ct)

    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        n = ct.n_elements
        step = float(ct.meta["step"])
        if step == 0.0:
            return np.zeros(ct.shape, dtype=np.float32)
        codes = np.frombuffer(self._encoder.decode(ct.segments["codes"]), dtype=np.uint8)
        deltas = codes.astype(np.int64) - _RADIUS
        escapes = codes == _ESCAPE
        outliers = np.frombuffer(ct.segments["outliers"], dtype=np.int32)
        deltas[escapes] = outliers
        q = np.cumsum(deltas)
        return (q.astype(np.float32) * np.float32(step)).reshape(ct.shape)
