"""Cheap numerical-health invariant checkers (the guard's tripwires).

Every sentinel is a pure observation plus, at most, an explicitly
scoped repair (scrubbing poisoned entries, jittering a factor before an
eigendecomposition retry).  On healthy inputs each sentinel is
side-effect free and consumes no randomness, which is what lets a
guarded fault-free run stay bit-identical to an unguarded one:

* :func:`scan_tensor` — NaN/Inf and absurd-magnitude scan over a
  gradient / parameter / decompressed payload, zeroing offenders;
* :func:`contract_error` — per-iteration verification that the
  compression channel actually honoured its error-bound contract
  ``|x - decompress(compress(x))| <= (eb_f + eb_q) * max|x|``;
* :func:`factor_health` — symmetry/finiteness precheck on a K-FAC
  Kronecker factor before it reaches ``np.linalg.eigh``;
* :func:`safe_eigen` — eigendecomposition with
  :class:`~repro.optim.kfac.FactorNumericsError` caught and retried
  under escalating diagonal damping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.optim.kfac import FactorNumericsError, Kfac

__all__ = [
    "ScanResult",
    "scan_tensor",
    "contract_error",
    "active_bounds",
    "factor_health",
    "safe_eigen",
]


@dataclass
class ScanResult:
    """Outcome of one :func:`scan_tensor` pass."""

    values: np.ndarray
    n_nonfinite: int = 0
    n_oversized: int = 0
    max_abs: float = 0.0
    detail: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return self.n_nonfinite == 0 and self.n_oversized == 0


def scan_tensor(x: np.ndarray, *, abs_limit: float = 1e6) -> ScanResult:
    """Scan ``x`` for NaN/Inf and entries beyond ``abs_limit``; scrub both.

    A single bit flip in a float32 exponent turns an O(1) gradient into
    an O(1e30) one — finite, so ``np.nan_to_num`` never sees it, but
    instantly fatal to the parameters.  Offending entries are zeroed (a
    dropped contribution, the bounded-error failure mode) on a *copy*;
    clean tensors are returned untouched, unscanned memory included, so
    the healthy path allocates nothing.
    """
    finite = np.isfinite(x)
    n_nonfinite = int(x.size - int(finite.sum()))
    with np.errstate(invalid="ignore"):
        oversized = finite & (np.abs(x) > abs_limit)
    n_oversized = int(oversized.sum())
    if n_nonfinite == 0 and n_oversized == 0:
        max_abs = float(np.abs(x).max()) if x.size else 0.0
        return ScanResult(x, 0, 0, max_abs)
    scrubbed = np.where(finite & ~oversized, x, 0.0).astype(x.dtype)
    max_abs = float(np.abs(scrubbed).max()) if scrubbed.size else 0.0
    return ScanResult(scrubbed, n_nonfinite, n_oversized, max_abs)


def active_bounds(compressor) -> tuple[float, float] | None:
    """(eb_f, eb_q) currently in force for ``compressor``, if discoverable.

    Understands :class:`~repro.core.adaptive.AdaptiveCompso` (``bounds``
    property, degradation included) and any compressor exposing plain
    ``eb_f`` / ``eb_q`` attributes; returns None otherwise.
    """
    bounds = getattr(compressor, "bounds", None)
    if bounds is not None and hasattr(bounds, "eb_f"):
        return float(bounds.eb_f), float(bounds.eb_q)
    eb_f = getattr(compressor, "eb_f", None)
    eb_q = getattr(compressor, "eb_q", None)
    if eb_f is not None and eb_q is not None:
        return float(eb_f), float(eb_q)
    return None


def contract_error(
    original: np.ndarray, decoded: np.ndarray, compressor, *, slack: float = 1.25
) -> float | None:
    """How badly the compression channel violated its error bound.

    Returns ``observed_error / allowed_error`` when the maximum absolute
    reconstruction error exceeds ``slack`` times the contract
    ``(eb_f + eb_q) * max|original|`` (relative bounds, the COMPSO
    convention), or None when the contract held / is unknowable.  A
    violation means either the compressor is broken or the payload was
    corrupted in flight — either way the bytes being applied to the
    model are not the bytes the error analysis licensed.
    """
    bounds = active_bounds(compressor)
    if bounds is None or original.size == 0:
        return None
    eb_f, eb_q = bounds
    vmax = float(np.abs(original).max())
    if vmax == 0.0:
        return None
    allowed = (eb_f + eb_q) * vmax * slack
    if allowed <= 0.0:
        return None
    err = float(np.abs(decoded.reshape(original.shape) - original).max())
    if err <= allowed:
        return None
    return err / allowed


def factor_health(mat: np.ndarray, *, sym_tol: float = 1e-6) -> str | None:
    """None when ``mat`` is eigh-safe; otherwise a short failure reason."""
    if not np.isfinite(mat).all():
        return "non-finite entries"
    scale = float(np.abs(mat).max())
    if scale > 0.0:
        asym = float(np.abs(mat - mat.T).max())
        if asym > sym_tol * scale:
            return f"asymmetry {asym:.3e} (scale {scale:.3e})"
    return None


def _repair_factor(mat: np.ndarray, jitter: float) -> np.ndarray:
    """Symmetrise, zero non-finite entries, and add ``jitter * I``."""
    clean = np.nan_to_num(mat, nan=0.0, posinf=0.0, neginf=0.0)
    sym = 0.5 * (clean + clean.T)
    return sym + jitter * np.eye(sym.shape[0], dtype=sym.dtype)


def safe_eigen(
    kfac: Kfac,
    idx: int,
    *,
    max_retries: int = 3,
    jitter: float = 1e-6,
    escalation: float = 100.0,
) -> int:
    """Eigendecompose layer ``idx`` with escalating-damping retries.

    Healthy factors take the exact same single
    :meth:`~repro.optim.kfac.Kfac.compute_eigen` call an unguarded run
    makes (bit-identical).  On a precheck failure or
    :class:`FactorNumericsError`, both factors are repaired —
    symmetrised, definitised with ``jitter * escalation**attempt`` on the
    diagonal — and the decomposition retried; the final attempt's error
    propagates if nothing converges.  Returns the number of repair
    attempts spent (0 == healthy path).
    """
    st = kfac.state[idx]
    sick = factor_health(st.A) or factor_health(st.G)
    if sick is None:
        try:
            kfac.compute_eigen(idx)
            return 0
        except FactorNumericsError:
            pass
    for attempt in range(max_retries):
        eps = jitter * (escalation**attempt)
        st.A = _repair_factor(st.A, eps)
        st.G = _repair_factor(st.G, eps)
        try:
            kfac.compute_eigen(idx)
            return attempt + 1
        except FactorNumericsError:
            if attempt == max_retries - 1:
                raise
    raise FactorNumericsError(idx, "unreachable")  # pragma: no cover
