"""The guard facade: sentinels + detector + policy behind one object.

:class:`GuardConfig` is the single user-facing knob surface; trainers
accept ``guard=GuardConfig(...)`` (or a prebuilt :class:`Guard`) and
call into the facade at the few points where numerical health can go
wrong: payload arrival, decompression, the error-bound contract, the
eigendecomposition, and the end-of-step loss/grad-norm observation.

Everything the guard does is observable: each verdict increments
``guard.verdicts`` (labelled by kind), each remediation increments
``guard.remediations`` (labelled by action), and both are stamped onto
the simulated timeline as zero-duration ``guard_event`` spans, so the
full remediation history reconciles against the Chrome-trace export.

The disabled/healthy paths are bit-identical to an unguarded run: no
sentinel consumes randomness, the contract check compares tensors the
step already produced (it never re-compresses), and the breaker only
changes the data path after a verdict has fired.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.guard.health import DivergenceDetector, HealthReport
from repro.guard.policy import BREAKER_CLOSED, CircuitBreaker, GuardContext, PolicyEngine
from repro.guard.sentinels import contract_error, scan_tensor
from repro.guard.sentinels import safe_eigen as _safe_eigen
from repro.guard.watchdog import CollectiveWatchdog
from repro.telemetry import SIM_TRACK, get_metrics, get_tracer

__all__ = ["GuardConfig", "Guard", "as_guard"]


@dataclass
class GuardConfig:
    """Declarative guard configuration (every sentinel can be tuned off).

    The defaults arm the numerical sentinels and the divergence detector
    with conservative thresholds; the watchdog stays off unless a
    deadline is given (it needs a :class:`StreamRuntime` to attach to).
    """

    # scan_tensor sentinel on arriving payloads
    scan_payloads: bool = True
    abs_limit: float = 1e6
    # error-bound contract verification (0 disables; N = check every Nth
    # iteration — it is a full-tensor comparison, so sampling keeps the
    # guard overhead sub-linear)
    contract_check_every: int = 1
    contract_slack: float = 1.25
    # error-feedback residual guard (None disables)
    ef_residual_limit: float | None = None
    # divergence detector
    window: int = 8
    warmup: int = 3
    spike_factor: float = 3.0
    grad_spike_factor: float = 10.0
    plateau_window: int = 0
    plateau_tol: float = 1e-3
    # circuit breaker
    breaker_cooldown: int = 3
    breaker_reclose_after: int = 2
    # K-FAC eigendecomposition retries
    eigen_max_retries: int = 3
    eigen_jitter: float = 1e-6
    # collective watchdog (None disables)
    watchdog_deadline: float | None = None
    watchdog_max_retries: int = 2
    # policy engine
    rules: dict[str, tuple[str, ...]] | None = None
    action_cooldown: int = 2
    degrade_iterations: int = 3
    damping_factor: float = 10.0

    def build(self) -> "Guard":
        return Guard(self)


class Guard:
    """Runtime guard instance: owns the detector, breaker, and policy."""

    def __init__(self, config: GuardConfig | None = None):
        self.config = config if config is not None else GuardConfig()
        c = self.config
        self.detector = DivergenceDetector(
            window=c.window,
            warmup=c.warmup,
            spike_factor=c.spike_factor,
            grad_spike_factor=c.grad_spike_factor,
            plateau_window=c.plateau_window,
            plateau_tol=c.plateau_tol,
        )
        self.breaker = CircuitBreaker(
            cooldown=c.breaker_cooldown, reclose_after=c.breaker_reclose_after
        )
        self.policy = PolicyEngine(
            self.breaker,
            rules=c.rules,
            degrade_iterations=c.degrade_iterations,
            damping_factor=c.damping_factor,
            action_cooldown=c.action_cooldown,
        )
        self.ctx = GuardContext()
        self.watchdog: CollectiveWatchdog | None = None
        self.verdict_counts: dict[str, int] = {}
        self.reports: list[HealthReport] = []
        self._iteration = 0
        self._step_dirty = False

    # -- wiring ----------------------------------------------------------------

    def bind(self, *, compressor=None, kfac=None, trainer=None, cluster=None) -> "Guard":
        """Attach the handles remediations act on (None leaves as-is)."""
        if compressor is not None:
            self.ctx.compressor = compressor
        if kfac is not None:
            self.ctx.kfac = kfac
        if trainer is not None:
            self.ctx.trainer = trainer
        if cluster is not None:
            self.ctx.cluster = cluster
        return self

    def attach_runtime(self, runtime) -> None:
        """Install the collective watchdog on a StreamRuntime, if armed."""
        if runtime is None or self.config.watchdog_deadline is None:
            return
        if self.watchdog is None:
            self.watchdog = CollectiveWatchdog(
                deadline_seconds=self.config.watchdog_deadline,
                max_retries=self.config.watchdog_max_retries,
            )
        runtime.watchdog = self.watchdog

    # -- verdict plumbing ------------------------------------------------------

    def _now(self) -> float:
        cluster = self.ctx.cluster
        return float(cluster.time) if cluster is not None else 0.0

    def _emit(self, verdict: str, detail: dict) -> None:
        """Record a verdict and hand it to the policy engine."""
        self._step_dirty = True
        self.verdict_counts[verdict] = self.verdict_counts.get(verdict, 0) + 1
        m = get_metrics()
        if m.enabled:
            m.counter("guard.verdicts", kind=verdict).inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_span(
                f"verdict:{verdict}",
                "guard_event",
                0.0,
                start=self._now(),
                track=SIM_TRACK,
                iteration=self._iteration,
                **{k: v for k, v in detail.items() if isinstance(v, (int, float, str))},
            )
        action = self.policy.handle(verdict, detail, self.ctx, self._iteration)
        if action is None:
            return
        if m.enabled:
            m.counter("guard.remediations", action=action.action).inc()
        if tracer.enabled:
            tracer.add_span(
                f"remediate:{action.action}",
                "guard_event",
                0.0,
                start=self._now(),
                track=SIM_TRACK,
                iteration=self._iteration,
                verdict=verdict,
            )

    # -- per-step hooks --------------------------------------------------------

    def begin_step(self, iteration: int) -> None:
        self._iteration = int(iteration)
        self._step_dirty = False

    def active(self, compressor):
        """The compressor the step should use: None while the breaker is open."""
        if compressor is None or self.breaker.allows_compression:
            return compressor
        m = get_metrics()
        if m.enabled:
            m.counter("guard.bypass").inc()
        return None

    def autotune_veto(self) -> bool:
        """Breaker-based veto for the online autotuner (repro.autotune).

        While the circuit breaker is anywhere but fully closed —
        including the half-open probation window — the autotuner must
        not retune: the breaker owns the data path until the stack has
        proven clean again, and a controller chasing throughput mid-
        remediation would fight it.  Closed-loop decisions live outside
        the policy engine but defer to it through this one predicate
        (DESIGN.md decision 10).
        """
        return self.breaker.state != BREAKER_CLOSED

    def scan(self, flat: np.ndarray, *, what: str = "gradient") -> np.ndarray:
        """NaN/Inf + magnitude sentinel; returns the (possibly scrubbed) tensor."""
        if not self.config.scan_payloads:
            return flat
        result = scan_tensor(flat, abs_limit=self.config.abs_limit)
        if not result.clean:
            self._emit(
                "nonfinite_payload",
                {
                    "what": what,
                    "n_nonfinite": result.n_nonfinite,
                    "n_oversized": result.n_oversized,
                },
            )
        return result.values

    def safe_decompress(self, compressor, ct, *, layer: int):
        """Decompress; a decode blow-up becomes a verdict, not a crash.

        Returns None when decoding failed — the caller drops that
        payload (a zero update for the layer) and the policy engine has
        already reacted (typically by tripping the breaker).
        """
        try:
            return compressor.decompress(ct)
        except Exception as exc:  # noqa: BLE001 — any decode failure is the verdict
            self._emit(
                "decode_failure", {"layer": layer, "error": f"{type(exc).__name__}: {exc}"}
            )
            return None

    def check_contract(self, original: np.ndarray, decoded, compressor, *, layer: int) -> None:
        """Verify the error-bound contract on an (original, decoded) pair."""
        every = self.config.contract_check_every
        if not every or decoded is None or self._iteration % every:
            return
        ratio = contract_error(
            original, decoded, compressor, slack=self.config.contract_slack
        )
        if ratio is not None:
            self._emit("contract_violation", {"layer": layer, "error_over_bound": ratio})

    def check_ef(self, compressor) -> None:
        """Error-feedback residual-norm sentinel."""
        limit = self.config.ef_residual_limit
        if limit is None:
            return
        norm = getattr(compressor, "residual_norm", None)
        if norm is None:
            return
        value = norm()
        if value > limit:
            self._emit("ef_residual", {"residual_norm": value, "limit": limit})

    def safe_eigen(self, kfac, idx: int) -> None:
        """Guarded eigendecomposition with escalating-damping retries."""
        attempts = _safe_eigen(
            kfac,
            idx,
            max_retries=self.config.eigen_max_retries,
            jitter=self.config.eigen_jitter,
        )
        if attempts:
            self._emit("eigh_retry", {"layer": idx, "attempts": attempts})

    def end_step(self, *, loss: float, grad_norm: float) -> HealthReport:
        """Close the iteration: divergence verdicts, breaker state advance."""
        report = self.detector.observe(self._iteration, loss, grad_norm)
        self.reports.append(report)
        for verdict in report.verdicts:
            self._emit(verdict, dict(report.detail))
        before = self.breaker.state
        self.breaker.end_iteration(self._iteration, clean=not self._step_dirty)
        if self.breaker.state != before:
            m = get_metrics()
            if m.enabled:
                m.counter(
                    "guard.breaker_transitions",
                    frm=before,
                    to=self.breaker.state,
                ).inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.add_span(
                    f"breaker:{before}->{self.breaker.state}",
                    "guard_event",
                    0.0,
                    start=self._now(),
                    track=SIM_TRACK,
                    iteration=self._iteration,
                )
        return report

    # -- reporting -------------------------------------------------------------

    @property
    def timeline(self):
        return self.policy.timeline

    def report(self) -> dict:
        """JSON-friendly summary of everything the guard saw and did."""
        out = {
            "verdicts": dict(self.verdict_counts),
            "remediations": [a.to_dict() for a in self.timeline],
            "breaker": {
                "state": self.breaker.state,
                "trips": self.breaker.trips,
                "transitions": [list(tr) for tr in self.breaker.transitions],
            },
        }
        if self.watchdog is not None:
            out["watchdog"] = {
                "retries": self.watchdog.retries,
                "timeouts": self.watchdog.timeouts,
                "events": list(self.watchdog.events),
            }
        return out


def as_guard(guard: "GuardConfig | Guard | None") -> Guard | None:
    """Normalise a trainer's ``guard=`` argument to a Guard instance."""
    if guard is None:
        return None
    if isinstance(guard, GuardConfig):
        return guard.build()
    return guard
