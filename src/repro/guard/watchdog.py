"""Collective watchdog: deadline tracking on in-flight collectives.

Real collective libraries ship a watchdog thread (NCCL's
``TORCH_NCCL_HEARTBEAT_TIMEOUT_SEC``, Gloo's timeout) because a rank
that stalls inside an allreduce otherwise hangs the whole job silently.
The simulator's analogue attaches to :class:`~repro.runtime.engine.
StreamRuntime`: at wait time, after the fault controller has drawn the
straggler/jitter extras for a collective, the watchdog compares the
stretched completion against a deadline on the *simulated* clock.

On a deadline breach it retries the collective through the existing
fault-composition path — charging a capped exponential backoff to every
rank's clock, then re-drawing the extras (a re-issued collective meets
the fault environment afresh: deterministic stragglers stall it again,
transient jitter usually clears).  When retries are exhausted it raises
:class:`WatchdogTimeoutError` carrying the runtime's per-rank pending-op
report, turning a silent stall into the diagnostic a real watchdog
dumps before aborting the job.
"""

from __future__ import annotations

from repro.runtime.errors import RuntimeSchedulerError
from repro.telemetry import SIM_TRACK, get_metrics, get_tracer

__all__ = ["CollectiveWatchdog", "WatchdogTimeoutError"]


class WatchdogTimeoutError(RuntimeSchedulerError):
    """A collective exceeded its deadline after all watchdog retries.

    ``report`` holds the per-rank pending-op dump captured at abort
    time; it is also embedded in the message.
    """

    def __init__(self, message: str, report: str = ""):
        super().__init__(f"{message}\n{report}" if report else message)
        self.report = report


class CollectiveWatchdog:
    """Deadline + retry policy for :class:`StreamRuntime` collectives.

    Installed by assigning to ``runtime.watchdog``; the runtime calls
    :meth:`review` once per waited handle that drew fault extras.  With
    no extras (the healthy path) the runtime never calls in, so an armed
    watchdog on a fault-free run is bit-identical to no watchdog.
    """

    def __init__(
        self,
        *,
        deadline_seconds: float,
        max_retries: int = 2,
        backoff_base: float = 1e-4,
        backoff_factor: float = 2.0,
        backoff_cap: float = 0.05,
    ):
        if deadline_seconds <= 0:
            raise ValueError(f"deadline_seconds must be > 0, got {deadline_seconds}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.deadline_seconds = deadline_seconds
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap
        self.retries = 0
        self.timeouts = 0
        #: Chronological {kind, op, seq, ...} records for reporting.
        self.events: list[dict] = []

    def _record(self, kind: str, runtime, handle, **detail) -> None:
        event = {"kind": kind, "op": handle.op, "seq": handle.seq, **detail}
        self.events.append(event)
        get_metrics().counter(f"guard.watchdog_{kind}", op=handle.op).inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_span(
                f"watchdog_{kind}",
                "guard_event",
                0.0,
                start=runtime.cluster.time,
                track=SIM_TRACK,
                **detail,
                op=handle.op,
            )

    def review(self, runtime, handle, extras: dict[int, float]) -> dict[int, float]:
        """Judge a drawn fault-extras map against the deadline.

        Returns the extras to charge (possibly re-drawn after retries);
        raises :class:`WatchdogTimeoutError` when the collective cannot
        complete within the deadline after ``max_retries`` re-issues.
        """
        cluster = runtime.cluster
        stall = max(extras.values(), default=0.0)
        if handle.seconds + stall <= self.deadline_seconds:
            return extras
        rank_ids = [r.rank for r in cluster.ranks]
        for attempt in range(self.max_retries):
            backoff = min(
                self.backoff_base * self.backoff_factor**attempt, self.backoff_cap
            )
            self.retries += 1
            self._record(
                "retry", runtime, handle, attempt=attempt + 1, backoff_seconds=backoff
            )
            cluster.advance_all(backoff, "watchdog_backoff")
            # Re-issue through the same fault-composition path: the retry
            # meets the fault environment afresh.
            extras = cluster.faults.collective_extras(
                handle.op, handle.seconds, rank_ids
            )
            stall = max(extras.values(), default=0.0)
            if handle.seconds + stall <= self.deadline_seconds:
                return extras
        self.timeouts += 1
        self._record("timeout", runtime, handle, stall_seconds=stall)
        worst = max(extras, key=lambda rank: extras[rank]) if extras else -1
        raise WatchdogTimeoutError(
            f"collective {handle.describe()} exceeded watchdog deadline "
            f"{self.deadline_seconds * 1e6:.1f}us after {self.max_retries} "
            f"retries (worst stall {stall * 1e6:.1f}us on rank {worst}); "
            "per-rank pending operations:",
            runtime.pending_report(),
        )
