"""Training-health detector: rolling-window loss/grad-norm verdicts.

The detector watches the two scalars every training loop already has —
per-iteration loss and global gradient norm — and turns them into
discrete verdicts the policy engine can act on:

* ``loss_nan`` — the loss itself went non-finite (the run is actively
  corrupting state; every iteration applied from here is wasted);
* ``loss_spike`` — loss jumped far above its recent median, the classic
  signature of a poisoned update or an error bound that became unsafe
  as training tightened (the paper's Alg. 1 rationale);
* ``grad_spike`` — gradient norm exploded relative to its window;
* ``plateau`` — no meaningful improvement across the window (reported
  for observability; the default policy does not remediate it).

Pure observation: ``observe`` never mutates training state and consumes
no randomness, so an always-healthy guarded run is bit-identical to an
unguarded one.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

__all__ = ["HealthReport", "DivergenceDetector"]


@dataclass
class HealthReport:
    """Per-iteration health verdicts for one training step."""

    iteration: int
    loss: float
    grad_norm: float
    verdicts: list[str] = field(default_factory=list)
    detail: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.verdicts


def _median(values: list[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


class DivergenceDetector:
    """Rolling windows over loss and gradient norm with spike verdicts."""

    def __init__(
        self,
        *,
        window: int = 8,
        warmup: int = 3,
        spike_factor: float = 3.0,
        grad_spike_factor: float = 10.0,
        plateau_window: int = 0,
        plateau_tol: float = 1e-3,
    ):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if spike_factor <= 1.0 or grad_spike_factor <= 1.0:
            raise ValueError("spike factors must be > 1")
        self.window = window
        self.warmup = warmup
        self.spike_factor = spike_factor
        self.grad_spike_factor = grad_spike_factor
        self.plateau_window = plateau_window
        self.plateau_tol = plateau_tol
        self._losses: deque[float] = deque(maxlen=window)
        self._grads: deque[float] = deque(maxlen=window)
        self._all_losses: list[float] = []

    def observe(self, iteration: int, loss: float, grad_norm: float) -> HealthReport:
        """Fold one step's scalars in; return the verdicts they trigger.

        Non-finite observations are *not* folded into the windows — a
        single NaN would otherwise poison the median and mute every
        later spike verdict.
        """
        report = HealthReport(int(iteration), float(loss), float(grad_norm))
        if not math.isfinite(report.loss):
            report.verdicts.append("loss_nan")
        if not math.isfinite(report.grad_norm):
            report.verdicts.append("grad_spike")
            report.detail["grad_norm"] = report.grad_norm
        if report.verdicts:
            return report

        if len(self._losses) >= self.warmup:
            med = _median(list(self._losses))
            if med > 0 and report.loss > self.spike_factor * med:
                report.verdicts.append("loss_spike")
                report.detail["loss_over_median"] = report.loss / med
            gmed = _median(list(self._grads))
            if gmed > 0 and report.grad_norm > self.grad_spike_factor * gmed:
                report.verdicts.append("grad_spike")
                report.detail["grad_over_median"] = report.grad_norm / gmed
        if (
            not report.verdicts
            and self.plateau_window
            and len(self._all_losses) >= 2 * self.plateau_window
        ):
            earlier = min(
                self._all_losses[-2 * self.plateau_window : -self.plateau_window]
            )
            recent = min(self._all_losses[-self.plateau_window :])
            if earlier > 0 and recent >= earlier * (1.0 - self.plateau_tol):
                report.verdicts.append("plateau")
                report.detail["improvement"] = 1.0 - recent / earlier

        # Spiky steps stay out of the baseline windows too: a divergence
        # burst must not ratchet the median up and normalise itself.
        if "loss_spike" not in report.verdicts:
            self._losses.append(report.loss)
        if "grad_spike" not in report.verdicts:
            self._grads.append(report.grad_norm)
        self._all_losses.append(report.loss)
        return report
