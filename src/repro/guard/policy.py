"""Self-healing policy engine: verdicts -> ordered remediations.

The policy layer is declarative: a rule table maps each verdict kind
(emitted by the sentinels and the divergence detector) to an *ordered*
list of remediations, mildest first.  When a verdict fires, the engine
walks the list and applies the first remediation that is applicable and
not cooling down; a verdict that keeps recurring escalates down its
list (tighten bounds, then trip the breaker, then roll back).

Remediations, in escalation order of severity:

* ``tighten_bounds`` — drop the adaptive compressor to its conservative
  near-lossless bounds for a few iterations
  (:meth:`~repro.core.adaptive.AdaptiveCompso.degrade`);
* ``reset_ef`` — clear an error-feedback wrapper's residual state;
* ``trip_breaker`` — open the compression :class:`CircuitBreaker`:
  payloads travel lossless/uncompressed until a cool-down passes, then a
  half-open probe re-enables compression after consecutive clean
  iterations;
* ``escalate_damping`` — multiply K-FAC damping (capped), stabilising
  the preconditioner against noisy factors;
* ``rollback`` — restore the latest checkpoint, the last resort once
  parameters are already poisoned.  When the trainer owns a
  :class:`repro.store.CheckpointStore` the rollback walks the store's
  generation lineage (newest *verified* generation wins; corrupt ones
  are quarantined), otherwise it restores ``_last_checkpoint`` via
  ``util.checkpoint``.

Every applied action is appended to the engine's ``timeline``, counted
as ``guard.remediations`` on the metrics registry, and recorded as a
zero-duration ``guard_event`` span on the simulated timeline so the
remediation history is reconcilable in the Chrome-trace export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "CircuitBreaker",
    "GuardContext",
    "GuardAction",
    "PolicyEngine",
    "DEFAULT_RULES",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Compression circuit breaker: closed -> open -> half-open -> closed.

    * **closed** — compression enabled (normal operation);
    * **open** — compression bypassed (lossless payloads) for
      ``cooldown`` iterations after a trip;
    * **half-open** — compression re-enabled on probation; ``reclose_after``
      consecutive clean iterations close the breaker, any dirty
      iteration re-opens it immediately.

    State advances at iteration boundaries via :meth:`end_iteration`;
    every transition is recorded in :attr:`transitions`.
    """

    def __init__(self, *, cooldown: int = 3, reclose_after: int = 2):
        if cooldown < 1 or reclose_after < 1:
            raise ValueError("cooldown and reclose_after must be >= 1")
        self.cooldown = cooldown
        self.reclose_after = reclose_after
        self.state = BREAKER_CLOSED
        self.trips = 0
        #: (iteration, from_state, to_state) history.
        self.transitions: list[tuple[int, str, str]] = []
        self._open_remaining = 0
        self._good_streak = 0

    @property
    def allows_compression(self) -> bool:
        return self.state != BREAKER_OPEN

    def _move(self, iteration: int, to_state: str) -> None:
        if to_state != self.state:
            self.transitions.append((int(iteration), self.state, to_state))
            self.state = to_state

    def trip(self, iteration: int) -> bool:
        """Open the breaker; returns False if it was already open."""
        if self.state == BREAKER_OPEN:
            self._open_remaining = self.cooldown  # re-arm the cool-down
            return False
        self.trips += 1
        self._open_remaining = self.cooldown
        self._good_streak = 0
        self._move(iteration, BREAKER_OPEN)
        return True

    def end_iteration(self, iteration: int, *, clean: bool) -> None:
        """Advance breaker state at an iteration boundary."""
        if self.state == BREAKER_OPEN:
            self._open_remaining -= 1
            if self._open_remaining <= 0:
                self._good_streak = 0
                self._move(iteration, BREAKER_HALF_OPEN)
        elif self.state == BREAKER_HALF_OPEN:
            if not clean:
                self.trips += 1
                self._open_remaining = self.cooldown
                self._good_streak = 0
                self._move(iteration, BREAKER_OPEN)
            else:
                self._good_streak += 1
                if self._good_streak >= self.reclose_after:
                    self._move(iteration, BREAKER_CLOSED)


@dataclass
class GuardContext:
    """Handles the remediations act on; unavailable ones are skipped."""

    compressor: object | None = None
    kfac: object | None = None
    trainer: object | None = None
    cluster: object | None = None


@dataclass
class GuardAction:
    """One applied remediation in the timeline."""

    iteration: int
    verdict: str
    action: str
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "verdict": self.verdict,
            "action": self.action,
            "detail": dict(self.detail),
        }


#: Verdict kind -> ordered remediations (mildest first).  ``plateau`` is
#: observe-only by default: it is a tuning signal, not a fault.
DEFAULT_RULES: dict[str, tuple[str, ...]] = {
    "nonfinite_payload": ("tighten_bounds", "trip_breaker"),
    "decode_failure": ("trip_breaker", "rollback"),
    "contract_violation": ("tighten_bounds", "trip_breaker"),
    "ef_residual": ("reset_ef", "tighten_bounds"),
    "eigh_retry": ("escalate_damping",),
    "loss_spike": ("tighten_bounds", "escalate_damping", "rollback"),
    "grad_spike": ("tighten_bounds", "trip_breaker", "rollback"),
    "loss_nan": ("rollback", "trip_breaker"),
    "watchdog_timeout": ("trip_breaker",),
    "plateau": (),
}


class PolicyEngine:
    """Applies the rule table; owns the breaker and the action timeline."""

    def __init__(
        self,
        breaker: CircuitBreaker,
        *,
        rules: dict[str, tuple[str, ...]] | None = None,
        degrade_iterations: int = 3,
        damping_factor: float = 10.0,
        damping_cap_factor: float = 1e4,
        action_cooldown: int = 2,
    ):
        self.breaker = breaker
        self.rules = dict(DEFAULT_RULES if rules is None else rules)
        self.degrade_iterations = degrade_iterations
        self.damping_factor = damping_factor
        self.damping_cap_factor = damping_cap_factor
        self.action_cooldown = action_cooldown
        self.timeline: list[GuardAction] = []
        #: (verdict, action) -> iteration it last fired, for cool-downs.
        self._last_fired: dict[tuple[str, str], int] = {}
        self._initial_damping: float | None = None

    # -- remediation implementations ----------------------------------------

    def _apply_tighten_bounds(self, ctx: GuardContext) -> dict | None:
        degrade = getattr(ctx.compressor, "degrade", None)
        if degrade is None:
            return None
        bounds = degrade(self.degrade_iterations)
        detail = {"iterations": self.degrade_iterations}
        if bounds is not None and hasattr(bounds, "eb_q"):
            detail.update(eb_f=bounds.eb_f, eb_q=bounds.eb_q)
        return detail

    def _apply_reset_ef(self, ctx: GuardContext) -> dict | None:
        reset = getattr(ctx.compressor, "reset", None)
        if reset is None:
            return None
        reset()
        return {}

    def _apply_trip_breaker(self, ctx: GuardContext, iteration: int) -> dict | None:
        if ctx.compressor is None:
            return None
        if not self.breaker.trip(iteration):
            return None
        return {"cooldown": self.breaker.cooldown}

    def _apply_escalate_damping(self, ctx: GuardContext) -> dict | None:
        kfac = ctx.kfac
        if kfac is None or not hasattr(kfac, "damping"):
            return None
        if self._initial_damping is None:
            self._initial_damping = float(kfac.damping)
        cap = self._initial_damping * self.damping_cap_factor
        if kfac.damping >= cap:
            return None
        before = float(kfac.damping)
        kfac.damping = min(before * self.damping_factor, cap)
        return {"from": before, "to": float(kfac.damping)}

    def _apply_rollback(self, ctx: GuardContext) -> dict | None:
        trainer = ctx.trainer
        store = getattr(trainer, "checkpoint_store", None)
        if store is not None and hasattr(trainer, "restore_latest") and store.latest():
            # Walk the store's generation lineage: a corrupt newest
            # checkpoint falls back to the newest *verified* one instead
            # of failing the remediation (load_latest quarantines the
            # damage and records store events).
            gen = trainer.restore_latest()
            if gen is None:
                return None
            return {"checkpoint": str(store.root / gen.file), "generation": gen.gen}
        checkpoint = getattr(trainer, "_last_checkpoint", None)
        if checkpoint is None or not hasattr(trainer, "restore_state"):
            return None
        trainer.restore_state(checkpoint)
        return {"checkpoint": str(checkpoint)}

    # -- the dispatch loop ----------------------------------------------------

    def handle(
        self, verdict: str, detail: dict, ctx: GuardContext, iteration: int
    ) -> GuardAction | None:
        """Walk ``verdict``'s remediation list; apply the first that takes.

        A remediation is skipped when its handle is unavailable in
        ``ctx`` (no compressor to degrade, no checkpoint to roll back
        to) or when it already fired for this verdict within
        ``action_cooldown`` iterations — recurrence then escalates to
        the next entry instead of re-spamming the same fix.
        """
        for action in self.rules.get(verdict, ()):
            last = self._last_fired.get((verdict, action))
            if last is not None and iteration - last < self.action_cooldown:
                continue
            if action == "tighten_bounds":
                applied = self._apply_tighten_bounds(ctx)
            elif action == "reset_ef":
                applied = self._apply_reset_ef(ctx)
            elif action == "trip_breaker":
                applied = self._apply_trip_breaker(ctx, iteration)
            elif action == "escalate_damping":
                applied = self._apply_escalate_damping(ctx)
            elif action == "rollback":
                applied = self._apply_rollback(ctx)
            else:
                raise ValueError(f"unknown remediation {action!r} for verdict {verdict!r}")
            if applied is None:
                continue
            self._last_fired[(verdict, action)] = iteration
            record = GuardAction(int(iteration), verdict, action, {**detail, **applied})
            self.timeline.append(record)
            return record
        return None
