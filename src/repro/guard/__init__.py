"""repro.guard — numerical-health sentinels and a self-healing policy engine.

Training with lossy compression and second-order preconditioning has
three characteristic ways to die quietly: a corrupted payload poisons
the parameters, an error bound that was safe early in training becomes
unsafe as gradients shrink, and an ill-conditioned Kronecker factor
blows up the eigendecomposition.  The guard subsystem turns each of
those into a detected verdict with an ordered remediation path:

* :mod:`repro.guard.sentinels` — cheap invariant checks (NaN/Inf scans,
  error-bound contract verification, factor health, guarded eigh);
* :mod:`repro.guard.health` — rolling-window loss/grad-norm divergence
  detection;
* :mod:`repro.guard.policy` — the compression circuit breaker and the
  declarative verdict→remediation rule engine;
* :mod:`repro.guard.watchdog` — simulated-clock deadlines and retries
  for in-flight collectives on a :class:`~repro.runtime.StreamRuntime`;
* :mod:`repro.guard.guard` — the :class:`Guard` facade trainers accept
  via ``guard=GuardConfig(...)``;
* :mod:`repro.guard.scenario` — the seeded chaos-vs-guard comparison
  behind ``repro guard`` and the guard benchmark.

A disabled guard (``guard=None``, the default) is bit-identical to the
pre-guard trainer; an enabled guard on a healthy run is too, because
every sentinel is pure observation until a verdict fires.
"""

from repro.guard.guard import Guard, GuardConfig, as_guard
from repro.guard.health import DivergenceDetector, HealthReport
from repro.guard.policy import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEFAULT_RULES,
    CircuitBreaker,
    GuardAction,
    GuardContext,
    PolicyEngine,
)
from repro.guard.sentinels import (
    ScanResult,
    active_bounds,
    contract_error,
    factor_health,
    safe_eigen,
    scan_tensor,
)
from repro.guard.watchdog import CollectiveWatchdog, WatchdogTimeoutError

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "CollectiveWatchdog",
    "DEFAULT_RULES",
    "DivergenceDetector",
    "Guard",
    "GuardAction",
    "GuardConfig",
    "GuardContext",
    "HealthReport",
    "PolicyEngine",
    "ScanResult",
    "WatchdogTimeoutError",
    "active_bounds",
    "as_guard",
    "contract_error",
    "factor_health",
    "safe_eigen",
    "scan_tensor",
]
