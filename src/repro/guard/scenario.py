"""Guard demonstration scenario: chaos run with and without the guard.

Trains the same distributed K-FAC + COMPSO workload three times with
identical seeds:

* **clean** — no faults, no guard: the reference trajectory;
* **guarded** — under a seeded fault plan (compressed-payload bit flips
  plus a straggler stall) with ``guard=GuardConfig(...)``;
* **unguarded** — same fault plan, no guard.

Both faulted runs decline the checksummed
:class:`~repro.faults.recovery.ReliableChannel`
(``reliable_channel=False``), modelling the common deployment where the
collective library does not verify payloads.  Corruption therefore
reaches ``decompress`` directly: the unguarded run either crashes on a
mangled blob or silently applies garbage and diverges, while the
guarded run detects the damage (decode failures, contract violations,
scrubbed payloads, loss spikes), trips the compression circuit breaker,
rides out the fault window lossless, and re-encompresses once the
half-open probe sees consecutive clean iterations.

The result object carries the full remediation timeline and breaker
transition history — the report surfaced by ``repro guard`` and
asserted on by the guard benchmark and the CI smoke job.

Imported lazily (CLI / bench), never from ``repro.guard`` hot paths.
"""

from __future__ import annotations

import math
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.faults.plan import FaultPlan
from repro.guard.guard import GuardConfig

__all__ = ["GuardRunResult", "make_guard_plan", "run_guard_scenario"]


def make_guard_plan(
    world_size: int, iterations: int, *, seed: int = 0, corruption: float = 0.6
) -> FaultPlan:
    """Payload bit-flips over the middle third plus one straggler stall."""
    third = max(iterations // 3, 1)
    plan = FaultPlan(seed=seed)
    plan.add_corruption(
        corruption, start=third, stop=2 * third, n_bits=4, ops=("broadcast",)
    )
    plan.add_straggler(1, start=third, stop=2 * third, slowdown=3.0)
    plan.validate(world_size)
    return plan


@dataclass
class GuardRunResult:
    """Guarded vs unguarded outcome under the same seeded fault plan."""

    world_size: int
    iterations: int
    clean_loss: float
    guarded_loss: float
    unguarded_loss: float
    unguarded_raised: bool
    unguarded_error: str
    guarded_completed: bool
    clean_sim_time: float
    guarded_sim_time: float
    verdicts: dict[str, int] = field(default_factory=dict)
    timeline: list[dict] = field(default_factory=list)
    breaker_transitions: list[list] = field(default_factory=list)
    breaker_trips: int = 0
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def breaker_recovered(self) -> bool:
        """Breaker tripped and later re-closed (half-open probe passed)."""
        return self.breaker_trips > 0 and any(
            frm == "half_open" and to == "closed"
            for _, frm, to in self.breaker_transitions
        )

    def to_dict(self) -> dict:
        return {
            "world_size": self.world_size,
            "iterations": self.iterations,
            "clean_loss": self.clean_loss,
            "guarded_loss": self.guarded_loss,
            "unguarded_loss": self.unguarded_loss,
            "unguarded_raised": self.unguarded_raised,
            "unguarded_error": self.unguarded_error,
            "guarded_completed": self.guarded_completed,
            "clean_sim_time": self.clean_sim_time,
            "guarded_sim_time": self.guarded_sim_time,
            "verdicts": dict(self.verdicts),
            "timeline": list(self.timeline),
            "breaker_transitions": [list(t) for t in self.breaker_transitions],
            "breaker_trips": self.breaker_trips,
            "breaker_recovered": self.breaker_recovered,
            "counters": dict(self.counters),
        }

    def summary(self) -> str:
        if self.unguarded_raised:
            unguarded = f"raised ({self.unguarded_error})"
        elif not math.isfinite(self.unguarded_loss):
            unguarded = f"diverged (loss={self.unguarded_loss})"
        else:
            unguarded = f"loss {self.unguarded_loss:.4f}"
        lines = [
            f"world size         : {self.world_size}",
            f"iterations         : {self.iterations} "
            f"(guarded completed: {self.guarded_completed})",
            f"clean loss         : {self.clean_loss:.4f}",
            f"guarded loss       : {self.guarded_loss:.4f}",
            f"unguarded          : {unguarded}",
            f"breaker            : {self.breaker_trips} trip(s), "
            f"recovered: {self.breaker_recovered}",
        ]
        if self.verdicts:
            lines.append("verdicts:")
            lines.extend(f"  {k:24s} {v}" for k, v in sorted(self.verdicts.items()))
        if self.timeline:
            lines.append("remediation timeline:")
            for entry in self.timeline:
                lines.append(
                    f"  iter {entry['iteration']:>3}  "
                    f"{entry['verdict']:<20} -> {entry['action']}"
                )
        if self.breaker_transitions:
            lines.append("breaker transitions:")
            lines.extend(
                f"  iter {it:>3}  {frm} -> {to}"
                for it, frm, to in self.breaker_transitions
            )
        return "\n".join(lines)


def _run_once(plan, guard, *, nodes, gpus_per_node, iterations, batch_size, seed, ckpt_dir):
    from repro import telemetry
    from repro.core import AdaptiveCompso, StepLrSchedule
    from repro.data import make_image_data
    from repro.distributed import SimCluster
    from repro.kfac_dist import DistributedKfacTrainer
    from repro.models import resnet_proxy
    from repro.train import ClassificationTask

    data = make_image_data(300, n_classes=4, size=8, noise=1.6, seed=seed)
    task = ClassificationTask(data)
    cluster = SimCluster(nodes, gpus_per_node, seed=seed, fault_plan=plan)
    model = resnet_proxy(n_classes=4, channels=8, rng=seed + 3)
    compressor = AdaptiveCompso(StepLrSchedule(max(iterations // 3, 1)), seed=seed)
    trainer = DistributedKfacTrainer(
        model,
        task,
        cluster,
        lr=0.05,
        inv_update_freq=5,
        compressor=compressor,
        guard=guard,
        reliable_channel=False,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=3 if ckpt_dir is not None else 0,
    )
    with telemetry.session() as sess:
        trainer.train(iterations=iterations, batch_size=batch_size, seed=seed)
        snapshot = sess.metrics.snapshot()
    x, y = task.batch(np.arange(task.n))
    full_loss, _ = task.loss_and_grad(trainer.model(x), y)
    counters = {}
    for m in snapshot:
        if m["type"] == "counter" and m["name"].startswith(("guard.", "faults.")):
            labels = ",".join(f"{k}={v}" for k, v in sorted(m["labels"].items()))
            counters[f"{m['name']}[{labels}]" if labels else m["name"]] = m["value"]
    return {
        "loss": float(full_loss),
        "sim_time": cluster.time,
        "steps_done": len(trainer.history.losses),
        "counters": counters,
        "trainer": trainer,
    }


def run_guard_scenario(
    *,
    nodes: int = 2,
    gpus_per_node: int = 2,
    iterations: int = 18,
    batch_size: int = 32,
    seed: int = 0,
    corruption: float = 0.6,
) -> GuardRunResult:
    """Run the chaos plan guarded, unguarded, and a clean reference."""
    world = nodes * gpus_per_node
    kwargs = dict(
        nodes=nodes,
        gpus_per_node=gpus_per_node,
        iterations=iterations,
        batch_size=batch_size,
        seed=seed,
    )
    clean = _run_once(None, None, ckpt_dir=None, **kwargs)

    guard = GuardConfig(breaker_cooldown=3, breaker_reclose_after=2)
    with tempfile.TemporaryDirectory(prefix="guard-scenario-") as tmp:
        plan = make_guard_plan(world, iterations, seed=seed, corruption=corruption)
        guarded = _run_once(plan, guard, ckpt_dir=Path(tmp), **kwargs)

    plan = make_guard_plan(world, iterations, seed=seed, corruption=corruption)
    unguarded_raised = False
    unguarded_error = ""
    try:
        unguarded = _run_once(plan, None, ckpt_dir=None, **kwargs)
        unguarded_loss = unguarded["loss"]
    except Exception as exc:  # noqa: BLE001 — the crash IS the measurement
        unguarded_raised = True
        unguarded_error = f"{type(exc).__name__}: {exc}"
        unguarded_loss = float("nan")

    report = guarded["trainer"].guard.report()
    return GuardRunResult(
        world_size=world,
        iterations=iterations,
        clean_loss=clean["loss"],
        guarded_loss=guarded["loss"],
        unguarded_loss=unguarded_loss,
        unguarded_raised=unguarded_raised,
        unguarded_error=unguarded_error,
        guarded_completed=guarded["steps_done"] == iterations,
        clean_sim_time=clean["sim_time"],
        guarded_sim_time=guarded["sim_time"],
        verdicts=report["verdicts"],
        timeline=report["remediations"],
        breaker_transitions=report["breaker"]["transitions"],
        breaker_trips=report["breaker"]["trips"],
        counters=guarded["counters"],
    )
