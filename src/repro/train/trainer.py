"""Single-worker and data-parallel SGD training loops.

The distributed K-FAC (KAISA) trainer lives in :mod:`repro.kfac_dist`;
here are the task-agnostic single-worker loop and the first-order
data-parallel baseline (SGD/LAMB + optional gradient compression, i.e.
the paper's "SGD+CocktailSGD" configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.base import GradientCompressor
from repro.data.loaders import batch_indices, shard
from repro.distributed.cluster import SimCluster
from repro.distributed.plane import map_payloads
from repro.telemetry import get_metrics, get_tracer

__all__ = ["TrainHistory", "train_single", "DistributedSgdTrainer"]


@dataclass
class TrainHistory:
    """Per-iteration training record."""

    losses: list[float] = field(default_factory=list)
    lrs: list[float] = field(default_factory=list)
    metrics: list[tuple[int, object]] = field(default_factory=list)
    compression_ratios: list[float] = field(default_factory=list)

    def final_metric(self) -> object:
        return self.metrics[-1][1] if self.metrics else None

    def mean_cr(self) -> float:
        return float(np.mean(self.compression_ratios)) if self.compression_ratios else 1.0


def train_single(
    model,
    task,
    optimizer,
    *,
    iterations: int,
    batch_size: int,
    lr_schedule=None,
    eval_every: int = 0,
    seed: int = 0,
) -> TrainHistory:
    """Train on one worker; returns the loss/metric history."""
    history = TrainHistory()
    tracer = get_tracer()
    for t, idx in enumerate(batch_indices(task.n, batch_size, iterations=iterations, seed=seed)):
        if lr_schedule is not None:
            optimizer.lr = lr_schedule.lr_at(t)
        x, y = task.batch(idx)
        with tracer.span("step", "step", step=t):
            with tracer.span("forward", "forward"):
                out = model(x)
                loss, dl = task.loss_and_grad(out, y)
            optimizer.zero_grad()
            with tracer.span("backward", "backward"):
                model.backward(dl)
            with tracer.span("apply_update", "update"):
                optimizer.step()
        history.losses.append(loss)
        history.lrs.append(optimizer.lr)
        if eval_every and (t + 1) % eval_every == 0:
            history.metrics.append((t + 1, task.evaluate(model)))
    return history


class DistributedSgdTrainer:
    """Data-parallel first-order training on the simulated cluster.

    One shared model evaluates every rank's shard (identical math to
    per-rank replicas); per-rank gradients are optionally compressed
    before the (simulated) allreduce, reproducing the SGD+CocktailSGD
    baseline.
    """

    def __init__(
        self,
        model,
        task,
        optimizer,
        cluster: SimCluster,
        *,
        lr_schedule=None,
        compressor: GradientCompressor | None = None,
        ef_residual_guard: float | None = None,
        runtime=None,
        guard=None,
        obsv=None,
        autotune=None,
        xray=None,
    ):
        self.model = model
        self.task = task
        self.optimizer = optimizer
        self.cluster = cluster
        self.lr_schedule = lr_schedule
        self.compressor = compressor
        #: Optional :class:`repro.runtime.StreamRuntime`.  When set, the
        #: gradient allreduce is issued in DDP-style byte buckets during
        #: (modelled) backward compute; with ``runtime.overlap`` the
        #: buckets travel on comm streams and only their exposed tails
        #: cost simulated time.  Numerics are bit-identical either way.
        self.runtime = runtime
        #: When the compressor is an ErrorFeedback wrapper and its residual
        #: L2 norm climbs past this threshold, the trainer resets the EF
        #: state and degrades the inner compressor (graceful degradation
        #: against corruption-driven residual explosion).
        self.ef_residual_guard = ef_residual_guard
        self.t = 0
        self.history = TrainHistory()
        #: Optional :class:`repro.guard.Guard` (or GuardConfig): payload
        #: sentinels, divergence detection, and the compression circuit
        #: breaker.  ``None`` (the default) is bit-identical to before.
        from repro.guard.guard import as_guard

        self.guard = as_guard(guard)
        if self.guard is not None:
            self.guard.bind(compressor=compressor, trainer=self, cluster=cluster)
            self.guard.attach_runtime(runtime)
        #: Optional :class:`repro.obsv.LedgerConfig` (or LedgerWriter):
        #: one canonical run artifact folding metrics, span digests,
        #: overlap accounting, and guard events.  ``None`` (the default)
        #: is bit-identical to before — the writer never consumes RNG.
        #: Optional :class:`repro.autotune.AutotuneConfig` (or controller):
        #: closed-loop cost-model retuning of the compression stack.
        #: ``None`` (the default) is bit-identical to before.
        from repro.autotune.controller import as_autotune

        self.autotune = as_autotune(autotune)
        if self.autotune is not None:
            self.autotune.bind(
                trainer=self,
                cluster=cluster,
                guard=self.guard,
                compressor=compressor,
                category="grad_allreduce",
            )
        #: Optional :class:`repro.xray.XrayConfig` (or analyzer, or
        #: ``True``): per-step critical-path attribution over the span
        #: stream.  ``None`` (the default) is bit-identical to before.
        from repro.xray import as_xray

        self.xray = as_xray(xray)
        if self.xray is not None:
            self.xray.bind(trainer=self, cluster=cluster, runtime=runtime)
        from repro.obsv.ledger import as_ledger

        self.obsv = as_ledger(obsv)
        if self.obsv is not None:
            self.obsv.bind(
                kind="sgd",
                trainer=self,
                cluster=cluster,
                runtime=runtime,
                guard=self.guard,
                compressor=compressor,
                autotune=self.autotune,
                xray=self.xray,
            )

    def _flat_grad(self) -> np.ndarray:
        return np.concatenate([p.grad.ravel() for p in self.model.parameters()])

    def _set_flat_grad(self, flat: np.ndarray) -> None:
        pos = 0
        for p in self.model.parameters():
            p.grad = flat[pos : pos + p.size].reshape(p.shape).astype(np.float32)
            pos += p.size

    def step(self, global_idx: np.ndarray) -> float:
        tracer = get_tracer()
        with tracer.span("step", "step", step=self.t):
            return self._step(global_idx, tracer)

    def _sanitize(self, flat: np.ndarray) -> np.ndarray:
        """Zero non-finite entries left by data-plane faults; no-op (and
        no scan) on fault-free runs."""
        if self.cluster.faults is None or np.isfinite(flat).all():
            return flat
        m = get_metrics()
        if m.enabled:
            m.counter("faults.recovered", kind="sanitized_gradient").inc()
        return np.nan_to_num(flat, nan=0.0, posinf=0.0, neginf=0.0)

    def _check_ef_residual(self) -> None:
        """Reset error-feedback state if its residual norm explodes."""
        if self.ef_residual_guard is None:
            return
        norm = getattr(self.compressor, "residual_norm", None)
        if norm is None or norm() <= self.ef_residual_guard:
            return
        self.compressor.reset()
        m = get_metrics()
        if m.enabled:
            m.counter("faults.recovered", kind="ef_reset").inc()
        inner = getattr(self.compressor, "inner", None)
        if inner is not None and hasattr(inner, "degrade"):
            inner.degrade()
            if m.enabled:
                m.counter("faults.recovered", kind="degrade").inc()

    def _local_grads(
        self, shards: list[np.ndarray], tracer
    ) -> tuple[list[float], list[np.ndarray], float, float]:
        """Per-shard forward/backward; returns (losses, per-rank grads,
        wire bytes, dense bytes)."""
        per_rank_grads: list[np.ndarray] = []
        losses: list[float] = []
        wire = 0.0
        dense = 0.0
        guard = self.guard
        compressor = self.compressor if guard is None else guard.active(self.compressor)
        if self.autotune is not None:
            compressor = self.autotune.active_compressor(compressor)
        for r, idx in enumerate(shards):
            self.model.zero_grad()
            x, y = self.task.batch(idx)
            with tracer.span("forward", "forward", shard=r):
                out = self.model(x)
                loss, dl = self.task.loss_and_grad(out, y)
            with tracer.span("backward", "backward", shard=r):
                self.model.backward(dl)
            g = self._flat_grad()
            if compressor is not None:
                ct = compressor.compress(g)
                self.history.compression_ratios.append(g.nbytes / ct.nbytes)
                wire += ct.nbytes
                dense += g.nbytes
                decoded = compressor.decompress(ct).ravel()
                if guard is not None and r == 0:
                    # One shard per step is enough to catch a broken
                    # channel; the contract never consumes randomness.
                    guard.check_contract(g, decoded, compressor, layer=r)
                g = decoded
            per_rank_grads.append(g)
            losses.append(loss)
        if self.cluster.is_timing:
            # Timing track: the single representative shard stands in for
            # every rank, so wire/dense accounting scales back to world
            # totals and the gradient is replicated per the payload mode.
            world = self.cluster.world_size
            return (
                losses,
                self.cluster.replicate(per_rank_grads[0]),
                wire * world,
                dense * world,
            )
        return losses, per_rank_grads, wire, dense

    def _trimmed_shards(self, global_idx: np.ndarray) -> list[np.ndarray]:
        world = self.cluster.world_size
        rem = len(global_idx) % world
        if self.cluster.faults is not None and rem and rem < len(global_idx):
            # Elastic continuation: trim the batch so it shards evenly
            # over the shrunken world (averaging rescales automatically).
            # A batch smaller than the world is all remainder — keep it so
            # the representative shard below stays non-empty.
            global_idx = global_idx[: len(global_idx) - rem]
        if self.cluster.is_timing:
            # Representative rank: run one shard of the per-rank size so
            # compute timing matches what every rank would do.
            return [global_idx[: max(1, len(global_idx) // world)]]
        return shard(global_idx, world)

    def _step(self, global_idx: np.ndarray, tracer) -> float:
        failures = self.cluster.begin_iteration(self.t)
        if failures:
            m = get_metrics()
            if m.enabled:
                m.counter("faults.recovered", kind="rank_failure").inc(len(failures))
        guard = self.guard
        if guard is not None:
            guard.begin_step(self.t)
        shards = self._trimmed_shards(global_idx)
        losses, per_rank_grads, wire, dense = self._local_grads(shards, tracer)
        if self.runtime is not None:
            reduced0 = self._bucketed_allreduce(per_rank_grads, len(shards[0]), tracer)
        else:
            with tracer.span("grad_allreduce", "comm"):
                reduced = self.cluster.allreduce(
                    per_rank_grads, average=True, category="grad_allreduce"
                )
            reduced0 = reduced[0]
        reduced0 = self._sanitize(reduced0)
        grad_norm = float("nan")
        if guard is not None:
            reduced0 = guard.scan(reduced0, what="grad_allreduce")
            grad_norm = float(np.linalg.norm(reduced0))
        self._set_flat_grad(reduced0)
        self._check_ef_residual()
        if guard is not None:
            guard.check_ef(self.compressor)
        if self.lr_schedule is not None:
            self.optimizer.lr = self.lr_schedule.lr_at(self.t)
        with tracer.span("apply_update", "update"):
            self.optimizer.step()
        mean_loss = float(np.mean(losses))
        self.history.losses.append(mean_loss)
        self.history.lrs.append(self.optimizer.lr)
        if self.autotune is not None:
            # Decide before the ledger folds the step (same ordering as
            # the K-FAC trainer); the whole gradient travels in one
            # logical message per rank on this path.
            self.autotune.end_step(
                step=self.t,
                wire_bytes=wire,
                dense_bytes=dense,
                n_messages=1,
                sample=reduced0 if self.autotune.wants_sample else None,
            )
        m = get_metrics()
        if m.enabled:
            m.gauge("train.loss").set(mean_loss)
            m.counter("train.steps").inc()
            m.record_step(self.t, sim_time=self.cluster.time)
        if self.xray is not None:
            self.xray.end_step(self.t)
        if self.obsv is not None:
            self.obsv.record_step(
                self.t,
                loss=mean_loss,
                lr=self.optimizer.lr,
                # 0.0 means the step travelled uncompressed (no compressor,
                # or circuit breaker open) — record no wire accounting.
                wire_bytes=wire or None,
                dense_bytes=dense or None,
            )
        self.t += 1
        if guard is not None:
            guard.end_step(loss=mean_loss, grad_norm=grad_norm)
        return mean_loss

    def _bucketed_allreduce(
        self, per_rank_grads: list[np.ndarray], samples_per_rank: int, tracer
    ) -> np.ndarray:
        """Issue the gradient allreduce in byte buckets during backward.

        Bucket ``b``'s collective goes on the wire while buckets
        ``b+1..`` are still (in modelled time) being produced by the
        backward pass — DDP's overlap pattern, scheduled for real by the
        runtime.  Per-bucket reduction math is element-wise identical to
        the single whole-tensor allreduce.
        """
        from repro.runtime.bucketing import split_bounds

        rt = self.runtime
        cm = rt.compute
        n_params = per_rank_grads[0].size
        if cm is not None:
            self.cluster.advance_all(
                cm.forward_seconds(n_params, samples_per_rank), "forward"
            )
        bounds = split_bounds(per_rank_grads[0], rt.bucket_bytes)
        bwd = cm.backward_seconds(n_params, samples_per_rank) if cm is not None else 0.0
        handles = []
        with tracer.span("grad_allreduce", "comm", n_buckets=len(bounds)):
            for lo, hi in bounds:
                if bwd:
                    self.cluster.advance_all(bwd / len(bounds), "backward")
                handles.append(
                    rt.iallreduce(
                        map_payloads(per_rank_grads, lambda g: g[lo:hi]),
                        average=True,
                        category="grad_allreduce",
                    )
                )
            reduced = np.concatenate([h.wait()[0] for h in handles])
        rt.assert_quiesced()
        return reduced

    def train(self, *, iterations: int, batch_size: int, eval_every: int = 0, seed: int = 0):
        if self.obsv is not None:
            self.obsv.update_manifest(seed=seed, iterations=iterations, batch_size=batch_size)
        for t, idx in enumerate(
            batch_indices(self.task.n, batch_size, iterations=iterations, seed=seed)
        ):
            self.step(idx)
            if eval_every and (t + 1) % eval_every == 0:
                self.history.metrics.append((t + 1, self.task.evaluate(self.model)))
        if self.obsv is not None:
            self.obsv.close(final_metric=self.history.final_metric())
        return self.history
