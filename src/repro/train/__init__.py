"""Training loops, task adapters and evaluation metrics."""

from repro.train.metrics import accuracy, predict_spans, span_em_f1
from repro.train.tasks import (
    ClassificationTask,
    DetectionTask,
    LmTask,
    MlmTask,
    SquadTask,
)
from repro.train.trainer import DistributedSgdTrainer, TrainHistory, train_single

__all__ = [
    "accuracy",
    "span_em_f1",
    "predict_spans",
    "ClassificationTask",
    "DetectionTask",
    "LmTask",
    "MlmTask",
    "SquadTask",
    "TrainHistory",
    "train_single",
    "DistributedSgdTrainer",
]
