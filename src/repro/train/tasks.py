"""Task adapters: model output + batch -> (loss, gradient) and eval metrics.

Each of the paper's four workloads maps to a task here; the trainers are
task-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import (
    DetectionDataset,
    ImageDataset,
    LmDataset,
    MlmBatch,
    SquadDataset,
)
from repro.nn.losses import smooth_l1_loss, softmax_cross_entropy
from repro.train.metrics import accuracy, predict_spans, span_em_f1

__all__ = ["ClassificationTask", "DetectionTask", "LmTask", "MlmTask", "SquadTask"]


@dataclass
class ClassificationTask:
    """ResNet-50 stand-in: image classification, metric = accuracy %."""

    data: ImageDataset
    metric_name: str = "accuracy"

    def batch(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.data.x[idx], self.data.y[idx]

    def loss_and_grad(self, out: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        return softmax_cross_entropy(out, target)

    def evaluate(self, model, idx: np.ndarray | None = None) -> float:
        x = self.data.x if idx is None else self.data.x[idx]
        y = self.data.y if idx is None else self.data.y[idx]
        model.eval()
        out = model(x)
        model.train()
        return accuracy(out, y)

    @property
    def n(self) -> int:
        return len(self.data.y)


@dataclass
class DetectionTask:
    """Mask R-CNN stand-in: joint classification + box regression.

    Metric is the combined validation loss (the paper also reports Mask
    R-CNN by loss, Fig. 6b).
    """

    data: DetectionDataset
    box_weight: float = 1.0
    metric_name: str = "loss"

    def batch(self, idx: np.ndarray) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        return self.data.x[idx], (self.data.y_cls[idx], self.data.y_box[idx])

    def loss_and_grad(self, out: np.ndarray, target) -> tuple[float, np.ndarray]:
        y_cls, y_box = target
        nc = self.data.n_classes
        cls_loss, cls_grad = softmax_cross_entropy(out[:, :nc], y_cls)
        box_loss, box_grad = smooth_l1_loss(out[:, nc:], y_box)
        grad = np.concatenate([cls_grad, self.box_weight * box_grad], axis=1)
        return cls_loss + self.box_weight * box_loss, grad

    def evaluate(self, model, idx: np.ndarray | None = None) -> float:
        sel = slice(None) if idx is None else idx
        model.eval()
        out = model(self.data.x[sel])
        model.train()
        loss, _ = self.loss_and_grad(out, (self.data.y_cls[sel], self.data.y_box[sel]))
        return loss

    @property
    def n(self) -> int:
        return len(self.data.y_cls)


@dataclass
class LmTask:
    """GPT stand-in: next-token prediction, metric = validation loss."""

    data: LmDataset
    metric_name: str = "loss"

    def batch(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.data.inputs[idx], self.data.targets[idx]

    def loss_and_grad(self, out: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        return softmax_cross_entropy(out, target)

    def evaluate(self, model, idx: np.ndarray | None = None) -> float:
        sel = slice(None) if idx is None else idx
        model.eval()
        out = model(self.data.inputs[sel])
        model.train()
        loss, _ = self.loss_and_grad(out, self.data.targets[sel])
        return loss

    @property
    def n(self) -> int:
        return self.data.ids.shape[0]


@dataclass
class MlmTask:
    """BERT pre-training stand-in: masked-LM, metric = validation loss."""

    batch_data: MlmBatch
    metric_name: str = "loss"

    def batch(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.batch_data.inputs[idx], self.batch_data.targets[idx]

    def loss_and_grad(self, out: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        return softmax_cross_entropy(out, target, ignore_index=0)

    def evaluate(self, model, idx: np.ndarray | None = None) -> float:
        sel = slice(None) if idx is None else idx
        model.eval()
        out = model(self.batch_data.inputs[sel])
        model.train()
        loss, _ = self.loss_and_grad(out, self.batch_data.targets[sel])
        return loss

    @property
    def n(self) -> int:
        return self.batch_data.inputs.shape[0]


@dataclass
class SquadTask:
    """SQuAD fine-tuning stand-in: span prediction, metrics = (EM, F1)."""

    data: SquadDataset
    metric_name: str = "f1"

    def batch(self, idx: np.ndarray) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        return self.data.ids[idx], (self.data.starts[idx], self.data.ends[idx])

    def loss_and_grad(self, out: np.ndarray, target) -> tuple[float, np.ndarray]:
        starts, ends = target
        # out: (N, T, 2) -> start logits over positions and end logits.
        start_loss, g_start = softmax_cross_entropy(out[..., 0], starts)
        end_loss, g_end = softmax_cross_entropy(out[..., 1], ends)
        grad = np.stack([g_start, g_end], axis=-1) * 0.5
        return 0.5 * (start_loss + end_loss), grad

    def evaluate(self, model, idx: np.ndarray | None = None) -> tuple[float, float]:
        sel = slice(None) if idx is None else idx
        model.eval()
        out = model(self.data.ids[sel])
        model.train()
        ps, pe = predict_spans(out)
        return span_em_f1(ps, pe, self.data.starts[sel], self.data.ends[sel])

    @property
    def n(self) -> int:
        return self.data.ids.shape[0]
