"""Evaluation metrics: classification accuracy, detection loss, LM loss,
and SQuAD-style span F1 / exact match."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "span_em_f1", "predict_spans"]


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy in percent."""
    return float((logits.argmax(axis=-1) == targets).mean() * 100.0)


def predict_spans(span_logits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Greedy span decoding: best start, then best end at/after the start."""
    start_logits = span_logits[..., 0]
    end_logits = span_logits[..., 1]
    starts = start_logits.argmax(axis=1)
    n, t = start_logits.shape
    pos = np.arange(t)
    masked_end = np.where(pos[None, :] >= starts[:, None], end_logits, -np.inf)
    ends = masked_end.argmax(axis=1)
    return starts, ends


def span_em_f1(
    pred_starts: np.ndarray,
    pred_ends: np.ndarray,
    gold_starts: np.ndarray,
    gold_ends: np.ndarray,
) -> tuple[float, float]:
    """SQuAD metrics over position spans: (exact-match %, token F1 %)."""
    em = float(((pred_starts == gold_starts) & (pred_ends == gold_ends)).mean() * 100.0)
    f1s = []
    for ps, pe, gs, ge in zip(pred_starts, pred_ends, gold_starts, gold_ends):
        lo = max(ps, gs)
        hi = min(pe, ge)
        overlap = max(0, hi - lo + 1)
        if overlap == 0:
            f1s.append(0.0)
            continue
        prec = overlap / (pe - ps + 1)
        rec = overlap / (ge - gs + 1)
        f1s.append(2 * prec * rec / (prec + rec))
    return em, float(np.mean(f1s) * 100.0)
