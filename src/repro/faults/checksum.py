"""Payload integrity: CRC32 seals on compressed blobs.

A sealed :class:`~repro.compression.base.CompressedTensor` carries one
CRC32 over all of its segments (chained in sorted-name order, so the
checksum also covers segment boundaries).  The 4-byte checksum is wire
overhead the reliable channel charges explicitly via
:data:`CHECKSUM_BYTES` — honest accounting, same policy as
``METADATA_BYTES``.
"""

from __future__ import annotations

import zlib

from repro.compression.base import CompressedTensor

__all__ = ["CHECKSUM_BYTES", "payload_crc", "seal", "verify", "is_sealed"]

#: Wire bytes one CRC32 seal adds to a payload.
CHECKSUM_BYTES = 4

_CRC_KEY = "crc32"


def payload_crc(ct: CompressedTensor) -> int:
    """CRC32 over every segment, chained in sorted segment-name order."""
    crc = 0
    for name in sorted(ct.segments):
        crc = zlib.crc32(ct.segments[name], crc)
    return crc & 0xFFFFFFFF


def seal(ct: CompressedTensor) -> CompressedTensor:
    """Return a copy of ``ct`` whose metadata records the payload CRC."""
    meta = dict(ct.meta)
    meta[_CRC_KEY] = payload_crc(ct)
    return CompressedTensor(dict(ct.segments), ct.shape, meta=meta)


def is_sealed(ct: CompressedTensor) -> bool:
    return _CRC_KEY in ct.meta


def verify(ct: CompressedTensor) -> bool:
    """True when the recorded CRC matches the segments.

    Unsealed tensors verify trivially — the caller opted out of
    integrity checking, which is not the same as detected corruption.
    """
    if not is_sealed(ct):
        return True
    return payload_crc(ct) == int(ct.meta[_CRC_KEY])
