"""Fault injection, retry/recovery, and graceful degradation.

The subsystem has three layers, all inert unless a fault plan is given:

* **injection** — :class:`FaultPlan` (a seeded, deterministic schedule
  of time-plane and data-plane faults) interpreted at run time by
  :class:`FaultController`, which ``SimCluster`` consults on every
  collective;
* **tolerance** — CRC32 payload seals (:mod:`repro.faults.checksum`),
  the detect→retransmit :class:`ReliableChannel` with capped exponential
  backoff, compressor degradation hooks, and elastic continuation in the
  trainers (world shrink + ownership reassignment + checkpoint restore);
* **observability** — every fault, retry, degrade, and recovery emits
  telemetry counters (``faults.injected`` / ``faults.detected`` /
  ``faults.recovered`` ...) and sim-track spans, and lands in the
  controller's materialised event log.

Chaos scenario presets and the end-to-end harness behind ``repro chaos``
live in :mod:`repro.faults.chaos` (imported lazily by the CLI and the
chaos bench to keep this package's import graph acyclic).
"""

from repro.faults.checksum import CHECKSUM_BYTES, is_sealed, payload_crc, seal, verify
from repro.faults.controller import FaultController
from repro.faults.injection import corrupt_payload, flip_bits
from repro.faults.plan import (
    BitRot,
    DroppedContribution,
    FailureEvent,
    FaultPlan,
    Jitter,
    JobCrash,
    LinkDegradation,
    PayloadCorruption,
    RankFailure,
    SaveCrash,
    Straggler,
    TornWrite,
    Truncation,
)
from repro.faults.recovery import ReliableChannel, TransferReport
from repro.faults.storage import StorageCrash, StorageFaultController

__all__ = [
    "BitRot",
    "CHECKSUM_BYTES",
    "DroppedContribution",
    "FailureEvent",
    "FaultController",
    "FaultPlan",
    "Jitter",
    "JobCrash",
    "LinkDegradation",
    "PayloadCorruption",
    "RankFailure",
    "ReliableChannel",
    "SaveCrash",
    "StorageCrash",
    "StorageFaultController",
    "Straggler",
    "TornWrite",
    "TransferReport",
    "Truncation",
    "corrupt_payload",
    "flip_bits",
    "is_sealed",
    "payload_crc",
    "seal",
    "verify",
]
