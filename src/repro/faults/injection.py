"""Data-plane fault injection: deterministic bit flips in payloads.

Corruption happens to *copies* — the sender's buffer is never mutated —
mirroring a real network where the wire damages one receiver's bytes
while the source stays intact.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedTensor

__all__ = ["flip_bits", "corrupt_payload"]


def flip_bits(data: bytes, rng: np.random.Generator, n_bits: int = 1) -> bytes:
    """Return ``data`` with ``n_bits`` random bit positions flipped."""
    if not data:
        return data
    buf = bytearray(data)
    for _ in range(n_bits):
        pos = int(rng.integers(0, len(buf)))
        buf[pos] ^= 1 << int(rng.integers(0, 8))
    return bytes(buf)


def corrupt_payload(obj: object, rng: np.random.Generator, n_bits: int = 1) -> object:
    """Return a corrupted copy of a collective payload.

    * :class:`CompressedTensor` — flip bits in one randomly chosen
      non-empty segment (the checksum layer can then detect it);
    * ``numpy.ndarray`` — flip bits in the raw buffer (silent data
      corruption: nothing on an unprotected path will notice);
    * ``bytes`` — flip bits directly.

    Payloads with no corruptible bytes are returned unchanged.
    """
    if isinstance(obj, CompressedTensor):
        names = [k for k, seg in obj.segments.items() if seg]
        if not names:
            return obj
        target = names[int(rng.integers(0, len(names)))]
        segments = dict(obj.segments)
        segments[target] = flip_bits(segments[target], rng, n_bits)
        return CompressedTensor(segments, obj.shape, meta=dict(obj.meta))
    if isinstance(obj, np.ndarray):
        if obj.nbytes == 0:
            return obj
        flat = bytearray(obj.tobytes())
        flat = flip_bits(bytes(flat), rng, n_bits)
        return np.frombuffer(flat, dtype=obj.dtype).reshape(obj.shape).copy()
    if isinstance(obj, bytes):
        return flip_bits(obj, rng, n_bits)
    return obj
