"""Storage fault plane: deterministic disk faults on the save path.

The cluster's fault planes (time/data/availability) cover the wire and
the workers; this module covers the *disk*.  A
:class:`StorageFaultController` interprets the storage entries of a
:class:`~repro.faults.plan.FaultPlan` — bit rot, at-rest truncation,
torn writes, and crash-at-injection-point — against the enumerated
injection points the durable-state layer exposes
(:data:`repro.util.checkpoint.SAVE_POINTS` extended by
:data:`repro.store.STORE_SAVE_POINTS`).

Faults are addressed by **save index**: the Nth time the owning store
runs its save sequence, the entries scheduled for ``save_index=N``
fire, each exactly once.  Byte positions for bit rot and truncation are
drawn from an RNG derived from ``(plan seed, save index)``, so the same
plan always damages the same bytes — corruption scenarios are
replayable tests, not flaky hopes.

The controller is passive until threaded into a store; a plan whose
only entries are storage faults is empty *for the cluster*
(:meth:`FaultPlan.is_empty_for_cluster`), keeping wire behavior
bit-identical to a faultless run.
"""

from __future__ import annotations

from pathlib import Path

from repro.faults.plan import BitRot, FaultPlan, SaveCrash, TornWrite, Truncation
from repro.util.seeding import spawn_rng

__all__ = ["StorageCrash", "StorageFaultController"]

#: Spawn-key base for per-save-index corruption streams.
_STORAGE_STREAM = 9100


class StorageCrash(RuntimeError):
    """The simulated process died at an injection point of a save.

    Carries the save index and the injection point so the recovery test
    (and the fleet scheduler, which treats it like a job crash) can
    assert exactly where the save was cut down.
    """

    def __init__(self, save_index: int, point: str):
        super().__init__(f"simulated crash at {point!r} during save #{save_index}")
        self.save_index = save_index
        self.point = point


def _flip_bytes(path: Path, rng, n_bytes: int) -> list[int]:
    """XOR ``n_bytes`` bytes of ``path`` at seeded positions (never a no-op)."""
    blob = bytearray(path.read_bytes())
    if not blob:
        return []
    positions = sorted(
        int(p) for p in rng.choice(len(blob), size=min(n_bytes, len(blob)), replace=False)
    )
    for pos in positions:
        mask = int(rng.integers(1, 256))  # nonzero: the byte always changes
        blob[pos] ^= mask
    path.write_bytes(bytes(blob))
    return positions


def _truncate(path: Path, keep_fraction: float) -> int:
    """Cut ``path`` down to its leading fraction; returns the new size."""
    size = path.stat().st_size
    keep = int(size * keep_fraction)
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep


class StorageFaultController:
    """Interprets a plan's storage entries at the store's save points.

    ``hooks_for(save_index)`` returns the ``hooks(point, path)`` callable
    the store threads through one full save sequence.  Every applied
    fault is appended to :attr:`log` as ``(save_index, kind, detail)``.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.entries = list(plan.storage)
        #: Entry positions that already fired (each fault fires once).
        self._fired: set[int] = set()
        self.log: list[tuple[int, str, dict]] = []

    def is_empty(self) -> bool:
        return not self.entries

    def pending(self, save_index: int) -> list:
        """Entries scheduled for ``save_index`` that have not fired yet."""
        return [
            e
            for i, e in enumerate(self.entries)
            if e.save_index == save_index and i not in self._fired
        ]

    def _mark(self, entry) -> None:
        self._fired.add(self.entries.index(entry))

    def hooks_for(self, save_index: int):
        """The injection callback for one save sequence (or None if inert)."""
        if not any(e.save_index == save_index for e in self.entries):
            return None
        rng = spawn_rng(self.plan.seed, _STORAGE_STREAM + save_index)

        def hook(point: str, path: Path) -> None:
            for i, entry in enumerate(self.entries):
                if i in self._fired or entry.save_index != save_index:
                    continue
                if isinstance(entry, SaveCrash) and entry.point == point:
                    self._fired.add(i)
                    self.log.append((save_index, "save_crash", {"point": point}))
                    raise StorageCrash(save_index, point)
                if isinstance(entry, TornWrite) and point == "save:tmp_written":
                    self._fired.add(i)
                    kept = _truncate(Path(path), entry.keep_fraction)
                    self.log.append(
                        (save_index, "torn_write", {"kept_bytes": kept, "file": str(path)})
                    )
                elif isinstance(entry, BitRot) and point == "sealed":
                    self._fired.add(i)
                    positions = _flip_bytes(Path(path), rng, entry.n_bytes)
                    self.log.append(
                        (save_index, "bit_rot", {"positions": positions, "file": str(path)})
                    )
                elif isinstance(entry, Truncation) and point == "sealed":
                    self._fired.add(i)
                    kept = _truncate(Path(path), entry.keep_fraction)
                    self.log.append(
                        (save_index, "truncation", {"kept_bytes": kept, "file": str(path)})
                    )

        return hook
