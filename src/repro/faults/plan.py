"""Declarative, seeded fault schedules for the simulated cluster.

A :class:`FaultPlan` is the single source of truth for *what goes wrong
and when* in a simulated run.  It mixes two kinds of entries:

* **deterministic schedule** — dataclass records pinned to iteration
  windows (stragglers, link degradation, dropped contributions, rank
  failures);
* **random models** — probabilistic faults (payload corruption, network
  jitter) whose draws come from generators derived from the plan's seed,
  so the same ``(seed, plan)`` always produces bit-identical fault
  schedules.

The plan itself is passive data; :class:`repro.faults.controller.
FaultController` interprets it at run time.  An *empty* plan is
indistinguishable from no plan at all: ``SimCluster`` discards it, so
fault-free runs stay bit-identical to a build without this subsystem.

Iteration windows are half-open ``[start, stop)``; ``stop=None`` means
"until the end of the run".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

__all__ = [
    "Straggler",
    "LinkDegradation",
    "Jitter",
    "PayloadCorruption",
    "DroppedContribution",
    "RankFailure",
    "JobCrash",
    "BitRot",
    "Truncation",
    "TornWrite",
    "SaveCrash",
    "FailureEvent",
    "FaultPlan",
]


def window_active(start: int, stop: int | None, iteration: int) -> bool:
    """True when ``iteration`` falls inside the half-open window."""
    return iteration >= start and (stop is None or iteration < stop)


@dataclass(frozen=True)
class Straggler:
    """One rank runs ``slowdown``x slower on every collective in a window."""

    #: Fault plane: "time" faults stretch clocks, "data" faults touch
    #: payload bytes, "availability" faults remove capacity.  The cluster
    #: uses this to decide which fault classes each track can honor.
    plane: ClassVar[str] = "time"

    rank: int
    start: int
    stop: int | None = None
    slowdown: float = 2.0

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")


@dataclass(frozen=True)
class LinkDegradation:
    """Fabric-wide latency/bandwidth degradation inside a window.

    ``latency_factor`` multiplies the alpha term; ``bandwidth_factor``
    divides the beta (bandwidth) term.  Both default to "no change".
    """

    plane: ClassVar[str] = "time"

    start: int
    stop: int | None = None
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_factor < 1.0 or self.bandwidth_factor < 1.0:
            raise ValueError("degradation factors must be >= 1")


@dataclass(frozen=True)
class Jitter:
    """Random extra per-collective delay (exponential with mean ``sigma``).

    ``rank=None`` applies independent jitter to every rank.
    """

    plane: ClassVar[str] = "time"

    sigma: float
    start: int = 0
    stop: int | None = None
    rank: int | None = None

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"jitter sigma must be > 0, got {self.sigma}")


@dataclass(frozen=True)
class PayloadCorruption:
    """Bit-flip corruption of object payloads in transit.

    Each *receiving* rank's copy is independently corrupted with
    ``probability`` per collective while the window is active.  Only the
    listed collective ops are affected — by default the object-moving
    ones (``broadcast``/``allgather``), which is where compressed blobs
    travel.
    """

    plane: ClassVar[str] = "data"

    probability: float
    start: int = 0
    stop: int | None = None
    n_bits: int = 1
    ops: tuple[str, ...] = ("broadcast", "allgather")

    def __post_init__(self) -> None:
        if not 0 < self.probability <= 1:
            raise ValueError(f"corruption probability must be in (0, 1], got {self.probability}")
        if self.n_bits < 1:
            raise ValueError("n_bits must be >= 1")


@dataclass(frozen=True)
class DroppedContribution:
    """A rank's contributions to reducing collectives are lost for one
    iteration (the remaining ranks' average gracefully degrades)."""

    plane: ClassVar[str] = "data"

    rank: int
    iteration: int
    op: str = "allreduce"


@dataclass(frozen=True)
class RankFailure:
    """Permanent loss of a rank at the start of iteration ``iteration``.

    ``recoverable=True`` models a clean failure: replicated state (model,
    running factors) survives and only the dead rank's layer ownership
    must be reassigned.  ``recoverable=False`` is a hard failure that
    poisons live state — the trainer must restore from its latest
    checkpoint (if one exists) before continuing.
    """

    plane: ClassVar[str] = "availability"

    rank: int
    iteration: int
    recoverable: bool = True


@dataclass(frozen=True)
class JobCrash:
    """The whole job process crashes at the start of ``iteration``.

    Unlike :class:`RankFailure` (one rank dies, the survivors continue
    elastically), a crash kills the entire run: all in-memory state is
    lost and the job must be restarted from its last checkpoint.  The
    cluster itself ignores crashes — they are interpreted by the layer
    that owns the job lifecycle (:class:`repro.fleet.FleetScheduler`),
    which detects the crash, requeues the job with backoff, and restores
    from the checkpointed step.
    """

    plane: ClassVar[str] = "availability"

    iteration: int

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError(f"crash iteration must be >= 0, got {self.iteration}")


@dataclass(frozen=True)
class BitRot:
    """At-rest corruption of the ``save_index``-th durable-state save.

    After the save sequence completes (archive *and* store manifest in
    place), ``n_bytes`` bytes of the written archive are flipped at
    positions drawn from the plan's seeded RNG — the classic silent disk
    corruption a sealed store must detect on the next load and survive
    by falling back to an older verified generation.
    """

    plane: ClassVar[str] = "storage"

    save_index: int
    n_bytes: int = 1

    def __post_init__(self) -> None:
        if self.save_index < 0:
            raise ValueError(f"save_index must be >= 0, got {self.save_index}")
        if self.n_bytes < 1:
            raise ValueError(f"n_bytes must be >= 1, got {self.n_bytes}")


@dataclass(frozen=True)
class Truncation:
    """The ``save_index``-th save's archive is truncated at rest.

    Keeps the leading ``keep_fraction`` of the file after the save
    completes — a torn file discovered later (lost sectors, filesystem
    rollback).  The store must detect the short read and fall back.
    """

    plane: ClassVar[str] = "storage"

    save_index: int
    keep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.save_index < 0:
            raise ValueError(f"save_index must be >= 0, got {self.save_index}")
        if not 0.0 <= self.keep_fraction < 1.0:
            raise ValueError(
                f"keep_fraction must be in [0, 1), got {self.keep_fraction}"
            )


@dataclass(frozen=True)
class TornWrite:
    """The ``save_index``-th save's temp file is torn before publish.

    Truncates the in-flight temp archive at the ``save:tmp_written``
    injection point, *before* ``os.replace`` — modelling a kernel/disk
    that acknowledged buffered writes it never persisted.  The atomic
    rename then publishes a corrupt archive whose seal cannot verify.
    """

    plane: ClassVar[str] = "storage"

    save_index: int
    keep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.save_index < 0:
            raise ValueError(f"save_index must be >= 0, got {self.save_index}")
        if not 0.0 <= self.keep_fraction < 1.0:
            raise ValueError(
                f"keep_fraction must be in [0, 1), got {self.keep_fraction}"
            )


@dataclass(frozen=True)
class SaveCrash:
    """The process dies at injection point ``point`` of save ``save_index``.

    ``point`` is one of the store save sequence's enumerated injection
    points (:data:`repro.store.STORE_SAVE_POINTS` — archive temp write,
    publish, manifest temp write, manifest publish, ...), raising
    :class:`~repro.faults.storage.StorageCrash` there.  Sweeping every
    point is how "kill at any moment during save" becomes a
    deterministic, enumerable test.
    """

    plane: ClassVar[str] = "storage"

    save_index: int
    point: str

    def __post_init__(self) -> None:
        if self.save_index < 0:
            raise ValueError(f"save_index must be >= 0, got {self.save_index}")
        if not self.point:
            raise ValueError("point must be a non-empty injection-point name")


@dataclass(frozen=True)
class FailureEvent:
    """A rank failure as observed by the cluster when it is applied.

    ``index`` is the rank's position in the *pre-removal* active rank
    list — the coordinate layer-ownership tables are expressed in.
    """

    rank: int
    index: int
    iteration: int
    recoverable: bool


@dataclass
class FaultPlan:
    """A seeded schedule of time-, data-, and availability-plane faults."""

    seed: int = 0
    stragglers: list[Straggler] = field(default_factory=list)
    degradations: list[LinkDegradation] = field(default_factory=list)
    jitters: list[Jitter] = field(default_factory=list)
    corruptions: list[PayloadCorruption] = field(default_factory=list)
    drops: list[DroppedContribution] = field(default_factory=list)
    failures: list[RankFailure] = field(default_factory=list)
    crashes: list[JobCrash] = field(default_factory=list)
    #: Storage-plane faults, interpreted by the durable-state layer
    #: (:class:`repro.store.CheckpointStore` via
    #: :class:`repro.faults.storage.StorageFaultController`), never by
    #: the cluster.
    storage: list = field(default_factory=list)

    # -- builder API ---------------------------------------------------------

    def add_straggler(
        self, rank: int, *, start: int, stop: int | None = None, slowdown: float = 2.0
    ) -> "FaultPlan":
        self.stragglers.append(Straggler(rank, start, stop, slowdown))
        return self

    def add_link_degradation(
        self,
        *,
        start: int,
        stop: int | None = None,
        latency_factor: float = 1.0,
        bandwidth_factor: float = 1.0,
    ) -> "FaultPlan":
        self.degradations.append(LinkDegradation(start, stop, latency_factor, bandwidth_factor))
        return self

    def add_jitter(
        self, sigma: float, *, start: int = 0, stop: int | None = None, rank: int | None = None
    ) -> "FaultPlan":
        self.jitters.append(Jitter(sigma, start, stop, rank))
        return self

    def add_corruption(
        self,
        probability: float,
        *,
        start: int = 0,
        stop: int | None = None,
        n_bits: int = 1,
        ops: tuple[str, ...] = ("broadcast", "allgather"),
    ) -> "FaultPlan":
        self.corruptions.append(PayloadCorruption(probability, start, stop, n_bits, ops))
        return self

    def add_drop(self, rank: int, *, iteration: int, op: str = "allreduce") -> "FaultPlan":
        self.drops.append(DroppedContribution(rank, iteration, op))
        return self

    def add_failure(
        self, rank: int, *, iteration: int, recoverable: bool = True
    ) -> "FaultPlan":
        self.failures.append(RankFailure(rank, iteration, recoverable))
        return self

    def add_node_failure(
        self, node: int, *, iteration: int, gpus_per_node: int, recoverable: bool = True
    ) -> "FaultPlan":
        """Fail every rank of one node at once."""
        for r in range(node * gpus_per_node, (node + 1) * gpus_per_node):
            self.add_failure(r, iteration=iteration, recoverable=recoverable)
        return self

    def add_crash(self, *, iteration: int) -> "FaultPlan":
        """Crash the whole job at the start of ``iteration`` (fleet-level)."""
        self.crashes.append(JobCrash(iteration))
        return self

    def add_bit_rot(self, *, save_index: int, n_bytes: int = 1) -> "FaultPlan":
        """Flip bytes in the ``save_index``-th durable save, at rest."""
        self.storage.append(BitRot(save_index, n_bytes))
        return self

    def add_truncation(
        self, *, save_index: int, keep_fraction: float = 0.5
    ) -> "FaultPlan":
        """Truncate the ``save_index``-th durable save's archive at rest."""
        self.storage.append(Truncation(save_index, keep_fraction))
        return self

    def add_torn_write(
        self, *, save_index: int, keep_fraction: float = 0.5
    ) -> "FaultPlan":
        """Tear the ``save_index``-th save's temp file before publish."""
        self.storage.append(TornWrite(save_index, keep_fraction))
        return self

    def add_save_crash(self, *, save_index: int, point: str) -> "FaultPlan":
        """Kill the process at injection point ``point`` of a save."""
        self.storage.append(SaveCrash(save_index, point))
        return self

    # -- introspection -------------------------------------------------------

    def entries(self):
        """All scheduled fault records, grouped order, for capability checks."""
        for group in (
            self.stragglers,
            self.degradations,
            self.jitters,
            self.corruptions,
            self.drops,
            self.failures,
            self.crashes,
            self.storage,
        ):
            yield from group

    def is_empty(self) -> bool:
        return not (
            self.stragglers
            or self.degradations
            or self.jitters
            or self.corruptions
            or self.drops
            or self.failures
            or self.crashes
            or self.storage
        )

    def is_empty_for_cluster(self) -> bool:
        """True when nothing in the plan is interpreted *inside* a cluster.

        Job crashes are fleet-level (the scheduler kills and restarts the
        whole run) and storage faults live in the durable-state layer
        (the checkpoint store's save/load path); a plan carrying only
        those must leave the cluster's hot paths bit-identical to a
        faultless one, so ``SimCluster`` discards it.
        """
        return not (
            self.stragglers
            or self.degradations
            or self.jitters
            or self.corruptions
            or self.drops
            or self.failures
        )

    def validate(self, world_size: int) -> None:
        """Reject plans referencing ranks outside the cluster, or plans
        that would eventually kill every rank."""
        for group in (self.stragglers, self.drops, self.failures):
            for entry in group:
                if not 0 <= entry.rank < world_size:
                    raise ValueError(
                        f"{type(entry).__name__} targets rank {entry.rank}, "
                        f"but the cluster has ranks 0..{world_size - 1}"
                    )
        for j in self.jitters:
            if j.rank is not None and not 0 <= j.rank < world_size:
                raise ValueError(f"Jitter targets rank {j.rank} outside 0..{world_size - 1}")
        if len({f.rank for f in self.failures}) >= world_size:
            raise ValueError("plan fails every rank; at least one must survive")

    def describe(self) -> str:
        """Human-readable one-line-per-fault summary."""
        lines = [f"FaultPlan(seed={self.seed})"]
        lines.extend(f"  {entry}" for entry in self.entries())
        return "\n".join(lines)
