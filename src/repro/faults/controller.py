"""Runtime interpreter of a :class:`~repro.faults.plan.FaultPlan`.

``SimCluster`` owns one controller per faulted run and consults it on
every collective: time-plane faults stretch per-rank clocks, data-plane
faults corrupt or drop payload copies, and scheduled failures surface at
iteration boundaries.  Every injected fault is appended to
:attr:`FaultController.events` (the materialised fault schedule — two
runs with the same seed and plan produce identical logs) and counted on
the active metrics registry under ``faults.injected``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.faults.injection import corrupt_payload
from repro.faults.plan import FaultPlan, RankFailure, window_active
from repro.telemetry import get_metrics
from repro.util.seeding import spawn_rng

__all__ = ["FaultController"]

#: Spawn keys for the controller's independent random streams.
_JITTER_STREAM = 7001
_CORRUPTION_STREAM = 7002


class FaultController:
    """Stateful fault-plan executor for one simulated run."""

    def __init__(self, plan: FaultPlan, world_size: int):
        plan.validate(world_size)
        self.plan = plan
        self.world_size = world_size
        self.iteration = 0
        #: Materialised fault schedule: one dict per injected fault.
        self.events: list[dict] = []
        self._failed: set[int] = set()
        self._jitter_rng = spawn_rng(plan.seed, _JITTER_STREAM)
        self._corrupt_rng = spawn_rng(plan.seed, _CORRUPTION_STREAM)
        self._network_cache: tuple[tuple[float, float], object, object] | None = None

    # -- bookkeeping ---------------------------------------------------------

    def record(self, kind: str, **fields) -> None:
        self.events.append({"kind": kind, "iteration": self.iteration, **fields})
        m = get_metrics()
        if m.enabled:
            m.counter("faults.injected", kind=kind).inc()

    # -- iteration boundary --------------------------------------------------

    def begin_iteration(self, iteration: int) -> list[RankFailure]:
        """Advance the fault clock; return failures due but not yet applied."""
        self.iteration = int(iteration)
        due = [
            f
            for f in self.plan.failures
            if f.iteration <= self.iteration and f.rank not in self._failed
        ]
        for f in due:
            self._failed.add(f.rank)
            self.record("rank_failure", rank=f.rank, recoverable=f.recoverable)
        lat, bw = self.network_factors()
        if (lat, bw) != (1.0, 1.0):
            # One event per degraded iteration (per-collective recording
            # would swamp the log without adding information).
            self.record("link_degradation", latency_factor=lat, bandwidth_factor=bw)
        return due

    # -- time plane ----------------------------------------------------------

    def straggler_factor(self, rank: int) -> float:
        factor = 1.0
        for s in self.plan.stragglers:
            if s.rank == rank and window_active(s.start, s.stop, self.iteration):
                factor *= s.slowdown
        return factor

    def jitter_seconds(self, rank: int) -> float:
        extra = 0.0
        for j in self.plan.jitters:
            if window_active(j.start, j.stop, self.iteration) and (
                j.rank is None or j.rank == rank
            ):
                extra += float(self._jitter_rng.exponential(j.sigma))
        return extra

    def collective_extras(
        self, op: str, base_seconds: float, rank_ids: list[int]
    ) -> dict[int, float]:
        """Per-rank extra seconds this collective costs under active faults.

        The draw order is the rank order of ``rank_ids``, which the
        cluster keeps stable, so schedules are reproducible.

        Fast path for fleet-scale worlds: when no jitter window is active
        (so no randomness would be consumed anyway), only ranks with an
        active straggler are visited — a 4096-rank collective with one
        straggler touches one rank, not 4096.
        """
        extras: dict[int, float] = {}
        if not any(
            window_active(j.start, j.stop, self.iteration) for j in self.plan.jitters
        ):
            active = {
                s.rank
                for s in self.plan.stragglers
                if window_active(s.start, s.stop, self.iteration)
            }
            if not active:
                return extras
            rank_ids = [r for r in rank_ids if r in active]
        for rank in rank_ids:
            extra = (self.straggler_factor(rank) - 1.0) * base_seconds
            if extra > 0.0:
                self.record("straggler", rank=rank, op=op, seconds=extra)
            jitter = self.jitter_seconds(rank)
            if jitter > 0.0:
                self.record("jitter", rank=rank, op=op, seconds=jitter)
                extra += jitter
            if extra > 0.0:
                extras[rank] = extra
        return extras

    def network_factors(self) -> tuple[float, float]:
        """(latency multiplier, bandwidth divisor) for the current iteration."""
        lat = 1.0
        bw = 1.0
        for d in self.plan.degradations:
            if window_active(d.start, d.stop, self.iteration):
                lat *= d.latency_factor
                bw *= d.bandwidth_factor
        return lat, bw

    def effective_network(self, base):
        """``base`` NetworkSpec with any active degradation applied."""
        factors = self.network_factors()
        if factors == (1.0, 1.0):
            return base
        cached = self._network_cache
        if cached is not None and cached[0] == factors and cached[1] is base:
            return cached[2]
        lat, bw = factors
        degraded = replace(
            base,
            name=f"{base.name}-degraded",
            inter_bw=base.inter_bw / bw,
            inter_lat=base.inter_lat * lat,
            intra_bw=base.intra_bw / bw,
            intra_lat=base.intra_lat * lat,
        )
        self._network_cache = (factors, base, degraded)
        return degraded

    # -- data plane ----------------------------------------------------------

    def _corruption_probability(self, op: str) -> float:
        p_clean = 1.0
        for c in self.plan.corruptions:
            if op in c.ops and window_active(c.start, c.stop, self.iteration):
                p_clean *= 1.0 - c.probability
        return 1.0 - p_clean

    def corrupts_op(self, op: str) -> bool:
        """True when any corruption model is active for ``op`` right now."""
        return self._corruption_probability(op) > 0.0

    def maybe_corrupt(self, obj: object, *, rank: int, op: str) -> tuple[object, bool]:
        """Independently corrupt one receiver's payload copy.

        Consumes randomness only while a corruption window is active, so
        runs without corruption stay bit-identical regardless of other
        plan entries.
        """
        p = self._corruption_probability(op)
        if p <= 0.0:
            return obj, False
        if float(self._corrupt_rng.random()) >= p:
            return obj, False
        n_bits = max(
            (
                c.n_bits
                for c in self.plan.corruptions
                if op in c.ops and window_active(c.start, c.stop, self.iteration)
            ),
            default=1,
        )
        self.record("corruption", rank=rank, op=op, n_bits=n_bits)
        return corrupt_payload(obj, self._corrupt_rng, n_bits), True

    def dropped_ranks(self, op: str, rank_ids: list[int]) -> set[int]:
        """Ranks whose contribution to this reducing collective is lost."""
        dropped = {
            d.rank
            for d in self.plan.drops
            if d.iteration == self.iteration and d.op == op and d.rank in rank_ids
        }
        # Never drop everyone: a collective with zero contributors is a
        # hang, not a degraded average.
        if len(dropped) >= len(rank_ids):
            dropped = set(sorted(dropped)[: len(rank_ids) - 1])
        for rank in sorted(dropped):
            self.record("drop", rank=rank, op=op)
        return dropped
