"""Fault tolerance: checksum-verified transfers with retry/backoff.

:class:`ReliableChannel` wraps a ``SimCluster``'s object-moving
collectives with the detect→retransmit protocol real collective
libraries layer over lossy links:

1. the payload is sealed with a CRC32 (:mod:`repro.faults.checksum`),
   charged at ``CHECKSUM_BYTES`` of extra wire;
2. every receiver verifies its copy; any mismatch is a *detected*
   corruption (``faults.detected`` counter);
3. the transfer is retried after a capped exponential backoff, each
   retry paying the full modelled alpha-beta cost again plus the backoff
   on every rank's clock;
4. after ``max_retries`` failed attempts the transfer is declared
   unrecoverable and the caller must degrade (e.g. fall back to a
   lossless resend of the raw tensor).

The returned payload is always the root's own sealed copy — corruption
is a receive-side phenomenon — so callers decode known-good bytes once
a transfer reports success.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.compression.base import CompressedTensor
from repro.faults.checksum import CHECKSUM_BYTES, seal, verify
from repro.telemetry import SIM_TRACK, get_metrics, get_tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.distributed.cluster import SimCluster

__all__ = ["TransferReport", "ReliableChannel"]


@dataclass
class TransferReport:
    """Outcome of one reliable transfer."""

    attempts: int = 0
    #: Receiver-side checksum mismatches observed across all attempts.
    detected: int = 0
    #: Seconds of backoff added to every rank's clock.
    backoff_seconds: float = 0.0
    #: True when the payload never arrived intact within the retry budget.
    unrecoverable: bool = False

    @property
    def wire_bytes_factor(self) -> int:
        """How many times the payload actually crossed the wire."""
        return max(self.attempts, 1)


class ReliableChannel:
    """Checksummed broadcast with capped-exponential-backoff retransmits."""

    def __init__(
        self,
        cluster: "SimCluster",
        *,
        max_retries: int = 3,
        backoff_base: float = 1e-4,
        backoff_cap: float = 2e-3,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise ValueError("need 0 < backoff_base <= backoff_cap")
        self.cluster = cluster
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap

    def broadcast(
        self,
        ct: CompressedTensor,
        *,
        root: int,
        category: str = "broadcast",
    ) -> tuple[CompressedTensor, TransferReport]:
        """Broadcast a sealed blob until every rank holds an intact copy."""
        sealed = seal(ct)
        nbytes = ct.nbytes + CHECKSUM_BYTES
        report = TransferReport()
        m = get_metrics()
        tracer = get_tracer()
        received: list[object] = [sealed]
        for attempt in range(self.max_retries + 1):
            report.attempts += 1
            received = self.cluster.broadcast(
                sealed, root=root, nbytes=nbytes, category=category
            )
            bad = [
                i
                for i, obj in enumerate(received)
                if isinstance(obj, CompressedTensor) and not verify(obj)
            ]
            if not bad:
                if attempt and m.enabled:
                    m.counter("faults.recovered", kind="retransmit").inc()
                return sealed, report
            report.detected += len(bad)
            if m.enabled:
                m.counter("faults.detected", kind="corruption").inc(len(bad))
            if tracer.enabled:
                for i in bad:
                    rank = self.cluster.ranks[i]
                    tracer.add_span(
                        "corruption_detected",
                        "fault_event",
                        0.0,
                        start=rank.clock.now,
                        track=SIM_TRACK,
                        rank=rank.rank,
                        attempt=attempt,
                    )
            if attempt == self.max_retries:
                break
            backoff = min(self.backoff_base * (2.0**attempt), self.backoff_cap)
            report.backoff_seconds += backoff
            self.cluster.advance_all(backoff, "fault_backoff")
            if m.enabled:
                m.counter("faults.retransmits").inc()
        report.unrecoverable = True
        if m.enabled:
            m.counter("faults.unrecoverable", kind="corruption").inc()
        return sealed, report
