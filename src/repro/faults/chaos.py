"""Chaos-testing harness: scripted fault scenarios with a clean baseline.

Each scenario builds a :class:`~repro.faults.plan.FaultPlan` scaled to
the requested world size and iteration count, then trains the same tiny
distributed K-FAC + COMPSO workload twice — once fault-free, once under
the plan — with identical seeds.  The result quantifies the cost of the
faults and the effectiveness of the tolerance machinery:

* **convergence delta** — full-dataset loss after the faulted run vs the
  fault-free run at equal iterations (the paper-style "does compression
  + faults hurt training?" number);
* **time-to-recover** — extra simulated seconds spent in iterations
  where fault events fired;
* **recovery counters** — every ``faults.*`` telemetry counter, so CI
  can assert that injection actually happened and recovery actually ran.

This module is imported lazily (by the CLI and the chaos bench), never
from ``repro.faults`` itself, to keep the fault-plan core free of
trainer dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.plan import FaultPlan

__all__ = ["SCENARIOS", "ChaosResult", "make_plan", "run_chaos"]

#: Scenario names accepted by :func:`make_plan` / ``repro chaos``.
#: ``smoke`` is the CI scenario: one straggler plus one corruption
#: window, small enough to finish in seconds.
SCENARIOS = ("stragglers", "degraded-link", "corruption", "rank-loss", "mixed", "smoke")


def make_plan(name: str, world_size: int, iterations: int, seed: int = 0) -> FaultPlan:
    """Build the named scenario's fault plan, scaled to the run shape."""
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; choose from {SCENARIOS}")
    if world_size < 2:
        raise ValueError("chaos scenarios need world_size >= 2")
    third = max(iterations // 3, 1)
    plan = FaultPlan(seed=seed)
    if name == "stragglers":
        plan.add_straggler(1, start=third, stop=2 * third, slowdown=3.0)
        plan.add_straggler(world_size - 1, start=2 * third, slowdown=1.8)
        plan.add_jitter(2e-5, start=0)
    elif name == "degraded-link":
        plan.add_link_degradation(
            start=third, stop=2 * third, latency_factor=4.0, bandwidth_factor=2.5
        )
    elif name == "corruption":
        plan.add_corruption(0.3, start=third, stop=2 * third, n_bits=4)
    elif name == "rank-loss":
        plan.add_drop(1, iteration=max(third - 1, 0))
        plan.add_failure(world_size - 1, iteration=iterations // 2)
    elif name == "mixed":
        plan.add_straggler(1, start=third // 2 + 1, stop=2 * third, slowdown=2.5)
        plan.add_corruption(0.3, start=third, stop=iterations - third // 2, n_bits=4)
        plan.add_failure(world_size - 1, iteration=iterations // 2 + 1)
    elif name == "smoke":
        plan.add_straggler(1, start=1, stop=iterations, slowdown=2.0)
        plan.add_corruption(0.5, start=1, stop=iterations, n_bits=2)
    plan.validate(world_size)
    return plan


@dataclass
class ChaosResult:
    """Outcome of one scenario: faulted run vs fault-free baseline."""

    scenario: str
    world_size: int
    final_world_size: int
    iterations: int
    completed: bool
    baseline_loss: float
    faulted_loss: float
    loss_delta_pct: float
    baseline_sim_time: float
    faulted_sim_time: float
    sim_time_overhead_pct: float
    time_to_recover_s: float
    counters: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "world_size": self.world_size,
            "final_world_size": self.final_world_size,
            "iterations": self.iterations,
            "completed": self.completed,
            "baseline_loss": self.baseline_loss,
            "faulted_loss": self.faulted_loss,
            "loss_delta_pct": self.loss_delta_pct,
            "baseline_sim_time": self.baseline_sim_time,
            "faulted_sim_time": self.faulted_sim_time,
            "sim_time_overhead_pct": self.sim_time_overhead_pct,
            "time_to_recover_s": self.time_to_recover_s,
            "counters": dict(self.counters),
        }

    def summary(self) -> str:
        lines = [
            f"scenario           : {self.scenario}",
            f"world size         : {self.world_size} -> {self.final_world_size}",
            f"iterations         : {self.iterations} (completed: {self.completed})",
            f"final loss         : faulted {self.faulted_loss:.4f} "
            f"vs fault-free {self.baseline_loss:.4f} ({self.loss_delta_pct:+.2f}%)",
            f"sim time           : faulted {self.faulted_sim_time * 1e3:.2f} ms "
            f"vs fault-free {self.baseline_sim_time * 1e3:.2f} ms "
            f"({self.sim_time_overhead_pct:+.1f}%)",
            f"time to recover    : {self.time_to_recover_s * 1e3:.3f} ms of extra sim time",
        ]
        if self.counters:
            lines.append("fault counters:")
            lines.extend(f"  {k:40s} {v:g}" for k, v in sorted(self.counters.items()))
        return "\n".join(lines)


def _counter_key(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}[{inner}]"


def _run_once(plan, *, nodes, gpus_per_node, iterations, batch_size, seed):
    """One training run (faulted or not); returns its measurements."""
    from repro import telemetry
    from repro.core import AdaptiveCompso, StepLrSchedule
    from repro.data import make_image_data
    from repro.distributed import SimCluster
    from repro.kfac_dist import DistributedKfacTrainer
    from repro.models import resnet_proxy
    from repro.train import ClassificationTask

    # noise=1.6 keeps the final loss around 0.1-0.5: large enough that a
    # few-percent convergence delta is signal, not minibatch noise.
    data = make_image_data(300, n_classes=4, size=8, noise=1.6, seed=seed)
    task = ClassificationTask(data)
    cluster = SimCluster(nodes, gpus_per_node, seed=seed, fault_plan=plan)
    model = resnet_proxy(n_classes=4, channels=8, rng=seed + 3)
    compressor = AdaptiveCompso(StepLrSchedule(max(iterations // 3, 1)), seed=seed)
    trainer = DistributedKfacTrainer(
        model, task, cluster, lr=0.05, inv_update_freq=5, compressor=compressor
    )
    with telemetry.session() as sess:
        trainer.train(iterations=iterations, batch_size=batch_size, seed=seed)
        snapshot = sess.metrics.snapshot()
        steps = list(sess.metrics.steps)
    x, y = task.batch(np.arange(task.n))
    full_loss, _ = task.loss_and_grad(trainer.model(x), y)
    counters = {
        _counter_key(m["name"], m["labels"]): m["value"]
        for m in snapshot
        if m["type"] == "counter" and m["name"].startswith("faults.")
    }
    gauges = {
        m["name"]: m["value"]
        for m in snapshot
        if m["type"] == "gauge" and m["name"].startswith("faults.")
    }
    sim_times = [rec["sim_time"] for rec in steps if "sim_time" in rec]
    fault_iterations = {
        ev.get("iteration") for ev in (cluster.faults.events if cluster.faults else [])
    }
    return {
        "loss": float(full_loss),
        "sim_time": cluster.time,
        "sim_times": sim_times,
        "counters": counters,
        "gauges": gauges,
        "world_size": cluster.world_size,
        "fault_iterations": fault_iterations,
        "steps_done": len(trainer.history.losses),
    }


def run_chaos(
    scenario: str,
    *,
    nodes: int = 2,
    gpus_per_node: int = 2,
    iterations: int = 12,
    batch_size: int = 32,
    seed: int = 0,
) -> ChaosResult:
    """Run ``scenario`` and its fault-free twin; compare them."""
    world = nodes * gpus_per_node
    plan = make_plan(scenario, world, iterations, seed=seed)
    kwargs = dict(
        nodes=nodes,
        gpus_per_node=gpus_per_node,
        iterations=iterations,
        batch_size=batch_size,
        seed=seed,
    )
    baseline = _run_once(None, **kwargs)
    faulted = _run_once(plan, **kwargs)

    # Extra simulated seconds spent in iterations where a fault fired:
    # the recovery cost the time plane actually paid.
    base_iter = np.diff([0.0, *baseline["sim_times"]])
    fault_iter = np.diff([0.0, *faulted["sim_times"]])
    n = min(len(base_iter), len(fault_iter))
    recover = sum(
        max(float(fault_iter[t] - base_iter[t]), 0.0)
        for t in range(n)
        if t in faulted["fault_iterations"]
    )

    base_loss = baseline["loss"]
    delta = (faulted["loss"] - base_loss) / max(abs(base_loss), 1e-12) * 100.0
    overhead = (
        (faulted["sim_time"] - baseline["sim_time"]) / max(baseline["sim_time"], 1e-12) * 100.0
    )
    return ChaosResult(
        scenario=scenario,
        world_size=world,
        final_world_size=faulted["world_size"],
        iterations=iterations,
        completed=faulted["steps_done"] == iterations,
        baseline_loss=base_loss,
        faulted_loss=faulted["loss"],
        loss_delta_pct=delta,
        baseline_sim_time=baseline["sim_time"],
        faulted_sim_time=faulted["sim_time"],
        sim_time_overhead_pct=overhead,
        time_to_recover_s=recover,
        counters=faulted["counters"],
    )
