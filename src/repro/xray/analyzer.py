"""The xray analyzer: per-step critical-path attribution records.

``XrayAnalyzer`` rides the same passive-observer contract as the ledger
writer and the autotune controller: trainers construct it from the
``xray=`` kwarg, ``bind`` attaches the cluster/runtime, and the trainer
calls :meth:`end_step` once per iteration *before* the ledger folds the
step, so the attribution record lands in the step that produced it.
The analyzer only reads tracer/cluster state and never consumes
randomness — ``xray=None`` (the default) is bit-identical to a build
without this subsystem.

Every record is a pure function of ``(seed, config)``: the span stream
is deterministic on the simulated tracks, the graph ordering is the
documented :func:`~repro.telemetry.tracer.span_sort_key`, and all
aggregation below iterates in sorted key order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xray.critical import PathSegment, critical_path
from repro.xray.graph import build_step_graph, is_comm

__all__ = ["XrayConfig", "XrayAnalyzer", "as_xray"]


@dataclass(frozen=True)
class XrayConfig:
    """Configuration for the causal-trace analyzer.

    ``tol`` is the time-comparison tolerance of the path walk;
    ``top_segments`` caps the per-step "longest segments" list stored
    in the ledger.
    """

    tol: float = 1e-12
    top_segments: int = 5

    def build(self) -> "XrayAnalyzer":
        return XrayAnalyzer(self)

    def describe(self) -> dict:
        return {"tol": self.tol, "top_segments": self.top_segments}


def as_xray(xray) -> "XrayAnalyzer | None":
    """Normalise a trainer's ``xray=`` argument to an analyzer.

    Accepts ``None`` (disabled), ``True`` (default config), an
    :class:`XrayConfig`, or an already-built :class:`XrayAnalyzer`.
    """
    if xray is None:
        return None
    if xray is True:
        return XrayConfig().build()
    if isinstance(xray, XrayConfig):
        return xray.build()
    return xray


def _clip(span, t0: float, t1: float) -> float:
    """Seconds of ``span`` that fall inside the window."""
    return max(min(span.end, t1) - max(span.start, t0), 0.0)


class XrayAnalyzer:
    """Builds one critical-path attribution record per training step."""

    def __init__(self, config: XrayConfig | None = None):
        self.config = config if config is not None else XrayConfig()
        self.records: list[dict] = []
        self._cluster = None
        self._runtime = None
        self._t_prev = 0.0
        self._span_cursor = 0
        self._edge_cursor = 0
        self._pending: dict | None = None

    def describe(self) -> dict:
        return self.config.describe()

    def bind(self, *, trainer=None, cluster=None, runtime=None) -> "XrayAnalyzer":
        """Attach the run's cluster (the sim clock source) and runtime."""
        self._cluster = cluster
        self._runtime = runtime
        if cluster is not None:
            self._t_prev = cluster.time
        return self

    # -- per-step analysis -----------------------------------------------------

    def end_step(self, step: int) -> dict | None:
        """Analyse the step window that just closed; returns the record.

        Must run before the ledger's ``record_step`` (the same ordering
        contract as ``autotune.end_step``): the record is buffered and
        the ledger pulls it via :meth:`take_step_record`.
        """
        from repro.telemetry import get_tracer

        tracer = get_tracer()
        if self._cluster is None or not tracer.enabled:
            return None
        t0, t1 = self._t_prev, self._cluster.time
        self._t_prev = t1
        spans = tracer.spans()
        fresh = spans[self._span_cursor :]
        self._span_cursor = len(spans)
        edges = tracer.edges()
        fresh_edges = tuple(edges[self._edge_cursor :])
        self._edge_cursor = len(edges)
        graph = build_step_graph(fresh, fresh_edges, t0=t0, t1=t1, tol=self.config.tol)
        segments = critical_path(graph, tol=self.config.tol)
        record = self._attribute(step, graph, segments)
        self.records.append(record)
        self._pending = record
        return record

    def take_step_record(self) -> dict | None:
        """Hand the buffered record to the ledger (cleared on read)."""
        record, self._pending = self._pending, None
        return record

    def _attribute(self, step: int, graph, segments: list[PathSegment]) -> dict:
        """Fold a step's path into the JSON-stable attribution record."""
        by_category: dict[str, float] = {}
        by_phase: dict[str, float] = {}
        by_rank: dict[str, float] = {}
        comm_categories: set[str] = set()
        critpath = exposed_comm = wait = untraced = 0.0
        for seg in segments:
            critpath += seg.seconds
            by_category[seg.category] = by_category.get(seg.category, 0.0) + seg.seconds
            by_phase[seg.name] = by_phase.get(seg.name, 0.0) + seg.seconds
            if seg.category == "wait":
                wait += seg.seconds
            elif seg.category == "untraced":
                untraced += seg.seconds
            else:
                by_rank[str(seg.rank)] = by_rank.get(str(seg.rank), 0.0) + seg.seconds
            if seg.comm:
                exposed_comm += seg.seconds
                comm_categories.add(seg.category)
        # Straggler analytics: the rank carrying the most on-path work,
        # and the mean per-rank barrier wait inside the window.
        straggler_rank = None
        if by_rank:
            best = max(by_rank.values())
            straggler_rank = min(r for r, s in by_rank.items() if s == best)
        n_lanes = max(len(graph.lanes), 1)
        skew = sum(
            _clip(s, graph.t0, graph.t1)
            for lane in graph.lanes.values()
            for s in lane
            if s.name == "wait" and s.category == "wait"
        )
        # Hidden comm: the part of each comm-stream transfer its rank's
        # compute clock never blocked on.  The engine links a transfer to
        # its exposed tail with a "wait" edge, so hidden time is exactly
        # the transfer interval minus the linked tail's overlap with it
        # (no tail → the transfer finished entirely under compute).
        # Reported as a per-rank mean, matching the runtime accounting.
        tails: dict[int, object] = {}
        by_id = {
            s.id: s for lane in graph.lanes.values() for s in lane if s.id >= 0
        }
        for edge in graph.edges:
            if edge.kind == "wait" and edge.dst in by_id:
                tails[edge.src] = by_id[edge.dst]
        hidden_total = 0.0
        for lane in graph.comm_lanes.values():
            for t_span in lane:
                a = max(t_span.start, graph.t0)
                b = min(t_span.end, graph.t1)
                if b <= a:
                    continue
                tail = tails.get(t_span.id)
                covered = (
                    max(min(tail.end, b) - max(tail.start, a), 0.0)
                    if tail is not None
                    else 0.0
                )
                hidden_total += max((b - a) - covered, 0.0)
        hidden = hidden_total / n_lanes
        top = sorted(
            segments, key=lambda s: (-s.seconds, s.start, str(s.rank), s.name)
        )[: self.config.top_segments]
        return {
            "step": int(step),
            "elapsed_s": graph.elapsed,
            "critpath_s": critpath,
            "exposed_comm_s": exposed_comm,
            "hidden_comm_s": hidden,
            "wait_s": wait,
            "untraced_s": untraced,
            "straggler_rank": straggler_rank,
            "straggler_skew_s": skew / n_lanes,
            "by_category": {k: by_category[k] for k in sorted(by_category)},
            "by_phase": {k: by_phase[k] for k in sorted(by_phase)},
            "by_rank": {k: by_rank[k] for k in sorted(by_rank)},
            "comm_categories": sorted(comm_categories),
            "top_segments": [s.to_dict() for s in top],
        }

    # -- end-of-run summary ----------------------------------------------------

    def report(self) -> dict | None:
        """Totals across all analysed steps (``None`` if nothing ran)."""
        if not self.records:
            return None
        by_category: dict[str, float] = {}
        rank_totals: dict[str, float] = {}
        totals = {
            "steps": len(self.records),
            "critpath_s": 0.0,
            "exposed_comm_s": 0.0,
            "hidden_comm_s": 0.0,
            "wait_s": 0.0,
            "untraced_s": 0.0,
            "straggler_skew_s": 0.0,
        }
        for r in self.records:
            totals["critpath_s"] += r["critpath_s"]
            totals["exposed_comm_s"] += r["exposed_comm_s"]
            totals["hidden_comm_s"] += r["hidden_comm_s"]
            totals["wait_s"] += r["wait_s"]
            totals["untraced_s"] += r["untraced_s"]
            totals["straggler_skew_s"] += r["straggler_skew_s"]
            for cat, s in r["by_category"].items():
                by_category[cat] = by_category.get(cat, 0.0) + s
            for rank, s in r["by_rank"].items():
                rank_totals[rank] = rank_totals.get(rank, 0.0) + s
        top_rank = None
        if rank_totals:
            best = max(rank_totals.values())
            top_rank = min(r for r, s in rank_totals.items() if s == best)
        totals["top_straggler_rank"] = top_rank
        totals["by_category"] = {k: by_category[k] for k in sorted(by_category)}
        return totals
