"""Per-step causal graph assembly over the tracer's span stream.

The xray engine never re-instruments anything: it consumes the spans
(and causal edges) the cluster, runtime, and trainers already emit, and
assembles them into one :class:`StepGraph` per training step.  The core
structural invariant it relies on — and that the critical-path tests
pin — is that on the convergence track every rank's **stream-0 sim
spans exactly tile that rank's clock timeline**: compute advances,
barrier waits, collective legs, fault delays, and exposed comm tails
each mirror one clock mutation, with no gaps and no overlaps.  The
timing track relaxes this (its barrier emits no span), which surfaces
as explicit ``untraced`` path segments rather than silent error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.tracer import SIM_TRACK, Edge, Span, span_sort_key

__all__ = ["COMM_OPS", "StepGraph", "build_step_graph", "is_comm"]

#: Span names that are collective operations on the wire.
COMM_OPS = frozenset(
    {"allreduce", "allgather", "broadcast", "reduce_scatter", "gather", "alltoall"}
)


def is_comm(span: Span) -> bool:
    """Whether a span represents time spent on (or blocked by) the wire.

    Collective op spans are named after their operation; runtime
    transfer/exposed-tail spans inherit the op name and always carry a
    ``nbytes_wire`` attribute, so either signal classifies.
    """
    return span.name in COMM_OPS or "nbytes_wire" in span.attrs


@dataclass
class StepGraph:
    """One step's causal view: per-rank lanes plus cross-span edges.

    ``lanes`` maps rank -> stream-0 sim spans intersecting the step
    window, in the documented stable order; ``comm_lanes`` holds the
    comm-stream (stream >= 1) transfer spans the runtime scheduled.
    """

    t0: float
    t1: float
    lanes: dict = field(default_factory=dict)
    comm_lanes: dict = field(default_factory=dict)
    edges: tuple = ()

    @property
    def elapsed(self) -> float:
        return self.t1 - self.t0

    def ranks(self) -> list:
        """Ranks present in either lane set, in stable (sortable) order."""
        keys = set(self.lanes) | set(self.comm_lanes)
        return sorted(keys, key=lambda r: (1, 0, str(r)) if isinstance(r, str) else (0, r, ""))


def build_step_graph(
    spans: list[Span],
    edges: tuple[Edge, ...] = (),
    *,
    t0: float,
    t1: float,
    tol: float = 1e-12,
) -> StepGraph:
    """Assemble the step DAG for the window ``[t0, t1]``.

    Only sim-track spans that genuinely intersect the window are kept
    (zero-duration marker spans — ``rank_failure``, ``corruption`` —
    are dropped; they are events, not time).  Lanes come out sorted by
    :func:`~repro.telemetry.tracer.span_sort_key`, so the graph is a
    pure function of the recorded span set.
    """
    graph = StepGraph(t0=t0, t1=t1, edges=tuple(edges))
    for span in sorted(spans, key=span_sort_key):
        if span.track != SIM_TRACK or span.duration <= tol:
            continue
        if span.end <= t0 + tol or span.start >= t1 - tol:
            continue
        target = graph.lanes if span.stream == 0 else graph.comm_lanes
        target.setdefault(span.rank, []).append(span)
    return graph
