"""Render a ledger's xray records as self-contained HTML and markdown.

Same contract as :mod:`repro.obsv.report`: pure functions of a parsed
:class:`~repro.obsv.ledger.RunLedger`, HTML with inline CSS and inline
SVG only (no scripts, no external assets), byte-deterministic given the
ledger.  The flame view renders each step as one horizontal bar whose
category slices are proportional to their on-path seconds — a
critical-path flame graph flattened to one level per step.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.util.tables import format_table
from repro.xray.attribute import xray_records

__all__ = ["render_xray_html", "render_xray_markdown", "write_xray_report"]

#: Deterministic category palette: hash-free, assignment by sorted order.
_COLORS = (
    "#2563eb", "#059669", "#d97706", "#7c3aed", "#0891b2",
    "#b91c1c", "#4d7c0f", "#9d174d", "#475569", "#a16207",
)

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem;
       color: #0f172a; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #cbd5e1; padding: .25rem .6rem; text-align: left;
         font-variant-numeric: tabular-nums; }
th { background: #f1f5f9; }
svg text { font: 10px system-ui, sans-serif; fill: #334155; }
.legend span { display: inline-block; margin-right: 1rem; }
.legend i { display: inline-block; width: .8em; height: .8em; margin-right: .3em;
            border-radius: 2px; }
"""


def _fmt(value) -> str:
    if isinstance(value, float):
        return format(value, ".6g")
    if value is None:
        return "-"
    return str(value)


def _palette(categories: list[str]) -> dict[str, str]:
    return {cat: _COLORS[i % len(_COLORS)] for i, cat in enumerate(categories)}


def _categories(records: list[dict]) -> list[str]:
    cats: set[str] = set()
    for r in records:
        cats.update(r.get("by_category", {}))
    return sorted(cats)


def _flame_svg(records: list[dict], colors: dict[str, str]) -> str:
    """Per-step stacked critical-path bars, one row per step."""
    width, row_h, pad, label_w = 680, 18, 4, 60
    vmax = max((r.get("critpath_s", 0.0) for r in records), default=0.0) or 1.0
    height = len(records) * (row_h + pad) + pad
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" role="img">'
    ]
    for row, r in enumerate(records):
        y = pad + row * (row_h + pad)
        parts.append(
            f'<text x="0" y="{y + row_h - 5}">step {r.get("step")}</text>'
        )
        x = float(label_w)
        scale = (width - label_w) / vmax
        for cat in sorted(r.get("by_category", {})):
            seconds = r["by_category"][cat]
            w = seconds * scale
            if w <= 0.0:
                continue
            title = html.escape(f"{cat}: {seconds:.6g} s")
            parts.append(
                f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" height="{row_h}" '
                f'fill="{colors[cat]}"><title>{title}</title></rect>'
            )
            x += w
    parts.append("</svg>")
    return "".join(parts)


def _legend(colors: dict[str, str]) -> str:
    return (
        '<p class="legend">'
        + "".join(
            f'<span><i style="background:{color}"></i>{html.escape(cat)}</span>'
            for cat, color in colors.items()
        )
        + "</p>"
    )


def _summary_rows(records: list[dict], final: dict | None) -> list[list]:
    if final:
        keys = (
            "steps", "critpath_s", "exposed_comm_s", "hidden_comm_s",
            "wait_s", "untraced_s", "straggler_skew_s", "top_straggler_rank",
        )
        return [[k, _fmt(final.get(k))] for k in keys if k in final]
    rows = [["steps", len(records)]]
    for key in ("critpath_s", "exposed_comm_s", "wait_s", "untraced_s"):
        rows.append([key, _fmt(sum(r.get(key, 0.0) for r in records))])
    return rows


def _step_rows(records: list[dict]) -> list[list]:
    return [
        [
            r.get("step"),
            _fmt(r.get("critpath_s")),
            _fmt(r.get("exposed_comm_s")),
            _fmt(r.get("hidden_comm_s")),
            _fmt(r.get("wait_s")),
            _fmt(r.get("straggler_rank")),
        ]
        for r in records
    ]


_STEP_HEADERS = ["step", "critpath s", "exposed comm s", "hidden comm s", "wait s", "straggler"]


def render_xray_markdown(ledger) -> str:
    """Markdown critical-path summary of an xray-enabled ledger."""
    records = xray_records(ledger)
    final = ledger.final.get("xray") if isinstance(ledger.final.get("xray"), dict) else None
    lines = [f"# Xray report — {ledger.manifest.get('kind', 'run')}", ""]
    if not records:
        lines.append("(no xray records in this ledger — record with xray enabled)")
        return "\n".join(lines) + "\n"
    lines.append("## Critical path per step")
    lines.append("")
    lines.append("```")
    lines.append(format_table(_STEP_HEADERS, _step_rows(records), floatfmt=".6g"))
    lines.append("```")
    lines.append("")
    lines.append("## Totals")
    lines.append("")
    for key, value in _summary_rows(records, final):
        lines.append(f"- **{key}**: `{value}`")
    longest: list[tuple] = []
    for r in records:
        for seg in r.get("top_segments", []):
            longest.append(
                (-seg.get("seconds", 0.0), r.get("step"), seg.get("name"),
                 seg.get("category"), seg.get("rank"), seg.get("seconds"))
            )
    if longest:
        lines.append("")
        lines.append("## Longest on-path segments")
        lines.append("")
        for _, step, name, category, rank, seconds in sorted(longest)[:10]:
            lines.append(
                f"- step {step}: `{name}` ({category}) on rank {rank} — "
                f"{_fmt(seconds)} s"
            )
    return "\n".join(lines) + "\n"


def render_xray_html(ledger) -> str:
    """Self-contained HTML flame / critical-path view of one ledger."""
    records = xray_records(ledger)
    final = ledger.final.get("xray") if isinstance(ledger.final.get("xray"), dict) else None
    kind = html.escape(str(ledger.manifest.get("kind", "run")))
    sections = [f"<h1>Xray report — {kind}</h1>"]
    if not records:
        sections.append("<p>(no xray records in this ledger)</p>")
    else:
        colors = _palette(_categories(records))
        sections.append("<h2>Critical-path flame view</h2>")
        sections.append(_legend(colors))
        sections.append(_flame_svg(records, colors))
        sections.append("<h2>Per-step attribution</h2>")
        head = "".join(f"<th>{html.escape(h)}</th>" for h in _STEP_HEADERS)
        body = "".join(
            "<tr>" + "".join(f"<td>{html.escape(_fmt(c))}</td>" for c in row) + "</tr>"
            for row in _step_rows(records)
        )
        sections.append(
            f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
        )
        sections.append("<h2>Totals</h2>")
        body = "".join(
            f"<tr><td>{html.escape(str(k))}</td><td>{html.escape(_fmt(v))}</td></tr>"
            for k, v in _summary_rows(records, final)
        )
        sections.append(
            f"<table><thead><tr><th>metric</th><th>value</th></tr></thead>"
            f"<tbody>{body}</tbody></table>"
        )
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>xray report</title><style>{_CSS}</style></head><body>"
        + "".join(sections)
        + "</body></html>\n"
    )


def write_xray_report(
    ledger,
    *,
    html_path: str | Path | None = None,
    md_path: str | Path | None = None,
) -> list[Path]:
    """Write the xray HTML and/or markdown views; returns paths written."""
    written: list[Path] = []
    if html_path is not None:
        p = Path(html_path)
        p.write_text(render_xray_html(ledger))
        written.append(p)
    if md_path is not None:
        p = Path(md_path)
        p.write_text(render_xray_markdown(ledger))
        written.append(p)
    return written
