"""repro.xray — causal trace graph, critical path, and attribution.

The observability ledger (:mod:`repro.obsv`) records *what happened*;
xray answers *why it took that long*.  It assembles the tracer's span
stream into one causal :class:`StepGraph` per training step, extracts
the critical path (whose segment seconds sum exactly to the step's
simulated elapsed time), and folds the path into deterministic
attribution records — seconds on-path by category/phase/rank, exposed
vs hidden communication, and the straggler rank.  ``repro xray``
renders those records as a flame view; ``repro diff --attribute``
compares two runs' records and names the segment that regressed.

Everything here is a pure function of the recorded spans: enabling
xray never mutates clocks, consumes randomness, or changes a run's
numerics, and ``xray=None`` stays bit-identical to a build without
this package.
"""

from repro.xray.analyzer import XrayAnalyzer, XrayConfig, as_xray
from repro.xray.attribute import attribute_regression, xray_records
from repro.xray.critical import PathSegment, critical_path
from repro.xray.graph import COMM_OPS, StepGraph, build_step_graph, is_comm
from repro.xray.render import render_xray_html, render_xray_markdown, write_xray_report

__all__ = [
    "COMM_OPS",
    "PathSegment",
    "StepGraph",
    "XrayAnalyzer",
    "XrayConfig",
    "as_xray",
    "attribute_regression",
    "build_step_graph",
    "critical_path",
    "is_comm",
    "render_xray_html",
    "render_xray_markdown",
    "write_xray_report",
    "xray_records",
]
