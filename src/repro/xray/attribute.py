"""Regression attribution between two xray-enabled run ledgers.

``repro diff`` says *that* a run regressed; this module says *where*:
it merges both runs' per-step critical-path category totals and names
the segment whose on-path seconds grew the most, classified as comm,
wait, untraced, or compute.  Pure function of the two ledgers.
"""

from __future__ import annotations

__all__ = ["attribute_regression", "xray_records"]


def xray_records(ledger) -> list[dict]:
    """The per-step xray attribution records of a ledger (may be [])."""
    return [r["xray"] for r in ledger.steps if isinstance(r.get("xray"), dict)]


def _totals(records: list[dict]) -> tuple[dict[str, float], dict[str, float], set[str], float]:
    by_category: dict[str, float] = {}
    by_phase: dict[str, float] = {}
    comm_categories: set[str] = set()
    critpath = 0.0
    for r in records:
        critpath += r.get("critpath_s", 0.0)
        for cat, s in r.get("by_category", {}).items():
            by_category[cat] = by_category.get(cat, 0.0) + s
        for phase, s in r.get("by_phase", {}).items():
            by_phase[phase] = by_phase.get(phase, 0.0) + s
        comm_categories.update(r.get("comm_categories", []))
    return by_category, by_phase, comm_categories, critpath


def attribute_regression(baseline, candidate) -> dict | None:
    """Name the critical-path segment responsible for a slowdown.

    Returns ``None`` when either ledger lacks xray records (attribution
    needs both sides analysed).  Otherwise the verdict names the
    category with the largest positive critical-path delta, its kind
    (``comm`` / ``wait`` / ``untraced`` / ``compute``), the share of
    the total slowdown it explains, and the phase (span name) that
    moved most — enough to point an engineer at one subsystem.
    """
    base_records = xray_records(baseline)
    cand_records = xray_records(candidate)
    if not base_records or not cand_records:
        return None
    base_cat, base_phase, base_comm, base_total = _totals(base_records)
    cand_cat, cand_phase, cand_comm, cand_total = _totals(cand_records)
    deltas = {
        cat: cand_cat.get(cat, 0.0) - base_cat.get(cat, 0.0)
        for cat in sorted(set(base_cat) | set(cand_cat))
    }
    if not deltas:
        return None
    worst = max(deltas.values())
    segment = min(cat for cat, d in deltas.items() if d == worst)
    comm_cats = base_comm | cand_comm
    if segment in comm_cats:
        kind = "comm"
    elif segment in ("wait", "untraced"):
        kind = segment
    else:
        kind = "compute"
    phase_deltas = {
        p: cand_phase.get(p, 0.0) - base_phase.get(p, 0.0)
        for p in sorted(set(base_phase) | set(cand_phase))
    }
    phase = None
    if phase_deltas:
        worst_phase = max(phase_deltas.values())
        phase = min(p for p, d in phase_deltas.items() if d == worst_phase)
    total_delta = cand_total - base_total
    share = deltas[segment] / total_delta if total_delta > 0 else None
    return {
        "segment": segment,
        "kind": kind,
        "delta_s": deltas[segment],
        "total_delta_s": total_delta,
        "share": share,
        "phase": phase,
        "by_category_delta": deltas,
    }
