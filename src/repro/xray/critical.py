"""Critical-path extraction over a :class:`~repro.xray.graph.StepGraph`.

The walk runs **backwards** from the step's end: at every point in time
it sits on exactly one rank and consumes the stream-0 span that ends
there, jumping ranks only through barrier-wait spans — a wait records
"this rank was idle until the slowest participant arrived", so the path
hops to the rank that was actually working at that instant (the
straggler).  Segment boundaries telescope, which gives the subsystem's
central identity *by construction*:

    sum of critical-path segment seconds == t1 - t0  (the step's
    simulated elapsed time), exactly, for blocking and overlapped runs.

Time the tracer cannot account for (timing-track barrier gaps, spans
from subsystems recorded outside the window) becomes explicit
``untraced`` segments instead of silently breaking the identity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xray.graph import StepGraph, is_comm

__all__ = ["PathSegment", "critical_path"]

#: Internal time comparison tolerance (seconds).  Well below the 1e-9
#: identity the tests assert, well above float64 noise at sim scales.
_TOL = 1e-12


@dataclass(frozen=True)
class PathSegment:
    """One contiguous stretch of the critical path on a single rank."""

    name: str
    category: str
    rank: object
    start: float
    end: float
    #: Whether the underlying span was wire time (see :func:`is_comm`).
    comm: bool = False

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "rank": str(self.rank),
            "start_s": self.start,
            "seconds": self.seconds,
        }


def _is_barrier_wait(span) -> bool:
    return span.name == "wait" and span.category == "wait"


def _covering_index(lane: list, hint: int, t: float) -> int:
    """Largest index whose span starts strictly before ``t`` (or -1).

    ``hint`` is the previous pointer; the walk's time is non-increasing,
    so the scan only ever moves left — the whole walk is O(spans).
    """
    i = min(hint, len(lane) - 1)
    while i >= 0 and lane[i].start >= t - _TOL:
        i -= 1
    return i


def critical_path(graph: StepGraph, *, tol: float = _TOL) -> list[PathSegment]:
    """Extract the step's critical path as a list of segments.

    Segments come out in reverse-chronological walk order but are
    returned sorted by start time; their seconds always sum to exactly
    ``graph.elapsed`` (telescoping boundaries plus explicit untraced
    filler).
    """
    t0, t1 = graph.t0, graph.t1
    if t1 - t0 <= tol:
        return []
    lanes = {r: lane for r, lane in graph.lanes.items() if lane}
    if not lanes:
        return [PathSegment("untraced", "untraced", "*", t0, t1)]
    rank_order = sorted(
        lanes, key=lambda r: (1, 0, str(r)) if isinstance(r, str) else (0, r, "")
    )
    # Start on the rank whose lane reaches furthest — the rank that
    # defines the step's end time (ties break to the lowest rank).
    rank = rank_order[0]
    for r in rank_order[1:]:
        if lanes[r][-1].end > lanes[rank][-1].end + tol:
            rank = r
    pointer = {r: len(lane) - 1 for r, lane in lanes.items()}
    segments: list[PathSegment] = []
    t = t1
    while t > t0 + tol:
        lane = lanes[rank]
        i = _covering_index(lane, pointer[rank], t)
        pointer[rank] = i
        if i < 0 or lane[i].end < t - tol:
            # Nothing on this rank accounts for the time ending at t:
            # an instrumentation gap (timing-track barriers emit no
            # span).  Fill down to the nearest accounted boundary.
            floor = lane[i].end if i >= 0 else t0
            start = max(floor, t0)
            segments.append(PathSegment("untraced", "untraced", rank, start, t))
            t = start
            continue
        span = lane[i]
        if _is_barrier_wait(span):
            # This rank idled until the slowest participant arrived;
            # the critical path continues on the rank that was working
            # right up to the barrier point.
            jumped = False
            for r in rank_order:
                if r == rank:
                    continue
                j = _covering_index(lanes[r], pointer[r], t)
                pointer[r] = j
                if j >= 0 and lanes[r][j].end >= t - tol and not _is_barrier_wait(lanes[r][j]):
                    rank = r
                    jumped = True
                    break
            if jumped:
                continue
            # Every lane ends in a wait here (degenerate, e.g. a pure
            # fault-injected stall): charge the wait itself so the walk
            # always terminates.
        start = max(span.start, t0)
        segments.append(
            PathSegment(span.name, span.category, rank, start, t, comm=is_comm(span))
        )
        t = start
        pointer[rank] -= 1
    segments.reverse()
    return segments
