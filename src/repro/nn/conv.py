"""2D convolution via im2col, with K-FAC statistics capture.

K-FAC for conv layers (Grosse & Martens, ICML'16) treats every spatial
location of every sample as an independent "sample": the activation
factor is built from im2col patches, the gradient factor from the
per-location output gradients.  The im2col/col2im pair below is fully
vectorised with stride tricks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import KfacLayerMixin, Module, Parameter
from repro.util.seeding import spawn_rng

__all__ = ["Conv2d", "im2col", "col2im"]


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """(N, C, H, W) -> (N, out_h, out_w, C*kh*kw) patch matrix."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    hp, wp = x.shape[2], x.shape[3]
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    shape = (n, c, out_h, out_w, kh, kw)
    strides = (s0, s1, s2 * stride, s3 * stride, s2, s3)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    # -> (N, out_h, out_w, C, kh, kw) -> flatten patch dims
    return np.ascontiguousarray(patches.transpose(0, 2, 3, 1, 4, 5)).reshape(
        n, out_h, out_w, c * kh * kw
    )


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patches back to (N, C, H, W)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    x = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            x[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols6[
                :, :, :, :, i, j
            ]
    if pad:
        x = x[:, :, pad : pad + h, pad : pad + w]
    return x


class Conv2d(Module, KfacLayerMixin):
    """Stride/padding 2D convolution, weight (out_c, in_c, kh, kw)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | int | None = 0,
    ):
        super().__init__()
        rng = spawn_rng(rng)
        k = kernel_size
        fan_in = in_channels * k * k
        bound = float(np.sqrt(6.0 / fan_in))
        self.weight = Parameter(rng.uniform(-bound, bound, (out_channels, in_channels, k, k)))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = k
        self.stride = stride
        self.padding = padding
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        k = self.kernel_size
        cols = im2col(x, k, k, self.stride, self.padding)  # (N, oh, ow, C*k*k)
        self._cols = cols
        n, oh, ow, patch = cols.shape
        w2 = self.weight.data.reshape(self.out_channels, patch)
        y = cols.reshape(-1, patch) @ w2.T
        if self.bias is not None:
            y += self.bias.data
        return y.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        cols = self._cols
        if cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, oh, ow, patch = cols.shape
        g = grad_out.transpose(0, 2, 3, 1).reshape(-1, self.out_channels).astype(np.float32)
        flat_cols = cols.reshape(-1, patch)
        self.weight.grad += (g.T @ flat_cols).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += g.sum(axis=0)
        if self.training:
            # K-FAC conv statistics: spatial locations are samples.  Scale
            # g by the batch size (not locations) to undo the loss mean.
            rows = flat_cols
            if self.bias is not None:
                rows = np.concatenate(
                    [flat_cols, np.ones((flat_cols.shape[0], 1), dtype=np.float32)], axis=1
                )
            self.last_a = rows
            self.last_g = g * n
        w2 = self.weight.data.reshape(self.out_channels, patch)
        grad_cols = (g @ w2).reshape(n, oh, ow, patch)
        k = self.kernel_size
        return col2im(grad_cols, self._x_shape, k, k, self.stride, self.padding)

    # -- K-FAC hooks ----------------------------------------------------------

    def kfac_weight_grad(self) -> np.ndarray:
        patch = self.in_channels * self.kernel_size**2
        wgrad = self.weight.grad.reshape(self.out_channels, patch)
        if self.bias is not None:
            return np.concatenate([wgrad, self.bias.grad[:, None]], axis=1)
        return wgrad.copy()

    def set_kfac_weight_grad(self, grad: np.ndarray) -> None:
        patch = self.in_channels * self.kernel_size**2
        if self.bias is not None:
            self.weight.grad = np.ascontiguousarray(grad[:, :-1]).reshape(self.weight.data.shape)
            self.bias.grad = np.ascontiguousarray(grad[:, -1])
        else:
            self.weight.grad = np.ascontiguousarray(grad).reshape(self.weight.data.shape)
