"""Multi-head self-attention built from Linear projections.

The QKV/output projections are :class:`repro.nn.Linear` modules, so they
are K-FAC-preconditioned like every other dense layer (this is what makes
the transformer proxies exercise the same per-layer K-FAC gradient sizes
and sensitivities as BERT/GPT).  The softmax-attention core has a
hand-written backward.
"""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.util.seeding import spawn_rng

__all__ = ["MultiHeadSelfAttention"]


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    z = x - x.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


class MultiHeadSelfAttention(Module):
    """(N, T, D) -> (N, T, D) with ``heads`` attention heads."""

    def __init__(
        self,
        dim: int,
        heads: int,
        *,
        causal: bool = False,
        rng: np.random.Generator | int | None = 0,
    ):
        super().__init__()
        if dim % heads:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        rng = spawn_rng(rng)
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.causal = causal
        self.wq = Linear(dim, dim, rng=spawn_rng(rng, 0))
        self.wk = Linear(dim, dim, rng=spawn_rng(rng, 1))
        self.wv = Linear(dim, dim, rng=spawn_rng(rng, 2))
        self.wo = Linear(dim, dim, rng=spawn_rng(rng, 3))

    def _split(self, x: np.ndarray) -> np.ndarray:
        n, t, _ = x.shape
        return x.reshape(n, t, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        n, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(n, t, h * d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, t, _ = x.shape
        q = self._split(self.wq(x))
        k = self._split(self.wk(x))
        v = self._split(self.wv(x))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = np.einsum("nhtd,nhsd->nhts", q, k) * scale
        if self.causal:
            mask = np.triu(np.ones((t, t), dtype=bool), k=1)
            scores = np.where(mask, -1e9, scores)
        attn = _softmax(scores)
        ctx = np.einsum("nhts,nhsd->nhtd", attn, v)
        self._cache = (q, k, v, attn, scale)
        return self.wo(self._merge(ctx))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        q, k, v, attn, scale = self._cache
        d_ctx = self._split(self.wo.backward(grad_out))
        d_attn = np.einsum("nhtd,nhsd->nhts", d_ctx, v)
        d_v = np.einsum("nhts,nhtd->nhsd", attn, d_ctx)
        # Softmax backward: dS = A * (dA - sum(dA*A))
        inner = (d_attn * attn).sum(axis=-1, keepdims=True)
        d_scores = attn * (d_attn - inner)
        if self.causal:
            t = attn.shape[-1]
            mask = np.triu(np.ones((t, t), dtype=bool), k=1)
            d_scores = np.where(mask, 0.0, d_scores)
        d_scores = d_scores * scale
        d_q = np.einsum("nhts,nhsd->nhtd", d_scores, k)
        d_k = np.einsum("nhts,nhtd->nhsd", d_scores, q)
        dx = self.wq.backward(self._merge(d_q))
        dx = dx + self.wk.backward(self._merge(d_k))
        dx = dx + self.wv.backward(self._merge(d_v))
        return dx
