"""Module composition."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["Sequential", "Residual"]


class Sequential(Module):
    """Run sub-modules in order; backward in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


class Residual(Module):
    """y = x + inner(x) (shapes must match)."""

    def __init__(self, inner: Module):
        super().__init__()
        self.inner = inner

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x + self.inner(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out + self.inner.backward(grad_out)
