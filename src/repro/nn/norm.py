"""Normalisation layers (elementwise-affine; not K-FAC-preconditioned,
matching distributed K-FAC practice of handling norm params with the
first-order update)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["LayerNorm", "BatchNorm2d"]


class LayerNorm(Module):
    """Normalise over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))
        self.eps = eps
        self.dim = dim

    def forward(self, x: np.ndarray) -> np.ndarray:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        self._inv_std = 1.0 / np.sqrt(var + self.eps)
        self._xhat = (x - mu) * self._inv_std
        return self.gamma.data * self._xhat + self.beta.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        xhat, inv_std = self._xhat, self._inv_std
        d = self.dim
        reduce_axes = tuple(range(grad_out.ndim - 1))
        self.gamma.grad += (grad_out * xhat).sum(axis=reduce_axes)
        self.beta.grad += grad_out.sum(axis=reduce_axes)
        gx = grad_out * self.gamma.data
        mean_gx = gx.mean(axis=-1, keepdims=True)
        mean_gx_xhat = (gx * xhat).mean(axis=-1, keepdims=True)
        return inv_std * (gx - mean_gx - xhat * mean_gx_xhat)


class BatchNorm2d(Module):
    """Per-channel batch normalisation for (N, C, H, W) tensors."""

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))
        self.eps = eps
        self.momentum = momentum
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mu = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mu
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mu, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        self._inv_std = inv_std
        self._xhat = (x - mu[None, :, None, None]) * inv_std[None, :, None, None]
        self._m = x.shape[0] * x.shape[2] * x.shape[3]
        return (
            self.gamma.data[None, :, None, None] * self._xhat
            + self.beta.data[None, :, None, None]
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        xhat = self._xhat
        self.gamma.grad += (grad_out * xhat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))
        if not self.training:
            return (
                grad_out
                * self.gamma.data[None, :, None, None]
                * self._inv_std[None, :, None, None]
            )
        gx = grad_out * self.gamma.data[None, :, None, None]
        mean_gx = gx.mean(axis=(0, 2, 3), keepdims=True)
        mean_gx_xhat = (gx * xhat).mean(axis=(0, 2, 3), keepdims=True)
        return self._inv_std[None, :, None, None] * (gx - mean_gx - xhat * mean_gx_xhat)
