"""Token embedding (first-order updated; K-FAC skips embeddings, as in
kfac-pytorch, because the one-hot activation factor is vocabulary-sized)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.util.seeding import spawn_rng

__all__ = ["Embedding"]


class Embedding(Module):
    """Integer token ids (N, T) -> vectors (N, T, dim)."""

    def __init__(self, vocab: int, dim: int, *, rng: np.random.Generator | int | None = 0):
        super().__init__()
        rng = spawn_rng(rng)
        self.weight = Parameter(rng.normal(0.0, 0.02, (vocab, dim)))
        self.vocab = vocab
        self.dim = dim

    def forward(self, ids: np.ndarray) -> np.ndarray:
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError(f"Embedding expects integer ids, got {ids.dtype}")
        self._ids = ids
        return self.weight.data[ids]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        flat_ids = self._ids.ravel()
        flat_grad = grad_out.reshape(-1, self.dim)
        np.add.at(self.weight.grad, flat_ids, flat_grad)
        # Token ids have no gradient.
        return np.zeros_like(self._ids, dtype=np.float32)
