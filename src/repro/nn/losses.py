"""Loss functions.

Each returns ``(loss_value, grad_wrt_logits)`` with the gradient already
scaled for a *mean* loss over the batch, matching the substrate's
backward convention.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax_cross_entropy", "mse_loss", "smooth_l1_loss"]


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=-1, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=-1, keepdims=True))


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray, *, ignore_index: int | None = None
) -> tuple[float, np.ndarray]:
    """Cross-entropy over the last axis; ``targets`` are integer class ids.

    Leading dims are flattened (so (N, T, V) logits with (N, T) targets
    work for language modelling).  ``ignore_index`` masks padding tokens
    out of both the loss and the gradient.
    """
    v = logits.shape[-1]
    flat_logits = logits.reshape(-1, v)
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        keep = flat_targets != ignore_index
    else:
        keep = np.ones(flat_targets.size, dtype=bool)
    n_eff = max(int(keep.sum()), 1)
    logp = _log_softmax(flat_logits)
    rows = np.arange(flat_targets.size)
    safe_targets = np.where(keep, flat_targets, 0)
    losses = -logp[rows, safe_targets] * keep
    loss = float(losses.sum() / n_eff)
    grad = np.exp(logp)
    grad[rows, safe_targets] -= 1.0
    grad *= keep[:, None] / n_eff
    return loss, grad.reshape(logits.shape).astype(np.float32)


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error over all elements."""
    diff = pred - target
    n = diff.size
    loss = float((diff**2).mean())
    return loss, (2.0 / n) * diff.astype(np.float32)


def smooth_l1_loss(pred: np.ndarray, target: np.ndarray, beta: float = 1.0) -> tuple[float, np.ndarray]:
    """Huber / smooth-L1, the box-regression loss of detection heads."""
    diff = pred - target
    absd = np.abs(diff)
    quad = absd < beta
    losses = np.where(quad, 0.5 * diff**2 / beta, absd - 0.5 * beta)
    n = diff.size
    grad = np.where(quad, diff / beta, np.sign(diff)) / n
    return float(losses.mean()), grad.astype(np.float32)
