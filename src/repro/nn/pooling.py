"""Pooling and reshaping modules for CNN proxies."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["AvgPool2d", "MaxPool2d", "GlobalAvgPool2d", "Flatten"]


class AvgPool2d(Module):
    """Non-overlapping average pooling with window ``k``."""

    def __init__(self, k: int):
        super().__init__()
        if k <= 0:
            raise ValueError("pool size must be positive")
        self.k = k

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.k
        if h % k or w % k:
            raise ValueError(f"spatial dims ({h},{w}) not divisible by pool {k}")
        self._in_shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        k = self.k
        g = grad_out / (k * k)
        g = np.repeat(np.repeat(g, k, axis=2), k, axis=3)
        return g


class MaxPool2d(Module):
    """Non-overlapping max pooling with window ``k``."""

    def __init__(self, k: int):
        super().__init__()
        self.k = k

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.k
        if h % k or w % k:
            raise ValueError(f"spatial dims ({h},{w}) not divisible by pool {k}")
        blocks = x.reshape(n, c, h // k, k, w // k, k)
        flat = blocks.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h // k, w // k, k * k)
        self._argmax = flat.argmax(axis=-1)
        self._in_shape = x.shape
        return flat.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, h, w = self._in_shape
        k = self.k
        oh, ow = h // k, w // k
        flat = np.zeros((n, c, oh, ow, k * k), dtype=grad_out.dtype)
        np.put_along_axis(flat, self._argmax[..., None], grad_out[..., None], axis=-1)
        blocks = flat.reshape(n, c, oh, ow, k, k).transpose(0, 1, 2, 4, 3, 5)
        return blocks.reshape(n, c, h, w)


class GlobalAvgPool2d(Module):
    """(N, C, H, W) -> (N, C) spatial mean."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, h, w = self._in_shape
        return np.broadcast_to(grad_out[:, :, None, None] / (h * w), self._in_shape).copy()


class Flatten(Module):
    """Flatten all non-batch dims."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._in_shape)
