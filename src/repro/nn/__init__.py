"""NumPy neural-network substrate with K-FAC statistics capture."""

from repro.nn.activations import GELU, ReLU, Sigmoid, Tanh
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.container import Residual, Sequential
from repro.nn.conv import Conv2d, col2im, im2col
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.losses import mse_loss, smooth_l1_loss, softmax_cross_entropy
from repro.nn.module import KfacLayerMixin, Module, Parameter
from repro.nn.norm import BatchNorm2d, LayerNorm
from repro.nn.pooling import AvgPool2d, Flatten, GlobalAvgPool2d, MaxPool2d
from repro.nn.regularization import Dropout, GroupNorm

__all__ = [
    "Module",
    "Parameter",
    "KfacLayerMixin",
    "Linear",
    "Conv2d",
    "im2col",
    "col2im",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "LayerNorm",
    "BatchNorm2d",
    "Dropout",
    "GroupNorm",
    "Sequential",
    "Residual",
    "Embedding",
    "MultiHeadSelfAttention",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "softmax_cross_entropy",
    "mse_loss",
    "smooth_l1_loss",
]
