"""Regularisation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.util.seeding import spawn_rng

__all__ = ["Dropout", "GroupNorm"]


class Dropout(Module):
    """Inverted dropout: active in training mode, identity in eval."""

    def __init__(self, p: float = 0.1, *, rng: np.random.Generator | int | None = 0):
        super().__init__()
        if not 0 <= p < 1:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = spawn_rng(rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class GroupNorm(Module):
    """Group normalisation over (N, C, H, W) tensors."""

    def __init__(self, groups: int, channels: int, eps: float = 1e-5):
        super().__init__()
        if channels % groups:
            raise ValueError(f"channels {channels} not divisible by groups {groups}")
        self.groups = groups
        self.channels = channels
        self.eps = eps
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        g = self.groups
        xg = x.reshape(n, g, c // g * h * w)
        mu = xg.mean(axis=2, keepdims=True)
        var = xg.var(axis=2, keepdims=True)
        self._inv_std = 1.0 / np.sqrt(var + self.eps)
        self._xhat = ((xg - mu) * self._inv_std).reshape(n, c, h, w)
        return self.gamma.data[None, :, None, None] * self._xhat + self.beta.data[None, :, None, None]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, h, w = grad_out.shape
        g = self.groups
        xhat = self._xhat
        self.gamma.grad += (grad_out * xhat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))
        gx = (grad_out * self.gamma.data[None, :, None, None]).reshape(n, g, -1)
        xh = xhat.reshape(n, g, -1)
        mean_gx = gx.mean(axis=2, keepdims=True)
        mean_gx_xh = (gx * xh).mean(axis=2, keepdims=True)
        dx = self._inv_std * (gx - mean_gx - xh * mean_gx_xh)
        return dx.reshape(n, c, h, w)
