"""Elementwise activation modules."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["ReLU", "GELU", "Tanh", "Sigmoid"]


class ReLU(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_out, 0.0)


class GELU(Module):
    """tanh-approximation GELU (as used by BERT/GPT)."""

    _C = np.float32(np.sqrt(2.0 / np.pi))

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        inner = self._C * (x + 0.044715 * x**3)
        self._tanh = np.tanh(inner)
        return 0.5 * x * (1.0 + self._tanh)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x, t = self._x, self._tanh
        dinner = self._C * (1.0 + 3 * 0.044715 * x**2)
        dtanh = (1.0 - t**2) * dinner
        return grad_out * (0.5 * (1.0 + t) + 0.5 * x * dtanh)


class Tanh(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._y**2)


class Sigmoid(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-x))
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._y * (1.0 - self._y)
