"""Minimal NumPy neural-network substrate.

A deliberately small module system with hand-written backward passes.
Its one K-FAC-specific feature: layers that support K-FAC (Linear,
Conv2d) cache the activation input ``a`` and the gradient w.r.t. their
pre-activation output ``g`` during forward/backward — the two statistics
Eq. 1 builds the Kronecker factors from.

Conventions:
* batch dimension first; losses are means over the batch;
* ``backward(grad_out)`` consumes dL/d(output), accumulates dL/d(param)
  into ``Parameter.grad`` and returns dL/d(input);
* K-FAC layers additionally store ``last_a`` (with bias column appended)
  and ``last_g`` (per-sample grads of the *summed* loss, i.e. the mean
  gradient times batch size, following the kfac-pytorch convention).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["Parameter", "Module", "KfacLayerMixin"]


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class: composable forward/backward with parameter discovery."""

    def __init__(self) -> None:
        self.training = True

    # -- graph traversal ----------------------------------------------------

    def children(self) -> Iterator["Module"]:
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self.children():
            yield from child.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in self.__dict__.items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def kfac_layers(self) -> list["KfacLayerMixin"]:
        """All K-FAC-capable layers in forward order."""
        return [m for m in self.modules() if isinstance(m, KfacLayerMixin)]

    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    # -- compute ------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class KfacLayerMixin:
    """Marker + storage for layers that expose K-FAC statistics.

    After a forward/backward pass, ``last_a`` holds the activation input
    (samples x in_features, bias column included when the layer has a
    bias) and ``last_g`` the per-sample pre-activation gradients
    (samples x out_features).
    """

    last_a: np.ndarray | None = None
    last_g: np.ndarray | None = None

    def kfac_weight_grad(self) -> np.ndarray:
        """Combined (out, in[+1]) gradient matrix the preconditioner acts on."""
        raise NotImplementedError

    def set_kfac_weight_grad(self, grad: np.ndarray) -> None:
        """Write a preconditioned (out, in[+1]) gradient back to the params."""
        raise NotImplementedError
