"""Fully-connected layer with K-FAC statistics capture."""

from __future__ import annotations

import numpy as np

from repro.nn.module import KfacLayerMixin, Module, Parameter
from repro.util.seeding import spawn_rng

__all__ = ["Linear"]


class Linear(Module, KfacLayerMixin):
    """y = x @ W.T + b, with Kaiming-uniform init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: np.random.Generator | int | None = 0,
    ):
        super().__init__()
        rng = spawn_rng(rng)
        bound = float(np.sqrt(6.0 / in_features))
        self.weight = Parameter(rng.uniform(-bound, bound, (out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Accept (..., in_features); flatten leading dims for the matmul.
        self._orig_shape = x.shape
        x2 = x.reshape(-1, self.in_features)
        self._x = x2
        y = x2 @ self.weight.data.T
        if self.bias is not None:
            y += self.bias.data
        return y.reshape(*self._orig_shape[:-1], self.out_features)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g2 = grad_out.reshape(-1, self.out_features).astype(np.float32)
        x2 = self._x
        if x2 is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += g2.T @ x2
        if self.bias is not None:
            self.bias.grad += g2.sum(axis=0)
        if self.training:
            n = g2.shape[0]
            if self.bias is not None:
                self.last_a = np.concatenate([x2, np.ones((n, 1), dtype=np.float32)], axis=1)
            else:
                self.last_a = x2
            # Per-sample gradients of the summed loss: undo the 1/N of a
            # mean loss by scaling with the sample count.
            self.last_g = g2 * n
        grad_in = g2 @ self.weight.data
        return grad_in.reshape(self._orig_shape)

    # -- K-FAC hooks ----------------------------------------------------------

    def kfac_weight_grad(self) -> np.ndarray:
        if self.bias is not None:
            return np.concatenate([self.weight.grad, self.bias.grad[:, None]], axis=1)
        return self.weight.grad.copy()

    def set_kfac_weight_grad(self, grad: np.ndarray) -> None:
        if self.bias is not None:
            self.weight.grad = np.ascontiguousarray(grad[:, :-1])
            self.bias.grad = np.ascontiguousarray(grad[:, -1])
        else:
            self.weight.grad = np.ascontiguousarray(grad)
