"""COMPSO: the paper's primary contribution.

* :class:`CompsoCompressor` — filter + bitmap + SR + lossless encoder
  (Algorithm 1's compression pipeline);
* :class:`AdaptiveCompso` with Step/Smooth LR schedules — iteration-wise
  adaptive error bounds (Algorithm 1's control flow);
* :class:`LayerAggregator` — layer-wise aggregation;
* :class:`PerformanceModel` — Eq. 5 with the offline lookup table and
  online profiling, driving aggregation-factor and encoder selection.
"""

from repro.core.adaptive import AdaptiveCompso, Bounds, SmoothLrSchedule, StepLrSchedule
from repro.core.autotune import FidelityBudget, TuneResult, autotune_bounds
from repro.core.compso import CompsoCompressor
from repro.core.factor_compression import FactorCompressor
from repro.core.layer_aggregation import LayerAggregator
from repro.core.perf_model import CommLookupTable, PerformanceModel, ProfiledStats

__all__ = [
    "CompsoCompressor",
    "AdaptiveCompso",
    "Bounds",
    "StepLrSchedule",
    "SmoothLrSchedule",
    "LayerAggregator",
    "PerformanceModel",
    "CommLookupTable",
    "ProfiledStats",
    "autotune_bounds",
    "FidelityBudget",
    "TuneResult",
    "FactorCompressor",
]
