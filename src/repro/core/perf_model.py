"""The COMPSO performance model (paper section 4.4, Eq. 5).

The model guarantees end-to-end gain by estimating, *before* committing
to a configuration, the communication speedup

    s = ( sum_i L_o / C_o ) / ( L_c / C_c  +  sum_i L_o / T_comp  +  L_c / T_decomp )

and the end-to-end speedup  ((1 - r) + r / s)^-1,  where:

* ``L_o`` / ``L_c`` — original / compressed gradient bytes (measured on
  real data online);
* ``C_o`` / ``C_c`` — communication throughput at those sizes, read from
  a **lookup table built offline** by sweeping synthetic message sizes and
  GPU counts on each system;
* ``T_comp`` / ``T_decomp`` — compressor throughputs averaged over the
  first ``k`` warmup iterations;
* ``r`` — the communication share of iteration time without compression.

Two decisions are driven by the model: the **layer-aggregation factor m**
(bigger aggregates amortise kernel/encoder overhead but delay the eager
per-layer pipeline) and the **lossless encoder** (smallest L_c at
acceptable throughput).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layer_aggregation import LayerAggregator
from repro.distributed.collectives import allgather_time
from repro.distributed.network import NetworkSpec
from repro.encoders.registry import NVCOMP_CANDIDATES
from repro.gpusim.device import A100, DeviceModel
from repro.gpusim.encoder_perf import ENCODER_PERF
from repro.gpusim.kernels import PIPELINES, KernelPipeline

__all__ = ["CommLookupTable", "ProfiledStats", "PerformanceModel"]


class CommLookupTable:
    """Offline message-size x GPU-count -> throughput table (section 4.4).

    Built once per system from synthetic-payload sweeps (our sweeps
    evaluate the simulator's collective cost model, playing the role of
    the paper's offline microbenchmarks) and queried online with
    log-space interpolation.
    """

    def __init__(
        self,
        network: NetworkSpec,
        gpus_per_node: int = 4,
        *,
        sizes: np.ndarray | None = None,
        gpu_counts: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256),
    ):
        self.network = network
        self.gpus_per_node = gpus_per_node
        self.sizes = (
            sizes if sizes is not None else np.logspace(3, 9, 25)  # 1 KB .. 1 GB
        )
        self.gpu_counts = gpu_counts
        self.table: dict[int, np.ndarray] = {}
        for p in gpu_counts:
            tput = np.array(
                [s / max(allgather_time(network, p, s / p, gpus_per_node), 1e-12) for s in self.sizes]
            )
            self.table[p] = tput

    def throughput(self, p: int, nbytes: float) -> float:
        """Interpolated aggregate throughput (bytes/s) for total payload."""
        if p <= 1:
            return float("inf")
        counts = np.array(self.gpu_counts)
        p_key = int(counts[np.argmin(np.abs(counts - p))])
        tput = self.table[p_key]
        log_n = np.log10(max(nbytes, self.sizes[0]))
        return float(np.interp(log_n, np.log10(self.sizes), tput))

    def time(self, p: int, nbytes: float) -> float:
        if nbytes <= 0 or p <= 1:
            return 0.0
        return nbytes / self.throughput(p, nbytes)


@dataclass
class ProfiledStats:
    """Online measurements from the first k warmup iterations."""

    L_o: float  # original bytes per iteration
    L_c: float  # compressed bytes per iteration
    T_comp: float  # compression throughput, bytes/s
    T_decomp: float  # decompression throughput, bytes/s
    r: float  # communication fraction of iteration time, in [0, 1]

    @property
    def ratio(self) -> float:
        return self.L_o / self.L_c if self.L_c > 0 else 1.0


class PerformanceModel:
    """Eq. 5 with the offline-online mechanism and its two decisions."""

    def __init__(
        self,
        network: NetworkSpec,
        world_size: int,
        gpus_per_node: int = 4,
        *,
        pipeline: KernelPipeline | None = None,
        device: DeviceModel = A100,
    ):
        self.network = network
        self.world_size = world_size
        self.gpus_per_node = gpus_per_node
        self.pipeline = pipeline if pipeline is not None else PIPELINES["compso-cuda"]
        self.device = device
        self.lookup = CommLookupTable(network, gpus_per_node)

    # -- Eq. 5 ------------------------------------------------------------------

    def comm_speedup(self, stats: ProfiledStats) -> float:
        """Communication speedup including (de)compression overhead."""
        t_orig = self.lookup.time(self.world_size, stats.L_o)
        t_comp_payload = self.lookup.time(self.world_size, stats.L_c)
        overhead = stats.L_o / stats.T_comp + stats.L_c / stats.T_decomp
        denom = t_comp_payload + overhead
        if denom <= 0:
            return 1.0
        return t_orig / denom

    @staticmethod
    def end_to_end_speedup(s: float, r: float) -> float:
        """((1 - r) + r/s)^-1 — Amdahl over the communication share."""
        if s <= 0:
            return 1.0
        return 1.0 / ((1.0 - r) + r / s)

    def should_compress(self, stats: ProfiledStats) -> bool:
        """The model's end-to-end guarantee: compress only when predicted
        to win.  Latency-dominated payloads (tiny models, few ranks) are
        correctly left uncompressed."""
        return self.comm_speedup(stats) > 1.0

    # -- online profiling ----------------------------------------------------------

    def profile(
        self,
        grads: list[np.ndarray],
        compressor,
        *,
        r: float,
        aggregation: int = 1,
        k: int = 3,
    ) -> ProfiledStats:
        """Measure L_o/L_c on real gradients; model throughputs via gpusim.

        ``grads`` are one iteration's per-layer gradients; the compressor
        is invoked ``k`` times (warmup iterations) and sizes averaged —
        stochastic rounding makes compressed sizes iteration-dependent.
        """
        agg = LayerAggregator(aggregation)
        L_o = float(sum(g.nbytes for g in grads))
        sizes = []
        for _ in range(k):
            total_c = 0
            for group in agg.aggregate(list(grads)):
                if hasattr(compressor, "compress_many") and len(group) > 1:
                    total_c += compressor.compress_many(group).nbytes
                else:
                    total_c += sum(compressor.compress(g).nbytes for g in group)
            sizes.append(total_c)
        L_c = float(np.mean(sizes))
        t_comp = sum(
            self.pipeline.compress_time(b, self.device)
            for b in agg.group_bytes([g.size for g in grads])
        )
        t_decomp = sum(
            self.pipeline.decompress_time(b, self.device)
            for b in agg.group_bytes([g.size for g in grads])
        )
        return ProfiledStats(
            L_o=L_o,
            L_c=L_c,
            T_comp=L_o / max(t_comp, 1e-12),
            T_decomp=L_o / max(t_decomp, 1e-12),
            r=r,
        )

    # -- decisions --------------------------------------------------------------------

    def choose_aggregation(
        self,
        grads: list[np.ndarray],
        compressor,
        *,
        r: float,
        candidates: tuple[int, ...] = (1, 2, 4, 8, 16),
    ) -> tuple[int, dict[int, float]]:
        """Pick the aggregation factor maximising end-to-end speedup."""
        scores: dict[int, float] = {}
        for m in candidates:
            stats = self.profile(grads, compressor, r=r, aggregation=m, k=1)
            scores[m] = self.end_to_end_speedup(self.comm_speedup(stats), r)
        best = max(scores, key=scores.get)
        return best, scores

    def choose_encoder(
        self,
        grads: list[np.ndarray],
        compso,
        *,
        candidates: tuple[str, ...] = NVCOMP_CANDIDATES,
        aggregation: int = 4,
    ) -> tuple[str, dict[str, tuple[float, float]]]:
        """Pick the encoder with the best (size, modelled-throughput) trade.

        Score = estimated time to compress + communicate + decompress one
        iteration's gradients; returns the winner and per-candidate
        (compressed_bytes, est_time) for inspection.
        """
        agg = LayerAggregator(aggregation)
        results: dict[str, tuple[float, float]] = {}
        original_encoder = compso.encoder_name
        group_bytes = agg.group_bytes([g.size for g in grads])
        for name in candidates:
            compso.set_encoder(name)
            L_c = 0
            for group in agg.aggregate(list(grads)):
                if hasattr(compso, "compress_many") and len(group) > 1:
                    L_c += compso.compress_many(group).nbytes
                else:
                    L_c += sum(compso.compress(g).nbytes for g in group)
            perf = ENCODER_PERF[name]
            t = sum(perf.compress_time(b * 0.3) + perf.decompress_time(b * 0.3) for b in group_bytes)
            t += self.lookup.time(self.world_size, L_c)
            results[name] = (float(L_c), float(t))
        compso.set_encoder(original_encoder)
        best = min(results, key=lambda n: results[n][1])
        return best, results
