"""Layer-wise aggregation (paper section 4.4).

DNN layers have wildly varying K-FAC gradient sizes; compressing each
tiny layer separately leaves the GPU underutilised (every invocation pays
kernel-launch and encoder-table overhead).  The aggregator groups ``m``
consecutive layers per compressor invocation — quantisation stays
per-layer (ranges must not mix, section 4.5) via
``CompsoCompressor.compress_many``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["LayerAggregator"]


class LayerAggregator:
    """Group per-layer tensors into aggregates of ``m`` consecutive layers."""

    def __init__(self, m: int):
        if m < 1:
            raise ValueError(f"aggregation factor must be >= 1, got {m}")
        self.m = m

    def groups(self, n_layers: int) -> list[list[int]]:
        """Index groups [[0..m-1], [m..2m-1], ...] covering all layers."""
        return [list(range(i, min(i + self.m, n_layers))) for i in range(0, n_layers, self.m)]

    def aggregate(self, tensors: Sequence[np.ndarray]) -> list[list[np.ndarray]]:
        """Partition tensors into aggregation groups."""
        return [[tensors[i] for i in g] for g in self.groups(len(tensors))]

    def group_bytes(self, sizes: Sequence[int]) -> list[int]:
        """Total float32 bytes per group for per-layer element counts."""
        return [sum(4 * sizes[i] for i in g) for g in self.groups(len(sizes))]
