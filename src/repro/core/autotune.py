"""Error-bound auto-tuning (paper section 7, future work item 1).

The paper sets ``eb_f``/``eb_q`` empirically (4E-3 aggressive, 2E-3
conservative).  This module implements the "precisely optimizing filter
thresholds and quantization error bounds" direction: given sample K-FAC
gradients, search the bound space for the configuration that maximises
compression ratio subject to a *gradient-fidelity constraint*.

Fidelity metric: the preconditioned gradient steers the optimizer, so we
bound the distortion of the update *direction* — cosine similarity
between the original and decompressed gradient — and the relative L2
error.  Both are cheap, model-free, and correlate with the convergence
impact the paper measures (loose bounds that broke accuracy in Fig. 3
fail these constraints on the same data).

The search is a coordinate descent over a log-spaced grid: for each
filter bound, binary-search the largest quantisation bound that still
meets the constraints, then keep the (eb_f, eb_q) pair with the best
ratio.  Deterministic given the compressor seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compso import CompsoCompressor

__all__ = ["FidelityBudget", "TuneResult", "autotune_bounds"]


@dataclass(frozen=True)
class FidelityBudget:
    """Constraints the tuned bounds must satisfy on every sample tensor."""

    #: Minimum cosine similarity between original and decompressed gradient.
    min_cosine: float = 0.999
    #: Maximum relative L2 error of the decompressed gradient.
    max_rel_l2: float = 0.05

    def __post_init__(self):
        if not 0 < self.min_cosine <= 1:
            raise ValueError(
                f"min_cosine must be in (0, 1], got {self.min_cosine!r} "
                "(1.0 demands a lossless roundtrip; values <= 0 accept "
                "anti-aligned gradients)"
            )
        if not self.max_rel_l2 > 0:
            raise ValueError(
                f"max_rel_l2 must be > 0, got {self.max_rel_l2!r} "
                "(0 or less is unsatisfiable for any lossy compressor)"
            )

    def check(self, original: np.ndarray, restored: np.ndarray) -> bool:
        x = original.ravel().astype(np.float64)
        y = restored.ravel().astype(np.float64)
        nx = np.linalg.norm(x)
        if nx == 0:
            return True
        rel_l2 = np.linalg.norm(y - x) / nx
        ny = np.linalg.norm(y)
        cosine = float(x @ y / (nx * ny)) if ny > 0 else 0.0
        return cosine >= self.min_cosine and rel_l2 <= self.max_rel_l2


@dataclass
class TuneResult:
    """Outcome of an auto-tuning run."""

    eb_f: float
    eb_q: float
    ratio: float
    cosine: float
    rel_l2: float
    #: Every (eb_f, eb_q, ratio, feasible) probe, for inspection.
    trace: list[tuple[float, float, float, bool]]


def _fidelity(grads: list[np.ndarray], comp: CompsoCompressor) -> tuple[float, float]:
    """Worst-case (cosine, rel_l2) across the sample tensors."""
    worst_cos = 1.0
    worst_l2 = 0.0
    for g in grads:
        restored = comp.roundtrip(g)
        x = g.ravel().astype(np.float64)
        y = restored.ravel().astype(np.float64)
        nx = np.linalg.norm(x)
        if nx == 0:
            continue
        ny = np.linalg.norm(y)
        worst_cos = min(worst_cos, float(x @ y / (nx * ny)) if ny > 0 else 0.0)
        worst_l2 = max(worst_l2, float(np.linalg.norm(y - x) / nx))
    return worst_cos, worst_l2


def _ratio(grads: list[np.ndarray], comp: CompsoCompressor) -> float:
    total = sum(g.nbytes for g in grads)
    wire = sum(comp.compress(g).nbytes for g in grads)
    return total / wire


def autotune_bounds(
    grads: list[np.ndarray],
    *,
    budget: FidelityBudget | None = None,
    eb_f_grid: tuple[float, ...] = (0.0, 1e-3, 2e-3, 4e-3, 8e-3, 1.6e-2, 3.2e-2),
    eb_q_range: tuple[float, float] = (1e-4, 1e-1),
    refine_steps: int = 8,
    encoder: str = "ans",
    seed: int = 0,
) -> TuneResult:
    """Search (eb_f, eb_q) maximising CR under the fidelity budget.

    For each candidate filter bound, binary-search the largest feasible
    quantisation bound in ``eb_q_range`` (feasibility is monotone in
    eb_q for fixed eb_f) and record the achieved ratio; return the best
    feasible pair.  Raises ``ValueError`` if even the tightest probe is
    infeasible — the budget is unachievable on this data.
    """
    if not grads:
        raise ValueError("autotune_bounds needs at least one sample gradient")
    budget = budget if budget is not None else FidelityBudget()
    lo_q, hi_q = eb_q_range
    if lo_q <= 0 or hi_q <= lo_q:
        raise ValueError(f"invalid eb_q_range {eb_q_range}")
    trace: list[tuple[float, float, float, bool]] = []
    best: TuneResult | None = None
    for eb_f in eb_f_grid:
        # Feasibility at the tight end: if the tightest eb_q already
        # violates the budget, this filter bound is too aggressive.
        comp = CompsoCompressor(eb_f, lo_q, encoder=encoder, seed=seed)
        cos, l2 = _fidelity(grads, comp)
        if cos < budget.min_cosine or l2 > budget.max_rel_l2:
            trace.append((eb_f, lo_q, 0.0, False))
            continue
        lo, hi = lo_q, hi_q
        best_q = lo_q
        for _ in range(refine_steps):
            mid = float(np.sqrt(lo * hi))  # geometric bisection
            comp = CompsoCompressor(eb_f, mid, encoder=encoder, seed=seed)
            cos, l2 = _fidelity(grads, comp)
            ok = cos >= budget.min_cosine and l2 <= budget.max_rel_l2
            trace.append((eb_f, mid, 0.0, ok))
            if ok:
                best_q = mid
                lo = mid
            else:
                hi = mid
        comp = CompsoCompressor(eb_f, best_q, encoder=encoder, seed=seed)
        ratio = _ratio(grads, comp)
        cos, l2 = _fidelity(grads, comp)
        trace.append((eb_f, best_q, ratio, True))
        if best is None or ratio > best.ratio:
            best = TuneResult(eb_f, best_q, ratio, cos, l2, trace)
    if best is None:
        raise ValueError(
            "fidelity budget unachievable even at the tightest bounds; "
            f"min_cosine={budget.min_cosine}, max_rel_l2={budget.max_rel_l2}"
        )
    best.trace = trace
    return best
