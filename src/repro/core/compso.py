"""The COMPSO compressor (paper Algorithm 1 and Figure 4a).

Pipeline per tensor:

1. **Filter (lossy)** — gradients with ``|g| < eb_f`` (relative to the
   tensor's max magnitude) are zeroed; their positions are recorded in a
   bitmap (step 2-2).
2. **SR quantisation (lossy)** — survivors are quantised with stochastic
   rounding under error bound ``eb_q`` (step 2-1), preserving the
   triangular error distribution that section 4.2 ties to accuracy.
3. **Variable-width packing** — quantised codes are packed at
   ``ceil(log2(#bins))`` bits rather than a fixed 8/4-bit rate; this is
   the fine-grained-rate mechanism that buys ~14% extra ratio over QSGD
   (section 4.3).
4. **Lossless encoding (steps 3-1/3-2)** — both the bitmap and the packed
   codes go through the selected lossless encoder (default ANS, the
   paper's Table 2 winner).

Setting ``eb_f = 0`` disables the filter: that is the *conservative*
(SR-only) mode used in late training stages.  ``compress_many`` supports
the layer-aggregation mechanism (section 4.4): per-layer quantisation
scales (ranges must not mix, section 4.5) with a single encoder
invocation over the aggregated code stream.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compression.base import CompressedTensor, GradientCompressor
from repro.compression.quantize import ROUNDING_MODES
from repro.encoders.registry import get_encoder
from repro.telemetry import get_metrics, get_tracer
from repro.util.bitpack import (
    pack_bitmap,
    pack_uints,
    required_width,
    unpack_bitmap,
    unpack_uints,
)
from repro.util.seeding import spawn_rng

__all__ = ["CompsoCompressor"]


class CompsoCompressor(GradientCompressor):
    """Filter + bitmap + stochastic rounding + lossless encoder."""

    def __init__(
        self,
        eb_f: float = 4e-3,
        eb_q: float = 4e-3,
        *,
        encoder: str = "ans",
        relative: bool = True,
        rounding: str = "sr",
        seed: int | np.random.Generator | None = 0,
    ):
        if eb_f < 0:
            raise ValueError(f"filter bound must be >= 0, got {eb_f}")
        if eb_q <= 0:
            raise ValueError(f"quantisation bound must be > 0, got {eb_q}")
        if rounding not in ROUNDING_MODES:
            raise ValueError(f"rounding must be one of {sorted(ROUNDING_MODES)}")
        self.eb_f = float(eb_f)
        self.eb_q = float(eb_q)
        self.relative = relative
        self.rounding = rounding
        self.encoder_name = encoder
        self._encoder = get_encoder(encoder)
        self._rng = spawn_rng(seed)
        self.name = f"compso-{encoder}"

    # -- configuration hooks used by the adaptive schedule -----------------

    def set_bounds(self, eb_f: float, eb_q: float) -> None:
        """Update error bounds (iteration-wise adaptive mechanism)."""
        if eb_f < 0 or eb_q <= 0:
            raise ValueError(f"invalid bounds eb_f={eb_f}, eb_q={eb_q}")
        self.eb_f = float(eb_f)
        self.eb_q = float(eb_q)

    def set_encoder(self, name: str) -> None:
        """Swap the lossless encoder (online encoder selection)."""
        self._encoder = get_encoder(name)
        self.encoder_name = name
        self.name = f"compso-{name}"

    # -- single-tensor path -------------------------------------------------

    def _bounds_for(self, flat: np.ndarray) -> tuple[float, float]:
        """Absolute (filter_threshold, quant_step) for this tensor."""
        if self.relative:
            vmax = float(np.abs(flat).max()) if flat.size else 0.0
            scale = vmax if vmax > 0 else 1.0
        else:
            scale = 1.0
        threshold = self.eb_f * scale
        step = self.eb_q * scale
        if self.rounding == "rn":
            step *= 2.0  # RN has half-step worst case; keep |err| <= eb_q
        return threshold, step

    def _quantize(self, kept: np.ndarray, step: float) -> np.ndarray:
        if step == 0.0:
            return np.zeros(kept.size, dtype=np.int64)
        return ROUNDING_MODES[self.rounding](kept / step, self._rng).astype(np.int64)

    @staticmethod
    def _pack_codes(codes: np.ndarray) -> tuple[bytes, int, int]:
        """Pack signed codes at the error-bound-derived width.

        The width is the minimal ``ceil(log2(bins))`` rounded up to a
        byte multiple: byte alignment preserves symbol structure for the
        byte-wise lossless encoder, which then recovers the sub-byte
        entropy (and more) — strictly smaller coded output than either
        misaligned minimal-width packing or a fixed 8-bit format (see
        benchmarks/bench_ablation_packing.py).
        """
        if codes.size == 0:
            return b"", 0, 8
        cmin = int(codes.min())
        span = int(codes.max()) - cmin
        width = min(-(-required_width(span) // 8) * 8, 32)
        return pack_uints((codes - cmin).astype(np.uint64), width), cmin, width

    def compress(self, x: np.ndarray) -> CompressedTensor:
        x = np.asarray(x, dtype=np.float32)
        flat = x.ravel()
        tracer = get_tracer()
        with tracer.span("compress", "compress", compressor=self.name, nbytes=x.nbytes):
            with tracer.span("filter", "compress.filter"):
                threshold, step = self._bounds_for(flat)
                filtered = (
                    np.abs(flat) < threshold if threshold > 0 else np.zeros(flat.size, dtype=bool)
                )
                kept = flat[~filtered]
            with tracer.span("quantise", "compress.quantise"):
                codes = self._quantize(kept, step)
            with tracer.span("pack", "compress.pack"):
                packed, cmin, width = self._pack_codes(codes)
            with tracer.span("encode", "compress.encode", encoder=self.encoder_name):
                segments = {
                    "bitmap": self._encoder.encode(pack_bitmap(filtered)),
                    "codes": self._encoder.encode(packed),
                }
        meta = {
            "step": step,
            "code_min": cmin,
            "width": width,
            "n_kept": int(kept.size),
        }
        ct = CompressedTensor(segments, x.shape, meta=meta)
        m = get_metrics()
        if m.enabled and flat.size:
            m.histogram("compso.filter_hit_rate").observe(1.0 - kept.size / flat.size)
            m.counter("compso.encoded_bytes", segment="bitmap").inc(len(segments["bitmap"]))
            m.counter("compso.encoded_bytes", segment="codes").inc(len(segments["codes"]))
            self._record_compression(x.nbytes, ct)
        return ct

    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        with get_tracer().span("decompress", "decompress", compressor=self.name):
            return self._decompress(ct)

    def _decompress(self, ct: CompressedTensor) -> np.ndarray:
        n = ct.n_elements
        filtered = unpack_bitmap(self._encoder.decode(ct.segments["bitmap"]), n)
        n_kept = int(ct.meta["n_kept"])
        width = int(ct.meta["width"])
        packed = self._encoder.decode(ct.segments["codes"])
        codes = unpack_uints(packed, width, n_kept).astype(np.int64) + int(ct.meta["code_min"])
        out = np.zeros(n, dtype=np.float32)
        out[~filtered] = codes.astype(np.float32) * np.float32(ct.meta["step"])
        return out.reshape(ct.shape)

    # -- aggregated (multi-layer) path ---------------------------------------

    def compress_many(self, tensors: list[np.ndarray]) -> CompressedTensor:
        """Compress an aggregate of layers with per-layer scales.

        Filtering and quantisation happen per layer (a layer's range must
        not leak into its neighbours, section 4.5); the bitmaps and packed
        code streams are concatenated and encoded once, which is the
        GPU-efficiency win the layer aggregation mechanism targets.
        """
        if not tensors:
            raise ValueError("compress_many requires at least one tensor")
        tracer = get_tracer()
        bitmap_parts: list[bytes] = []
        code_parts: list[bytes] = []
        headers: list[bytes] = []
        raw_nbytes = 0
        with tracer.span(
            "compress_many", "compress", compressor=self.name, n_layers=len(tensors)
        ):
            with tracer.span("filter+quantise+pack", "compress.quantise"):
                for t in tensors:
                    flat = np.asarray(t, dtype=np.float32).ravel()
                    raw_nbytes += flat.nbytes
                    threshold, step = self._bounds_for(flat)
                    filtered = (
                        np.abs(flat) < threshold
                        if threshold > 0
                        else np.zeros(flat.size, dtype=bool)
                    )
                    kept = flat[~filtered]
                    codes = self._quantize(kept, step)
                    packed, cmin, width = self._pack_codes(codes)
                    bitmap_parts.append(pack_bitmap(filtered))
                    code_parts.append(packed)
                    headers.append(
                        struct.pack(
                            "<IIfiBI", flat.size, kept.size, step, cmin, width, len(packed)
                        )
                    )
            header_blob = struct.pack("<I", len(tensors)) + b"".join(headers)
            with tracer.span("encode", "compress.encode", encoder=self.encoder_name):
                segments = {
                    "headers": header_blob,
                    "bitmap": self._encoder.encode(b"".join(bitmap_parts)),
                    "codes": self._encoder.encode(b"".join(code_parts)),
                }
        total = sum(np.asarray(t).size for t in tensors)
        ct = CompressedTensor(segments, (total,), meta={"aggregated": len(tensors)})
        self._record_compression(raw_nbytes, ct)
        return ct

    def decompress_many(self, ct: CompressedTensor) -> list[np.ndarray]:
        """Inverse of :func:`compress_many`; returns flat per-layer arrays."""
        blob = ct.segments["headers"]
        (count,) = struct.unpack_from("<I", blob, 0)
        rec_size = struct.calcsize("<IIfiBI")
        bitmaps = self._encoder.decode(ct.segments["bitmap"])
        codestream = self._encoder.decode(ct.segments["codes"])
        outputs: list[np.ndarray] = []
        bit_pos = 0
        code_pos = 0
        offset = 4
        for _ in range(count):
            n, n_kept, step, cmin, width, packed_len = struct.unpack_from(
                "<IIfiBI", blob, offset
            )
            offset += rec_size
            bitmap_bytes = (n + 7) // 8
            filtered = unpack_bitmap(bitmaps[bit_pos : bit_pos + bitmap_bytes], n)
            bit_pos += bitmap_bytes
            codes = (
                unpack_uints(codestream[code_pos : code_pos + packed_len], width, n_kept).astype(
                    np.int64
                )
                + cmin
            )
            code_pos += packed_len
            out = np.zeros(n, dtype=np.float32)
            out[~filtered] = codes.astype(np.float32) * np.float32(step)
            outputs.append(out)
        return outputs
