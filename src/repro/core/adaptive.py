"""Iteration-wise adaptive compression (paper Algorithm 1, lines 5-24).

The schedule moves from *aggressive* (filter + SR, loose bounds) early in
training — when the running-average K-FAC factors are still noisy and the
effective learning rate makes iterations error-tolerant — to
*conservative* (SR-only and/or tighter bounds) as training approaches
convergence.  Two variants mirror the two LR-scheduler families:

* **StepLR** — loose bounds until the first LR drop, tight after
  (ResNet-50 / Mask R-CNN configuration in section 5.1).
* **SmoothLR** — training is cut into ``z`` equal stages; stage 0 uses
  the loose bounds, each later stage multiplies both bounds by the decay
  factor ``alpha`` (BERT / GPT cosine-LR configuration).

`AdaptiveCompso` composes a schedule with a :class:`CompsoCompressor`,
updating bounds at each ``step()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.compression.base import CompressedTensor, GradientCompressor
from repro.core.compso import CompsoCompressor

__all__ = ["Bounds", "StepLrSchedule", "SmoothLrSchedule", "AdaptiveCompso"]


@dataclass(frozen=True)
class Bounds:
    """Error bounds for one iteration; ``eb_f == 0`` means SR-only mode."""

    eb_f: float
    eb_q: float

    def __post_init__(self) -> None:
        # A negative bound would silently invert the filtering threshold
        # (|g| < eb_f * max|g| never holds) and poison every downstream
        # schedule computation; reject it at construction.
        if self.eb_f < 0:
            raise ValueError(f"filter bound eb_f must be >= 0, got {self.eb_f}")
        if self.eb_q < 0:
            raise ValueError(f"quantisation bound eb_q must be >= 0, got {self.eb_q}")

    @property
    def filtering(self) -> bool:
        return self.eb_f > 0


class StepLrSchedule:
    """Aggressive until the first LR drop, conservative afterwards."""

    def __init__(
        self,
        first_lr_drop: int,
        *,
        loose: Bounds = Bounds(4e-3, 4e-3),
        tight: Bounds = Bounds(0.0, 4e-3),
    ):
        if first_lr_drop < 0:
            raise ValueError("first_lr_drop must be >= 0")
        self.first_lr_drop = first_lr_drop
        self.loose = loose
        self.tight = tight

    def bounds_at(self, iteration: int) -> Bounds:
        return self.loose if iteration < self.first_lr_drop else self.tight


class SmoothLrSchedule:
    """``z`` equal stages; bounds decay by ``alpha`` per stage after stage 0."""

    def __init__(
        self,
        total_iterations: int,
        z: int = 4,
        *,
        loose: Bounds = Bounds(4e-3, 4e-3),
        alpha: float = 0.5,
        min_eb: float = 1e-5,
    ):
        if total_iterations <= 0:
            raise ValueError("total_iterations must be positive")
        if z <= 0:
            raise ValueError("z must be positive")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.total_iterations = total_iterations
        self.z = z
        self.loose = loose
        self.alpha = alpha
        self.min_eb = min_eb
        self.stage_length = math.ceil(total_iterations / z)

    def stage_at(self, iteration: int) -> int:
        return min(iteration // self.stage_length, self.z - 1)

    def bounds_at(self, iteration: int) -> Bounds:
        stage = self.stage_at(iteration)
        decay = self.alpha**stage
        # The filter is only active in the aggressive (first) stage; later
        # stages tighten the SR bound, matching the paper's 4E-3 -> 2E-3
        # staged refinement on BERT-large.
        eb_q = max(self.loose.eb_q * decay, self.min_eb)
        eb_f = self.loose.eb_f if stage == 0 else 0.0
        return Bounds(eb_f, eb_q)


class AdaptiveCompso(GradientCompressor):
    """COMPSO with the iteration-wise adaptive bound schedule attached.

    Also the home of COMPSO's *graceful degradation* path: when the
    fault-tolerance layer detects payload corruption, or an error-
    feedback residual norm explodes, :meth:`degrade` drops to a
    conservative near-lossless mode (filter off, tight SR bound) for a
    few iterations, then the adaptive schedule re-tightens control.
    """

    def __init__(
        self,
        schedule: StepLrSchedule | SmoothLrSchedule,
        *,
        encoder: str = "ans",
        seed: int | np.random.Generator | None = 0,
        fallback: Bounds = Bounds(0.0, 1e-4),
    ):
        if fallback.eb_q <= 0:
            raise ValueError("fallback eb_q must be > 0")
        self.schedule = schedule
        self.inner = CompsoCompressor(encoder=encoder, seed=seed)
        self.iteration = 0
        self.fallback = fallback
        self._degraded_until = 0
        self.name = f"compso-adaptive-{encoder}"
        self._apply(0)

    def _apply(self, iteration: int) -> Bounds:
        if iteration < self._degraded_until:
            scheduled = self.schedule.bounds_at(iteration)
            b = Bounds(self.fallback.eb_f, min(self.fallback.eb_q, scheduled.eb_q))
        else:
            b = self.schedule.bounds_at(iteration)
        # eb_f == 0 disables filtering inside CompsoCompressor.
        self.inner.set_bounds(b.eb_f, b.eb_q)
        return b

    def step(self) -> Bounds:
        """Advance to the next iteration; returns the new bounds."""
        self.iteration += 1
        return self._apply(self.iteration)

    def degrade(self, iterations: int = 2) -> Bounds:
        """Fall back to the conservative bounds for the next ``iterations``.

        Called by the fault-tolerance layer on detected corruption or an
        exploding error-feedback residual.  Takes effect immediately and
        lapses on its own: once the window passes, ``step()`` re-applies
        the scheduled (adaptive) bounds.
        """
        if iterations < 1:
            raise ValueError("degrade window must be >= 1 iteration")
        self._degraded_until = max(self._degraded_until, self.iteration + iterations)
        return self._apply(self.iteration)

    @property
    def degraded(self) -> bool:
        return self.iteration < self._degraded_until

    @property
    def bounds(self) -> Bounds:
        """Bounds in force right now (degradation included)."""
        if self.degraded:
            scheduled = self.schedule.bounds_at(self.iteration)
            return Bounds(self.fallback.eb_f, min(self.fallback.eb_q, scheduled.eb_q))
        return self.schedule.bounds_at(self.iteration)

    def compress(self, x: np.ndarray) -> CompressedTensor:
        return self.inner.compress(x)

    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        return self.inner.decompress(ct)

    def compress_many(self, tensors: list[np.ndarray]) -> CompressedTensor:
        return self.inner.compress_many(tensors)

    def decompress_many(self, ct: CompressedTensor) -> list[np.ndarray]:
        return self.inner.decompress_many(ct)
