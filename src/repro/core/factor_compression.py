"""Kronecker-factor (A, G) compression (paper section 7, future work 2).

Fig. 1 shows the factor allreduce is the second-largest communication
term (~10-13%).  The factors are symmetric positive semi-definite
running averages, so they tolerate more error than the preconditioned
gradients (they are damped by gamma before inversion and averaged over
iterations).  This module compresses a factor for the allreduce path:

1. extract the upper triangle (the symmetric half never travels);
2. error-bounded SR quantisation relative to the *diagonal scale* (the
   damping floor makes absolute errors below ~eb*max(diag) harmless);
3. lossless encoding, as in the main pipeline.

Because allreduce sums contributions, per-rank lossy compression errors
average out (SR is unbiased), unlike ring-allreduce error *propagation*
on gradients — factors are recomputed as running averages every
iteration, so no feedback accumulation occurs.

``FactorCompressor`` round-trips a symmetric matrix; symmetry is restored
exactly on decompression.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedTensor, GradientCompressor
from repro.compression.quantize import ROUNDING_MODES
from repro.encoders.registry import get_encoder
from repro.util.bitpack import pack_uints, required_width, unpack_uints
from repro.util.seeding import spawn_rng

__all__ = ["FactorCompressor"]


class FactorCompressor(GradientCompressor):
    """Error-bounded symmetric-matrix compressor for K-FAC factors."""

    def __init__(
        self,
        eb: float = 1e-3,
        *,
        encoder: str = "ans",
        rounding: str = "sr",
        seed: int | np.random.Generator | None = 0,
    ):
        if eb <= 0:
            raise ValueError(f"error bound must be positive, got {eb}")
        if rounding not in ROUNDING_MODES:
            raise ValueError(f"rounding must be one of {sorted(ROUNDING_MODES)}")
        self.eb = float(eb)
        self.rounding = rounding
        self.encoder_name = encoder
        self._encoder = get_encoder(encoder)
        self._rng = spawn_rng(seed)
        self.name = f"factor-{encoder}"

    def compress(self, x: np.ndarray) -> CompressedTensor:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[0] != x.shape[1]:
            raise ValueError(f"factors are square matrices, got shape {x.shape}")
        d = x.shape[0]
        iu = np.triu_indices(d)
        tri = x[iu]
        # Scale to the diagonal magnitude: the damping gamma added before
        # inversion makes errors below eb*max(diag) immaterial.
        scale = float(np.abs(np.diag(x)).max())
        step = self.eb * scale if scale > 0 else self.eb
        if self.rounding == "rn":
            step *= 2.0
        if step == 0.0 or tri.size == 0:
            codes = np.zeros(tri.size, dtype=np.int64)
        else:
            codes = ROUNDING_MODES[self.rounding](tri / step, self._rng).astype(np.int64)
        cmin = int(codes.min()) if codes.size else 0
        span = int(codes.max()) - cmin if codes.size else 0
        width = min(-(-required_width(span) // 8) * 8, 32)
        packed = pack_uints((codes - cmin).astype(np.uint64), width)
        return CompressedTensor(
            {"codes": self._encoder.encode(packed)},
            x.shape,
            meta={"step": step, "code_min": cmin, "width": width, "dim": d},
        )

    def decompress(self, ct: CompressedTensor) -> np.ndarray:
        d = int(ct.meta["dim"])
        n_tri = d * (d + 1) // 2
        packed = self._encoder.decode(ct.segments["codes"])
        codes = unpack_uints(packed, int(ct.meta["width"]), n_tri).astype(np.int64)
        codes += int(ct.meta["code_min"])
        tri = codes.astype(np.float32) * np.float32(ct.meta["step"])
        out = np.zeros((d, d), dtype=np.float32)
        iu = np.triu_indices(d)
        out[iu] = tri
        # Mirror the strict upper triangle to restore exact symmetry.
        out = out + out.T - np.diag(np.diag(out))
        return out
