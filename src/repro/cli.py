"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — package inventory and available compressors/encoders;
* ``compress`` — compress a ``.npy`` float32 tensor (or a synthetic
  demo payload) with a chosen compressor and report ratio/error;
* ``demo-train`` — a one-minute distributed K-FAC + COMPSO training demo;
* ``trace`` — run a short simulated training job with telemetry enabled
  and write a Chrome trace (``chrome://tracing`` / Perfetto), a metrics
  JSONL dump, and a plain-text summary;
* ``chaos`` — run a scripted fault-injection scenario against a clean
  baseline and report convergence delta, recovery counters, and
  time-to-recover;
* ``guard`` — run a seeded chaos plan with and without the repro.guard
  self-healing layer (checksums off) and report the remediation
  timeline: verdicts, circuit-breaker transitions, rollbacks;
* ``overlap`` — train the same K-FAC job blocking and with scheduled
  compute/communication overlap, verify the two are bit-identical, and
  report the measured hidden-communication split;
* ``tune`` — offline error-bound search: find the ``(eb_f, eb_q)`` pair
  maximising compression ratio under a gradient-fidelity budget on
  sample gradients;
* ``autotune`` — run a K-FAC job with the closed-loop online autotuner
  (``repro.autotune``) re-picking the compression config from live
  cost-model signals, optionally under an injected link-degradation
  window, and record every decision in the run ledger;
* ``record`` — run a seeded guarded+overlapped training job and write
  its run ledger (the canonical per-run observability artifact);
* ``report`` — render a recorded ledger as a self-contained HTML
  dashboard plus a markdown summary;
* ``diff`` — compare two ledgers under per-metric tolerance bands and
  exit non-zero on regression (the CI perf gate); ``--attribute`` names
  the critical-path segment responsible for a slowdown;
* ``xray`` — render an xray-enabled ledger's per-step critical-path
  attribution as a self-contained HTML flame view plus markdown;
* ``fleet`` — time-share the simulated fabric between a fleet of
  concurrent training jobs on the representative-rank timing track,
  reporting per-job contention, slowdown, and peak payload memory;
* ``experiments`` — list the paper's tables/figures and their benches.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]

_EXPERIMENTS = [
    ("Fig. 1", "distributed K-FAC time breakdown", "bench_fig01_breakdown.py"),
    ("Fig. 3", "compression ratio vs accuracy", "bench_fig03_cr_accuracy.py"),
    ("Fig. 5", "RN/SR/P0.5 error distributions", "bench_fig05_error_dist.py"),
    ("Fig. 6", "convergence under compression", "bench_fig06_convergence.py"),
    ("Table 1", "SQuAD fine-tuning quality", "bench_table1_squad.py"),
    ("Fig. 7", "communication speedup", "bench_fig07_comm_speedup.py"),
    ("Table 2", "lossless encoder comparison", "bench_table2_encoders.py"),
    ("Fig. 8", "GPU compression throughput", "bench_fig08_gpu_throughput.py"),
    ("Fig. 9", "end-to-end performance gain", "bench_fig09_end2end.py"),
    ("Ablations", "adaptive/aggregation/fusion/packing", "bench_ablation_*.py"),
    ("Sec. 7", "future work: autotune + factor compression", "bench_ext_future_work.py"),
    ("Robustness", "chaos scenarios vs fault-free twin", "bench_ext_chaos.py"),
    ("Robustness", "guarded vs unguarded run under corruption", "bench_ext_guard.py"),
    ("Robustness", "store crash-consistency + storage chaos", "bench_ext_store.py"),
]


def _make_compressor(name: str, seed: int):
    from repro.compression import CocktailSgdCompressor, QsgdCompressor, SzCompressor
    from repro.core import CompsoCompressor

    factories = {
        "compso": lambda: CompsoCompressor(4e-3, 4e-3, seed=seed),
        "compso-sr": lambda: CompsoCompressor(0.0, 4e-3, seed=seed),
        "qsgd8": lambda: QsgdCompressor(8, seed=seed),
        "qsgd4": lambda: QsgdCompressor(4, seed=seed),
        "sz": lambda: SzCompressor(4e-3),
        "cocktail": lambda: CocktailSgdCompressor(0.2, 8, seed=seed),
    }
    if name not in factories:
        raise SystemExit(f"unknown compressor {name!r}; choose from {sorted(factories)}")
    return factories[name]()


def cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.encoders import list_encoders

    print(f"repro {repro.__version__} — COMPSO reproduction (PPoPP'25)")
    print(f"subpackages: {', '.join(repro.__all__)}")
    print(f"encoders: {', '.join(list_encoders())}")
    print("compressors: compso, compso-sr, qsgd8, qsgd4, sz, cocktail")
    return 0


def cmd_compress(args: argparse.Namespace) -> int:
    if args.input:
        x = np.load(args.input).astype(np.float32)
    else:
        rng = np.random.default_rng(args.seed)
        n = args.size
        small = rng.standard_normal(n) * 1e-4
        big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
        x = np.where(rng.random(n) < 0.12, big, small).astype(np.float32)
        print(f"(no --input given; using a synthetic {n}-element K-FAC-like tensor)")
    comp = _make_compressor(args.compressor, args.seed)
    if args.encoder:
        from repro.encoders import list_encoders

        if args.encoder not in list_encoders():
            raise SystemExit(
                f"unknown encoder {args.encoder!r}; choose from {list_encoders()}"
            )
        if not hasattr(comp, "set_encoder"):
            raise SystemExit(
                f"compressor {args.compressor!r} does not take a lossless "
                "encoder (--encoder applies to compso variants)"
            )
        comp.set_encoder(args.encoder)
        print(f"(lossless encoder: {args.encoder})")
    ct = comp.compress(x)
    restored = comp.decompress(ct)
    err = float(np.abs(restored - x.ravel().reshape(restored.shape)).max())
    vmax = float(np.abs(x).max())
    print(f"compressor     : {comp.name}")
    print(f"original bytes : {x.nbytes}")
    print(f"wire bytes     : {ct.nbytes}")
    print(f"ratio          : {x.nbytes / ct.nbytes:.2f}x")
    print(f"max abs error  : {err:.3e}  ({err / vmax:.2e} of max magnitude)" if vmax else "")
    return 0


def _sample_gradients(args: argparse.Namespace) -> list[np.ndarray]:
    """Sample gradients for offline tuning: a ``.npy`` file or the same
    synthetic K-FAC-like mixture ``compress`` demos on."""
    if args.input:
        return [np.load(args.input).astype(np.float32)]
    rng = np.random.default_rng(args.seed)
    grads = []
    for _ in range(args.samples):
        n = args.size
        small = rng.standard_normal(n) * 1e-4
        big = rng.standard_normal(n) * np.exp(rng.standard_normal(n)) * 5e-2
        grads.append(np.where(rng.random(n) < 0.12, big, small).astype(np.float32))
    return grads


def cmd_tune(args: argparse.Namespace) -> int:
    from repro.autotune import FidelityBudget, autotune_bounds

    grads = _sample_gradients(args)
    if not args.input:
        print(
            f"(no --input given; tuning on {args.samples} synthetic "
            f"{args.size}-element K-FAC-like tensors)"
        )
    budget = FidelityBudget(min_cosine=args.min_cosine, max_rel_l2=args.max_rel_l2)
    try:
        result = autotune_bounds(
            grads, budget=budget, encoder=args.encoder, seed=args.seed
        )
    except ValueError as e:
        print(f"ERROR: {e}", file=sys.stderr)
        return 1
    print(f"budget         : cosine >= {budget.min_cosine}, rel L2 <= {budget.max_rel_l2}")
    print(f"encoder        : {args.encoder}")
    print(f"chosen eb_f    : {result.eb_f:.6g}")
    print(f"chosen eb_q    : {result.eb_q:.6g}")
    print(f"achieved ratio : {result.ratio:.2f}x")
    print(f"worst cosine   : {result.cosine:.6f}")
    print(f"worst rel L2   : {result.rel_l2:.2e}")
    print(f"probes         : {len(result.trace)}")
    return 0


def cmd_demo_train(args: argparse.Namespace) -> int:
    from repro.core import AdaptiveCompso, StepLrSchedule
    from repro.data import make_image_data
    from repro.distributed import SimCluster
    from repro.kfac_dist import DistributedKfacTrainer
    from repro.models import resnet_proxy
    from repro.train import ClassificationTask

    task = ClassificationTask(make_image_data(500, n_classes=5, size=8, noise=0.5, seed=0))
    trainer = DistributedKfacTrainer(
        resnet_proxy(n_classes=5, channels=8, rng=3),
        task,
        SimCluster(1, args.ranks, seed=0),
        lr=0.05,
        inv_update_freq=5,
        compressor=AdaptiveCompso(StepLrSchedule(args.iterations // 2)),
    )
    h = trainer.train(iterations=args.iterations, batch_size=64, eval_every=args.iterations)
    print(f"ranks={args.ranks} iterations={args.iterations}")
    print(f"loss {h.losses[0]:.3f} -> {h.losses[-1]:.4f}; accuracy {h.final_metric():.1f}%")
    print(f"mean compression ratio {trainer.mean_compression_ratio():.2f}x")
    return 0


#: Tiny proxy workloads small enough to trace in seconds.
_TRACE_MODELS = ("mini-resnet", "mini-detection")


def _build_trace_trainer(args: argparse.Namespace):
    from repro.core import CompsoCompressor
    from repro.data import make_detection_data, make_image_data
    from repro.distributed import SimCluster
    from repro.kfac_dist import DistributedKfacTrainer
    from repro.models import maskrcnn_proxy, resnet_proxy
    from repro.train import ClassificationTask, DetectionTask

    cluster = SimCluster(args.nodes, args.gpus_per_node, seed=0)
    compressor = None
    if args.compressor != "none":
        compressor = _make_compressor(args.compressor, seed=0)
    if args.model == "mini-resnet":
        task = ClassificationTask(make_image_data(256, n_classes=5, size=8, noise=0.5, seed=0))
        model = resnet_proxy(n_classes=5, channels=8, rng=3)
    else:
        task = DetectionTask(make_detection_data(256, size=8, seed=0))
        model = maskrcnn_proxy(rng=3)
    if compressor is None:
        compressor = CompsoCompressor(4e-3, 4e-3, seed=0)
    return DistributedKfacTrainer(
        model, task, cluster, lr=0.05, inv_update_freq=5, compressor=compressor
    )


def cmd_trace(args: argparse.Namespace) -> int:
    import numpy as np  # noqa: F401  (kept for symmetry with other commands)

    from repro import telemetry

    trainer = _build_trace_trainer(args)
    with telemetry.session() as t:
        trainer.train(iterations=args.iterations, batch_size=args.batch_size)
    trace_path = telemetry.write_chrome_trace(t.tracer, args.out)
    print(f"wrote {trace_path} ({len(t.tracer.spans())} spans)")
    if args.metrics_out:
        metrics_path = telemetry.write_metrics_jsonl(t.metrics, args.metrics_out)
        print(f"wrote {metrics_path} ({len(t.metrics.steps)} step snapshots)")
    print()
    print(telemetry.summary_table(t.tracer, track=telemetry.SIM_TRACK))
    print()
    print(
        telemetry.summary_table(
            t.tracer,
            track=telemetry.HOST_TRACK,
            depth=1,
            title="telemetry summary — host track (trainer phases)",
        )
    )
    # Cross-check: the trace must reconcile with the clock accounting.
    breakdown = trainer.cluster.breakdown()
    totals = t.tracer.category_totals(track=telemetry.SIM_TRACK)
    worst = max(
        (abs(totals.get(cat, 0.0) - sec) for cat, sec in breakdown.items()), default=0.0
    )
    print(f"\ntrace vs SimCluster.breakdown(): max category deviation {worst:.3e} s")
    if worst > 1e-9:
        print("WARNING: trace disagrees with clock accounting", file=sys.stderr)
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import make_plan, run_chaos

    plan = make_plan(
        args.scenario, args.nodes * args.gpus_per_node, args.iterations, seed=args.seed
    )
    print(plan.describe())
    print()
    result = run_chaos(
        args.scenario,
        nodes=args.nodes,
        gpus_per_node=args.gpus_per_node,
        iterations=args.iterations,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    print(result.summary())
    if args.json:
        import json

        with open(args.json, "w") as f:
            json.dump(result.to_dict(), f, indent=2)
        print(f"\nwrote {args.json}")
    if not result.completed:
        print("ERROR: faulted run did not complete all iterations", file=sys.stderr)
        return 1
    return 0


def cmd_guard(args: argparse.Namespace) -> int:
    import math

    from repro.guard.scenario import make_guard_plan, run_guard_scenario

    plan = make_guard_plan(
        args.nodes * args.gpus_per_node,
        args.iterations,
        seed=args.seed,
        corruption=args.corruption,
    )
    print(plan.describe())
    print()
    result = run_guard_scenario(
        nodes=args.nodes,
        gpus_per_node=args.gpus_per_node,
        iterations=args.iterations,
        batch_size=args.batch_size,
        seed=args.seed,
        corruption=args.corruption,
    )
    print(result.summary())
    if args.json:
        import json

        with open(args.json, "w") as f:
            json.dump(result.to_dict(), f, indent=2)
        print(f"\nwrote {args.json}")
    if not result.guarded_completed or not math.isfinite(result.guarded_loss):
        print("ERROR: guarded run did not survive the fault plan", file=sys.stderr)
        return 1
    if not result.timeline:
        print("ERROR: no remediation fired — the scenario exercised nothing", file=sys.stderr)
        return 1
    return 0


def cmd_overlap(args: argparse.Namespace) -> int:
    from repro.data import make_image_data
    from repro.distributed import SimCluster
    from repro.kfac_dist import DistributedKfacTrainer
    from repro.models import resnet_proxy
    from repro.runtime import ComputeModel, StreamRuntime
    from repro.train import ClassificationTask

    def run(overlap: bool):
        task = ClassificationTask(
            make_image_data(256, n_classes=5, size=8, noise=0.5, seed=0)
        )
        gpus = min(args.ranks, 4)
        cluster = SimCluster(args.ranks // gpus, gpus, seed=0)
        rt = StreamRuntime(
            cluster,
            overlap=overlap,
            n_comm_streams=args.streams,
            compute=ComputeModel(train_flops=args.train_flops),
        )
        trainer = DistributedKfacTrainer(
            resnet_proxy(n_classes=5, channels=8, rng=3),
            task,
            cluster,
            lr=0.05,
            inv_update_freq=2,
            runtime=rt,
        )
        trainer.train(iterations=args.iters, batch_size=args.batch_size)
        params = np.concatenate([p.data.ravel() for p in trainer.model.parameters()])
        return params, cluster.time, rt

    if args.ranks < 1 or args.ranks % min(args.ranks, 4):
        raise SystemExit(f"--ranks must be a multiple of 4 (or < 4), got {args.ranks}")
    blk_params, blk_time, _ = run(overlap=False)
    ovl_params, ovl_time, rt = run(overlap=True)
    identical = bool(np.array_equal(blk_params, ovl_params))
    print(f"ranks={args.ranks} iters={args.iters} comm-streams={args.streams}")
    print(f"blocking   : {blk_time * 1e3:.3f} ms simulated")
    print(f"overlapped : {ovl_time * 1e3:.3f} ms simulated ({blk_time / ovl_time:.2f}x)")
    print(f"bit-identical parameters: {identical}")
    print(
        f"comm hidden {rt.hidden_comm_seconds() * 1e3:.3f} ms / "
        f"exposed {rt.exposed_comm_seconds() * 1e3:.3f} ms "
        f"(hidden fraction {rt.hidden_fraction():.2f})"
    )
    for cat, s in rt.overlap_stats().items():
        print(
            f"  {cat:16s} hidden {s['hidden'] * 1e3:8.3f} ms   "
            f"exposed {s['exposed'] * 1e3:8.3f} ms"
        )
    if args.json:
        import json

        payload = {
            "ranks": args.ranks,
            "iters": args.iters,
            "n_comm_streams": args.streams,
            "blocking_seconds": blk_time,
            "overlapped_seconds": ovl_time,
            "speedup": blk_time / ovl_time,
            "bit_identical": identical,
            "hidden_comm_seconds": rt.hidden_comm_seconds(),
            "exposed_comm_seconds": rt.exposed_comm_seconds(),
            "hidden_fraction": rt.hidden_fraction(),
            "per_category": rt.overlap_stats(),
        }
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"\nwrote {args.json}")
    if not identical:
        print("ERROR: overlapped parameters diverged from blocking", file=sys.stderr)
        return 1
    return 0


#: ``repro record`` presets: one honest configuration, one with a
#: deliberately loosened error bound (the regression the diff gate must
#: catch), and one on a deliberately slowed fabric (the regression
#: ``diff --attribute`` must *name*: its critical path grows in a comm
#: category).  Everything else is shared so the runs stay like-for-like.
_RECORD_PRESETS = {
    "smoke": {"eb": 4e-3},
    "smoke-degraded": {"eb": 0.5},
    "smoke-slow-net": {"eb": 4e-3, "slow_net": True},
}


def cmd_record(args: argparse.Namespace) -> int:
    from repro import telemetry
    from repro.core import CompsoCompressor
    from repro.data import make_image_data
    from repro.distributed import SimCluster
    from repro.guard.guard import GuardConfig
    from repro.kfac_dist import DistributedKfacTrainer
    from repro.models import resnet_proxy
    from repro.obsv import LedgerConfig, load_ledger, summarize
    from repro.runtime import ComputeModel, StreamRuntime
    from repro.train import ClassificationTask

    preset = _RECORD_PRESETS[args.preset]
    eb = args.eb if args.eb is not None else preset["eb"]
    task = ClassificationTask(
        make_image_data(256, n_classes=5, size=8, noise=0.5, seed=0)
    )
    plan = None
    if preset.get("slow_net"):
        from repro.faults import FaultPlan, LinkDegradation

        # A degradation window covering the whole run: every collective
        # pays 4x latency and 1/8 bandwidth, so the critical path grows
        # in the comm categories — the segment attribution must name.
        plan = FaultPlan(
            degradations=[
                LinkDegradation(
                    start=0,
                    stop=args.iterations,
                    latency_factor=4.0,
                    bandwidth_factor=8.0,
                )
            ]
        )
    cluster = SimCluster(args.nodes, args.gpus_per_node, seed=0, fault_plan=plan)
    runtime = None
    if not args.no_overlap:
        runtime = StreamRuntime(
            cluster, overlap=True, n_comm_streams=2, compute=ComputeModel(train_flops=5e7)
        )
    trainer = DistributedKfacTrainer(
        resnet_proxy(n_classes=5, channels=8, rng=3),
        task,
        cluster,
        lr=0.05,
        inv_update_freq=2,
        compressor=CompsoCompressor(eb, eb, seed=0),
        runtime=runtime,
        guard=None if args.no_guard else GuardConfig(),
        obsv=LedgerConfig(args.out, note=f"preset={args.preset} eb={eb}"),
        xray=True if args.xray else None,
        reliable_channel=False,
    )
    with telemetry.session():
        trainer.train(
            iterations=args.iterations,
            batch_size=args.batch_size,
            eval_every=args.iterations,
            seed=args.seed,
        )
    ledger = load_ledger(args.out)
    print(f"wrote {args.out} ({len(ledger.steps)} step records)")
    for key, value in summarize(ledger).items():
        print(f"  {key:22s} {value}")
    return 0


#: ``repro autotune`` presets: the same seeded K-FAC job run with a
#: fixed compression config, with the closed-loop controller on a clean
#: fabric, and with the controller under an injected mid-run
#: link-degradation window (the case it exists for).
_AUTOTUNE_PRESETS = {
    "static": {"autotune": False, "degraded": False},
    "autotuned": {"autotune": True, "degraded": False},
    "autotuned-degraded": {"autotune": True, "degraded": True},
}


def cmd_autotune(args: argparse.Namespace) -> int:
    from repro import telemetry
    from repro.autotune import AutotuneConfig
    from repro.core import CompsoCompressor
    from repro.data import make_image_data
    from repro.distributed import SimCluster
    from repro.faults import FaultPlan, LinkDegradation
    from repro.guard.guard import GuardConfig
    from repro.kfac_dist import DistributedKfacTrainer
    from repro.models import resnet_proxy
    from repro.obsv import LedgerConfig, autotune_timeline, load_ledger, summarize
    from repro.train import ClassificationTask

    preset = _AUTOTUNE_PRESETS[args.preset]
    start = args.iterations // 3
    stop = max(2 * args.iterations // 3, start + 1)
    plan = None
    if preset["degraded"]:
        plan = FaultPlan(
            degradations=[
                LinkDegradation(
                    start=start,
                    stop=stop,
                    latency_factor=args.latency_factor,
                    bandwidth_factor=args.bandwidth_factor,
                )
            ]
        )
    autotune = None
    if preset["autotune"]:
        autotune = AutotuneConfig(
            initial="identity",
            warmup=args.warmup,
            min_dwell=args.min_dwell,
            seed=args.seed,
        )
    task = ClassificationTask(
        make_image_data(256, n_classes=5, size=8, noise=0.5, seed=0)
    )
    cluster = SimCluster(args.nodes, args.gpus_per_node, seed=0, fault_plan=plan)
    trainer = DistributedKfacTrainer(
        resnet_proxy(n_classes=5, channels=args.channels, rng=3),
        task,
        cluster,
        lr=0.05,
        inv_update_freq=2,
        compressor=CompsoCompressor(4e-3, 4e-3, seed=0),
        guard=GuardConfig(),
        obsv=LedgerConfig(args.out, note=f"autotune preset={args.preset}"),
        autotune=autotune,
        reliable_channel=False,
    )
    with telemetry.session():
        trainer.train(
            iterations=args.iterations,
            batch_size=args.batch_size,
            eval_every=args.iterations,
            seed=args.seed,
        )
    ledger = load_ledger(args.out)
    summary = summarize(ledger)
    controller = trainer.autotune
    if controller is not None:
        extra = controller.modelled_extra_seconds
    else:
        # The static run holds the "default" menu entry the whole way.
        from repro.autotune import DEFAULT_MENU, replay_extra_seconds

        default = next(c for c in DEFAULT_MENU if c.name == "default")
        extra = replay_extra_seconds(ledger.steps, default, alpha=AutotuneConfig().alpha0)
    window = f"[{start}, {stop})" if preset["degraded"] else "none"
    print(f"preset={args.preset} iterations={args.iterations} degraded window {window}")
    print(f"wrote {args.out} ({len(ledger.steps)} step records)")
    for key, value in summary.items():
        print(f"  {key:22s} {value}")
    print(f"  modelled extra        {extra:.6g} s")
    print(f"  modelled end-to-end   {summary['sim_time'] + extra:.6g} s")
    decisions = autotune_timeline(ledger)
    retunes = sum(1 for d in decisions if d.get("kind") == "retune")
    if controller is not None:
        print(f"decisions ({len(decisions)}):")
        for d in decisions:
            print(
                f"  step {d.get('step'):3d}: {d.get('kind'):6s} "
                f"{d.get('from')} -> {d.get('to')} ({d.get('reason')})"
            )
        if not decisions:
            print("  (none)")
    if args.min_retunes is not None and retunes < args.min_retunes:
        print(
            f"ERROR: expected >= {args.min_retunes} retune decisions, saw {retunes}",
            file=sys.stderr,
        )
        return 1
    if args.max_retunes is not None and retunes > args.max_retunes:
        print(
            f"ERROR: expected <= {args.max_retunes} retune decisions, saw {retunes}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.obsv import load_ledger, render_markdown, write_report

    ledger = load_ledger(args.ledger)
    stem = args.ledger.rsplit(".", 1)[0]
    html_path = args.html if args.html else f"{stem}.html"
    md_path = args.md if args.md else f"{stem}.md"
    written = write_report(ledger, html_path=html_path, md_path=md_path)
    print(render_markdown(ledger))
    for p in written:
        print(f"wrote {p}")
    return 0


def cmd_xray(args: argparse.Namespace) -> int:
    from repro.obsv import load_ledger
    from repro.xray import render_xray_markdown, write_xray_report, xray_records

    ledger = load_ledger(args.ledger)
    stem = args.ledger.rsplit(".", 1)[0]
    html_path = args.html if args.html else f"{stem}.xray.html"
    md_path = args.md if args.md else f"{stem}.xray.md"
    written = write_xray_report(ledger, html_path=html_path, md_path=md_path)
    print(render_xray_markdown(ledger))
    for p in written:
        print(f"wrote {p}")
    if not xray_records(ledger):
        print(
            "ERROR: ledger has no xray records — record with --xray",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.obsv import DEFAULT_SPECS, diff_ledgers, load_ledger, parse_tolerance

    overrides = {}
    for spec in args.tol or []:
        parsed = parse_tolerance(spec, DEFAULT_SPECS)
        overrides[parsed.name] = parsed
    baseline = load_ledger(args.baseline)
    candidate = load_ledger(args.candidate)
    diff = diff_ledgers(baseline, candidate, tolerances=overrides)
    print(diff.format_table(title=f"run diff — {args.baseline} vs {args.candidate}"))
    attribution = None
    if args.attribute:
        from repro.xray import attribute_regression

        attribution = attribute_regression(baseline, candidate)
        if attribution is None:
            print(
                "\nattribution: unavailable (both ledgers must be recorded "
                "with xray enabled)"
            )
        else:
            share = attribution["share"]
            share_txt = f"{share:.0%} of" if share is not None else "against a"
            print(
                f"\nattribution: segment `{attribution['segment']}` "
                f"({attribution['kind']}) moved {attribution['delta_s']:+.6g} s "
                f"on the critical path — {share_txt} "
                f"{attribution['total_delta_s']:+.6g} s total; "
                f"busiest phase: {attribution['phase']}"
            )
    if args.json:
        import json

        payload = diff.to_dict()
        if args.attribute:
            payload["attribution"] = attribution
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"\nwrote {args.json}")
    if not diff.ok:
        names = ", ".join(r.metric for r in diff.regressions)
        print(f"\nREGRESSION: {names}", file=sys.stderr)
        return 1
    print("\nok: no regression beyond tolerance bands")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import (
        FleetScheduler,
        apply_chaos,
        fabric_degradations,
        preset_options,
        preset_specs,
    )

    specs = preset_specs(args.preset)
    options = preset_options(args.preset)
    if args.chaos:
        specs = apply_chaos(specs, rate=args.fault_rate, seed=args.chaos_seed)
        options.setdefault(
            "fabric_degradations",
            fabric_degradations(specs, rate=args.fault_rate, seed=args.chaos_seed),
        )
    if args.max_concurrent is not None:
        options["max_concurrent"] = args.max_concurrent
    if args.retry_budget is not None:
        options["retry_budget"] = args.retry_budget
    store_dir = args.store_dir
    if store_dir is None and args.preset == "storage-smoke":
        # The storage-smoke faults live on the checkpoint save path, so
        # the preset is meaningless without a store.
        import os.path
        import tempfile

        store_dir = (
            os.path.join(args.out, "store")
            if args.out
            else tempfile.mkdtemp(prefix="repro-store-")
        )
        print(f"storage-smoke needs a checkpoint store; using {store_dir}")
    scheduler = FleetScheduler(specs, ledger_dir=args.out, store_dir=store_dir, **options)
    result = scheduler.run()
    header = (
        f"{'job':8s} {'world':>6s} {'prio':>5s} {'steps':>5s} {'sim_s':>9s} "
        f"{'fleet_end':>9s} {'contended':>9s} {'slowdown':>8s} {'peak_B':>9s} "
        f"{'loss':>8s} {'state':>6s} {'rst':>3s} {'pre':>3s} {'good':>5s} {'slo':>4s}"
    )
    mode = " +chaos" if args.chaos else ""
    print(f"fleet preset={args.preset}{mode}: {len(specs)} jobs on shared fabric")
    print(header)
    for r in result.reports:
        slo = "-" if r.slo_met is None else ("met" if r.slo_met else "MISS")
        print(
            f"{r.name:8s} {r.world_size:6d} {r.priority:5.1f} {r.steps:5d} "
            f"{r.sim_time:9.4f} {r.fleet_end:9.4f} {r.contended_seconds:9.4f} "
            f"{r.slowdown:8.3f} {r.peak_payload_bytes:9.0f} {r.final_loss:8.4f} "
            f"{r.state:>6s} {r.restarts:3d} {r.preemptions:3d} {r.goodput:5.2f} {slo:>4s}"
        )
    print(
        f"makespan {result.makespan:.4f}s, "
        f"total contended {result.total_contended_seconds:.4f}s, "
        f"{result.total_restarts} restarts, {result.total_preemptions} preemptions, "
        f"{result.jobs_failed} failed, {result.slo_missed} SLO misses"
    )
    if store_dir is not None:
        fallbacks = sum(r.store_fallbacks for r in result.reports)
        quarantined = sum(r.store_quarantined for r in result.reports)
        repairs = sum(r.store_repairs for r in result.reports)
        print(
            f"store {store_dir}: {fallbacks} generation fallbacks, "
            f"{quarantined} quarantined, {repairs} repairs"
        )
    if args.out:
        print(f"per-job ledgers in {args.out}/")
    if args.json:
        import json

        with open(args.json, "w") as f:
            json.dump(result.to_dict(), f, indent=2)
        print(f"wrote {args.json}")
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    from repro.store import fsck_path

    verdicts = []
    for target in args.paths:
        verdicts.extend(fsck_path(target, repair=args.repair))
    width = max((len(v.status) for v in verdicts), default=2)
    for v in verdicts:
        line = f"{v.status:>{width}s}  {v.kind:10s}  {v.path}"
        if v.detail:
            line += f"  — {v.detail}"
        print(line)
    problems = [v for v in verdicts if v.problem]
    unrepairable = [v for v in verdicts if v.status == "unrepairable"]
    print(
        f"\nfsck: {len(verdicts)} object(s) examined, "
        f"{len(problems)} problem(s){' (repair applied)' if args.repair else ''}"
    )
    if args.json:
        import json

        with open(args.json, "w") as f:
            json.dump([v.to_dict() for v in verdicts], f, indent=2)
        print(f"wrote {args.json}")
    if args.repair:
        # Repair mode fails only when damage remains beyond repair.
        return 1 if unrepairable else 0
    return 1 if problems else 0


def cmd_experiments(args: argparse.Namespace) -> int:
    width = max(len(e[0]) for e in _EXPERIMENTS)
    for tag, desc, bench in _EXPERIMENTS:
        print(f"{tag.ljust(width)}  {desc:45s} benchmarks/{bench}")
    print("\nrun: pytest benchmarks/ --benchmark-only   (results in benchmarks/out/)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package inventory").set_defaults(func=cmd_info)

    p = sub.add_parser("compress", help="compress a tensor and report ratio/error")
    p.add_argument("--input", help=".npy file of float32 values (synthetic demo if omitted)")
    p.add_argument("--compressor", default="compso")
    p.add_argument(
        "--encoder",
        default="",
        help="lossless encoder from repro.encoders (compso variants only)",
    )
    p.add_argument("--size", type=int, default=1 << 20, help="synthetic tensor size")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_compress)

    p = sub.add_parser(
        "tune", help="offline (eb_f, eb_q) search under a fidelity budget"
    )
    p.add_argument("--input", help=".npy file of float32 gradients (synthetic if omitted)")
    p.add_argument("--size", type=int, default=1 << 18, help="synthetic tensor size")
    p.add_argument("--samples", type=int, default=3, help="synthetic sample count")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--min-cosine", type=float, default=0.999, help="fidelity: min cosine")
    p.add_argument("--max-rel-l2", type=float, default=0.05, help="fidelity: max rel L2")
    p.add_argument("--encoder", default="ans", help="lossless encoder to tune with")
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("demo-train", help="quick distributed K-FAC + COMPSO demo")
    p.add_argument("--ranks", type=int, default=4)
    p.add_argument("--iterations", type=int, default=20)
    p.set_defaults(func=cmd_demo_train)

    p = sub.add_parser("trace", help="trace a short simulated run (Chrome trace + metrics)")
    p.add_argument("--model", default="mini-resnet", choices=_TRACE_MODELS)
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--gpus-per-node", type=int, default=2)
    p.add_argument("--iterations", type=int, default=5)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--compressor", default="compso", help="compressor name or 'none'")
    p.add_argument("--out", default="trace.json", help="Chrome trace output path")
    p.add_argument("--metrics-out", default="metrics.jsonl", help="metrics JSONL path ('' skips)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("chaos", help="run a fault-injection scenario vs a clean baseline")
    from repro.faults.chaos import SCENARIOS

    p.add_argument("--scenario", default="mixed", choices=SCENARIOS)
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--gpus-per-node", type=int, default=2)
    p.add_argument("--iterations", type=int, default=12)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", default="", help="write the ChaosResult as JSON to this path")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "guard", help="guarded vs unguarded chaos run (remediation timeline)"
    )
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--gpus-per-node", type=int, default=2)
    p.add_argument("--iterations", type=int, default=18)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--corruption", type=float, default=0.6)
    p.add_argument("--json", default="", help="write the GuardRunResult as JSON to this path")
    p.set_defaults(func=cmd_guard)

    p = sub.add_parser(
        "overlap", help="compare blocking vs scheduled-overlap execution"
    )
    p.add_argument("--ranks", type=int, default=8)
    p.add_argument("--iters", type=int, default=5)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--streams", type=int, default=2, help="comm streams per rank")
    p.add_argument(
        "--train-flops",
        type=float,
        default=5e7,
        help="modelled training throughput (FLOP/s); small so the tiny "
        "proxy's compute is on the same scale as its communication",
    )
    p.add_argument("--json", default="overlap.json", help="result JSON path ('' skips)")
    p.set_defaults(func=cmd_overlap)

    p = sub.add_parser("record", help="record a run ledger (guarded+overlapped by default)")
    p.add_argument("--preset", default="smoke", choices=sorted(_RECORD_PRESETS))
    p.add_argument("--out", default="run.ledger", help="ledger output path")
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--gpus-per-node", type=int, default=2)
    p.add_argument("--iterations", type=int, default=6)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--eb", type=float, default=None, help="override the preset's error bound")
    p.add_argument("--no-guard", action="store_true", help="disable the guard layer")
    p.add_argument("--no-overlap", action="store_true", help="disable the overlap runtime")
    p.add_argument(
        "--xray",
        action="store_true",
        help="fold per-step critical-path attribution records into the ledger",
    )
    p.set_defaults(func=cmd_record)

    p = sub.add_parser(
        "autotune",
        help="run a K-FAC job with the closed-loop online autotuner "
        "(optionally under a link-degradation window)",
    )
    p.add_argument("--preset", default="autotuned", choices=sorted(_AUTOTUNE_PRESETS))
    p.add_argument("--out", default="autotune.ledger", help="ledger output path")
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--gpus-per-node", type=int, default=2)
    p.add_argument("--iterations", type=int, default=12)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--channels", type=int, default=16, help="proxy model width")
    p.add_argument(
        "--latency-factor",
        type=float,
        default=4.0,
        help="link-degradation latency multiplier (degraded preset)",
    )
    p.add_argument(
        "--bandwidth-factor",
        type=float,
        default=64.0,
        help="link-degradation bandwidth divisor (degraded preset)",
    )
    p.add_argument("--warmup", type=int, default=2, help="steps before the first decision")
    p.add_argument("--min-dwell", type=int, default=2, help="min steps between decisions")
    p.add_argument(
        "--min-retunes",
        type=int,
        default=None,
        help="exit non-zero unless at least this many retunes fired (CI gate)",
    )
    p.add_argument(
        "--max-retunes",
        type=int,
        default=None,
        help="exit non-zero if more than this many retunes fired (CI gate)",
    )
    p.set_defaults(func=cmd_autotune)

    p = sub.add_parser("report", help="render a ledger as HTML dashboard + markdown")
    p.add_argument("ledger", help="path to a recorded .ledger file")
    p.add_argument("--html", default="", help="HTML output path (default: <ledger>.html)")
    p.add_argument("--md", default="", help="markdown output path (default: <ledger>.md)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "xray", help="render a ledger's critical-path attribution (flame view)"
    )
    p.add_argument("ledger", help="path to a ledger recorded with --xray")
    p.add_argument("--html", default="", help="HTML output path (default: <ledger>.xray.html)")
    p.add_argument("--md", default="", help="markdown output path (default: <ledger>.xray.md)")
    p.set_defaults(func=cmd_xray)

    p = sub.add_parser("diff", help="compare two ledgers; exit non-zero on regression")
    p.add_argument("baseline", help="baseline .ledger")
    p.add_argument("candidate", help="candidate .ledger")
    p.add_argument(
        "--tol",
        action="append",
        metavar="METRIC=VALUE",
        help="tolerance override, e.g. final_loss=0.1, sim_time=abs:0.01 "
        "(VALUE is a relative band unless prefixed abs:)",
    )
    p.add_argument(
        "--attribute",
        action="store_true",
        help="name the critical-path segment responsible for a slowdown "
        "(both ledgers must be recorded with --xray)",
    )
    p.add_argument("--json", default="", help="write the diff result as JSON to this path")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "fleet",
        help="run a multi-job fleet on the shared simulated fabric",
    )
    p.add_argument(
        "--preset",
        choices=["smoke", "scale", "chaos-smoke", "storage-smoke"],
        default="smoke",
        help="job mix: smoke (3 small jobs, CI-gated), scale (10 jobs at 1k-4k "
        "ranks), chaos-smoke (smoke + deterministic crash/failure plans, "
        "CI-gated), or storage-smoke (smoke + deterministic disk faults on the "
        "checkpoint store, CI-gated)",
    )
    p.add_argument("--out", default=None, help="directory for per-job ledgers")
    p.add_argument(
        "--store-dir",
        default=None,
        help="checkpoint into sealed versioned stores under this directory "
        "(one per job); enables storage-plane faults and generation fallback",
    )
    p.add_argument("--json", default=None, help="also dump the fleet result as JSON")
    p.add_argument(
        "--chaos",
        action="store_true",
        help="attach seeded fault plans (stragglers, link degradation, node "
        "failures, job crashes) and fleet-wide fabric brownouts to the preset",
    )
    p.add_argument(
        "--fault-rate",
        type=float,
        default=1.0,
        help="chaos intensity: scales every fault probability (0 = faultless)",
    )
    p.add_argument("--chaos-seed", type=int, default=0, help="seed for the chaos draws")
    p.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help="cap on simultaneously running jobs (arrivals beyond it queue or preempt)",
    )
    p.add_argument(
        "--retry-budget",
        type=int,
        default=None,
        help="restarts allowed per job before it is marked failed",
    )
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "fsck",
        help="verify (and repair) checkpoint stores, archives, and run ledgers",
    )
    p.add_argument(
        "paths",
        nargs="+",
        help="a store directory, .npz checkpoint archive, .ledger/.jsonl run "
        "ledger, or a directory containing any mix of them",
    )
    p.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt generations, adopt verified orphans, rebuild "
        "manifests, and repair crash-truncated ledgers (scan-only without this)",
    )
    p.add_argument("--json", default=None, help="dump per-object verdicts as JSON")
    p.set_defaults(func=cmd_fsck)

    sub.add_parser("experiments", help="list paper artefacts and benches").set_defaults(
        func=cmd_experiments
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `python -m repro experiments | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
