"""Gradient/factor bucketing: coalesce small tensors, flush by bytes.

Eager per-layer exchange pays the per-message alpha cost once per layer;
DDP-style bucketing coalesces small per-layer payloads into buckets that
flush when a byte threshold is reached, issuing a single nonblocking
collective per bucket.  Because per-element reduction math is unchanged
by concatenation (same per-rank addition order, same averaging), bucketed
results are bit-identical to per-tensor collectives.

With a ``compressor``, each rank's concatenated bucket payload travels
through the existing COMPSO pipeline once per bucket — compression over
a bucket is precisely the layer-aggregation idea of the paper (COMPSO's
``m``) executed by the runtime instead of being assumed by the timing
model.  Without one, ``wire_nbytes`` overrides per item let callers
account for payloads that were compressed upstream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.distributed.plane import RepView, map_payloads

if TYPE_CHECKING:  # pragma: no cover
    from repro.compression.base import GradientCompressor
    from repro.runtime.engine import StreamRuntime

__all__ = ["Bucketer", "split_bounds"]


def split_bounds(array: np.ndarray, bucket_bytes: int) -> list[tuple[int, int]]:
    """(lo, hi) element bounds splitting a flat array into byte buckets."""
    if bucket_bytes < 1:
        raise ValueError(f"bucket_bytes must be positive, got {bucket_bytes}")
    n = array.size
    if n == 0:
        return []
    per = max(1, int(bucket_bytes // array.itemsize))
    return [(lo, min(lo + per, n)) for lo in range(0, n, per)]


class Bucketer:
    """Byte-threshold coalescing front-end for nonblocking allreduce.

    ``add`` accumulates per-rank tensors; once the pending bytes reach
    ``threshold_bytes`` the bucket is flushed as one ``iallreduce``.
    ``wait`` flushes the remainder, waits every in-flight bucket, and
    returns the reduced tensors keyed and shaped as they were added.
    """

    def __init__(
        self,
        runtime: "StreamRuntime",
        *,
        threshold_bytes: int | None = None,
        category: str = "allreduce",
        average: bool = True,
        compressor: "GradientCompressor | None" = None,
    ):
        self.runtime = runtime
        self.threshold_bytes = (
            int(threshold_bytes) if threshold_bytes is not None else runtime.bucket_bytes
        )
        if self.threshold_bytes < 1:
            raise ValueError(f"threshold_bytes must be positive, got {self.threshold_bytes}")
        self.category = category
        self.average = average
        self.compressor = compressor
        #: Buckets issued over this bucketer's lifetime.
        self.n_buckets = 0
        #: Wire bytes modelled across all flushed buckets.
        self.wire_bytes = 0.0
        self._items: list[tuple[object, list[np.ndarray], tuple, float | None]] = []
        self._pending_bytes = 0
        self._inflight: list[tuple[object, list[tuple[object, int, int, tuple]]]] = []

    def add(
        self, key: object, per_rank_arrays: list[np.ndarray], *, wire_nbytes: float | None = None
    ) -> None:
        """Queue one logical tensor (per-rank list); flush on threshold.

        ``wire_nbytes`` overrides this item's modelled wire contribution
        (e.g. when the payload was already compressed upstream and only
        the compressed bytes travel).  A :class:`RepView` input (the
        timing track's representative payloads) stays a RepView all the
        way through flush — one concatenation, one compression.
        """
        arrays = map_payloads(per_rank_arrays, np.asarray)
        flats = map_payloads(arrays, lambda a: a.ravel())
        self._items.append((key, flats, arrays[0].shape, wire_nbytes))
        self._pending_bytes += flats[0].nbytes
        if self._pending_bytes >= self.threshold_bytes:
            self.flush()

    def flush(self) -> None:
        """Issue the pending bucket (no-op when nothing is queued)."""
        if not self._items:
            return
        world = self.runtime.cluster.world_size
        if all(isinstance(flats, RepView) for _, flats, _, _ in self._items):
            rep = np.concatenate([flats.payload for _, flats, _, _ in self._items])
            payloads = RepView(rep, world)
        else:
            payloads = [
                np.concatenate([flats[r] for _, flats, _, _ in self._items])
                for r in range(world)
            ]
        slices: list[tuple[object, int, int, tuple]] = []
        pos = 0
        for key, flats, shape, _ in self._items:
            slices.append((key, pos, pos + flats[0].size, shape))
            pos += flats[0].size
        wire: float | None = None
        if self.compressor is not None:
            # Compress each rank's whole bucket once (layer aggregation
            # executed for real); the decompressed payloads are what the
            # collective reduces, and only compressed bytes are costed.
            dtype = payloads[0].dtype
            compressed = map_payloads(
                payloads, lambda p: self.compressor.compress(p.astype(np.float32))
            )
            if isinstance(compressed, RepView):
                wire = float(compressed.payload.nbytes)
            else:
                wire = float(sum(ct.nbytes for ct in compressed)) / world
            payloads = map_payloads(
                compressed, lambda ct: self.compressor.decompress(ct).ravel().astype(dtype)
            )
        elif any(w is not None for _, _, _, w in self._items):
            wire = float(
                sum(w if w is not None else flats[0].nbytes for _, flats, _, w in self._items)
            )
        handle = self.runtime.iallreduce(
            payloads, average=self.average, category=self.category, nbytes=wire
        )
        self.wire_bytes += wire if wire is not None else payloads[0].nbytes
        self.n_buckets += 1
        self._inflight.append((handle, slices))
        self._items = []
        self._pending_bytes = 0

    def wait(self) -> dict:
        """Flush the tail bucket, wait everything, return key -> result."""
        self.flush()
        out: dict = {}
        for handle, slices in self._inflight:
            res = handle.wait()[0]
            for key, lo, hi, shape in slices:
                out[key] = res[lo:hi].reshape(shape)
        self._inflight = []
        return out
