"""Nonblocking collectives, comm streams, and scheduled overlap.

``repro.runtime`` is the execution engine layered over
:mod:`repro.distributed`: nonblocking collective variants that return
wait handles, per-rank compute/comm streams advanced by a deterministic
scheduler, a byte-threshold bucketing layer, and deadlock/unmatched-
collective detection.  Both trainers accept a :class:`StreamRuntime` to
issue K-FAC and gradient communication during compute and *measure* the
hidden fraction, replacing the assumed overlap constants of
:mod:`repro.kfac_dist.timing`::

    from repro.distributed import SimCluster
    from repro.runtime import ComputeModel, StreamRuntime

    cluster = SimCluster(4, 4)
    rt = StreamRuntime(cluster, overlap=True, compute=ComputeModel(train_flops=5e7))
    trainer = DistributedKfacTrainer(model, task, cluster, runtime=rt)
    trainer.train(iterations=10, batch_size=64)
    print(rt.hidden_fraction())   # measured, not assumed

The overlapped path is bit-identical to the blocking one — the same
SimCluster data-plane helpers move the same arrays; only the clocks
differ.
"""

from repro.runtime.bucketing import Bucketer, split_bounds
from repro.runtime.compute import ComputeModel
from repro.runtime.engine import CollectiveHandle, StreamRuntime
from repro.runtime.errors import (
    DeadlockError,
    RuntimeSchedulerError,
    UnmatchedCollectiveError,
)

__all__ = [
    "Bucketer",
    "CollectiveHandle",
    "ComputeModel",
    "DeadlockError",
    "RuntimeSchedulerError",
    "StreamRuntime",
    "UnmatchedCollectiveError",
    "split_bounds",
]
