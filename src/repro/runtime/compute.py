"""Modelled per-rank compute costs placed on the simulated clocks.

The seed trainers advance simulated time only inside collectives, so
there was nothing to hide communication *under*.  A :class:`ComputeModel`
prices the local work (forward, backward, eigendecomposition,
preconditioning) from parameter counts and the gpusim device model, and
the trainers charge those seconds to the per-rank ``SimClock``s — in
both the blocking and the overlapped execution mode, so the two differ
only in how communication time lands.

``train_flops`` is the effective sustained throughput.  The default is
mixed-precision-A100-like; the tiny proxy models used in tests and the
``repro overlap`` CLI pass a much smaller value so their modelled compute
is on the same scale as their modelled communication (as it is for the
paper's real models).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import A100, DeviceModel

__all__ = ["ComputeModel"]


@dataclass(frozen=True)
class ComputeModel:
    """Analytic per-rank compute-time model for the trainers."""

    device: DeviceModel = A100
    #: Effective training throughput, FLOP/s.  ``None`` uses half the
    #: device's tensor-core peak.
    train_flops: float | None = None
    #: Backward costs this multiple of forward (the usual 2x).
    backward_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.train_flops is not None and self.train_flops <= 0:
            raise ValueError(f"train_flops must be positive, got {self.train_flops}")
        if self.backward_factor < 0:
            raise ValueError(f"backward_factor must be >= 0, got {self.backward_factor}")

    @property
    def throughput(self) -> float:
        return self.train_flops if self.train_flops is not None else 0.5 * self.device.tensor_flops

    def forward_seconds(self, n_params: int, samples: int) -> float:
        """One forward pass: ~2 FLOPs per parameter per sample."""
        return 2.0 * n_params * samples / self.throughput

    def backward_seconds(self, n_params: int, samples: int) -> float:
        return self.backward_factor * self.forward_seconds(n_params, samples)

    def eig_seconds(self, dim: int) -> float:
        """Owner-rank eigendecomposition of one ``dim x dim`` factor."""
        return self.device.eig_time(dim)

    def precondition_seconds(self, in_f: int, out_f: int) -> float:
        """Owner-rank preconditioning matmuls for one layer."""
        return 2.0 * (in_f * in_f * out_f + out_f * out_f * in_f) / self.throughput
