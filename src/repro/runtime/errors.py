"""Scheduler error types: deadlocks and unmatched collectives.

Both exceptions carry a per-rank pending-op report (the same text a real
collective library's watchdog would dump) so a hang in the simulated
schedule is diagnosable from the exception message alone.
"""

from __future__ import annotations

__all__ = ["RuntimeSchedulerError", "UnmatchedCollectiveError", "DeadlockError"]


class RuntimeSchedulerError(RuntimeError):
    """Base class for scheduling-contract violations in repro.runtime."""


class UnmatchedCollectiveError(RuntimeSchedulerError):
    """Ranks posted collectives that do not line up.

    Raised either at issue time, when the heads of the per-rank posting
    queues disagree (e.g. one rank posted an allreduce while another
    posted an allgather, or the sizes differ), or at quiesce time, when
    some ranks posted an operation the rest never joined — the classic
    recipe for an MPI hang.
    """


class DeadlockError(RuntimeSchedulerError):
    """Issued collectives were never waited before quiesce.

    In the simulator nothing truly blocks, but an un-waited handle means
    the program would never have synchronised with that transfer — on
    real hardware, a use-before-arrival race or a leaked request.
    """
