"""Event-driven execution engine: nonblocking collectives on comm streams.

:class:`StreamRuntime` layers an asynchronous execution model over a
:class:`~repro.distributed.cluster.SimCluster`.  Where every SimCluster
collective is a barrier (synchronise all clocks, advance together), the
runtime gives each rank ``n_comm_streams`` communication streams next to
its compute stream (the rank's :class:`SimClock`):

* ``iallreduce`` / ``iallgather`` / ``ibroadcast`` / ``ireduce_scatter``
  move the data **eagerly** — the payload math runs through the exact
  same SimCluster data-plane helpers the blocking collectives use, so an
  overlapped run is bit-identical to a blocking run — and return a
  :class:`CollectiveHandle` instead of advancing any clock;
* the transfer occupies the least-busy comm stream of every participant
  from ``start = max(issue clocks, stream availability)`` for the
  alpha-beta duration of the collective;
* :meth:`CollectiveHandle.wait` advances each rank's compute clock only
  over the *exposed* tail of the transfer — communication that finished
  under subsequent compute costs nothing, and the hidden/exposed split
  is accumulated per category (:meth:`StreamRuntime.overlap_stats`), the
  measured replacement for the hand-waved ``overlap_fraction`` constants
  in :mod:`repro.kfac_dist.timing`.

Fault composition: injection happens at wait time — receiver-side
corruption is applied when the handle completes, and straggler/jitter
extras stretch the completion before the clocks are charged.  Telemetry:
every transfer is recorded as a span on its comm stream's own trace lane
(``stream >= 1``), while the compute-lane spans (``stream == 0``) keep
mirroring every clock mutation exactly, preserving the
``SimCluster.breakdown()`` reconciliation invariant.

Deadlock/mismatch detection: collectives are matched through per-rank
posting queues.  Conflicting heads raise
:class:`~repro.runtime.errors.UnmatchedCollectiveError` immediately;
:meth:`StreamRuntime.assert_quiesced` raises (with a per-rank pending-op
report) if posted ops were never joined by every rank or handles were
never waited.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.distributed.plane import RepView
from repro.runtime.compute import ComputeModel
from repro.runtime.errors import DeadlockError, UnmatchedCollectiveError
from repro.telemetry import SIM_TRACK, get_tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.distributed.cluster import SimCluster

__all__ = ["CollectiveHandle", "StreamRuntime"]

#: (op name, category, rounded wire bytes) — what must agree across ranks.
_Sig = tuple[str, str, int]


class CollectiveHandle:
    """Wait handle for one in-flight (or completed) collective.

    ``wait()`` is idempotent: the first call settles clocks and returns
    the per-rank results; every later call returns the same object with
    no further clock movement.  Handles may be waited in any order.
    """

    __slots__ = (
        "op",
        "category",
        "seconds",
        "start",
        "seq",
        "attrs",
        "_engine",
        "_streams",
        "_finalize",
        "_results",
        "_completed",
    )

    def __init__(
        self,
        engine: "StreamRuntime | None",
        op: str,
        category: str,
        seconds: float,
        start: float,
        seq: int,
        streams: dict[int, int],
        finalize: Callable[[], list],
        attrs: dict,
    ):
        self._engine = engine
        self.op = op
        self.category = category
        self.seconds = seconds
        self.start = start
        self.seq = seq
        self.attrs = attrs
        self._streams = streams
        self._finalize = finalize
        self._results: list | None = None
        self._completed = False

    @classmethod
    def completed(cls, op: str, category: str, results: list) -> "CollectiveHandle":
        """An already-finished handle (the blocking execution mode)."""
        h = cls(None, op, category, 0.0, 0.0, -1, {}, lambda: results, {})
        h._results = results
        h._completed = True
        return h

    @property
    def done(self) -> bool:
        """Whether this handle has been waited (results materialised)."""
        return self._completed

    def test(self) -> bool:
        """True when a ``wait`` would not advance any clock.

        Straggler/jitter extras are only drawn at wait time, so ``test``
        answers for the fault-free completion estimate.
        """
        if self._completed:
            return True
        end = self.start + self.seconds
        return all(r.clock.now >= end for r in self._engine.cluster.ranks)

    def wait(self) -> list:
        """Settle the transfer: charge exposed time, return per-rank results."""
        if self._completed:
            return self._results
        return self._engine._wait(self)

    def describe(self) -> str:
        return f"#{self.seq} {self.op} ({self.category}, {self.seconds * 1e6:.1f}us)"


class StreamRuntime:
    """Nonblocking-collective scheduler over a :class:`SimCluster`.

    With ``overlap=False`` every ``i*`` collective degenerates to the
    corresponding blocking SimCluster barrier and returns an
    already-completed handle — trainers are written against one API and
    the flag alone selects the execution mode, which is exactly what the
    bit-identical equivalence guarantee rests on.
    """

    def __init__(
        self,
        cluster: "SimCluster",
        *,
        overlap: bool = True,
        n_comm_streams: int = 2,
        compute: ComputeModel | None = None,
        bucket_bytes: int = 1 << 22,
    ):
        if n_comm_streams < 1:
            raise ValueError(f"need at least one comm stream, got {n_comm_streams}")
        if bucket_bytes < 1:
            raise ValueError(f"bucket_bytes must be positive, got {bucket_bytes}")
        self.cluster = cluster
        self.overlap = overlap
        self.n_comm_streams = int(n_comm_streams)
        self.compute = compute
        self.bucket_bytes = int(bucket_bytes)
        #: Optional deadline/retry policy (duck-typed; see
        #: :class:`repro.guard.watchdog.CollectiveWatchdog`).  Consulted
        #: only when a waited handle drew fault extras, so ``None`` and
        #: an idle watchdog are both bit-identical to the base runtime.
        self.watchdog = None
        #: (rank id, stream index >= 1) -> busy-until time.
        self._busy: dict[tuple[int, int], float] = {}
        #: Per-rank queues of posted-but-unmatched collective signatures.
        self._posted: dict[int, list[_Sig]] = {}
        self._pending: list[CollectiveHandle] = []
        self._seq = 0
        # Measured hidden/exposed comm seconds per category (per-rank mean).
        self._hidden: dict[str, float] = {}
        self._exposed: dict[str, float] = {}

    # -- posting / matching --------------------------------------------------

    def post(self, rank: int, op: str, *, category: str | None = None, nbytes: float = 0.0) -> None:
        """Low-level per-rank posting (diagnostics/testing).

        The high-level ``i*`` collectives post for every live rank and
        match immediately; ``post`` lets a single rank announce an
        operation on its own, which is how mismatches are provoked and
        detected.
        """
        self._posted.setdefault(rank, []).append(
            (op, category if category is not None else op, int(round(nbytes)))
        )

    def _post_all(self, sig: _Sig) -> None:
        for r in self.cluster.ranks:
            self._posted.setdefault(r.rank, []).append(sig)
        self._match()

    def _match(self) -> None:
        """Pop matched collective signatures off every live rank's queue."""
        live = [r.rank for r in self.cluster.ranks]
        queues = [self._posted.get(rank, []) for rank in live]
        while queues and all(queues):
            heads = {q[0] for q in queues}
            if len(heads) > 1:
                raise UnmatchedCollectiveError(
                    "collective mismatch: live ranks posted conflicting operations\n"
                    + self.pending_report()
                )
            for q in queues:
                q.pop(0)

    def pending_report(self) -> str:
        """Per-rank report of unmatched postings and un-waited handles."""
        lines = []
        ranks = sorted({r.rank for r in self.cluster.ranks} | set(self._posted))
        unwaited = [h for h in self._pending if not h.done]
        for rank in ranks:
            posted = ", ".join(
                f"{op}[{cat}, {nbytes}B]" for op, cat, nbytes in self._posted.get(rank, [])
            )
            awaiting = ", ".join(h.describe() for h in unwaited if rank in h._streams)
            lines.append(
                f"  rank {rank}: posted=[{posted or '-'}] awaiting-wait=[{awaiting or '-'}]"
            )
        return "\n".join(lines) or "  (no ranks)"

    def assert_quiesced(self) -> None:
        """Raise unless every collective was matched and waited.

        Call at iteration boundaries: it is the simulator's stand-in for
        a collective watchdog, turning a would-be hang into a diagnostic.
        """
        if any(q for q in self._posted.values()):
            raise UnmatchedCollectiveError(
                "unmatched collectives at quiesce: some ranks posted operations "
                "the rest never joined\n" + self.pending_report()
            )
        unwaited = [h for h in self._pending if not h.done]
        if unwaited:
            raise DeadlockError(
                f"{len(unwaited)} collective(s) issued but never waited\n"
                + self.pending_report()
            )
        self._pending.clear()

    # -- scheduling core -----------------------------------------------------

    def _issue(
        self,
        op: str,
        category: str,
        seconds: float,
        *,
        nbytes_wire: float,
        finalize: Callable[[], list],
        attrs: dict,
    ) -> CollectiveHandle:
        live = list(self.cluster.ranks)
        self._post_all((op, category, int(round(nbytes_wire))))
        # Least-busy comm stream per rank (ties -> lowest index): the
        # deterministic equivalent of a round-robin stream pool.
        streams: dict[int, int] = {}
        start = 0.0
        for r in live:
            idx = min(
                range(1, self.n_comm_streams + 1),
                key=lambda i: (self._busy.get((r.rank, i), 0.0), i),
            )
            streams[r.rank] = idx
            start = max(start, r.clock.now, self._busy.get((r.rank, idx), 0.0))
        for r in live:
            self._busy[(r.rank, streams[r.rank])] = start + seconds
        self._seq += 1
        handle = CollectiveHandle(
            self, op, category, seconds, start, self._seq, streams, finalize, attrs
        )
        self._pending.append(handle)
        return handle

    def _wait(self, handle: CollectiveHandle) -> list:
        cluster = self.cluster
        extras: dict[int, float] = {}
        if cluster.faults is not None:
            extras = cluster.faults.collective_extras(
                handle.op, handle.seconds, [r.rank for r in cluster.ranks]
            )
            if self.watchdog is not None and extras:
                extras = self.watchdog.review(self, handle, extras)
            if extras:
                cluster.fault_delay_seconds += max(extras.values())
        tracer = get_tracer()
        world = max(len(cluster.ranks), 1)
        transfer_spans = []  # per-rank comm-stream legs, rank order
        for r in cluster.ranks:
            done = handle.start + handle.seconds + extras.get(r.rank, 0.0)
            stream = handle._streams.get(r.rank, 1)
            key = (r.rank, stream)
            if done > self._busy.get(key, 0.0):
                self._busy[key] = done
            duration = done - handle.start
            transfer = None
            if tracer.enabled and duration > 0.0:
                transfer = tracer.add_span(
                    handle.op,
                    handle.category,
                    duration,
                    start=handle.start,
                    track=SIM_TRACK,
                    rank=r.rank,
                    stream=stream,
                    **handle.attrs,
                )
                transfer_spans.append(transfer)
            now = r.clock.now
            hidden = min(max(now - handle.start, 0.0), duration)
            self._hidden[handle.category] = (
                self._hidden.get(handle.category, 0.0) + hidden / world
            )
            self._exposed[handle.category] = (
                self._exposed.get(handle.category, 0.0) + (duration - hidden) / world
            )
            if done > now:
                # The exposed tail (plus any idle gap waiting for the
                # transfer to even start) lands on the compute clock under
                # the collective's category; the stream-0 span mirrors the
                # clock mutation exactly, keeping breakdown reconciliation.
                if tracer.enabled:
                    exposed = tracer.add_span(
                        handle.op,
                        handle.category,
                        done - now,
                        start=now,
                        track=SIM_TRACK,
                        rank=r.rank,
                        **handle.attrs,
                    )
                    if transfer is not None:
                        # The compute stream blocked on this comm-stream leg.
                        tracer.add_edge(transfer.id, exposed.id, "wait")
                r.clock.sync_to(done, handle.category)
        # One collective couples all participating ranks: chain the
        # per-rank comm-stream legs in ascending rank order.
        for a, b in zip(transfer_spans, transfer_spans[1:]):
            tracer.add_edge(a.id, b.id, "collective")
        handle._results = handle._finalize()
        handle._completed = True
        return handle._results

    # -- overlap measurement -------------------------------------------------

    def overlap_stats(self) -> dict[str, dict[str, float]]:
        """Measured hidden/exposed comm seconds per category (per-rank mean)."""
        out: dict[str, dict[str, float]] = {}
        for cat in sorted(set(self._hidden) | set(self._exposed)):
            hidden = self._hidden.get(cat, 0.0)
            exposed = self._exposed.get(cat, 0.0)
            out[cat] = {"hidden": hidden, "exposed": exposed, "total": hidden + exposed}
        return out

    def hidden_comm_seconds(self) -> float:
        return sum(self._hidden.values())

    def exposed_comm_seconds(self) -> float:
        return sum(self._exposed.values())

    def hidden_fraction(self) -> float:
        """Share of issued comm time that hid under other work — the
        scheduler-measured value :meth:`IterationBreakdown.overlapped_total`
        accepts as ``measured_overlap``."""
        total = self.hidden_comm_seconds() + self.exposed_comm_seconds()
        return self.hidden_comm_seconds() / total if total > 0 else 0.0

    # -- nonblocking collectives ---------------------------------------------

    def iallreduce(
        self,
        arrays: list[np.ndarray],
        *,
        average: bool = False,
        category: str = "allreduce",
        nbytes: float | None = None,
    ) -> CollectiveHandle:
        """Nonblocking :meth:`SimCluster.allreduce`; same data, deferred time."""
        c = self.cluster
        if not self.overlap:
            return CollectiveHandle.completed(
                "allreduce",
                category,
                c.allreduce(arrays, average=average, category=category, nbytes=nbytes),
            )
        total = c._reduce_data(arrays, "allreduce", average=average)
        result = total.astype(np.asarray(arrays[0]).dtype)
        wire = result.nbytes if nbytes is None else nbytes
        seconds = c.collective_seconds("allreduce", wire)
        c._record_collective("allreduce", seconds, result.nbytes, wire)
        return self._issue(
            "allreduce",
            category,
            seconds,
            nbytes_wire=wire,
            finalize=lambda: c._replicate_result(result),
            attrs={"nbytes_raw": result.nbytes, "nbytes_wire": wire},
        )

    def iallgather(
        self,
        objects: list[object],
        *,
        nbytes_per_rank: float | None = None,
        category: str = "allgather",
    ) -> CollectiveHandle:
        """Nonblocking :meth:`SimCluster.allgather` (corruption at wait)."""
        c = self.cluster
        if not self.overlap:
            return CollectiveHandle.completed(
                "allgather",
                category,
                c.allgather(objects, nbytes_per_rank=nbytes_per_rank, category=category),
            )
        c._check(objects)
        if isinstance(objects, RepView):
            first = objects.payload
            raw_sizes = [first.nbytes] if isinstance(first, np.ndarray) else []
        else:
            raw_sizes = [o.nbytes for o in objects if isinstance(o, np.ndarray)]
        if nbytes_per_rank is None:
            nbytes_per_rank = max(raw_sizes) if raw_sizes else 0.0
        seconds = c.collective_seconds("allgather", nbytes_per_rank)
        raw = max(raw_sizes) if raw_sizes else nbytes_per_rank
        c._record_collective(
            "allgather", seconds, raw * c.world_size, nbytes_per_rank * c.world_size
        )
        data = c._allgather_data(objects)  # sender buffers copied at issue
        return self._issue(
            "allgather",
            category,
            seconds,
            nbytes_wire=nbytes_per_rank,
            finalize=lambda: c._inject_allgather_faults(data),
            attrs={"nbytes_raw": raw, "nbytes_wire": nbytes_per_rank},
        )

    def ibroadcast(
        self,
        obj: object,
        root: int = 0,
        *,
        nbytes: float | None = None,
        category: str = "broadcast",
    ) -> CollectiveHandle:
        """Nonblocking :meth:`SimCluster.broadcast` (corruption at wait)."""
        c = self.cluster
        if not self.overlap:
            return CollectiveHandle.completed(
                "broadcast", category, c.broadcast(obj, root, nbytes=nbytes, category=category)
            )
        raw = obj.nbytes if isinstance(obj, np.ndarray) else 0.0
        if nbytes is None:
            nbytes = raw
        seconds = c.collective_seconds("broadcast", nbytes)
        c._record_collective("broadcast", seconds, raw, nbytes)
        data = c._broadcast_data(obj, root)
        return self._issue(
            "broadcast",
            category,
            seconds,
            nbytes_wire=nbytes,
            finalize=lambda: c._inject_broadcast_faults(data, root),
            attrs={"root": root, "nbytes_raw": raw, "nbytes_wire": nbytes},
        )

    def ireduce_scatter(
        self,
        arrays: list[np.ndarray],
        *,
        category: str = "reduce_scatter",
        nbytes: float | None = None,
    ) -> CollectiveHandle:
        """Nonblocking :meth:`SimCluster.reduce_scatter`."""
        c = self.cluster
        if not self.overlap:
            return CollectiveHandle.completed(
                "reduce_scatter",
                category,
                c.reduce_scatter(arrays, category=category, nbytes=nbytes),
            )
        total = c._reduce_data(arrays, "reduce_scatter", average=False)
        chunks = np.array_split(total.ravel(), c.world_size)
        wire = total.nbytes if nbytes is None else nbytes
        seconds = c.collective_seconds("reduce_scatter", wire)
        c._record_collective("reduce_scatter", seconds, total.nbytes, wire)
        dtype = np.asarray(arrays[0]).dtype
        return self._issue(
            "reduce_scatter",
            category,
            seconds,
            nbytes_wire=wire,
            finalize=lambda: [ch.astype(dtype).copy() for ch in chunks],
            attrs={"nbytes_raw": total.nbytes, "nbytes_wire": wire},
        )
