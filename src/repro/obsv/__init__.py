"""Run ledger, report/diff analytics, and the perf-regression gate.

The paper's claims are comparative — COMPSO vs. dense and vs. prior
compressors on iteration breakdowns, compression ratio vs. accuracy,
and end-to-end speedup — so the reproduction needs *like-for-like run
accounting*: one canonical artifact per run that every other subsystem
(telemetry, runtime overlap, guard) folds into, plus tooling to render
it and to compare two of them under tolerance bands.

* :mod:`repro.obsv.ledger` — the versioned run ledger trainers write
  via ``obsv=LedgerConfig(...)``;
* :mod:`repro.obsv.analytics` — trajectories and summary scalars;
* :mod:`repro.obsv.report` — self-contained HTML dashboard + markdown;
* :mod:`repro.obsv.diff` — structural run comparison that exits CI
  non-zero on perf/accuracy regression against committed baselines.
"""

from __future__ import annotations

from repro.obsv.analytics import (
    autotune_timeline,
    bound_series,
    cr_series,
    guard_timeline,
    loss_series,
    overlap_summary,
    per_layer_cr,
    span_totals,
    summarize,
    wire_series,
    xray_timeline,
)
from repro.obsv.diff import (
    DEFAULT_SPECS,
    DiffRow,
    MetricSpec,
    RunDiff,
    diff_ledgers,
    parse_tolerance,
)
from repro.obsv.ledger import (
    SCHEMA_VERSION,
    LedgerConfig,
    LedgerError,
    LedgerFsck,
    LedgerWriter,
    RunLedger,
    as_ledger,
    describe_compressor,
    fault_plan_digest,
    final_from_steps,
    fsck_ledger,
    load_ledger,
)
from repro.obsv.report import render_html, render_markdown, write_report

__all__ = [
    "DEFAULT_SPECS",
    "DiffRow",
    "LedgerConfig",
    "LedgerError",
    "LedgerFsck",
    "LedgerWriter",
    "MetricSpec",
    "RunDiff",
    "RunLedger",
    "SCHEMA_VERSION",
    "as_ledger",
    "autotune_timeline",
    "bound_series",
    "cr_series",
    "describe_compressor",
    "diff_ledgers",
    "fault_plan_digest",
    "final_from_steps",
    "fsck_ledger",
    "guard_timeline",
    "load_ledger",
    "loss_series",
    "overlap_summary",
    "parse_tolerance",
    "per_layer_cr",
    "render_html",
    "render_markdown",
    "span_totals",
    "summarize",
    "wire_series",
    "write_report",
    "xray_timeline",
]
