"""The run ledger: one canonical, versioned artifact per training run.

A ledger is a JSONL file with three kinds of lines, in order:

1. one **manifest** record — ``{"manifest": {...}}`` — describing the
   run's configuration: schema version, trainer kind, cluster shape and
   fabric, compressor, fault-plan digest, guard/runtime settings, seed;
2. one **step** record per training iteration, folding together every
   observability source that previously landed in separate outputs:
   trainer scalars (loss/lr/compression), the active
   :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot, tracer
   span aggregates (per-category count/total/p50/p95/p99 duration
   digests), the runtime's hidden/exposed overlap accounting, and any
   ``guard.*`` remediation events that fired during the step;
3. one **final** record — ``{"final": {...}}`` — with end-of-run
   summary scalars and the guard's full report.

Determinism contract: with the default configuration every line except
the manifest's ``created_unix`` timestamp is a pure function of
``(seed, config)`` — span digests default to the simulated-time tracks
(``sim``/``device``) precisely so wall-clock noise never enters the
body.  :meth:`RunLedger.body_text` excludes the timestamp, which is
what the determinism tests and :func:`RunLedger.digest` hash.

Trainers write ledgers through the ``obsv=LedgerConfig(...)`` kwarg;
``obsv=None`` (the default) is bit-identical to a build without this
subsystem — the writer only ever *reads* trainer state and never
consumes randomness.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "LedgerConfig",
    "LedgerError",
    "LedgerFsck",
    "LedgerWriter",
    "RunLedger",
    "as_ledger",
    "describe_compressor",
    "fault_plan_digest",
    "final_from_steps",
    "fsck_ledger",
    "load_ledger",
]

#: Ledger schema version.  Bump on any breaking change to record shapes;
#: readers accept equal versions and refuse newer ones (see DESIGN.md).
SCHEMA_VERSION = 1

_SCALARS = (bool, int, float, str)


class LedgerError(RuntimeError):
    """Malformed ledger file or misuse of the writer."""


def _scalarize(value):
    """JSON-safe scalar for manifest fields (numpy scalars included)."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, _SCALARS):
        return value
    if hasattr(value, "item"):  # numpy scalar
        try:
            return value.item()
        except (ValueError, TypeError):
            return None
    return None


def describe_compressor(compressor) -> dict | None:
    """JSON-safe description of a compressor: class, name, scalar params.

    Wrapped compressors (error feedback, adaptive schedules) describe
    their ``inner`` recursively so the manifest records the whole stack.
    """
    if compressor is None:
        return None
    out: dict = {
        "class": type(compressor).__name__,
        "name": getattr(compressor, "name", None),
    }
    params = {}
    for key, value in sorted(vars(compressor).items()):
        if key.startswith("_") or key in ("name", "inner"):
            continue
        scalar = _scalarize(value)
        if scalar is not None or value is None:
            params[key] = scalar
    if params:
        out["params"] = params
    inner = getattr(compressor, "inner", None)
    if inner is not None:
        out["inner"] = describe_compressor(inner)
    return out


def fault_plan_digest(plan) -> str | None:
    """Stable hex digest of a :class:`~repro.faults.plan.FaultPlan`.

    The digest covers the plan's seed and its full human-readable
    schedule (:meth:`FaultPlan.describe` renders every entry), so two
    runs share a digest exactly when they share a fault schedule.
    """
    if plan is None:
        return None
    payload = f"seed={plan.seed}\n{plan.describe()}".encode()
    return hashlib.sha256(payload).hexdigest()[:16]


@dataclass
class LedgerConfig:
    """Configuration for a trainer-written run ledger.

    ``span_tracks`` defaults to the simulated-time tracks so the ledger
    body stays deterministic; add ``"host"`` to also digest wall-clock
    trainer-phase spans (useful for profiling, fatal for byte-identical
    replay comparisons).
    """

    path: str | Path
    #: Fold per-step MetricsRegistry snapshots into step records.
    metrics: bool = True
    #: Fold per-category span-duration digests into step records.
    span_digests: bool = True
    span_tracks: tuple[str, ...] = ("sim", "device")
    #: Free-form annotation stored in the manifest.
    note: str = ""
    #: Also append each record to disk as it is produced, leaving a
    #: parseable-prefix crash artifact if the process dies mid-run
    #: (:func:`fsck_ledger` repairs its truncated tail).  ``close()``
    #: still rewrites the file atomically from the buffer, so a
    #: *completed* streamed ledger is byte-identical to a buffered one.
    stream: bool = False

    def build(self) -> "LedgerWriter":
        return LedgerWriter(self)


def as_ledger(obsv: "LedgerConfig | LedgerWriter | None") -> "LedgerWriter | None":
    """Normalise a trainer's ``obsv=`` argument to a LedgerWriter."""
    if obsv is None:
        return None
    if isinstance(obsv, LedgerConfig):
        return obsv.build()
    return obsv


def _digest(durations: list[float]) -> dict:
    """count/total/p50/p95/p99 digest of a duration list (nearest rank)."""
    ordered = sorted(durations)
    n = len(ordered)

    def pct(q: float) -> float:
        rank = max(int(-(-q * n // 100)), 1)
        return ordered[rank - 1]

    return {
        "count": n,
        "total": sum(ordered),
        "p50": pct(50.0),
        "p95": pct(95.0),
        "p99": pct(99.0),
    }


class LedgerWriter:
    """Buffers one run's records and writes the ledger file on close.

    The writer is passive: trainers push step scalars into
    :meth:`record_step`, and the writer pulls everything else (metrics,
    spans, overlap accounting, guard events) from the objects it was
    :meth:`bind`-ed to.  Buffering in memory keeps the on-disk artifact
    atomic — a crashed run leaves no half-written ledger behind.
    """

    def __init__(self, config: LedgerConfig):
        self.config = config
        self.path = Path(config.path)
        self._manifest: dict = {
            "schema_version": SCHEMA_VERSION,
            "created_unix": time.time(),
            "note": config.note,
        }
        self._steps: list[dict] = []
        self._closed = False
        self._stream_started = False
        # Bound observability sources (all optional).
        self._trainer = None
        self._cluster = None
        self._runtime = None
        self._guard = None
        self._autotune = None
        self._xray = None
        # Cursors into append-only source streams.
        self._span_cursor = 0
        self._guard_cursor = 0
        self._autotune_cursor = 0

    # -- configuration ---------------------------------------------------------

    def bind(
        self,
        *,
        kind: str,
        trainer=None,
        cluster=None,
        runtime=None,
        guard=None,
        compressor=None,
        factor_compressor=None,
        autotune=None,
        xray=None,
    ) -> "LedgerWriter":
        """Attach the run's subsystems and fill the manifest config."""
        self._trainer = trainer
        self._cluster = cluster
        self._runtime = runtime
        self._guard = guard
        self._autotune = autotune
        self._xray = xray
        self._manifest["kind"] = kind
        if cluster is not None:
            self._manifest["cluster"] = {
                "n_nodes": cluster.n_nodes,
                "gpus_per_node": cluster.gpus_per_node,
                "world_size": cluster.world_size,
                "fabric": cluster.network.name,
            }
            plan = cluster.faults.plan if cluster.faults is not None else None
            self._manifest["fault_plan"] = fault_plan_digest(plan)
        self._manifest["compressor"] = describe_compressor(compressor)
        if factor_compressor is not None:
            self._manifest["factor_compressor"] = describe_compressor(factor_compressor)
        if runtime is not None:
            self._manifest["runtime"] = {
                "overlap": runtime.overlap,
                "n_comm_streams": runtime.n_comm_streams,
                "bucket_bytes": runtime.bucket_bytes,
            }
        if guard is not None:
            config = getattr(guard, "config", None)
            guarded: dict = {"enabled": True}
            if config is not None:
                for key, value in sorted(vars(config).items()):
                    scalar = _scalarize(value)
                    if scalar is not None or value is None:
                        guarded[key] = scalar
            self._manifest["guard"] = guarded
        if autotune is not None:
            self._manifest["autotune"] = autotune.describe()
        if xray is not None:
            self._manifest["xray"] = xray.describe()
        return self

    def update_manifest(self, **fields) -> None:
        """Merge run-level fields (seed, iterations, ...) into the manifest."""
        if self._closed:
            raise LedgerError(f"{self.path}: ledger already closed")
        for key, value in fields.items():
            self._manifest[key] = _scalarize(value) if not isinstance(value, dict) else value

    # -- per-step capture ------------------------------------------------------

    def _capture_spans(self) -> dict | None:
        from repro.telemetry import get_tracer

        tracer = get_tracer()
        if not tracer.enabled or not self.config.span_digests:
            return None
        spans = tracer.spans()
        fresh = spans[self._span_cursor :]
        self._span_cursor = len(spans)
        out: dict[str, dict] = {}
        for track in self.config.span_tracks:
            per_cat: dict[str, list[float]] = {}
            for s in fresh:
                if s.track == track:
                    per_cat.setdefault(s.category, []).append(s.duration)
            if per_cat:
                out[track] = {cat: _digest(d) for cat, d in sorted(per_cat.items())}
        return out or None

    def _capture_metrics(self) -> list | None:
        from repro.telemetry import get_metrics

        m = get_metrics()
        if not m.enabled or not self.config.metrics:
            return None
        return m.snapshot()

    def _capture_overlap(self) -> dict | None:
        rt = self._runtime
        if rt is None:
            return None
        return {
            "hidden": rt.hidden_comm_seconds(),
            "exposed": rt.exposed_comm_seconds(),
            "hidden_fraction": rt.hidden_fraction(),
            "per_category": rt.overlap_stats(),
        }

    def _capture_guard_events(self) -> list:
        guard = self._guard
        if guard is None:
            return []
        timeline = guard.timeline
        fresh = [a.to_dict() for a in timeline[self._guard_cursor :]]
        self._guard_cursor = len(timeline)
        if fresh:
            for event in fresh:
                event["breaker_state"] = guard.breaker.state
        return fresh

    def _capture_autotune_events(self) -> list:
        autotune = self._autotune
        if autotune is None:
            return []
        decisions = autotune.decisions
        fresh = [d.to_dict() for d in decisions[self._autotune_cursor :]]
        self._autotune_cursor = len(decisions)
        return fresh

    def _capture_bounds(self) -> dict | None:
        trainer = self._trainer
        compressor = getattr(trainer, "compressor", None) if trainer is not None else None
        inner = getattr(compressor, "inner", None)
        source = inner if inner is not None else compressor
        eb_f = _scalarize(getattr(source, "eb_f", None))
        eb_q = _scalarize(getattr(source, "eb_q", None))
        if eb_f is None and eb_q is None:
            return None
        return {"eb_f": eb_f, "eb_q": eb_q}

    def record_step(
        self,
        step: int,
        *,
        loss: float,
        lr: float | None = None,
        wire_bytes: float | None = None,
        dense_bytes: float | None = None,
        layers: list | None = None,
        **extra,
    ) -> dict:
        """Fold one iteration's observability into a step record.

        ``layers`` is an optional list of ``[layer, wire_bytes,
        dense_bytes]`` triples (the per-layer compression trajectory the
        analytics layer reconstructs).  Extra keyword scalars are stored
        verbatim.
        """
        if self._closed:
            raise LedgerError(f"{self.path}: ledger already closed")
        record: dict = {"step": int(step), "loss": float(loss)}
        if lr is not None:
            record["lr"] = float(lr)
        if wire_bytes is not None and dense_bytes is not None:
            record["wire_bytes"] = float(wire_bytes)
            record["dense_bytes"] = float(dense_bytes)
            record["cr"] = float(dense_bytes) / max(float(wire_bytes), 1.0)
        if layers:
            record["layers"] = [[int(i), float(w), float(d)] for i, w, d in layers]
        if self._cluster is not None:
            record["sim_time"] = self._cluster.time
            record["world_size"] = self._cluster.world_size
        bounds = self._capture_bounds()
        if bounds is not None:
            record["bounds"] = bounds
        overlap = self._capture_overlap()
        if overlap is not None:
            record["overlap"] = overlap
        guard_events = self._capture_guard_events()
        if guard_events:
            record["guard_events"] = guard_events
        autotune_events = self._capture_autotune_events()
        if autotune_events:
            record["autotune_events"] = autotune_events
        if self._xray is not None:
            xray_record = self._xray.take_step_record()
            if xray_record is not None:
                record["xray"] = xray_record
        spans = self._capture_spans()
        if spans is not None:
            record["spans"] = spans
        metrics = self._capture_metrics()
        if metrics is not None:
            record["metrics"] = metrics
        for key, value in extra.items():
            record[key] = _scalarize(value)
        self._steps.append(record)
        if self.config.stream:
            self._stream_flush(record)
        return record

    def _stream_flush(self, record: dict) -> None:
        """Append one record to the on-disk crash artifact (stream mode).

        The first flush truncates — a writer restarted after a crash
        must not append a second manifest after a dead segment's steps.
        The manifest is written as of the first step; fields merged
        later reach the file at :meth:`close`, which rewrites it whole.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a" if self._stream_started else "w") as fh:
            if not self._stream_started:
                fh.write(json.dumps({"manifest": self._manifest}) + "\n")
            fh.write(json.dumps(record) + "\n")
        self._stream_started = True

    # -- finalisation ----------------------------------------------------------

    def _final_record(self, final_metric) -> dict:
        final = final_from_steps(self._steps)
        if final_metric is not None:
            final["final_metric"] = _scalarize(final_metric)
        overlap = self._capture_overlap()
        if overlap is not None:
            final["overlap"] = overlap
        if self._guard is not None:
            final["guard"] = self._guard.report()
        if self._autotune is not None:
            final["autotune"] = self._autotune.report()
        if self._xray is not None:
            xray_report = self._xray.report()
            if xray_report is not None:
                final["xray"] = xray_report
        return final

    def close(self, *, final_metric=None) -> Path:
        """Write the buffered ledger to disk (idempotent on re-close)."""
        if self._closed:
            return self.path
        self._closed = True
        lines = [json.dumps({"manifest": self._manifest})]
        lines.extend(json.dumps(r) for r in self._steps)
        lines.append(json.dumps({"final": self._final_record(final_metric)}))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic replace: a crash mid-close must not tear a streamed
        # crash artifact that was still parseable.
        tmp = self.path.with_name(f".{self.path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_text("\n".join(lines) + "\n")
            os.replace(tmp, self.path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return self.path

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def final_from_steps(steps: list[dict]) -> dict:
    """The deterministic core of a final record, derived from step records.

    Shared by :class:`LedgerWriter` (normal close) and
    :func:`fsck_ledger` (synthesising a final summary for a
    crash-truncated ledger) so both paths agree byte-for-byte on the
    derivable fields.
    """
    losses = [r["loss"] for r in steps if "loss" in r]
    crs = [r["cr"] for r in steps if "cr" in r]
    final: dict = {
        "steps": len(steps),
        "final_loss": losses[-1] if losses else None,
        "mean_cr": sum(crs) / len(crs) if crs else None,
        "total_wire_bytes": sum(r.get("wire_bytes", 0.0) for r in steps),
        "total_dense_bytes": sum(r.get("dense_bytes", 0.0) for r in steps),
    }
    if steps and "sim_time" in steps[-1]:
        final["sim_time"] = steps[-1]["sim_time"]
        final["world_size"] = steps[-1].get("world_size")
    return final


# -- reading -------------------------------------------------------------------


@dataclass
class RunLedger:
    """A parsed ledger: manifest + step records + final summary."""

    manifest: dict
    steps: list[dict] = field(default_factory=list)
    final: dict = field(default_factory=dict)
    path: Path | None = None

    def body_text(self) -> str:
        """Canonical body: every line, manifest timestamp excluded.

        Two runs with the same seed and configuration produce identical
        body text — this is the determinism contract the tests pin.
        """
        manifest = {k: v for k, v in self.manifest.items() if k != "created_unix"}
        lines = [json.dumps({"manifest": manifest})]
        lines.extend(json.dumps(r) for r in self.steps)
        lines.append(json.dumps({"final": self.final}))
        return "\n".join(lines) + "\n"

    def digest(self) -> str:
        """SHA-256 over :meth:`body_text` (volatile fields excluded)."""
        return hashlib.sha256(self.body_text().encode()).hexdigest()


def load_ledger(path: str | Path) -> RunLedger:
    """Parse and validate a ledger written by :class:`LedgerWriter`."""
    path = Path(path)
    records = [json.loads(line) for line in path.read_text().splitlines() if line.strip()]
    if not records or "manifest" not in records[0]:
        raise LedgerError(f"{path}: first record must be the manifest")
    manifest = records[0]["manifest"]
    version = manifest.get("schema_version")
    if not isinstance(version, int) or version > SCHEMA_VERSION:
        raise LedgerError(
            f"{path}: schema_version {version!r} is newer than supported {SCHEMA_VERSION}"
        )
    if len(records) < 2 or "final" not in records[-1]:
        raise LedgerError(f"{path}: last record must be the final summary")
    steps = records[1:-1]
    for r in steps:
        if "step" not in r:
            raise LedgerError(f"{path}: step record without 'step': {r}")
    return RunLedger(manifest=manifest, steps=steps, final=records[-1]["final"], path=path)


# -- fsck ----------------------------------------------------------------------


@dataclass
class LedgerFsck:
    """Verdict of :func:`fsck_ledger` on one ledger file.

    ``status`` is ``"ok"`` (parses as a complete ledger), ``"repaired"``
    (damage confined to a crash-truncated tail — the repaired ledger is
    in :attr:`ledger`, and written back when ``repair=True``), or
    ``"unrepairable"`` (damage beyond a tail truncation: mid-file
    corruption, missing manifest).  The synthesized final record is
    marked ``"repaired": true`` so downstream gating can tell a
    reconstructed summary from a written one.
    """

    path: Path
    status: str
    problems: list[str] = field(default_factory=list)
    dropped_records: int = 0
    synthesized_final: bool = False
    ledger: RunLedger | None = None


def fsck_ledger(path: str | Path, *, repair: bool = False) -> LedgerFsck:
    """Detect (and optionally repair) a crash-truncated run ledger.

    A process killed mid-run leaves a JSONL file whose damage is
    confined to the tail: a torn trailing line and/or a missing final
    record.  Both are repairable — the torn line is dropped and the
    final summary is re-derived from the surviving steps via
    :func:`final_from_steps`.  Anything else (unparseable record in the
    middle, first record not a manifest) is not crash truncation and is
    reported ``unrepairable`` rather than guessed at.

    With ``repair=True`` a repaired ledger is written back atomically
    (the damaged original is kept at ``<name>.pre-fsck``), after which
    :func:`load_ledger` — and thus ``repro report`` / ``repro diff`` —
    accepts the file.
    """
    path = Path(path)
    out = LedgerFsck(path=path, status="ok")
    try:
        text = path.read_text()
    except OSError as exc:
        out.status = "unrepairable"
        out.problems.append(f"unreadable: {exc}")
        return out
    raw_lines = [ln for ln in text.splitlines() if ln.strip()]
    records: list[dict] = []
    for i, line in enumerate(raw_lines):
        try:
            records.append(json.loads(line))
        except ValueError:
            if i == len(raw_lines) - 1:
                out.dropped_records += 1
                out.problems.append("torn trailing record dropped")
            else:
                out.status = "unrepairable"
                out.problems.append(
                    f"unparseable record at line {i + 1} of {len(raw_lines)} — "
                    f"mid-file corruption, not a crash-truncated tail"
                )
                return out
    if not records or not isinstance(records[0], dict) or "manifest" not in records[0]:
        out.status = "unrepairable"
        out.problems.append("first record is not a manifest")
        return out
    manifest = records[0]["manifest"]
    body = records[1:]
    final = None
    if body and isinstance(body[-1], dict) and "final" in body[-1]:
        final = body[-1]["final"]
        body = body[:-1]
    steps = []
    for r in body:
        if isinstance(r, dict) and "step" in r:
            steps.append(r)
        else:
            out.dropped_records += 1
            out.problems.append("non-step record dropped")
    if final is None:
        final = final_from_steps(steps)
        final["repaired"] = True
        out.synthesized_final = True
        out.problems.append("final summary missing — synthesized from steps")
    out.ledger = RunLedger(manifest=manifest, steps=steps, final=final, path=path)
    if out.problems:
        out.status = "repaired"
        if repair:
            backup = path.with_name(path.name + ".pre-fsck")
            backup.write_text(text)
            lines = [json.dumps({"manifest": manifest})]
            lines.extend(json.dumps(r) for r in steps)
            lines.append(json.dumps({"final": final}))
            tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
            try:
                tmp.write_text("\n".join(lines) + "\n")
                os.replace(tmp, path)
            finally:
                if tmp.exists():
                    tmp.unlink()
    return out
