"""Analytics over a parsed :class:`~repro.obsv.ledger.RunLedger`.

Pure functions from a ledger to trajectories and summary scalars; the
report renderer and the run comparator are both built on top of these,
so a metric means exactly the same thing in a dashboard and in a CI
gate.
"""

from __future__ import annotations

from repro.obsv.ledger import RunLedger

__all__ = [
    "autotune_timeline",
    "bound_series",
    "cr_series",
    "guard_timeline",
    "loss_series",
    "overlap_summary",
    "per_layer_cr",
    "series",
    "span_totals",
    "summarize",
    "wire_series",
    "xray_timeline",
]


def series(ledger: RunLedger, key: str) -> list:
    """Per-step values of one scalar field (missing steps skipped)."""
    return [r[key] for r in ledger.steps if key in r]


def loss_series(ledger: RunLedger) -> list[float]:
    return series(ledger, "loss")


def cr_series(ledger: RunLedger) -> list[float]:
    """Whole-step compression ratio (dense bytes / wire bytes)."""
    return series(ledger, "cr")


def wire_series(ledger: RunLedger) -> list[float]:
    return series(ledger, "wire_bytes")


def bound_series(ledger: RunLedger) -> list[dict]:
    """Error-bound trajectory ``[{"step": t, "eb_f": ..., "eb_q": ...}]``.

    Under an adaptive schedule this is the loose→tight staircase the
    paper's iteration-wise adaptation produces.
    """
    return [
        {"step": r["step"], **r["bounds"]} for r in ledger.steps if "bounds" in r
    ]


def per_layer_cr(ledger: RunLedger) -> dict[int, list[float]]:
    """Per-layer compression-ratio trajectories from step ``layers`` triples."""
    out: dict[int, list[float]] = {}
    for r in ledger.steps:
        for layer, wire, dense in r.get("layers", []):
            out.setdefault(int(layer), []).append(float(dense) / max(float(wire), 1.0))
    return out


def guard_timeline(ledger: RunLedger) -> list[dict]:
    """Flattened guard remediation events, each tagged with its step."""
    out: list[dict] = []
    for r in ledger.steps:
        for event in r.get("guard_events", []):
            out.append({"step": r["step"], **event})
    return out


def autotune_timeline(ledger: RunLedger) -> list[dict]:
    """Flattened autotune decision events (retunes and breaker vetoes).

    Prefers the per-step ``autotune_events`` records; falls back to the
    final record's decision list for ledgers trimmed of step detail.
    """
    out: list[dict] = []
    for r in ledger.steps:
        out.extend(dict(event) for event in r.get("autotune_events", []))
    if out:
        return out
    autotune = ledger.final.get("autotune")
    if isinstance(autotune, dict):
        out.extend(dict(event) for event in autotune.get("decisions", []))
    return out


def xray_timeline(ledger: RunLedger) -> list[dict]:
    """Per-step critical-path attribution records (empty if no xray)."""
    return [r["xray"] for r in ledger.steps if isinstance(r.get("xray"), dict)]


def overlap_summary(ledger: RunLedger) -> dict | None:
    """End-of-run hidden/exposed comm accounting (None if no runtime)."""
    overlap = ledger.final.get("overlap")
    if overlap is None:
        for r in reversed(ledger.steps):
            if "overlap" in r:
                return r["overlap"]
    return overlap


def span_totals(ledger: RunLedger) -> dict[str, dict[str, dict]]:
    """Per-track per-category span digests aggregated across all steps.

    Counts and totals sum exactly; the percentile columns report the
    worst (largest) per-step digest value, a conservative tail estimate
    that needs no raw samples.
    """
    out: dict[str, dict[str, dict]] = {}
    for r in ledger.steps:
        for track, cats in r.get("spans", {}).items():
            per_track = out.setdefault(track, {})
            for cat, d in cats.items():
                agg = per_track.setdefault(
                    cat, {"count": 0, "total": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
                )
                agg["count"] += d["count"]
                agg["total"] += d["total"]
                for q in ("p50", "p95", "p99"):
                    agg[q] = max(agg[q], d[q])
    return out


def summarize(ledger: RunLedger) -> dict:
    """Flat scalar summary — the metric set reports and diffs consume.

    Every value is deterministic given ``(seed, config)``; wall-clock
    quantities are deliberately excluded so two machines can compare
    ledgers.
    """
    final = ledger.final
    losses = loss_series(ledger)
    tail = losses[-max(len(losses) // 4, 1) :] if losses else []
    out: dict = {
        "steps": final.get("steps", len(ledger.steps)),
        "world_size": final.get("world_size"),
        "final_loss": final.get("final_loss"),
        "tail_loss": sum(tail) / len(tail) if tail else None,
        "mean_cr": final.get("mean_cr"),
        "total_wire_mb": final.get("total_wire_bytes", 0.0) / 1e6,
        "total_dense_mb": final.get("total_dense_bytes", 0.0) / 1e6,
        "sim_time": final.get("sim_time"),
    }
    if final.get("final_metric") is not None:
        out["final_metric"] = final["final_metric"]
    overlap = overlap_summary(ledger)
    if overlap is not None:
        out["hidden_comm_seconds"] = overlap["hidden"]
        out["exposed_comm_seconds"] = overlap["exposed"]
        out["hidden_fraction"] = overlap["hidden_fraction"]
    guard = final.get("guard")
    if guard is not None:
        out["guard_remediations"] = len(guard.get("remediations", []))
        out["breaker_trips"] = guard.get("breaker", {}).get("trips", 0)
    autotune = final.get("autotune")
    if isinstance(autotune, dict):
        out["autotune_retunes"] = autotune.get("retunes", 0)
        out["autotune_vetoes"] = autotune.get("vetoes", 0)
    xray = final.get("xray")
    if not isinstance(xray, dict):
        # Fall back to step records (crash-truncated ledgers fsck'd
        # without a written final xray summary).
        records = xray_timeline(ledger)
        if records:
            xray = {
                "critpath_s": sum(r.get("critpath_s", 0.0) for r in records),
                "exposed_comm_s": sum(r.get("exposed_comm_s", 0.0) for r in records),
                "straggler_skew_s": sum(r.get("straggler_skew_s", 0.0) for r in records),
            }
    if isinstance(xray, dict):
        # xray_* keys exist exactly when the run was xray-enabled, so a
        # diff gates them only when both sides analysed their traces.
        out["xray_critpath_s"] = xray.get("critpath_s")
        out["xray_exposed_comm_s"] = xray.get("exposed_comm_s")
        out["xray_straggler_skew"] = xray.get("straggler_skew_s")
    fleet = ledger.manifest.get("fleet")
    if isinstance(fleet, dict) and "restarts" in fleet:
        # Fleet lifecycle fields (restarts/SLO/goodput) only exist on
        # ledgers written by a FleetScheduler with the failure machinery;
        # older fleet ledgers summarize without them.
        out["fleet_restarts"] = fleet.get("restarts", 0)
        out["fleet_preemptions"] = fleet.get("preemptions", 0)
        out["fleet_time_lost_s"] = fleet.get("time_lost_s", 0.0)
        out["fleet_goodput"] = fleet.get("goodput")
        if fleet.get("slo_met") is not None:
            out["fleet_slo_met"] = 1.0 if fleet["slo_met"] else 0.0
    store = ledger.manifest.get("store")
    if isinstance(store, dict):
        # Durable-state fields exist only when a CheckpointStore had to
        # work around damage (fallbacks/quarantines/repairs); a healthy
        # store contributes nothing, keeping its ledger byte-identical
        # to a store-less run.
        out["store_fallbacks"] = store.get("fallbacks", 0)
        out["store_quarantined"] = store.get("quarantined", 0)
        out["store_repairs"] = store.get("repairs", 0)
    if ledger.final.get("repaired"):
        out["ledger_repaired"] = 1.0
    return out
