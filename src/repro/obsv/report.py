"""Render a run ledger as a markdown summary and an HTML dashboard.

Both renderers are pure functions of a :class:`RunLedger`; the HTML is
fully self-contained (inline CSS + inline SVG charts, no scripts, no
external assets) so a CI artifact or an emailed file opens anywhere.
"""

from __future__ import annotations

import html
import json
from pathlib import Path

from repro.obsv.analytics import (
    autotune_timeline,
    bound_series,
    cr_series,
    guard_timeline,
    loss_series,
    overlap_summary,
    span_totals,
    summarize,
    wire_series,
    xray_timeline,
)
from repro.obsv.ledger import RunLedger
from repro.util.tables import format_table

__all__ = ["render_html", "render_markdown", "write_report"]


# -- SVG helpers ---------------------------------------------------------------

_W, _H, _PAD = 520, 140, 28


def _svg_line(values: list[float], *, title: str, color: str = "#2563eb") -> str:
    """One titled SVG line chart (x = step index, y = value)."""
    if not values:
        return ""
    vmin, vmax = min(values), max(values)
    span = (vmax - vmin) or 1.0
    n = len(values)

    def x(i: int) -> float:
        return _PAD + (i / max(n - 1, 1)) * (_W - 2 * _PAD)

    def y(v: float) -> float:
        return _H - _PAD - ((v - vmin) / span) * (_H - 2 * _PAD)

    points = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in enumerate(values))
    return (
        f'<figure><figcaption>{html.escape(title)}</figcaption>'
        f'<svg viewBox="0 0 {_W} {_H}" width="{_W}" height="{_H}" role="img">'
        f'<rect width="{_W}" height="{_H}" fill="#f8fafc"/>'
        f'<text x="{_PAD}" y="14" class="lim">max {vmax:.5g}</text>'
        f'<text x="{_PAD}" y="{_H - 8}" class="lim">min {vmin:.5g}</text>'
        f'<polyline fill="none" stroke="{color}" stroke-width="1.5" points="{points}"/>'
        f"</svg></figure>"
    )


def _html_table(headers: list[str], rows: list[list]) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(_fmt(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _fmt(value) -> str:
    if isinstance(value, float):
        return format(value, ".6g")
    if value is None:
        return "-"
    return str(value)


def _manifest_rows(ledger: RunLedger) -> list[list]:
    rows = []
    for key, value in ledger.manifest.items():
        if key == "created_unix":
            continue
        if isinstance(value, dict):
            value = json.dumps(value, sort_keys=True)
        rows.append([key, _fmt(value)])
    return rows


# -- markdown ------------------------------------------------------------------


def render_markdown(ledger: RunLedger) -> str:
    """Plain-markdown run summary (manifest, metrics, guard timeline)."""
    summary = summarize(ledger)
    lines = [f"# Run report — {ledger.manifest.get('kind', 'run')}", ""]
    lines.append("## Manifest")
    lines.append("")
    for key, value in _manifest_rows(ledger):
        lines.append(f"- **{key}**: `{value}`")
    lines.append("")
    lines.append("## Summary")
    lines.append("")
    lines.append("```")
    lines.append(
        format_table(
            ["metric", "value"],
            [[k, _fmt(v)] for k, v in summary.items()],
            floatfmt=".6g",
        )
    )
    lines.append("```")
    bounds = bound_series(ledger)
    if bounds:
        stages = []
        for b in bounds:
            if not stages or (b["eb_f"], b["eb_q"]) != (stages[-1][1], stages[-1][2]):
                stages.append((b["step"], b["eb_f"], b["eb_q"]))
        lines.append("")
        lines.append("## Error-bound schedule")
        lines.append("")
        for step, eb_f, eb_q in stages:
            lines.append(f"- step {step}: eb_f={_fmt(eb_f)} eb_q={_fmt(eb_q)}")
    events = guard_timeline(ledger)
    lines.append("")
    lines.append("## Guard timeline")
    lines.append("")
    if events:
        for e in events:
            lines.append(
                f"- step {e['step']}: verdict `{e.get('verdict')}` → action "
                f"`{e.get('action')}` (breaker {e.get('breaker_state')})"
            )
    else:
        lines.append("(no remediation fired)")
    decisions = autotune_timeline(ledger)
    if decisions:
        lines.append("")
        lines.append("## Autotune decisions")
        lines.append("")
        for d in decisions:
            lines.append(
                f"- step {d.get('step')}: `{d.get('kind')}` "
                f"`{d.get('from')}` → `{d.get('to')}` ({d.get('reason')})"
            )
    xrays = xray_timeline(ledger)
    if xrays:
        lines.append("")
        lines.append("## Critical path (xray)")
        lines.append("")
        lines.append("```")
        lines.append(
            format_table(
                ["step", "critpath s", "exposed comm s", "wait s", "straggler"],
                [
                    [
                        r.get("step"),
                        r.get("critpath_s"),
                        r.get("exposed_comm_s"),
                        r.get("wait_s"),
                        _fmt(r.get("straggler_rank")),
                    ]
                    for r in xrays
                ],
                floatfmt=".6g",
            )
        )
        lines.append("```")
        lines.append("")
        lines.append("(full flame view: `repro xray <ledger>`)")
    totals = span_totals(ledger)
    for track, cats in totals.items():
        lines.append("")
        lines.append(f"## Span digests — {track} track")
        lines.append("")
        lines.append("```")
        lines.append(
            format_table(
                ["category", "spans", "total s", "p50 s", "p95 s", "p99 s"],
                [
                    [cat, d["count"], d["total"], d["p50"], d["p95"], d["p99"]]
                    for cat, d in sorted(cats.items(), key=lambda kv: -kv[1]["total"])
                ],
                floatfmt=".6g",
            )
        )
        lines.append("```")
    return "\n".join(lines) + "\n"


# -- HTML ----------------------------------------------------------------------

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem;
       color: #0f172a; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #cbd5e1; padding: .25rem .6rem; text-align: left;
         font-variant-numeric: tabular-nums; }
th { background: #f1f5f9; }
figure { display: inline-block; margin: .5rem 1rem .5rem 0; }
figcaption { font-weight: 600; margin-bottom: .25rem; }
svg .lim, text.lim { font: 10px system-ui, sans-serif; fill: #64748b; }
.ok { color: #15803d; } .bad { color: #b91c1c; }
"""


def render_html(ledger: RunLedger) -> str:
    """Self-contained HTML dashboard for one run ledger."""
    summary = summarize(ledger)
    charts = [_svg_line(loss_series(ledger), title="training loss")]
    crs = cr_series(ledger)
    if crs:
        charts.append(_svg_line(crs, title="compression ratio (dense/wire)", color="#059669"))
    wire = wire_series(ledger)
    if wire:
        charts.append(_svg_line([w / 1e6 for w in wire], title="wire MB per step", color="#d97706"))
    bounds = bound_series(ledger)
    if bounds:
        charts.append(
            _svg_line([b["eb_q"] for b in bounds], title="quantisation bound eb_q", color="#7c3aed")
        )
    hidden = [
        r["overlap"]["hidden_fraction"] for r in ledger.steps if "overlap" in r
    ]
    if hidden:
        charts.append(_svg_line(hidden, title="cumulative hidden-comm fraction", color="#0891b2"))

    sections = [
        f"<h1>Run report — {html.escape(str(ledger.manifest.get('kind', 'run')))}</h1>",
        "<h2>Summary</h2>",
        _html_table(["metric", "value"], [[k, v] for k, v in summary.items()]),
        "<h2>Trajectories</h2>",
        "".join(charts),
        "<h2>Manifest</h2>",
        _html_table(["field", "value"], _manifest_rows(ledger)),
    ]
    events = guard_timeline(ledger)
    sections.append("<h2>Guard timeline</h2>")
    if events:
        sections.append(
            _html_table(
                ["step", "verdict", "action", "breaker"],
                [
                    [e["step"], e.get("verdict"), e.get("action"), e.get("breaker_state")]
                    for e in events
                ],
            )
        )
    else:
        sections.append('<p class="ok">no remediation fired</p>')
    decisions = autotune_timeline(ledger)
    if decisions:
        sections.append("<h2>Autotune decisions</h2>")
        sections.append(
            _html_table(
                ["step", "kind", "from", "to", "reason"],
                [
                    [d.get("step"), d.get("kind"), d.get("from"), d.get("to"), d.get("reason")]
                    for d in decisions
                ],
            )
        )
    xrays = xray_timeline(ledger)
    if xrays:
        sections.append("<h2>Critical path (xray)</h2>")
        sections.append(
            _svg_line(
                [r.get("critpath_s", 0.0) for r in xrays],
                title="critical-path seconds per step",
                color="#b91c1c",
            )
        )
        sections.append(
            _html_table(
                ["step", "critpath s", "exposed comm s", "wait s", "straggler"],
                [
                    [
                        r.get("step"),
                        r.get("critpath_s"),
                        r.get("exposed_comm_s"),
                        r.get("wait_s"),
                        r.get("straggler_rank"),
                    ]
                    for r in xrays
                ],
            )
        )
    for track, cats in span_totals(ledger).items():
        sections.append(f"<h2>Span digests — {html.escape(track)} track</h2>")
        sections.append(
            _html_table(
                ["category", "spans", "total s", "p50 s", "p95 s", "p99 s"],
                [
                    [cat, d["count"], d["total"], d["p50"], d["p95"], d["p99"]]
                    for cat, d in sorted(cats.items(), key=lambda kv: -kv[1]["total"])
                ],
            )
        )
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>run report</title><style>{_CSS}</style></head><body>"
        + "".join(sections)
        + "</body></html>\n"
    )


def write_report(
    ledger: RunLedger,
    *,
    html_path: str | Path | None = None,
    md_path: str | Path | None = None,
) -> list[Path]:
    """Write the HTML dashboard and/or markdown summary; returns paths."""
    written: list[Path] = []
    if html_path is not None:
        p = Path(html_path)
        p.write_text(render_html(ledger))
        written.append(p)
    if md_path is not None:
        p = Path(md_path)
        p.write_text(render_markdown(ledger))
        written.append(p)
    return written
