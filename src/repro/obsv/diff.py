"""Structural run comparison with per-metric tolerance bands.

``diff_ledgers(baseline, candidate)`` compares the two runs'
:func:`~repro.obsv.analytics.summarize` scalars.  Each metric has a
direction (which way is *better*) and a tolerance band; a candidate
that moves past the band in the worse direction is a **regression**,
past it in the better direction an **improvement**, and directionless
metrics (world size, step count) that change at all are **drift** —
the run is no longer like-for-like.  Regressions and drift both gate:
:meth:`RunDiff.ok` is False and the CLI exits non-zero.

Tolerances are deliberately per-metric: simulated time and byte counts
drift a little across BLAS builds (eigendecompositions are not
bit-portable), so the defaults are wide enough to absorb numerical
noise while still catching a genuinely degraded configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obsv.analytics import summarize
from repro.obsv.ledger import RunLedger
from repro.util.tables import format_table

__all__ = [
    "DEFAULT_SPECS",
    "DiffRow",
    "MetricSpec",
    "RunDiff",
    "diff_ledgers",
    "parse_tolerance",
]


@dataclass(frozen=True)
class MetricSpec:
    """How one summary metric is compared.

    ``better`` is ``"lower"``, ``"higher"``, or ``"none"`` (any change
    beyond the band is drift).  ``rel_tol`` and ``abs_tol`` combine as
    ``|delta| <= abs_tol + rel_tol * |baseline|``.
    """

    name: str
    better: str = "none"
    rel_tol: float = 0.0
    abs_tol: float = 0.0

    def band(self, baseline: float) -> float:
        return self.abs_tol + self.rel_tol * abs(baseline)


#: Default comparison rules for every ledger summary metric.
DEFAULT_SPECS: dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        MetricSpec("steps", "none"),
        MetricSpec("world_size", "none"),
        MetricSpec("final_loss", "lower", rel_tol=0.25),
        MetricSpec("tail_loss", "lower", rel_tol=0.25),
        MetricSpec("final_metric", "higher", rel_tol=0.10, abs_tol=1.0),
        MetricSpec("mean_cr", "higher", rel_tol=0.25),
        MetricSpec("total_wire_mb", "lower", rel_tol=0.25),
        MetricSpec("total_dense_mb", "none", rel_tol=0.01),
        MetricSpec("sim_time", "lower", rel_tol=0.25),
        MetricSpec("hidden_comm_seconds", "higher", rel_tol=0.35, abs_tol=1e-9),
        MetricSpec("exposed_comm_seconds", "lower", rel_tol=0.35, abs_tol=1e-9),
        MetricSpec("hidden_fraction", "higher", abs_tol=0.15),
        MetricSpec("guard_remediations", "lower", abs_tol=2.0),
        MetricSpec("breaker_trips", "lower", abs_tol=1.0),
        MetricSpec("autotune_retunes", "none", abs_tol=1.0),
        MetricSpec("autotune_vetoes", "lower", abs_tol=1.0),
        MetricSpec("fleet_restarts", "lower", abs_tol=0.5),
        MetricSpec("fleet_preemptions", "lower", abs_tol=1.0),
        MetricSpec("fleet_time_lost_s", "lower", rel_tol=0.5, abs_tol=1e-6),
        MetricSpec("fleet_goodput", "higher", rel_tol=0.25),
        MetricSpec("fleet_slo_met", "higher"),
        # Durable-state events: fewer is better, and one generation of
        # slack absorbs the scripted corruption a chaos baseline commits
        # to — anything past that is a storage regression.
        MetricSpec("store_fallbacks", "lower", abs_tol=1.0),
        MetricSpec("store_quarantined", "lower", abs_tol=1.0),
        MetricSpec("store_repairs", "lower", abs_tol=1.0),
        MetricSpec("ledger_repaired", "lower"),
        # Xray critical-path attribution: present exactly when a run was
        # recorded with xray enabled — comparing an xray run against a
        # non-xray baseline is flagged as missing, since the pair is not
        # like-for-like.  Bands mirror the sim-time ones: the critical
        # path *is* sim time, decomposed.
        MetricSpec("xray_critpath_s", "lower", rel_tol=0.35, abs_tol=1e-9),
        MetricSpec("xray_exposed_comm_s", "lower", rel_tol=0.35, abs_tol=1e-9),
        MetricSpec("xray_straggler_skew", "lower", rel_tol=0.5, abs_tol=1e-9),
    )
}


@dataclass
class DiffRow:
    """One metric's comparison outcome."""

    metric: str
    baseline: float | None
    candidate: float | None
    delta: float | None
    tolerance: float | None
    #: ``ok`` | ``improved`` | ``regressed`` | ``drift`` | ``missing``
    status: str

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "tolerance": self.tolerance,
            "status": self.status,
        }


_GATING = ("regressed", "drift", "missing")


@dataclass
class RunDiff:
    """All compared metrics plus the gate verdict."""

    rows: list[DiffRow] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffRow]:
        return [r for r in self.rows if r.status in _GATING]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format_table(self, *, title: str | None = None) -> str:
        def cell(v):
            return "-" if v is None else v

        rows = [
            [r.metric, cell(r.baseline), cell(r.candidate), cell(r.delta), cell(r.tolerance), r.status]
            for r in self.rows
        ]
        return format_table(
            ["metric", "baseline", "candidate", "delta", "tol", "status"],
            rows,
            title=title or "run diff — per-metric deltas",
            floatfmt=".6g",
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "regressions": [r.metric for r in self.regressions],
            "rows": [r.to_dict() for r in self.rows],
        }


def parse_tolerance(spec: str, specs: dict[str, MetricSpec]) -> MetricSpec:
    """Parse one ``--tol`` override: ``metric=REL``, ``metric=rel:X`` or
    ``metric=abs:X``; unknown metrics compare as directionless drift."""
    if "=" not in spec:
        raise ValueError(f"tolerance override {spec!r} is not metric=value")
    name, value = spec.split("=", 1)
    base = specs.get(name, MetricSpec(name, "none"))
    if value.startswith("abs:"):
        return MetricSpec(name, base.better, rel_tol=0.0, abs_tol=float(value[4:]))
    if value.startswith("rel:"):
        value = value[4:]
    return MetricSpec(name, base.better, rel_tol=float(value), abs_tol=0.0)


def _compare(spec: MetricSpec, baseline, candidate) -> DiffRow:
    if baseline is None and candidate is None:
        return DiffRow(spec.name, None, None, None, None, "ok")
    if baseline is None or candidate is None:
        return DiffRow(spec.name, baseline, candidate, None, None, "missing")
    baseline = float(baseline)
    candidate = float(candidate)
    delta = candidate - baseline
    band = spec.band(baseline)
    if abs(delta) <= band:
        return DiffRow(spec.name, baseline, candidate, delta, band, "ok")
    if spec.better == "none":
        return DiffRow(spec.name, baseline, candidate, delta, band, "drift")
    worse = delta > 0 if spec.better == "lower" else delta < 0
    status = "regressed" if worse else "improved"
    return DiffRow(spec.name, baseline, candidate, delta, band, status)


def diff_ledgers(
    baseline: RunLedger,
    candidate: RunLedger,
    *,
    tolerances: dict[str, MetricSpec] | None = None,
) -> RunDiff:
    """Compare two runs' summary metrics under tolerance bands.

    ``tolerances`` overrides (or extends) :data:`DEFAULT_SPECS` per
    metric name.  Metrics present in either summary are compared; a
    metric present on one side only is ``missing`` and gates.
    """
    specs = dict(DEFAULT_SPECS)
    if tolerances:
        specs.update(tolerances)
    a = summarize(baseline)
    b = summarize(candidate)
    diff = RunDiff()
    for name in sorted(set(a) | set(b)):
        spec = specs.get(name, MetricSpec(name, "none"))
        diff.rows.append(_compare(spec, a.get(name), b.get(name)))
    return diff
