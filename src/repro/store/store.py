"""Sealed, versioned checkpoint store with verified fallback.

A :class:`CheckpointStore` owns one directory per job::

    <root>/
      MANIFEST.json          # sealed index of generations (CRC32 of body)
      gen-00000001.npz       # checkpoint generations, monotone numbers
      gen-00000002.npz
      quarantine/            # corrupt files moved aside, never deleted

Every ``save()`` appends a generation: the archive is written atomically
and sealed by :func:`repro.util.checkpoint.save_checkpoint`, then the
manifest — which records each generation's number, file name, training
step, byte size, and whole-file CRC32 — is rewritten atomically and
sealed by a CRC32 of its canonical JSON body.  ``load_latest()`` walks
the manifest newest-first and restores the newest generation that
passes *both* seals (file CRC against the manifest, content CRC inside
the archive); anything that fails is quarantined and the walk falls
back, so a torn or bit-rotten newest checkpoint degrades recovery by
one generation instead of killing the job.

The save sequence's injection points (:data:`STORE_SAVE_POINTS`) extend
the archive-level :data:`~repro.util.checkpoint.SAVE_POINTS` with the
manifest update and the post-seal at-rest window; the storage fault
plane (:mod:`repro.faults.storage`) drives them, which makes "crash at
any point during save" an enumerable sweep.  Crash-consistency
invariant: at *every* point, either the new generation is fully
committed (archive sealed on disk **and** listed in a sealed manifest)
or the previous committed state is untouched — ``load_latest`` after a
crash always restores a verified generation.

Every abnormal decision (fallback, quarantine, missing file, manifest
rebuild, orphan adoption) is a typed :class:`StoreEvent`; the
deterministic parts (kinds, generation numbers, steps — never CRCs or
byte offsets, which vary with the zlib build) feed telemetry counters
and fleet ledger manifests.  A healthy store emits only ``save`` /
``verify_ok`` events and contributes nothing to the ledger, keeping
store-backed runs bit-identical to direct-checkpoint runs.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.util.checkpoint import (
    SAVE_POINTS,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)

__all__ = [
    "CheckpointStore",
    "Generation",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA_VERSION",
    "STORE_SAVE_POINTS",
    "StoreError",
    "StoreEvent",
]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_SCHEMA_VERSION = 1

#: The full, ordered injection-point sequence of one ``save()`` call:
#: the archive-level points, then the manifest update (same
#: tmp-write/replace shape), then ``sealed`` — the at-rest window after
#: the save is fully committed, where bit-rot and truncation faults
#: strike the just-written generation file.
STORE_SAVE_POINTS = SAVE_POINTS + (
    "manifest:begin",
    "manifest:tmp_written",
    "manifest:replaced",
    "sealed",
)

#: Event kinds that indicate the store had to work around damage.
#: Anything else (``save``, ``verify_ok``, ``retention``) is normal
#: operation and must not perturb run artifacts.
ABNORMAL_KINDS = frozenset(
    {"fallback", "quarantine", "missing", "manifest_rebuilt", "orphan_adopted"}
)


class StoreError(RuntimeError):
    """The store cannot produce a verified generation (or isn't a store)."""


@dataclass(frozen=True)
class Generation:
    """One committed checkpoint generation, as recorded in the manifest."""

    gen: int
    file: str
    step: int
    nbytes: int
    crc32: int

    def to_json(self) -> dict:
        return {
            "gen": self.gen,
            "file": self.file,
            "step": self.step,
            "nbytes": self.nbytes,
            "crc32": self.crc32,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "Generation":
        return cls(
            gen=int(obj["gen"]),
            file=str(obj["file"]),
            step=int(obj["step"]),
            nbytes=int(obj["nbytes"]),
            crc32=int(obj["crc32"]),
        )


@dataclass(frozen=True)
class StoreEvent:
    """One durable-state decision, in the order it was made.

    ``kind`` is one of: ``save``, ``verify_ok``, ``fallback``,
    ``quarantine``, ``missing``, ``manifest_rebuilt``,
    ``orphan_adopted``, ``retention``.  ``detail`` carries only
    deterministic context (exception class names, file stems) — never
    CRC values or byte offsets, which depend on the zlib build.
    """

    kind: str
    gen: int | None = None
    step: int | None = None
    detail: str = ""

    @property
    def abnormal(self) -> bool:
        return self.kind in ABNORMAL_KINDS


def file_crc32(path: Path) -> int:
    """Whole-file CRC32, streamed (generation files can be large)."""
    crc = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def _manifest_body_text(generations: list[Generation]) -> str:
    body = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "generations": [g.to_json() for g in generations],
    }
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def manifest_text(generations: list[Generation]) -> str:
    """Canonical sealed manifest document: body + CRC32 seal of the body."""
    body = _manifest_body_text(generations)
    seal = zlib.crc32(body.encode()) & 0xFFFFFFFF
    return json.dumps({"body": json.loads(body), "seal": seal}, sort_keys=True, indent=1)


def parse_manifest(text: str) -> list[Generation]:
    """Parse + seal-check a manifest document; StoreError on any damage."""
    try:
        doc = json.loads(text)
        body = doc["body"]
        seal = int(doc["seal"])
    except (ValueError, TypeError, KeyError) as exc:
        raise StoreError(f"unreadable store manifest ({exc})") from exc
    body_text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    actual = zlib.crc32(body_text.encode()) & 0xFFFFFFFF
    if actual != seal:
        raise StoreError(
            f"store manifest seal mismatch (stored {seal:#010x}, actual {actual:#010x})"
        )
    if int(body.get("schema_version", 0)) != MANIFEST_SCHEMA_VERSION:
        raise StoreError(
            f"store manifest schema version {body.get('schema_version')!r} is not "
            f"{MANIFEST_SCHEMA_VERSION}"
        )
    try:
        gens = [Generation.from_json(g) for g in body["generations"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreError(f"malformed generation entry in store manifest ({exc})") from exc
    return sorted(gens, key=lambda g: g.gen)


def _gen_name(gen: int) -> str:
    return f"gen-{gen:08d}.npz"


def _is_gen_file(path: Path) -> bool:
    name = path.name
    if not (name.startswith("gen-") and name.endswith(".npz")):
        return False
    return name[4:-4].isdigit()


class CheckpointStore:
    """Sealed multi-generation checkpoint store for one job.

    ``keep`` bounds retention (newest ``keep`` generations survive; older
    files are deleted only *after* the manifest no longer references
    them).  ``hooks_factory(save_index)`` — typically
    :meth:`repro.faults.storage.StorageFaultController.hooks_for` — maps
    the store's monotone save counter to an injection callback for that
    save sequence; ``None`` (or a factory returning ``None``) keeps the
    sequence fault-free.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        keep: int = 3,
        hooks_factory: Callable[[int], Callable[[str, Path], None] | None] | None = None,
    ):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.hooks_factory = hooks_factory
        #: Monotone count of save() calls on this instance — the save
        #: index storage fault entries are addressed by.
        self.save_index = 0
        self.events: list[StoreEvent] = []

    # ------------------------------------------------------------------
    # events / telemetry

    def _event(self, kind: str, *, gen: int | None = None, step: int | None = None,
               detail: str = "") -> StoreEvent:
        ev = StoreEvent(kind=kind, gen=gen, step=step, detail=detail)
        self.events.append(ev)
        try:  # counters are best-effort; telemetry may be disabled
            from repro.obsv.telemetry import get_metrics

            get_metrics().counter(f"store.{kind}").inc()
        except Exception:
            pass
        return ev

    def summary(self) -> dict:
        """Deterministic event counts (for ledger manifests / reports)."""
        counts: dict[str, int] = {}
        for ev in self.events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return {
            "generations": len(self.generations(quiet=True)),
            "saves": counts.get("save", 0),
            "fallbacks": counts.get("fallback", 0),
            "quarantined": counts.get("quarantine", 0)
            + counts.get("missing", 0),
            "repairs": counts.get("manifest_rebuilt", 0)
            + counts.get("orphan_adopted", 0),
        }

    def abnormal_events(self) -> list[StoreEvent]:
        return [ev for ev in self.events if ev.abnormal]

    # ------------------------------------------------------------------
    # manifest

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def generations(self, *, quiet: bool = False) -> list[Generation]:
        """The committed generations, oldest-first.

        A missing manifest means an empty store.  A damaged manifest is
        rebuilt in memory from the verified generation files on disk
        (recorded as a ``manifest_rebuilt`` event unless ``quiet``) —
        the store trusts archives' own seals over a torn index.
        """
        if not self.manifest_path.exists():
            return []
        try:
            return parse_manifest(self.manifest_path.read_text())
        except StoreError as exc:
            if not quiet:
                self._event("manifest_rebuilt", detail=type(exc).__name__)
            return self._scan_generations()

    def _scan_generations(self) -> list[Generation]:
        """Rebuild the generation list from verified on-disk archives."""
        gens: list[Generation] = []
        for path in sorted(self.root.glob("gen-*.npz")):
            if not _is_gen_file(path):
                continue
            try:
                meta = verify_checkpoint(path)
            except (CheckpointError, OSError):
                continue  # load_latest / fsck will quarantine it
            gens.append(
                Generation(
                    gen=int(path.name[4:-4]),
                    file=path.name,
                    step=int(meta.get("step", 0)),
                    nbytes=path.stat().st_size,
                    crc32=file_crc32(path),
                )
            )
        return sorted(gens, key=lambda g: g.gen)

    def _write_manifest(self, generations: list[Generation], hook) -> None:
        text = manifest_text(generations)
        tmp = self.root / f".{MANIFEST_NAME}.tmp.{os.getpid()}"
        hook("manifest:begin", self.manifest_path)
        try:
            tmp.write_text(text)
            hook("manifest:tmp_written", tmp)
            os.replace(tmp, self.manifest_path)
            hook("manifest:replaced", self.manifest_path)
        finally:
            if tmp.exists():
                tmp.unlink()

    def _next_gen_number(self, gens: list[Generation]) -> int:
        """Next generation number: past the manifest *and* any on-disk file.

        A crash between archive replace and manifest replace leaves an
        orphan ``gen-N.npz`` the manifest doesn't know about; the next
        save must not reuse N, or the orphan's identity becomes
        ambiguous to fsck.
        """
        highest = max((g.gen for g in gens), default=0)
        for path in self.root.glob("gen-*.npz"):
            if _is_gen_file(path):
                highest = max(highest, int(path.name[4:-4]))
        return highest + 1

    # ------------------------------------------------------------------
    # save / load

    def save(
        self,
        model,
        kfac=None,
        *,
        optimizer=None,
        compressor=None,
        world_size: int | None = None,
        step: int = 0,
    ) -> Generation:
        """Commit a new generation: sealed archive, then sealed manifest.

        Runs the full :data:`STORE_SAVE_POINTS` sequence under this
        save's injection hooks.  Retention trims the manifest to the
        newest ``keep`` generations before it is written; the trimmed
        files are deleted only afterwards, so a crash mid-retention
        leaves orphans (fsck sweeps them), never dangling references.
        """
        save_index = self.save_index
        self.save_index += 1
        hook = None
        if self.hooks_factory is not None:
            hook = self.hooks_factory(save_index)
        if hook is None:
            hook = lambda point, path: None  # noqa: E731

        gens = self.generations()
        number = self._next_gen_number(gens)
        final = self.root / _gen_name(number)
        save_checkpoint(
            final,
            model,
            kfac,
            optimizer=optimizer,
            compressor=compressor,
            world_size=world_size,
            step=step,
            hooks=hook,
        )
        entry = Generation(
            gen=number,
            file=final.name,
            step=int(step),
            nbytes=final.stat().st_size,
            crc32=file_crc32(final),
        )
        new_gens = gens + [entry]
        kept = new_gens[-self.keep :]
        trimmed = new_gens[: -self.keep] if len(new_gens) > self.keep else []
        self._write_manifest(kept, hook)
        for old in trimmed:
            old_path = self.root / old.file
            if old_path.exists():
                old_path.unlink()
            self._event("retention", gen=old.gen, step=old.step)
        self._event("save", gen=number, step=int(step))
        # The at-rest window: the save is fully committed; bit-rot and
        # truncation faults scheduled for this save index strike now.
        hook("sealed", final)
        return entry

    def verify_generation(self, entry: Generation) -> dict:
        """Both seals for one generation: file CRC vs manifest, content CRC.

        Raises :class:`CheckpointError` (or ``FileNotFoundError``) on any
        mismatch; returns the archive meta on success.
        """
        path = self.root / entry.file
        if not path.exists():
            raise FileNotFoundError(f"{path}: generation file missing")
        actual = file_crc32(path)
        if actual != entry.crc32:
            raise CheckpointError(
                f"{path}: file CRC mismatch against store manifest "
                f"(manifest {entry.crc32:#010x}, actual {actual:#010x})"
            )
        return verify_checkpoint(path)

    def quarantine(self, entry: Generation, *, reason: str = "") -> Path | None:
        """Move a damaged generation file aside (never delete evidence)."""
        path = self.root / entry.file
        if not path.exists():
            self._event("missing", gen=entry.gen, step=entry.step, detail=reason)
            return None
        qdir = self.root / "quarantine"
        qdir.mkdir(exist_ok=True)
        dest = qdir / path.name
        n = 0
        while dest.exists():
            n += 1
            dest = qdir / f"{path.name}.{n}"
        shutil.move(str(path), str(dest))
        self._event("quarantine", gen=entry.gen, step=entry.step, detail=reason)
        return dest

    def load_latest(
        self,
        model,
        kfac=None,
        *,
        optimizer=None,
        compressor=None,
        expect_world_size: int | None = None,
    ) -> Generation | None:
        """Restore the newest *verified* generation; fall back on damage.

        Walks the manifest newest-first.  Each candidate is fully
        verified (file CRC against the manifest, then content seal)
        *before* any state is mutated; a failure emits ``fallback``,
        quarantines the file, and tries the next-older generation.
        Returns the restored :class:`Generation` (its ``step`` tells the
        caller where to resume), ``None`` for an empty store, and raises
        :class:`StoreError` when generations exist but none verifies.
        """
        gens = self.generations()
        if not gens:
            return None
        survivors = list(gens)
        for entry in reversed(gens):
            try:
                self.verify_generation(entry)
                load_checkpoint(
                    self.root / entry.file,
                    model,
                    kfac,
                    optimizer=optimizer,
                    compressor=compressor,
                    expect_world_size=expect_world_size,
                    verify=True,
                )
            except (FileNotFoundError, CheckpointError) as exc:
                self._event(
                    "fallback", gen=entry.gen, step=entry.step, detail=type(exc).__name__
                )
                self.quarantine(entry, reason=type(exc).__name__)
                survivors.remove(entry)
                continue
            self._event("verify_ok", gen=entry.gen, step=entry.step)
            if survivors != gens:
                # Damage was found: persist the pruned manifest so the
                # next reader doesn't re-walk known-bad generations.
                self._write_manifest(survivors, lambda point, path: None)
            return entry
        raise StoreError(
            f"{self.root}: no generation passed verification "
            f"({len(gens)} candidate(s), all quarantined)"
        )

    def latest(self) -> Generation | None:
        gens = self.generations(quiet=True)
        return gens[-1] if gens else None
