"""Offline scan/repair of durable state: stores, archives, ledgers.

``repro fsck <path>`` lands here.  :func:`fsck_path` dispatches on what
the path actually is — a :class:`~repro.store.CheckpointStore`
directory, a bare ``.npz`` checkpoint archive, a ``.ledger``/``.jsonl``
run ledger, or a directory of any mix of those — and returns one
:class:`FsckVerdict` per object examined.

Scan mode (the default) only reads.  Repair mode additionally:

* quarantines generation files that fail either seal (file CRC against
  the manifest, content CRC inside the archive);
* adopts verified **orphans** — generation files a crash left on disk
  after ``os.replace`` but before the manifest update — into the
  manifest, so a crash between those two points costs nothing;
* rebuilds a torn or garbage manifest from the verified files on disk;
* sweeps stray writer temp files;
* repairs crash-truncated ledgers via
  :func:`repro.obsv.ledger.fsck_ledger` (torn tail dropped, final
  summary re-synthesized, original kept at ``<name>.pre-fsck``).

Verdict statuses: ``ok``, ``corrupt``, ``missing``, ``orphan``,
``quarantined``, ``adopted``, ``rebuilt``, ``repaired``,
``unrepairable``, ``swept``, ``stray``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.store.store import (
    MANIFEST_NAME,
    CheckpointStore,
    Generation,
    StoreError,
    file_crc32,
    manifest_text,
    parse_manifest,
)
from repro.util.checkpoint import CheckpointError, verify_checkpoint

__all__ = ["FsckVerdict", "fsck_ledger_file", "fsck_path", "fsck_store", "is_store"]

#: Statuses that mean the object needed (or still needs) attention.
PROBLEM_STATUSES = frozenset(
    {"corrupt", "missing", "orphan", "quarantined", "adopted", "rebuilt",
     "repaired", "unrepairable", "swept", "stray"}
)


@dataclass(frozen=True)
class FsckVerdict:
    """One examined object's verdict.

    ``kind`` says what the object is (``manifest``, ``generation``,
    ``orphan``, ``tmp``, ``archive``, ``ledger``); ``status`` what fsck
    concluded (see module docstring); ``detail`` the human-readable why.
    """

    path: str
    kind: str
    status: str
    detail: str = ""

    @property
    def problem(self) -> bool:
        return self.status in PROBLEM_STATUSES

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "status": self.status,
            "detail": self.detail,
        }


def is_store(path: str | Path) -> bool:
    """Does ``path`` look like a CheckpointStore directory?"""
    path = Path(path)
    if not path.is_dir():
        return False
    if (path / MANIFEST_NAME).exists():
        return True
    return any(path.glob("gen-*.npz"))


def _is_ledger_name(path: Path) -> bool:
    return path.suffix in (".ledger", ".jsonl")


def _is_tmp_name(path: Path) -> bool:
    return path.name.startswith(".") and ".tmp." in path.name


def fsck_archive(path: str | Path) -> FsckVerdict:
    """Verify one bare checkpoint archive's content seal."""
    path = Path(path)
    try:
        meta = verify_checkpoint(path)
    except FileNotFoundError:
        return FsckVerdict(str(path), "archive", "missing")
    except CheckpointError as exc:
        return FsckVerdict(str(path), "archive", "corrupt", str(exc))
    sealed = "sealed" if meta.get("sealed") else "pre-seal schema, structural check only"
    return FsckVerdict(str(path), "archive", "ok", sealed)


def fsck_ledger_file(path: str | Path, *, repair: bool = False) -> FsckVerdict:
    """Verify (and optionally repair) one run-ledger file."""
    from repro.obsv.ledger import fsck_ledger

    path = Path(path)
    result = fsck_ledger(path, repair=repair)
    if result.status == "ok":
        return FsckVerdict(str(path), "ledger", "ok")
    detail = "; ".join(result.problems)
    if result.status == "unrepairable":
        return FsckVerdict(str(path), "ledger", "unrepairable", detail)
    status = "repaired" if repair else "corrupt"
    return FsckVerdict(str(path), "ledger", status, detail)


def _verify_entry(root: Path, entry: Generation) -> str | None:
    """None if the generation passes both seals, else the failure detail."""
    path = root / entry.file
    if not path.exists():
        return "generation file missing"
    actual = file_crc32(path)
    if actual != entry.crc32:
        return (
            f"file CRC mismatch against manifest "
            f"(manifest {entry.crc32:#010x}, actual {actual:#010x})"
        )
    try:
        verify_checkpoint(path)
    except CheckpointError as exc:
        return str(exc)
    return None


def fsck_store(root: str | Path, *, repair: bool = False) -> list[FsckVerdict]:
    """Scan (and optionally repair) one CheckpointStore directory.

    Examines the manifest, every generation it references, every
    on-disk generation file it does *not* reference (orphans), and any
    stray writer temp files.  With ``repair=True`` the store is left in
    a state where ``load_latest`` succeeds iff any verified generation
    exists: bad files quarantined, verified orphans adopted, manifest
    rewritten to exactly the surviving set.
    """
    root = Path(root)
    verdicts: list[FsckVerdict] = []
    store = CheckpointStore(root)  # event/quarantine machinery; no writes yet
    manifest_path = root / MANIFEST_NAME

    manifest_damaged = False
    entries: list[Generation] = []
    if not manifest_path.exists():
        if any(root.glob("gen-*.npz")):
            manifest_damaged = True
            verdicts.append(
                FsckVerdict(str(manifest_path), "manifest", "missing",
                            "generation files exist but no manifest")
            )
        else:
            verdicts.append(
                FsckVerdict(str(manifest_path), "manifest", "ok", "empty store")
            )
    else:
        try:
            entries = parse_manifest(manifest_path.read_text())
            verdicts.append(FsckVerdict(str(manifest_path), "manifest", "ok"))
        except StoreError as exc:
            manifest_damaged = True
            verdicts.append(
                FsckVerdict(str(manifest_path), "manifest",
                            "rebuilt" if repair else "corrupt", str(exc))
            )

    survivors: list[Generation] = []
    changed = manifest_damaged
    for entry in entries:
        path = root / entry.file
        failure = _verify_entry(root, entry)
        if failure is None:
            survivors.append(entry)
            verdicts.append(FsckVerdict(str(path), "generation", "ok",
                                        f"gen {entry.gen}, step {entry.step}"))
            continue
        changed = True
        if repair:
            dest = store.quarantine(entry, reason="fsck")
            status = "quarantined" if dest is not None else "missing"
        else:
            status = "missing" if not path.exists() else "corrupt"
        verdicts.append(FsckVerdict(str(path), "generation", status,
                                    f"gen {entry.gen}: {failure}"))

    known = {e.file for e in entries}
    for path in sorted(root.glob("gen-*.npz")):
        if path.name in known:
            continue
        try:
            meta = verify_checkpoint(path)
        except CheckpointError as exc:
            changed = True
            if repair:
                number = int(path.name[4:-4])
                store.quarantine(
                    Generation(gen=number, file=path.name, step=0, nbytes=0, crc32=0),
                    reason="fsck-orphan",
                )
                status = "quarantined"
            else:
                status = "corrupt"
            verdicts.append(FsckVerdict(str(path), "orphan", status, str(exc)))
            continue
        entry = Generation(
            gen=int(path.name[4:-4]),
            file=path.name,
            step=int(meta.get("step", 0)),
            nbytes=path.stat().st_size,
            crc32=file_crc32(path),
        )
        if repair:
            survivors.append(entry)
            changed = True
            verdicts.append(
                FsckVerdict(str(path), "orphan", "adopted",
                            f"verified; adopted as gen {entry.gen}, step {entry.step}")
            )
        else:
            verdicts.append(
                FsckVerdict(str(path), "orphan", "orphan",
                            "verified but not in manifest (crash before manifest update?)")
            )

    for path in sorted(root.iterdir()):
        if _is_tmp_name(path):
            if repair:
                path.unlink()
                verdicts.append(FsckVerdict(str(path), "tmp", "swept"))
            else:
                verdicts.append(FsckVerdict(str(path), "tmp", "stray",
                                            "leftover writer temp file"))

    if repair and changed:
        survivors = sorted(survivors, key=lambda g: g.gen)
        manifest_path.write_text(manifest_text(survivors))
        if manifest_damaged:
            detail = f"rebuilt from {len(survivors)} verified generation(s)"
        else:
            detail = f"rewritten with {len(survivors)} surviving generation(s)"
        verdicts.append(FsckVerdict(str(manifest_path), "manifest", "repaired", detail))
    return verdicts


def fsck_path(path: str | Path, *, repair: bool = False) -> list[FsckVerdict]:
    """Dispatch fsck over whatever ``path`` is; see module docstring."""
    path = Path(path)
    if is_store(path):
        return fsck_store(path, repair=repair)
    if path.is_dir():
        verdicts: list[FsckVerdict] = []
        for child in sorted(path.iterdir()):
            if is_store(child):
                verdicts.extend(fsck_store(child, repair=repair))
            elif child.suffix == ".npz" and child.is_file():
                verdicts.append(fsck_archive(child))
            elif _is_ledger_name(child) and child.is_file():
                verdicts.append(fsck_ledger_file(child, repair=repair))
        if not verdicts:
            verdicts.append(FsckVerdict(str(path), "archive", "ok",
                                        "nothing fsck-able found"))
        return verdicts
    if not path.exists():
        return [FsckVerdict(str(path), "archive", "missing")]
    if path.suffix == ".npz":
        return [fsck_archive(path)]
    return [fsck_ledger_file(path, repair=repair)]
