"""Durable state: sealed, versioned checkpoint store + ``repro fsck``.

The paper's headline runs are long (BERT pre-training takes 54 hours in
the paper's testbed), and the repo's recovery story — exact-resume
checkpoints, crash-restart fleets — is only as strong as the disk under
it.  This package makes durable state a *verified* resource instead of
a trusted one:

* :class:`CheckpointStore` — a per-job directory of monotonically
  numbered checkpoint generations with a CRC-sealed manifest.  Every
  archive is sealed on write (content CRC inside, file CRC in the
  manifest) and verified on load; a corrupt or torn newest generation
  falls back to the newest *verified* one, quarantining the bad file.
  Retention keeps the newest ``keep`` generations.
* the **storage fault plane** (:mod:`repro.faults.storage`) — seeded
  bit-rot, truncation, torn-write, and crash-at-injection-point faults
  threaded through the enumerated save sequence
  (:data:`STORE_SAVE_POINTS`), so "kill at any moment during save" is a
  deterministic sweep, not a hope.
* :mod:`repro.store.fsck` — offline scan/repair of stores and obsv run
  ledgers, surfaced as the ``repro fsck`` CLI: per-generation verdicts,
  quarantine of bad files, adoption of verified orphans, and repair of
  crash-truncated ledger tails.

Every verify/fallback/quarantine/repair decision is a typed
:class:`StoreEvent`, counted as ``store.*`` telemetry counters and (in
fleet runs) folded into the job's ledger manifest, where new
``store_*`` metric specs gate them in ``repro diff``.  A healthy store
emits no abnormal events, so store-backed runs stay bit-identical to
the pre-store layout.
"""

from repro.store.fsck import FsckVerdict, fsck_ledger_file, fsck_path, fsck_store, is_store
from repro.store.store import (
    MANIFEST_NAME,
    STORE_SAVE_POINTS,
    CheckpointStore,
    Generation,
    StoreError,
    StoreEvent,
)

__all__ = [
    "CheckpointStore",
    "FsckVerdict",
    "Generation",
    "MANIFEST_NAME",
    "STORE_SAVE_POINTS",
    "StoreError",
    "StoreEvent",
    "fsck_ledger_file",
    "fsck_path",
    "fsck_store",
    "is_store",
]
