"""Lossless byte-stream encoders (nvCOMP candidate stand-ins).

COMPSO's compression pipeline ends with a lossless encoder chosen online
from a candidate vector (paper section 4.4, Table 2).  This subpackage
provides from-scratch implementations of each encoder family plus stdlib
codecs where the format is open (see DESIGN.md substitution table).
"""

from repro.encoders.ans import RansEncoder
from repro.encoders.base import EncodeError, Encoder
from repro.encoders.bitcomp import BitcompEncoder
from repro.encoders.cascaded import CascadedEncoder
from repro.encoders.deflate import DeflateEncoder, GdeflateEncoder, ZstdLikeEncoder
from repro.encoders.elias import elias_gamma_decode, elias_gamma_encode
from repro.encoders.huffman import HuffmanEncoder
from repro.encoders.lz import Lz4LikeEncoder, SnappyLikeEncoder
from repro.encoders.registry import ENCODERS, NVCOMP_CANDIDATES, get_encoder, list_encoders

__all__ = [
    "Encoder",
    "EncodeError",
    "RansEncoder",
    "BitcompEncoder",
    "CascadedEncoder",
    "DeflateEncoder",
    "GdeflateEncoder",
    "ZstdLikeEncoder",
    "HuffmanEncoder",
    "Lz4LikeEncoder",
    "SnappyLikeEncoder",
    "elias_gamma_encode",
    "elias_gamma_decode",
    "ENCODERS",
    "NVCOMP_CANDIDATES",
    "get_encoder",
    "list_encoders",
]
