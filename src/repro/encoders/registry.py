"""Encoder registry: the candidate vector COMPSO selects from (section 4.4).

Mirrors the paper's eight nvCOMP candidates.  ``get_encoder`` constructs a
fresh instance per call (encoders are stateless, but this keeps callers
free to mutate configuration such as block sizes).
"""

from __future__ import annotations

from repro.encoders.ans import RansEncoder
from repro.encoders.base import Encoder
from repro.encoders.bitcomp import BitcompEncoder
from repro.encoders.cascaded import CascadedEncoder
from repro.encoders.deflate import DeflateEncoder, GdeflateEncoder, ZstdLikeEncoder
from repro.encoders.huffman import HuffmanEncoder
from repro.encoders.lz import Lz4LikeEncoder, SnappyLikeEncoder

__all__ = ["ENCODERS", "get_encoder", "list_encoders"]

ENCODERS: dict[str, type[Encoder]] = {
    "ans": RansEncoder,
    "bitcomp": BitcompEncoder,
    "cascaded": CascadedEncoder,
    "deflate": DeflateEncoder,
    "gdeflate": GdeflateEncoder,
    "lz4": Lz4LikeEncoder,
    "snappy": SnappyLikeEncoder,
    "zstd": ZstdLikeEncoder,
    "huffman": HuffmanEncoder,  # SZ's entropy stage; not an nvCOMP candidate
}

#: The candidate set considered by COMPSO's encoder selection (Table 2).
NVCOMP_CANDIDATES = (
    "ans",
    "bitcomp",
    "cascaded",
    "deflate",
    "gdeflate",
    "lz4",
    "snappy",
    "zstd",
)


def get_encoder(name: str) -> Encoder:
    """Instantiate the encoder registered under ``name``."""
    try:
        return ENCODERS[name]()
    except KeyError:
        raise KeyError(f"unknown encoder {name!r}; available: {sorted(ENCODERS)}") from None


def list_encoders() -> list[str]:
    """Names of all registered encoders."""
    return sorted(ENCODERS)
