"""LZ77-family encoders: LZ4-style and Snappy-style presets.

Both nvCOMP LZ4 and Snappy are dictionary (match-based) coders without an
entropy stage.  The paper finds they lose to entropy coders on gradient
data because quantised gradients have a skewed *value* distribution but
few repeated *patterns* (Table 2).  We implement a greedy hash-chain
matcher with Snappy's skip acceleration; the two presets differ in how
hard they search (LZ4 searches harder -> slightly better ratio, Snappy
skips faster -> modelled as higher throughput in gpusim).

Token stream layout (repeated until input exhausted)::

    <varint literal_len> <literals> <varint match_len> <varint distance>

``match_len == 0`` terminates a block without a match (used for the tail).
Minimum match length is 4.
"""

from __future__ import annotations

import numpy as np

from repro.encoders.base import Encoder, EncodeError

__all__ = ["Lz4LikeEncoder", "SnappyLikeEncoder"]

_MIN_MATCH = 4
_MAX_DIST = 65535


def _write_varint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise EncodeError("lz: truncated varint")
        b = data[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7


def _extend_match(data: bytes, a: int, b: int, limit: int) -> int:
    """Length of the common prefix of data[a:] and data[b:], b < limit."""
    n = 0
    chunk = 32
    while b + n + chunk <= limit and data[a + n : a + n + chunk] == data[b + n : b + n + chunk]:
        n += chunk
    while b + n < limit and data[a + n] == data[b + n]:
        n += 1
    return n


class _LzBase(Encoder):
    #: Snappy-style skip shift: after (1 << shift) consecutive misses the
    #: matcher starts striding, trading ratio for speed.
    skip_shift: int = 5

    def _encode_payload(self, data: bytes) -> bytes:
        n = len(data)
        out = bytearray()
        table: dict[bytes, int] = {}
        pos = 0
        anchor = 0
        misses = 0
        while pos + _MIN_MATCH <= n:
            key = data[pos : pos + _MIN_MATCH]
            cand = table.get(key)
            table[key] = pos
            if cand is not None and pos - cand <= _MAX_DIST:
                mlen = _MIN_MATCH + _extend_match(
                    data, cand + _MIN_MATCH, pos + _MIN_MATCH, n
                )
                _write_varint(out, pos - anchor)
                out += data[anchor:pos]
                _write_varint(out, mlen)
                _write_varint(out, pos - cand)
                pos += mlen
                anchor = pos
                misses = 0
            else:
                misses += 1
                pos += 1 + (misses >> self.skip_shift)
        if anchor < n:
            _write_varint(out, n - anchor)
            out += data[anchor:]
            _write_varint(out, 0)  # terminator: no match
            _write_varint(out, 0)
        return bytes(out)

    def _decode_payload(self, payload: bytes, n: int) -> bytes:
        out = bytearray()
        pos = 0
        while len(out) < n:
            lit_len, pos = _read_varint(payload, pos)
            out += payload[pos : pos + lit_len]
            pos += lit_len
            mlen, pos = _read_varint(payload, pos)
            dist, pos = _read_varint(payload, pos)
            if mlen == 0:
                continue
            if dist == 0 or dist > len(out):
                raise EncodeError("lz: invalid match distance")
            start = len(out) - dist
            if mlen <= dist:
                out += out[start : start + mlen]
            else:
                # Overlapping copy (run): emit byte by byte.
                for i in range(mlen):
                    out.append(out[start + i])
        return bytes(out)


class Lz4LikeEncoder(_LzBase):
    """LZ4-style preset: searches harder (slower skip growth)."""

    name = "lz4"
    skip_shift = 7


class SnappyLikeEncoder(_LzBase):
    """Snappy-style preset: aggressive skipping, lower ratio, faster."""

    name = "snappy"
    skip_shift = 4
