"""Canonical Huffman coding over bytes.

Huffman is the entropy stage of SZ's lossless backend and a reference
point for the entropy-coder family in Table 2.  The implementation is
canonical (only code lengths are stored in the header) with a
length-limited rebuild so the decode table stays small.

Encoding is fully vectorised (bit matrix + mask); decoding walks the
stream with a flat ``2**L`` lookup table.  Wall-clock throughput of the
pure-Python decode loop is *not* meant to model GPU throughput — that is
``repro.gpusim``'s job — but the compressed sizes are real.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from repro.encoders.base import Encoder, EncodeError, as_u8

__all__ = ["HuffmanEncoder", "code_lengths"]

_MAX_LEN = 15  # maximum code length; decode table is 2**15 entries


def code_lengths(freq: np.ndarray, max_len: int = _MAX_LEN) -> np.ndarray:
    """Huffman code lengths for symbol frequencies, limited to ``max_len``.

    Uses the classic heap construction; if the resulting tree is deeper
    than ``max_len`` the frequencies are repeatedly halved (floor at 1)
    and the tree rebuilt — a standard, slightly suboptimal limiter.
    """
    freq = np.asarray(freq, dtype=np.int64)
    lengths = np.zeros(freq.size, dtype=np.int32)
    present = np.flatnonzero(freq)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths
    work = freq.astype(np.float64)
    while True:
        # heap items: (weight, tiebreak, [symbols...])
        heap = [(float(work[s]), int(s), [int(s)]) for s in present]
        heapq.heapify(heap)
        lengths[:] = 0
        counter = freq.size
        while len(heap) > 1:
            w1, _, s1 = heapq.heappop(heap)
            w2, _, s2 = heapq.heappop(heap)
            for s in s1:
                lengths[s] += 1
            for s in s2:
                lengths[s] += 1
            heapq.heappush(heap, (w1 + w2, counter, s1 + s2))
            counter += 1
        if lengths.max() <= max_len:
            return lengths
        work = np.maximum(work // 2, 1) * (freq > 0)


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes (uint32) given code lengths; 0 for absent symbols."""
    codes = np.zeros(lengths.size, dtype=np.uint32)
    order = sorted((int(l), s) for s, l in enumerate(lengths) if l > 0)
    code = 0
    prev_len = 0
    for length, sym in order:
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


class HuffmanEncoder(Encoder):
    """Canonical Huffman over the byte alphabet."""

    name = "huffman"

    def _encode_payload(self, data: bytes) -> bytes:
        u8 = as_u8(data)
        freq = np.bincount(u8, minlength=256)
        lengths = code_lengths(freq)
        codes = _canonical_codes(lengths)
        sym_len = lengths[u8]
        total_bits = int(sym_len.sum())
        # Left-align every code in a 16-bit field, emit its first `len` bits.
        left = (codes[u8].astype(np.uint32) << (16 - lengths[u8])).astype(np.uint16)
        cols = np.arange(16, dtype=np.uint16)
        bits = ((left[:, None] >> (15 - cols)) & 1).astype(np.uint8)
        mask = cols < sym_len[:, None]
        stream = np.packbits(bits[mask])
        header = struct.pack("<I", total_bits) + lengths.astype(np.uint8).tobytes()
        return header + stream.tobytes()

    def _decode_payload(self, payload: bytes, n: int) -> bytes:
        if len(payload) < 4 + 256:
            raise EncodeError("huffman: truncated header")
        (total_bits,) = struct.unpack_from("<I", payload, 0)
        lengths = np.frombuffer(payload[4 : 4 + 256], dtype=np.uint8).astype(np.int32)
        codes = _canonical_codes(lengths)
        max_len = int(lengths.max()) if lengths.any() else 1
        # Flat decode table: any max_len-bit window starting with a code
        # maps to (symbol, code length).
        table_sym = np.zeros(1 << max_len, dtype=np.uint8)
        table_len = np.zeros(1 << max_len, dtype=np.uint8)
        for sym in range(256):
            ln = int(lengths[sym])
            if ln == 0:
                continue
            start = int(codes[sym]) << (max_len - ln)
            end = (int(codes[sym]) + 1) << (max_len - ln)
            table_sym[start:end] = sym
            table_len[start:end] = ln
        stream = payload[4 + 256 :]
        if len(stream) * 8 < total_bits:
            raise EncodeError("huffman: bit stream shorter than declared")
        out = bytearray(n)
        buf = 0
        nbits = 0
        pos = 0
        window_mask = (1 << max_len) - 1
        tsym = table_sym.tolist()
        tlen = table_len.tolist()
        for i in range(n):
            while nbits < max_len and pos < len(stream):
                buf = (buf << 8) | stream[pos]
                pos += 1
                nbits += 8
            if nbits >= max_len:
                window = (buf >> (nbits - max_len)) & window_mask
            else:
                window = (buf << (max_len - nbits)) & window_mask
            ln = tlen[window]
            if ln == 0 or ln > nbits:
                raise EncodeError("huffman: invalid code in stream")
            out[i] = tsym[window]
            nbits -= ln
            buf &= (1 << nbits) - 1
        return bytes(out)
