"""Cascaded (run-length + delta + bit-packing) encoder.

nvCOMP's Cascaded scheme chains run-length encoding, delta encoding and
bit packing.  It shines on data with long runs (here: the zero runs that
COMPSO's filter creates) but, as the paper notes, loses to entropy coders
on non-uniform gradient value distributions.

Layout of the coded payload::

    <u32 n_runs> <u8 val_width> <u8 run_width>
    <packed run values> <packed run lengths>

Run lengths are capped at 2**run_width - 1; longer runs are split, which
keeps the packer width small without a escape mechanism.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.encoders.base import Encoder, EncodeError, as_u8
from repro.util.bitpack import pack_uints, required_width, unpack_uints

__all__ = ["CascadedEncoder"]

_MAX_RUN = 0xFFFF  # cap run length at 16 bits


def _run_length(u8: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised RLE: returns (values, run_lengths) with runs <= _MAX_RUN."""
    if u8.size == 0:
        return np.empty(0, np.uint8), np.empty(0, np.uint32)
    change = np.flatnonzero(np.diff(u8)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [u8.size]))
    values = u8[starts]
    lengths = (ends - starts).astype(np.uint32)
    # Split runs longer than the cap.
    over = lengths > _MAX_RUN
    if np.any(over):
        reps = (lengths + _MAX_RUN - 1) // _MAX_RUN
        values = np.repeat(values, reps)
        split = np.full(int(reps.sum()), _MAX_RUN, dtype=np.uint32)
        # Last piece of each original run carries the remainder.
        last_idx = np.cumsum(reps) - 1
        rem = lengths - (reps - 1) * _MAX_RUN
        split[last_idx] = rem
        lengths = split
    return values, lengths


class CascadedEncoder(Encoder):
    """RLE -> minimal-width bit packing of values and run lengths."""

    name = "cascaded"

    def _encode_payload(self, data: bytes) -> bytes:
        u8 = as_u8(data)
        values, lengths = _run_length(u8)
        val_width = required_width(int(values.max())) if values.size else 1
        run_width = required_width(int(lengths.max())) if lengths.size else 1
        pv = pack_uints(values, val_width)
        pl = pack_uints(lengths, run_width)
        header = struct.pack("<IBBI", values.size, val_width, run_width, len(pv))
        return header + pv + pl

    def _decode_payload(self, payload: bytes, n: int) -> bytes:
        if len(payload) < 10:
            raise EncodeError("cascaded: truncated header")
        n_runs, val_width, run_width, pv_len = struct.unpack_from("<IBBI", payload, 0)
        pos = 10
        values = unpack_uints(payload[pos : pos + pv_len], val_width, n_runs)
        pos += pv_len
        lengths = unpack_uints(payload[pos:], run_width, n_runs)
        out = np.repeat(values.astype(np.uint8), lengths)
        if out.size != n:
            raise EncodeError(f"cascaded: reconstructed {out.size} bytes, expected {n}")
        return out.tobytes()
