"""Static byte-wise rANS (range Asymmetric Numeral System) coder.

ANS is the paper's winning encoder (Table 2): highest combined ratio and
throughput on gradient data thanks to block-parallel GPU execution
(Weissenberger & Schmidt, ICPP'19).  We implement the classic single-state
rANS with 12-bit quantised frequencies; compressed sizes are real, GPU
throughput is modelled separately in ``repro.gpusim``.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.encoders.base import Encoder, EncodeError, as_u8

__all__ = ["RansEncoder", "quantize_freqs"]

_PROB_BITS = 12
_PROB_SCALE = 1 << _PROB_BITS
_RANS_L = 1 << 23  # lower bound of the normalised state interval


def quantize_freqs(freq: np.ndarray, scale: int = _PROB_SCALE) -> np.ndarray:
    """Scale frequencies to sum exactly to ``scale``, keeping present symbols >= 1."""
    freq = np.asarray(freq, dtype=np.int64)
    total = int(freq.sum())
    if total == 0:
        raise ValueError("cannot quantise an empty frequency table")
    scaled = np.maximum((freq * scale) // total, (freq > 0).astype(np.int64))
    diff = scale - int(scaled.sum())
    if diff != 0:
        # Adjust symbols with the most headroom, never dropping below 1.
        order = np.argsort(scaled)[::-1]
        i = 0
        step = 1 if diff > 0 else -1
        while diff != 0:
            s = order[i % len(order)]
            if scaled[s] + step >= 1 and freq[s] > 0:
                scaled[s] += step
                diff -= step
            i += 1
    return scaled.astype(np.uint32)


class RansEncoder(Encoder):
    """Single-state static rANS over the byte alphabet."""

    name = "ans"

    def _encode_payload(self, data: bytes) -> bytes:
        u8 = as_u8(data)
        freq = np.bincount(u8, minlength=256)
        qfreq = quantize_freqs(freq)
        cum = np.zeros(257, dtype=np.uint32)
        np.cumsum(qfreq, out=cum[1:])
        f = qfreq.tolist()
        c = cum.tolist()
        # rANS encodes in reverse so the decoder emits in forward order.
        out = bytearray()
        x = _RANS_L
        x_max_base = (_RANS_L >> _PROB_BITS) << 8
        for s in memoryview(u8.tobytes())[::-1]:
            fs = f[s]
            x_max = x_max_base * fs
            while x >= x_max:
                out.append(x & 0xFF)
                x >>= 8
            x = ((x // fs) << _PROB_BITS) + (x % fs) + c[s]
        header = qfreq.astype(np.uint16).tobytes() + struct.pack("<Q", x)
        return header + bytes(out[::-1])

    def _decode_payload(self, payload: bytes, n: int) -> bytes:
        head = 512 + 8
        if len(payload) < head:
            raise EncodeError("ans: truncated header")
        qfreq = np.frombuffer(payload[:512], dtype=np.uint16).astype(np.uint32)
        (x,) = struct.unpack_from("<Q", payload, 512)
        cum = np.zeros(257, dtype=np.uint32)
        np.cumsum(qfreq, out=cum[1:])
        # slot -> symbol lookup
        slot2sym = np.repeat(np.arange(256, dtype=np.uint8), qfreq).tolist()
        if len(slot2sym) != _PROB_SCALE:
            raise EncodeError("ans: invalid frequency table")
        f = qfreq.tolist()
        c = cum.tolist()
        stream = payload[head:]
        pos = 0
        mask = _PROB_SCALE - 1
        out = bytearray(n)
        for i in range(n):
            slot = x & mask
            s = slot2sym[slot]
            out[i] = s
            x = f[s] * (x >> _PROB_BITS) + slot - c[s]
            while x < _RANS_L and pos < len(stream):
                x = (x << 8) | stream[pos]
                pos += 1
        return bytes(out)
