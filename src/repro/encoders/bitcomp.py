"""Bitcomp-style fixed-width bit packing.

NVIDIA's Bitcomp is a proprietary lossless mode that, per the paper's
observation (Table 2), achieves very high throughput but a modest
compression ratio.  We model it as blockwise fixed-width packing: each
block of bytes is stored at the minimum bit width needed for its maximum
value.  This captures Bitcomp's behaviour on quantised-gradient data,
where most blocks use only the low bits.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.encoders.base import Encoder, EncodeError, as_u8
from repro.util.bitpack import pack_uints, required_width, unpack_uints

__all__ = ["BitcompEncoder"]

_BLOCK = 4096


class BitcompEncoder(Encoder):
    """Blockwise minimal-width bit packing of the byte stream."""

    name = "bitcomp"

    def __init__(self, block_size: int = _BLOCK):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size

    def _encode_payload(self, data: bytes) -> bytes:
        u8 = as_u8(data)
        parts = [struct.pack("<I", self.block_size)]
        for start in range(0, u8.size, self.block_size):
            block = u8[start : start + self.block_size]
            width = required_width(int(block.max())) if block.size else 1
            packed = pack_uints(block, width)
            parts.append(struct.pack("<BH", width, len(packed)))
            parts.append(packed)
        return b"".join(parts)

    def _decode_payload(self, payload: bytes, n: int) -> bytes:
        if len(payload) < 4:
            raise EncodeError("bitcomp: missing block-size header")
        (block_size,) = struct.unpack_from("<I", payload, 0)
        pos = 4
        out = np.empty(n, dtype=np.uint8)
        written = 0
        while written < n:
            if pos + 3 > len(payload):
                raise EncodeError("bitcomp: truncated block header")
            width, nbytes = struct.unpack_from("<BH", payload, pos)
            pos += 3
            count = min(block_size, n - written)
            values = unpack_uints(payload[pos : pos + nbytes], width, count)
            pos += nbytes
            out[written : written + count] = values.astype(np.uint8)
            written += count
        return out.tobytes()
