"""Elias gamma coding of positive integers.

QSGD (Alistarh et al., NeurIPS'17) encodes quantised gradient magnitudes
with Elias coding; we provide gamma codes here.  A positive integer x with
N = floor(log2 x) is written as N zeros followed by the (N+1)-bit binary
of x — equivalently, x written big-endian in exactly 2N+1 bits.

Encoding is vectorised; decoding walks the bit stream.
"""

from __future__ import annotations

import numpy as np

from repro.encoders.base import EncodeError

__all__ = ["elias_gamma_encode", "elias_gamma_decode"]

_MAX_WIDTH = 63  # supports values up to 2**31 - 1


def elias_gamma_encode(values: np.ndarray) -> bytes:
    """Encode an array of integers >= 1 as a packed Elias-gamma bit stream."""
    v = np.ascontiguousarray(values, dtype=np.uint64).ravel()
    if v.size == 0:
        return b""
    if v.min() < 1:
        raise ValueError("Elias gamma requires values >= 1")
    nbits = np.floor(np.log2(v.astype(np.float64))).astype(np.int64)
    widths = 2 * nbits + 1
    if widths.max() > _MAX_WIDTH:
        raise ValueError("value too large for Elias gamma encoder")
    max_w = int(widths.max())
    # Left-align each value within its own width inside a max_w-bit field,
    # then keep only the first `width` bits of each row.
    left = v << (max_w - widths).astype(np.uint64)
    cols = np.arange(max_w, dtype=np.uint64)
    bits = ((left[:, None] >> (max_w - 1 - cols)) & np.uint64(1)).astype(np.uint8)
    mask = cols < widths[:, None].astype(np.uint64)
    return np.packbits(bits[mask]).tobytes()


def elias_gamma_decode(blob: bytes, count: int) -> np.ndarray:
    """Decode ``count`` integers from an Elias-gamma bit stream."""
    if count == 0:
        return np.empty(0, dtype=np.uint64)
    bits = np.unpackbits(np.frombuffer(blob, dtype=np.uint8))
    out = np.empty(count, dtype=np.uint64)
    pos = 0
    total = bits.size
    blist = bits.tolist()
    for i in range(count):
        n = 0
        while pos < total and blist[pos] == 0:
            n += 1
            pos += 1
        if pos + n + 1 > total:
            raise EncodeError("elias: truncated stream")
        value = 0
        for _ in range(n + 1):
            value = (value << 1) | blist[pos]
            pos += 1
        out[i] = value
    return out
