"""Common interface for lossless byte-stream encoders.

The paper selects among eight nvCOMP encoders (ANS, Bitcomp, Cascaded,
Deflate, Gdeflate, LZ4, Snappy, Zstd) at runtime, trading compression
ratio against GPU (de)compression throughput (Table 2).  We reimplement
each family from scratch (or via a stdlib codec where noted in DESIGN.md)
behind this interface so COMPSO's encoder-selection logic is exercised on
real compressed sizes.

Encoders operate on raw bytes.  Every encoder is self-framing: ``decode``
needs only the blob produced by ``encode`` (original length and any code
tables are carried in a header).
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Encoder", "EncodeError", "as_bytes", "as_u8"]

# Header magic distinguishes a raw passthrough frame (used when the coded
# stream would expand) from an encoded frame.
_FRAME_RAW = 0
_FRAME_CODED = 1


class EncodeError(ValueError):
    """Raised when a blob cannot be decoded (corrupt or mismatched frame)."""


def as_bytes(data: bytes | bytearray | memoryview | np.ndarray) -> bytes:
    """Coerce input to ``bytes`` (NumPy arrays are reinterpreted as raw bytes)."""
    if isinstance(data, np.ndarray):
        return np.ascontiguousarray(data).tobytes()
    return bytes(data)


def as_u8(data: bytes | np.ndarray) -> np.ndarray:
    """View input as a ``uint8`` array without copying where possible."""
    if isinstance(data, np.ndarray) and data.dtype == np.uint8:
        return data.ravel()
    return np.frombuffer(as_bytes(data), dtype=np.uint8)


class Encoder(ABC):
    """A lossless, self-framing byte-stream codec.

    Subclasses implement ``_encode_payload``/``_decode_payload``; the base
    class wraps them in a frame that falls back to storing the input
    verbatim whenever the coded form would be larger, so ``encode`` never
    expands the data by more than the 5-byte frame header.
    """

    #: Registry key, e.g. ``"ans"``.
    name: str = "base"

    def encode(self, data: bytes | np.ndarray) -> bytes:
        raw = as_bytes(data)
        if not raw:
            return struct.pack("<BI", _FRAME_RAW, 0)
        coded = self._encode_payload(raw)
        if len(coded) < len(raw):
            return struct.pack("<BI", _FRAME_CODED, len(raw)) + coded
        return struct.pack("<BI", _FRAME_RAW, len(raw)) + raw

    def decode(self, blob: bytes) -> bytes:
        if len(blob) < 5:
            raise EncodeError(f"{self.name}: frame too short ({len(blob)} bytes)")
        kind, n = struct.unpack_from("<BI", blob, 0)
        payload = blob[5:]
        if kind == _FRAME_RAW:
            if len(payload) != n:
                raise EncodeError(f"{self.name}: raw frame length mismatch")
            return payload
        if kind != _FRAME_CODED:
            raise EncodeError(f"{self.name}: unknown frame kind {kind}")
        out = self._decode_payload(payload, n)
        if len(out) != n:
            raise EncodeError(f"{self.name}: decoded {len(out)} bytes, expected {n}")
        return out

    @abstractmethod
    def _encode_payload(self, data: bytes) -> bytes:
        """Encode ``data``; may return something larger (frame handles fallback)."""

    @abstractmethod
    def _decode_payload(self, payload: bytes, n: int) -> bytes:
        """Decode a payload produced by ``_encode_payload`` for ``n``-byte input."""

    def ratio(self, data: bytes | np.ndarray) -> float:
        """Convenience: compression ratio achieved on ``data``."""
        raw = as_bytes(data)
        if not raw:
            return 1.0
        return len(raw) / len(self.encode(raw))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
