"""Deflate, Gdeflate and Zstd stand-ins.

Deflate is an open format available in the Python standard library
(``zlib``), so we use it directly rather than reimplementing.  Gdeflate is
NVIDIA's GPU-friendly Deflate variant with the same entropy backend; we
model it as maximum-effort Deflate (the paper observes "a high compression
ratio through entropy coding but low throughput (similar to Deflate)").
Zstd is stood in for by stdlib ``lzma`` (documented substitution in
DESIGN.md): like Zstd in Table 2 it pairs the highest compression ratio
with the lowest throughput of the candidate set.
"""

from __future__ import annotations

import lzma
import zlib

from repro.encoders.base import Encoder, EncodeError

__all__ = ["DeflateEncoder", "GdeflateEncoder", "ZstdLikeEncoder"]


class DeflateEncoder(Encoder):
    """zlib Deflate at the default effort level."""

    name = "deflate"
    level = 6

    def _encode_payload(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def _decode_payload(self, payload: bytes, n: int) -> bytes:
        try:
            return zlib.decompress(payload)
        except zlib.error as exc:  # pragma: no cover - corrupt input
            raise EncodeError(f"deflate: {exc}") from exc


class GdeflateEncoder(DeflateEncoder):
    """Gdeflate stand-in: Deflate at maximum effort."""

    name = "gdeflate"
    level = 9


class ZstdLikeEncoder(Encoder):
    """Zstd stand-in backed by stdlib LZMA (high ratio, low throughput)."""

    name = "zstd"

    def _encode_payload(self, data: bytes) -> bytes:
        return lzma.compress(data, preset=2)

    def _decode_payload(self, payload: bytes, n: int) -> bytes:
        try:
            return lzma.decompress(payload)
        except lzma.LZMAError as exc:  # pragma: no cover - corrupt input
            raise EncodeError(f"zstd: {exc}") from exc
