"""GPU throughput models for the lossless encoder candidates.

Each encoder's GPU behaviour is summarised by a saturation bandwidth and
a fixed per-invocation overhead: ``time(n) = overhead + n / sat_bw``.
The two constants per encoder/direction are *calibrated from the paper's
Table 2*, which reports throughput at two effective payload sizes (the
per-iteration K-FAC gradient chunks of ResNet-50, small, and BERT-large,
large).  Solving the two-point system recovers (sat_bw, overhead); the
resulting model reproduces the table by construction at those sizes and
interpolates sensibly elsewhere — exactly the role nvCOMP microbenchmarks
play in the paper's offline lookup table.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EncoderPerf", "ENCODER_PERF", "TABLE2_CALIBRATION"]

#: (resnet_GBps, bert_GBps) for compression (C) and decompression (D)
#: straight from paper Table 2.
TABLE2_CALIBRATION: dict[str, dict[str, tuple[float, float]]] = {
    "ans": {"C": (10.73, 43.52), "D": (7.63, 93.85)},
    "bitcomp": {"C": (4.13, 108.16), "D": (3.81, 34.29)},
    "cascaded": {"C": (2.31, 10.34), "D": (2.42, 16.66)},
    "deflate": {"C": (0.21, 0.39), "D": (0.09, 1.20)},
    "gdeflate": {"C": (0.44, 0.39), "D": (0.26, 2.53)},
    "lz4": {"C": (0.22, 0.46), "D": (0.24, 1.43)},
    "snappy": {"C": (0.44, 0.48), "D": (0.22, 2.23)},
    "zstd": {"C": (0.13, 0.27), "D": (0.13, 0.76)},
}

#: Effective per-invocation payload sizes behind the two Table 2 columns.
RESNET_CHUNK_BYTES = 2e6
BERT_CHUNK_BYTES = 50e6


def _fit(small_gbps: float, large_gbps: float) -> tuple[float, float]:
    """Solve time(n) = overhead + n/sat for the two calibration points."""
    s1, s2 = RESNET_CHUNK_BYTES, BERT_CHUNK_BYTES
    t1 = s1 / (small_gbps * 1e9)
    t2 = s2 / (large_gbps * 1e9)
    sat = (s2 - s1) / (t2 - t1) if t2 > t1 else large_gbps * 1e9 * 1.05
    if sat <= 0:
        sat = large_gbps * 1e9 * 1.05
    overhead = max(t1 - s1 / sat, 0.0)
    return sat, overhead


@dataclass(frozen=True)
class EncoderPerf:
    """Two-parameter GPU throughput model for one encoder direction pair."""

    name: str
    comp_sat: float
    comp_overhead: float
    decomp_sat: float
    decomp_overhead: float

    def compress_time(self, nbytes: float) -> float:
        if nbytes <= 0:
            return 0.0
        return self.comp_overhead + nbytes / self.comp_sat

    def decompress_time(self, nbytes: float) -> float:
        if nbytes <= 0:
            return 0.0
        return self.decomp_overhead + nbytes / self.decomp_sat

    def compress_throughput(self, nbytes: float) -> float:
        """GB/s at payload size ``nbytes``."""
        return nbytes / self.compress_time(nbytes) / 1e9

    def decompress_throughput(self, nbytes: float) -> float:
        return nbytes / self.decompress_time(nbytes) / 1e9


def _build() -> dict[str, EncoderPerf]:
    out = {}
    for name, cal in TABLE2_CALIBRATION.items():
        c_sat, c_ovh = _fit(*cal["C"])
        d_sat, d_ovh = _fit(*cal["D"])
        out[name] = EncoderPerf(name, c_sat, c_ovh, d_sat, d_ovh)
    # Huffman (SZ's backend) behaves like a slower ANS on GPU.
    ans = out["ans"]
    out["huffman"] = EncoderPerf(
        "huffman", ans.comp_sat * 0.5, ans.comp_overhead * 1.5, ans.decomp_sat * 0.4, ans.decomp_overhead * 1.5
    )
    return out


ENCODER_PERF: dict[str, EncoderPerf] = _build()
