"""Analytical GPU execution model (A100) for compression pipelines.

Stands in for the paper's CUDA kernels: compressed *sizes* come from the
real compressors in :mod:`repro.compression`/:mod:`repro.core`; kernel
*times* come from these models (memory passes, launches, reductions,
encoder saturation bandwidths calibrated against Table 2).
"""

from repro.gpusim.device import A100, H100, DeviceModel
from repro.gpusim.encoder_perf import ENCODER_PERF, EncoderPerf, TABLE2_CALIBRATION
from repro.gpusim.kernels import PIPELINES, KernelPipeline, pipeline_throughput

__all__ = [
    "A100",
    "H100",
    "DeviceModel",
    "EncoderPerf",
    "ENCODER_PERF",
    "TABLE2_CALIBRATION",
    "KernelPipeline",
    "PIPELINES",
    "pipeline_throughput",
]
