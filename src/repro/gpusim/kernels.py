"""Structural cost models of the (de)compression kernel pipelines (Fig. 8).

A pipeline is described by what a profiler would see: kernel launches
(fixed plus per-megabyte for framework-dispatched implementations),
passes over the payload in HBM, ALU work per byte, an extrema-reduction
stage, and an entropy-encoder stage applied to the already-reduced
payload.  The section 4.5 GPU optimizations map directly onto these
knobs:

* **kernel fusion** — fused CUDA pipelines have a handful of launches and
  ~2 HBM passes; PyTorch-style implementations dispatch one kernel per
  tensor op, modelled as launches growing with payload size and extra
  passes for the intermediate tensors they materialise;
* **block reduction + warp shuffle** — finding per-layer extrema costs a
  fraction of a pass; without warp shuffles the block-level combine goes
  through shared memory, an order of magnitude slower per exchange
  (``DeviceModel.smem_latency_factor``), modelled as a multiplier on the
  reduction term.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gpusim.device import A100, DeviceModel
from repro.gpusim.encoder_perf import ENCODER_PERF
from repro.telemetry import DEVICE_TRACK, get_tracer

__all__ = ["KernelPipeline", "PIPELINES", "pipeline_throughput"]


def _trace_kernels(op: str, pipeline: str, nbytes: float, stages: list[tuple[str, float]]) -> None:
    """Emit one parent span plus per-stage child spans on the device track.

    Spans stack sequentially at the device-track cursor, building the
    timeline a profiler would show for the modelled kernel pipeline.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return
    total = sum(dur for _, dur in stages)
    start = tracer.cursor(DEVICE_TRACK, 0)
    tracer.add_span(
        f"{pipeline}.{op}",
        "kernel",
        total,
        start=start,
        track=DEVICE_TRACK,
        pipeline=pipeline,
        nbytes=nbytes,
    )
    cursor = start
    for stage, dur in stages:
        tracer.add_span(
            stage, f"kernel.{stage}", dur, start=cursor, track=DEVICE_TRACK, depth=1
        )
        cursor += dur


@dataclass(frozen=True)
class KernelPipeline:
    """Profiler-level description of one compressor implementation."""

    name: str
    #: Fixed kernel launches per invocation.
    launches: int
    #: Extra launches per MB of payload (framework op dispatch).
    launches_per_mb: float
    #: Full passes over the payload through HBM.
    mem_passes: float
    #: ALU operations per input byte (normalisation, RNG for SR, packing).
    ops_per_byte: float
    #: Entropy encoder applied after the lossy stages (None = none).
    encoder: str | None
    #: Fraction of the payload reaching the encoder (post filter/pack).
    encoded_fraction: float
    #: Extrema reduction: fraction of a pass spent reducing.
    reduction_passes: float = 0.15
    #: True when block reduction finishes with warp shuffles (section 4.5).
    warp_shuffle: bool = True

    def compress_time(self, nbytes: float, device: DeviceModel = A100) -> float:
        """Modelled seconds to compress ``nbytes`` on ``device``."""
        if nbytes <= 0:
            return 0.0
        launches = self.launches + self.launches_per_mb * nbytes / 1e6
        red = device.mem_time(nbytes, self.reduction_passes)
        if not self.warp_shuffle:
            red *= device.smem_latency_factor
        stages = [
            ("launch", launches * device.launch_overhead),
            ("hbm", device.mem_time(nbytes, self.mem_passes)),
            ("alu", device.compute_time(nbytes, self.ops_per_byte)),
            ("reduce", red),
        ]
        if self.encoder is not None:
            stages.append(
                ("encode", ENCODER_PERF[self.encoder].compress_time(nbytes * self.encoded_fraction))
            )
        _trace_kernels("compress", self.name, nbytes, stages)
        return sum(dur for _, dur in stages)

    def decompress_time(self, nbytes: float, device: DeviceModel = A100) -> float:
        """Modelled seconds to decompress back to ``nbytes`` of output."""
        if nbytes <= 0:
            return 0.0
        launches = self.launches + self.launches_per_mb * nbytes / 1e6
        stages = [
            ("launch", launches * device.launch_overhead),
            # Decompression skips the reduction and roughly one pass.
            ("hbm", device.mem_time(nbytes, max(self.mem_passes - 0.5, 1.0))),
            ("alu", device.compute_time(nbytes, self.ops_per_byte * 0.5)),
        ]
        if self.encoder is not None:
            stages.append(
                (
                    "decode",
                    ENCODER_PERF[self.encoder].decompress_time(nbytes * self.encoded_fraction),
                )
            )
        _trace_kernels("decompress", self.name, nbytes, stages)
        return sum(dur for _, dur in stages)

    def throughput(self, nbytes: float, device: DeviceModel = A100) -> float:
        """Compression throughput in GB/s at payload size ``nbytes``."""
        return nbytes / self.compress_time(nbytes, device) / 1e9

    def without_fusion(self) -> "KernelPipeline":
        """Ablation: split the fused kernel into per-stage launches."""
        return replace(
            self,
            name=self.name + "-nofusion",
            launches=self.launches * 4,
            launches_per_mb=self.launches_per_mb + 0.4,
            mem_passes=self.mem_passes + 2.0,
        )

    def without_warp_shuffle(self) -> "KernelPipeline":
        """Ablation: extrema reduction through shared memory only."""
        return replace(self, name=self.name + "-noshuffle", warp_shuffle=False)


#: The five Fig. 8 series.  Constants are chosen so the curves reproduce
#: the figure's ordering and scale: fused CUDA pipelines saturate near
#: 100 GB/s, PyTorch implementations are launch-bound, COMPSO is ~1.7x
#: CocktailSGD, and QSGD (CUDA) edges out COMPSO by skipping the filter.
PIPELINES: dict[str, KernelPipeline] = {
    "compso-cuda": KernelPipeline(
        "compso-cuda",
        launches=3,
        launches_per_mb=0.0,
        mem_passes=2.5,
        ops_per_byte=30.0,  # normalise + filter + SR (Philox RNG) + pack
        encoder="ans",
        encoded_fraction=0.30,
    ),
    "qsgd-cuda": KernelPipeline(
        "qsgd-cuda",
        launches=2,
        launches_per_mb=0.0,
        mem_passes=2.0,
        ops_per_byte=24.0,  # no filter stage
        encoder="ans",
        encoded_fraction=0.28,
    ),
    "sz-cuda": KernelPipeline(
        "sz-cuda",
        launches=4,
        launches_per_mb=0.0,
        mem_passes=3.5,
        ops_per_byte=35.0,  # dual-quant + Lorenzo + outlier gather
        encoder="huffman",
        encoded_fraction=0.30,
    ),
    "qsgd-pytorch": KernelPipeline(
        "qsgd-pytorch",
        launches=14,
        launches_per_mb=1.2,
        mem_passes=9.0,  # materialised intermediates per tensor op
        ops_per_byte=24.0,
        encoder="ans",
        encoded_fraction=0.28,
    ),
    "cocktail-pytorch": KernelPipeline(
        "cocktail-pytorch",
        launches=22,
        launches_per_mb=0.8,
        mem_passes=10.0,  # random sampling + top-k sort + quantise
        ops_per_byte=40.0,
        encoder="ans",
        encoded_fraction=0.22,
    ),
}


def pipeline_throughput(name: str, nbytes: float, device: DeviceModel = A100) -> float:
    """Convenience wrapper: compression GB/s for a named pipeline."""
    return PIPELINES[name].throughput(nbytes, device)
