"""GPU device model.

Compression is memory-bound with O(1) arithmetic intensity (paper
section 4.5), so a device is characterised by its HBM bandwidth, kernel
launch overhead, and FP32 throughput.  Shared-memory and register-file
latencies parameterise the reduction ablation (block reduction +
warp-level shuffle vs. naive shared-memory reduction).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceModel", "A100"]


@dataclass(frozen=True)
class DeviceModel:
    name: str
    #: HBM bandwidth, bytes/s.
    mem_bw: float
    #: Kernel launch + dispatch overhead, seconds.
    launch_overhead: float
    #: FP32 ALU throughput, ops/s.
    fp32_flops: float
    #: Tensor-core matmul throughput (TF32), ops/s.
    tensor_flops: float = 156e12
    #: Effective cost multiplier for a shared-memory round trip relative
    #: to a warp-shuffle exchange (the paper cites one order of magnitude).
    smem_latency_factor: float = 10.0

    def mem_time(self, nbytes: float, passes: float = 1.0) -> float:
        """Seconds to stream ``nbytes`` through HBM ``passes`` times."""
        return passes * nbytes / self.mem_bw

    def compute_time(self, nbytes: float, ops_per_byte: float) -> float:
        return ops_per_byte * nbytes / self.fp32_flops

    def eig_time(self, dim: int) -> float:
        """Seconds for an eigendecomposition of a dim x dim matrix.

        ~26 flops/element (tridiagonalisation + divide & conquer + back
        transform) at 20% of FP32 peak matches measured cuSOLVER syevd
        times within a factor of ~2 across 512-8k dims (e.g. ~0.7 s at
        dim 4608 on A100).
        """
        flops = 26.0 * dim**3
        return flops / (0.2 * self.fp32_flops) + 20 * self.launch_overhead

    def inverse_time(self, dim: int) -> float:
        """Seconds for an implicit factor inversion (KAISA's alternative
        for very large factors): LU + triangular solves, ~2n^3 flops."""
        flops = 2.0 * dim**3
        return flops / (0.2 * self.fp32_flops) + 20 * self.launch_overhead

    def matmul_time(self, m: int, n: int, k: int) -> float:
        """Dense (m x k) @ (k x n) at 60% of tensor-core peak."""
        return 2.0 * m * n * k / (0.6 * self.tensor_flops) + self.launch_overhead


#: NVIDIA A100-40GB (the paper's GPU): 1.555 TB/s HBM2e, 19.5 TF FP32.
A100 = DeviceModel("a100", mem_bw=1.555e12, launch_overhead=4e-6, fp32_flops=19.5e12)

#: NVIDIA H100-SXM: 3.35 TB/s HBM3, 67 TF FP32, ~990 TF TF32 tensor.
#: Used for forward-looking sensitivity analysis (the performance model's
#: "various systems" use case, paper section 4.1).
H100 = DeviceModel(
    "h100",
    mem_bw=3.35e12,
    launch_overhead=3e-6,
    fp32_flops=67e12,
    tensor_flops=495e12,
)
