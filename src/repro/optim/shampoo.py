"""Shampoo (Gupta et al., ICML'18) — the other second-order family the
paper's introduction cites.

Full-matrix preconditioning per tensor mode: for a weight matrix W with
gradient G, maintain L += G G^T and R += G^T G and precondition with
L^{-1/4} G R^{-1/4}.  Like K-FAC it is communication-heavy in
distributed form, so it is a natural second workload for COMPSO-style
compression; here it serves as an additional optimizer baseline and as
evidence the substrate generalises beyond K-FAC.

Vectors (biases, norm parameters) fall back to AdaGrad-style diagonal
preconditioning.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Shampoo"]


def _inverse_pth_root(mat: np.ndarray, p: int, eps: float) -> np.ndarray:
    """(mat + eps I)^(-1/p) via eigendecomposition."""
    d = mat.shape[0]
    vals, vecs = np.linalg.eigh(mat + eps * np.eye(d))
    vals = np.clip(vals, eps, None)
    return (vecs * vals ** (-1.0 / p)) @ vecs.T


class Shampoo:
    """Shampoo with periodic inverse-root refresh and momentum."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.03,
        *,
        eps: float = 1e-4,
        update_freq: int = 5,
        momentum: float = 0.9,
        max_dim: int = 1024,
    ):
        if update_freq < 1:
            raise ValueError("update_freq must be >= 1")
        self.params = list(params)
        self.lr = lr
        self.eps = eps
        self.update_freq = update_freq
        self.momentum = momentum
        self.max_dim = max_dim
        self._state: list[dict] = []
        for p in self.params:
            st: dict = {"momentum": np.zeros_like(p.data)}
            if p.data.ndim == 2 and max(p.data.shape) <= max_dim:
                m, n = p.data.shape
                st["L"] = np.zeros((m, m))
                st["R"] = np.zeros((n, n))
                st["L_root"] = np.eye(m)
                st["R_root"] = np.eye(n)
            else:
                st["diag"] = np.zeros_like(p.data, dtype=np.float64)
            self._state.append(st)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        refresh = self._t % self.update_freq == 0 or self._t == 1
        for p, st in zip(self.params, self._state):
            g = p.grad.astype(np.float64)
            if "L" in st:
                st["L"] += g @ g.T
                st["R"] += g.T @ g
                if refresh:
                    st["L_root"] = _inverse_pth_root(st["L"], 4, self.eps)
                    st["R_root"] = _inverse_pth_root(st["R"], 4, self.eps)
                update = st["L_root"] @ g @ st["R_root"]
            else:
                st["diag"] += g * g
                update = g / (np.sqrt(st["diag"]) + self.eps)
            # Match SGD's effective scale: normalise to the gradient norm.
            gn = np.linalg.norm(g)
            un = np.linalg.norm(update)
            if un > 0 and gn > 0:
                update = update * (gn / un)
            buf = st["momentum"]
            buf *= self.momentum
            buf += update.astype(np.float32)
            p.data -= self.lr * buf

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
