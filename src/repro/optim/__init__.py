"""Optimizers and learning-rate schedules."""

from repro.optim.kfac import FactorNumericsError, Kfac, LayerFactors
from repro.optim.schedulers import ConstantLr, SmoothLr, StepLr
from repro.optim.sgd import Adam, Lamb, Sgd
from repro.optim.shampoo import Shampoo

__all__ = [
    "Sgd",
    "Adam",
    "Lamb",
    "Shampoo",
    "FactorNumericsError",
    "Kfac",
    "LayerFactors",
    "StepLr",
    "SmoothLr",
    "ConstantLr",
]
