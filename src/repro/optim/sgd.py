"""First-order optimizers: SGD with momentum, Adam, LAMB."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Sgd", "Adam", "Lamb"]


class Sgd:
    """SGD with (optionally Nesterov-free) momentum and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def _update_moments(self, p: Parameter, m: np.ndarray, v: np.ndarray) -> np.ndarray:
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        m *= self.beta1
        m += (1 - self.beta1) * g
        v *= self.beta2
        v += (1 - self.beta2) * g * g
        mhat = m / (1 - self.beta1**self._t)
        vhat = v / (1 - self.beta2**self._t)
        return mhat / (np.sqrt(vhat) + self.eps)

    def step(self) -> None:
        self._t += 1
        for p, m, v in zip(self.params, self._m, self._v):
            p.data -= self.lr * self._update_moments(p, m, v)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Lamb(Adam):
    """LAMB (You et al., 2019): layer-wise trust-ratio-scaled Adam.

    The SGD-family baseline the paper uses for BERT-large pre-training.
    """

    def step(self) -> None:
        self._t += 1
        for p, m, v in zip(self.params, self._m, self._v):
            update = self._update_moments(p, m, v)
            w_norm = float(np.linalg.norm(p.data))
            u_norm = float(np.linalg.norm(update))
            trust = w_norm / u_norm if w_norm > 0 and u_norm > 0 else 1.0
            p.data -= self.lr * trust * update
