"""Learning-rate schedules.

The paper's adaptive compression keys off the LR schedule family:
**StepLR** (ResNet-50 / Mask R-CNN) decays at fixed milestones;
**SmoothLR** (BERT / GPT cosine schedules) decays every iteration after a
warmup.  Both expose ``lr_at(iteration)`` so the compression schedule and
the optimizer can share one source of truth.
"""

from __future__ import annotations

import math

__all__ = ["StepLr", "SmoothLr", "ConstantLr"]


class ConstantLr:
    def __init__(self, base_lr: float):
        self.base_lr = base_lr

    def lr_at(self, iteration: int) -> float:
        return self.base_lr


class StepLr:
    """Multiply the base LR by ``gamma`` at each milestone iteration."""

    def __init__(self, base_lr: float, milestones: list[int], gamma: float = 0.1):
        if sorted(milestones) != list(milestones):
            raise ValueError("milestones must be increasing")
        self.base_lr = base_lr
        self.milestones = list(milestones)
        self.gamma = gamma

    def lr_at(self, iteration: int) -> float:
        drops = sum(1 for m in self.milestones if iteration >= m)
        return self.base_lr * self.gamma**drops

    @property
    def first_drop(self) -> int:
        """Iteration of the first decay — COMPSO's aggressive/conservative pivot."""
        return self.milestones[0] if self.milestones else 0


class SmoothLr:
    """Linear warmup then cosine decay to ``min_lr``."""

    def __init__(
        self,
        base_lr: float,
        total_iterations: int,
        warmup: int = 0,
        min_lr: float = 0.0,
    ):
        if total_iterations <= 0:
            raise ValueError("total_iterations must be positive")
        if warmup >= total_iterations:
            raise ValueError("warmup must be shorter than the schedule")
        self.base_lr = base_lr
        self.total_iterations = total_iterations
        self.warmup = warmup
        self.min_lr = min_lr

    def lr_at(self, iteration: int) -> float:
        if self.warmup and iteration < self.warmup:
            return self.base_lr * (iteration + 1) / self.warmup
        progress = (iteration - self.warmup) / max(self.total_iterations - self.warmup, 1)
        progress = min(max(progress, 0.0), 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * progress))
