"""K-FAC second-order optimizer (Martens & Grosse, ICML'15).

Implements the eigendecomposition form of Eq. 2:

    precond = Q_G ( (Q_G^T  dW  Q_A) / (v_G v_A^T + gamma) ) Q_A^T

with Kronecker factors accumulated as running averages (Eq. 1)

    A_l = E[a_{l-1} a_{l-1}^T]      G_l = E[g_l g_l^T]

from the statistics the NN substrate captures on every K-FAC layer.

The API is deliberately granular — ``accumulate_factors`` /
``compute_eigen`` / ``precondition`` / ``apply`` — because the
distributed KAISA trainer (``repro.kfac_dist``) interleaves these stages
with collectives: factors are allreduced, eigendecompositions are
computed by the layer's assigned rank only, and preconditioned gradients
are allgathered (optionally compressed by COMPSO).  ``step()`` composes
the stages for single-worker use.

Parameters not owned by K-FAC layers (norms, embeddings) take the plain
SGD-with-momentum update, as distributed K-FAC implementations do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import KfacLayerMixin, Module, Parameter

__all__ = ["FactorNumericsError", "Kfac", "LayerFactors"]


class FactorNumericsError(RuntimeError):
    """A layer's Kronecker factors cannot be eigendecomposed.

    Raised when ``np.linalg.eigh`` fails to converge on a factor or
    produces non-finite eigenvalues — both symptoms of a poisoned factor
    (NaN/Inf statistics, corrupted allreduce payload, catastrophic loss
    of symmetry).  Carries the layer index so callers (and the guard's
    escalating-damping retry) can name the culprit instead of surfacing
    a bare numpy error mid-training.
    """

    def __init__(self, layer: int, reason: str):
        super().__init__(f"K-FAC factor numerics failure on layer {layer}: {reason}")
        self.layer = layer
        self.reason = reason


@dataclass
class LayerFactors:
    """Running Kronecker factors and eigendecomposition for one layer."""

    A: np.ndarray | None = None
    G: np.ndarray | None = None
    QA: np.ndarray | None = None
    vA: np.ndarray | None = None
    QG: np.ndarray | None = None
    vG: np.ndarray | None = None
    n_updates: int = 0
    momentum_buf: np.ndarray | None = field(default=None, repr=False)

    @property
    def ready(self) -> bool:
        return self.QA is not None

    def factor_bytes(self) -> int:
        total = 0
        for m in (self.A, self.G):
            if m is not None:
                total += m.nbytes
        return total


class Kfac:
    """Single-worker K-FAC; also the per-rank engine for distributed K-FAC."""

    def __init__(
        self,
        model: Module,
        lr: float = 0.1,
        *,
        damping: float = 1e-3,
        factor_decay: float = 0.95,
        inv_update_freq: int = 10,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        kl_clip: float = 1e-3,
    ):
        if not 0 < factor_decay <= 1:
            raise ValueError("factor_decay must be in (0, 1]")
        if inv_update_freq < 1:
            raise ValueError("inv_update_freq must be >= 1")
        self.model = model
        self.lr = lr
        self.damping = damping
        self.factor_decay = factor_decay
        self.inv_update_freq = inv_update_freq
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.kl_clip = kl_clip
        self.layers: list[KfacLayerMixin] = model.kfac_layers()
        self.state: dict[int, LayerFactors] = {i: LayerFactors() for i in range(len(self.layers))}
        kfac_params = set()
        for layer in self.layers:
            kfac_params.add(id(layer.weight))
            if getattr(layer, "bias", None) is not None:
                kfac_params.add(id(layer.bias))
        self.other_params: list[Parameter] = [
            p for p in model.parameters() if id(p) not in kfac_params
        ]
        self._other_momentum = [np.zeros_like(p.data) for p in self.other_params]
        self.t = 0

    # -- stage 1: local factor statistics -------------------------------------

    def local_factors(self, idx: int) -> tuple[np.ndarray, np.ndarray]:
        """This worker's (A, G) contribution for layer ``idx`` (Eq. 1)."""
        layer = self.layers[idx]
        if layer.last_a is None or layer.last_g is None:
            raise RuntimeError("no captured statistics; run forward+backward first")
        a = layer.last_a.astype(np.float64)
        g = layer.last_g.astype(np.float64)
        A = a.T @ a / a.shape[0]
        G = g.T @ g / g.shape[0]
        return A, G

    def accumulate_factors(self, idx: int, A: np.ndarray, G: np.ndarray) -> None:
        """Fold (possibly allreduced) factors into the running averages."""
        st = self.state[idx]
        decay = self.factor_decay if st.n_updates > 0 else 0.0
        if st.A is None:
            st.A = A.copy()
            st.G = G.copy()
        else:
            st.A = decay * st.A + (1 - decay) * A
            st.G = decay * st.G + (1 - decay) * G
        st.n_updates += 1

    # -- stage 2: eigendecomposition -------------------------------------------

    def compute_eigen(self, idx: int) -> None:
        """Eigendecompose the running factors of layer ``idx``.

        Raises :class:`FactorNumericsError` (naming the layer) when the
        decomposition fails to converge or yields non-finite eigenvalues,
        instead of propagating a bare ``np.linalg.LinAlgError``.
        """
        st = self.state[idx]
        if st.A is None or st.G is None:
            raise RuntimeError(f"factors for layer {idx} not accumulated yet")
        try:
            vA, QA = np.linalg.eigh(st.A)
            vG, QG = np.linalg.eigh(st.G)
        except np.linalg.LinAlgError as exc:
            raise FactorNumericsError(idx, f"eigh did not converge ({exc})") from exc
        if not (np.isfinite(vA).all() and np.isfinite(vG).all()):
            raise FactorNumericsError(idx, "non-finite eigenvalues")
        st.vA, st.QA = vA, QA
        st.vG, st.QG = vG, QG
        np.clip(st.vA, 0.0, None, out=st.vA)
        np.clip(st.vG, 0.0, None, out=st.vG)

    def eigen_flat(self, idx: int) -> np.ndarray:
        """Serialised eigendecomposition (for broadcast in KAISA mode)."""
        st = self.state[idx]
        if not st.ready:
            raise RuntimeError(f"eigendecomposition for layer {idx} not computed")
        return np.concatenate([st.QA.ravel(), st.vA, st.QG.ravel(), st.vG]).astype(np.float32)

    def set_eigen_flat(self, idx: int, flat: np.ndarray) -> None:
        st = self.state[idx]
        da = st.A.shape[0]
        dg = st.G.shape[0]
        pos = 0
        st.QA = flat[pos : pos + da * da].reshape(da, da).astype(np.float64)
        pos += da * da
        st.vA = flat[pos : pos + da].astype(np.float64)
        pos += da
        st.QG = flat[pos : pos + dg * dg].reshape(dg, dg).astype(np.float64)
        pos += dg * dg
        st.vG = flat[pos : pos + dg].astype(np.float64)

    # -- stage 3: preconditioning ----------------------------------------------

    def precondition(self, idx: int) -> np.ndarray:
        """Preconditioned (out, in[+1]) gradient for layer ``idx`` (Eq. 2)."""
        st = self.state[idx]
        layer = self.layers[idx]
        grad = layer.kfac_weight_grad().astype(np.float64)
        if not st.ready:
            return grad.astype(np.float32)
        v1 = st.QG.T @ grad @ st.QA
        v2 = v1 / (np.outer(st.vG, st.vA) + self.damping)
        out = st.QG @ v2 @ st.QA.T
        return out.astype(np.float32)

    # -- stage 4: update ---------------------------------------------------------

    def _kl_scale(self, precond: list[np.ndarray], raw: list[np.ndarray]) -> float:
        """KAISA-style KL clipping: bound lr^2 * <precond, raw>."""
        if self.kl_clip <= 0:
            return 1.0
        vg = sum(float((p * r).sum()) for p, r in zip(precond, raw)) * self.lr**2
        if vg <= self.kl_clip or vg <= 0:
            return 1.0
        return float(np.sqrt(self.kl_clip / vg))

    def apply(self, preconditioned: dict[int, np.ndarray]) -> None:
        """Write preconditioned grads back and take the momentum-SGD step."""
        raw = [self.layers[i].kfac_weight_grad() for i in preconditioned]
        nu = self._kl_scale(list(preconditioned.values()), raw)
        for idx, pgrad in preconditioned.items():
            st = self.state[idx]
            update = nu * pgrad
            if self.weight_decay:
                layer = self.layers[idx]
                wflat = layer.weight.data.reshape(update.shape[0], -1)
                update = update.copy()
                update[:, : wflat.shape[1]] += self.weight_decay * wflat
            if self.momentum:
                if st.momentum_buf is None:
                    st.momentum_buf = np.zeros_like(update)
                st.momentum_buf *= self.momentum
                st.momentum_buf += update
                update = st.momentum_buf
            layer = self.layers[idx]
            layer.set_kfac_weight_grad(update)
            layer.weight.data -= self.lr * layer.weight.grad
            if getattr(layer, "bias", None) is not None:
                layer.bias.data -= self.lr * layer.bias.grad
        # First-order update for non-K-FAC parameters.
        for p, buf in zip(self.other_params, self._other_momentum):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                buf *= self.momentum
                buf += g
                g = buf
            p.data -= self.lr * g

    # -- composed single-worker step ---------------------------------------------

    def step(self) -> None:
        """Full K-FAC iteration on one worker (no communication)."""
        for idx in range(len(self.layers)):
            A, G = self.local_factors(idx)
            self.accumulate_factors(idx, A, G)
            if self.t % self.inv_update_freq == 0 or not self.state[idx].ready:
                self.compute_eigen(idx)
        precond = {idx: self.precondition(idx) for idx in range(len(self.layers))}
        self.apply(precond)
        self.t += 1

    def zero_grad(self) -> None:
        self.model.zero_grad()

    # -- sizes used by the communication model -------------------------------------

    def gradient_sizes(self) -> list[int]:
        """Per-layer preconditioned-gradient element counts (allgather payload)."""
        sizes = []
        for layer in self.layers:
            out_f = layer.weight.shape[0]
            in_f = int(np.prod(layer.weight.shape[1:]))
            if getattr(layer, "bias", None) is not None:
                in_f += 1
            sizes.append(out_f * in_f)
        return sizes
