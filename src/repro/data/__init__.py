"""Synthetic dataset generators and batch utilities."""

from repro.data.loaders import batch_indices, shard
from repro.data.synthetic import (
    MASK_TOKEN,
    DetectionDataset,
    ImageDataset,
    LmDataset,
    MlmBatch,
    SquadDataset,
    make_detection_data,
    make_image_data,
    make_lm_data,
    make_mlm_batches,
    make_squad_data,
)

__all__ = [
    "ImageDataset",
    "DetectionDataset",
    "LmDataset",
    "MlmBatch",
    "SquadDataset",
    "make_image_data",
    "make_detection_data",
    "make_lm_data",
    "make_mlm_batches",
    "make_squad_data",
    "MASK_TOKEN",
    "batch_indices",
    "shard",
]
