"""Batch iteration and data-parallel sharding."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.util.seeding import spawn_rng

__all__ = ["batch_indices", "shard"]


def batch_indices(
    n: int, batch_size: int, *, iterations: int, seed: int = 0
) -> Iterator[np.ndarray]:
    """Yield ``iterations`` random index batches of ``batch_size``."""
    rng = spawn_rng(seed)
    for _ in range(iterations):
        yield rng.integers(0, n, batch_size)


def shard(indices: np.ndarray, world_size: int) -> list[np.ndarray]:
    """Split a global batch into per-rank shards (data parallelism).

    The batch must divide evenly — ragged shards would make ranks'
    gradient averages inconsistent with single-worker training.
    """
    if len(indices) % world_size:
        raise ValueError(f"batch of {len(indices)} not divisible by world size {world_size}")
    return list(indices.reshape(world_size, -1))
