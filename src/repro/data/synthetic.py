"""Synthetic datasets standing in for ImageNet / COCO / enwiki / Pile / SQuAD.

Each generator produces a *learnable* task with controllable difficulty,
so optimizer/compressor comparisons measure real convergence behaviour:

* **images** — Gaussian class prototypes + noise (classification);
* **detection** — prototypes whose class determines a box location, with
  jitter (joint classification + box regression);
* **lm** — first-order Markov chains with a random peaked transition
  matrix (next-token prediction);
* **mlm** — the same chains with 15% of tokens masked (BERT-style);
* **squad** — token sequences containing a marked answer span whose
  marker token is announced by the leading "question" token
  (extractive-QA span prediction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.seeding import spawn_rng

__all__ = [
    "ImageDataset",
    "DetectionDataset",
    "LmDataset",
    "MlmBatch",
    "SquadDataset",
    "make_image_data",
    "make_detection_data",
    "make_lm_data",
    "make_mlm_batches",
    "make_squad_data",
    "MASK_TOKEN",
]

MASK_TOKEN = 1  # reserved; 0 is padding/ignore


@dataclass
class ImageDataset:
    x: np.ndarray  # (n, 3, size, size) float32
    y: np.ndarray  # (n,) int class ids
    n_classes: int


def make_image_data(
    n: int, n_classes: int = 10, size: int = 16, noise: float = 0.6, seed: int = 0
) -> ImageDataset:
    """Classification images: per-class prototype + Gaussian noise."""
    rng = spawn_rng(seed)
    prototypes = rng.standard_normal((n_classes, 3, size, size)).astype(np.float32)
    y = rng.integers(0, n_classes, n)
    x = prototypes[y] + noise * rng.standard_normal((n, 3, size, size)).astype(np.float32)
    return ImageDataset(x.astype(np.float32), y, n_classes)


@dataclass
class DetectionDataset:
    x: np.ndarray  # (n, 3, size, size)
    y_cls: np.ndarray  # (n,) class ids
    y_box: np.ndarray  # (n, 4*n_boxes) normalised box targets
    n_classes: int
    n_boxes: int


def make_detection_data(
    n: int,
    n_classes: int = 8,
    n_boxes: int = 4,
    size: int = 16,
    noise: float = 0.5,
    seed: int = 0,
) -> DetectionDataset:
    """Detection-style data: class prototype + class-determined boxes."""
    rng = spawn_rng(seed)
    prototypes = rng.standard_normal((n_classes, 3, size, size)).astype(np.float32)
    box_protos = rng.uniform(0.1, 0.9, (n_classes, 4 * n_boxes)).astype(np.float32)
    y = rng.integers(0, n_classes, n)
    x = prototypes[y] + noise * rng.standard_normal((n, 3, size, size)).astype(np.float32)
    boxes = box_protos[y] + 0.05 * rng.standard_normal((n, 4 * n_boxes)).astype(np.float32)
    return DetectionDataset(x.astype(np.float32), y, boxes.astype(np.float32), n_classes, n_boxes)


@dataclass
class LmDataset:
    ids: np.ndarray  # (n, seq) int token ids
    vocab: int

    @property
    def inputs(self) -> np.ndarray:
        return self.ids[:, :-1]

    @property
    def targets(self) -> np.ndarray:
        return self.ids[:, 1:]


def make_lm_data(
    n: int, seq: int = 17, vocab: int = 64, concentration: float = 0.1, seed: int = 0
) -> LmDataset:
    """Markov-chain token sequences; smaller concentration = more learnable."""
    rng = spawn_rng(seed)
    # Peaked random transition matrix via Dirichlet rows.
    trans = rng.dirichlet(np.full(vocab - 2, concentration), size=vocab)
    ids = np.empty((n, seq), dtype=np.int64)
    ids[:, 0] = rng.integers(2, vocab, n)
    for t in range(1, seq):
        u = rng.random(n)
        cdf = np.cumsum(trans[ids[:, t - 1]], axis=1)
        ids[:, t] = 2 + (u[:, None] > cdf).sum(axis=1).clip(0, vocab - 3)
    return LmDataset(ids, vocab)


@dataclass
class MlmBatch:
    inputs: np.ndarray  # (n, seq) with MASK_TOKEN at masked positions
    targets: np.ndarray  # (n, seq) original ids at masked positions, 0 elsewhere


def make_mlm_batches(ds: LmDataset, mask_prob: float = 0.15, seed: int = 0) -> MlmBatch:
    """BERT-style masking: targets are 0 (ignored) except at masked slots."""
    rng = spawn_rng(seed)
    mask = rng.random(ds.ids.shape) < mask_prob
    # Ensure at least one masked token per sequence.
    none_masked = ~mask.any(axis=1)
    mask[none_masked, 0] = True
    inputs = np.where(mask, MASK_TOKEN, ds.ids)
    targets = np.where(mask, ds.ids, 0)
    return MlmBatch(inputs.astype(np.int64), targets.astype(np.int64))


@dataclass
class SquadDataset:
    ids: np.ndarray  # (n, seq)
    starts: np.ndarray  # (n,) answer-span start positions
    ends: np.ndarray  # (n,) inclusive end positions
    vocab: int


def make_squad_data(
    n: int, seq: int = 24, vocab: int = 32, n_markers: int = 4, seed: int = 0
) -> SquadDataset:
    """Extractive-QA proxy: find the span of the question-indicated marker.

    Position 0 holds a "question" token q in [vocab-n_markers, vocab);
    somewhere in the body a contiguous run of the token q appears (the
    answer); distractor runs of *other* markers are inserted so the model
    must condition on the question.
    """
    rng = spawn_rng(seed)
    body_vocab = vocab - n_markers
    if body_vocab < 4:
        raise ValueError("vocab too small for the marker alphabet")
    ids = rng.integers(2, body_vocab, (n, seq)).astype(np.int64)
    markers = vocab - n_markers + rng.integers(0, n_markers, n)
    starts = np.empty(n, dtype=np.int64)
    ends = np.empty(n, dtype=np.int64)
    for i in range(n):
        span_len = int(rng.integers(1, 4))
        s = int(rng.integers(1, seq - span_len))
        ids[i, 0] = markers[i]
        ids[i, s : s + span_len] = markers[i]
        starts[i] = s
        ends[i] = s + span_len - 1
        # One distractor run of a different marker, if it fits elsewhere.
        other = vocab - n_markers + int(rng.integers(0, n_markers))
        if other != markers[i]:
            ds_len = int(rng.integers(1, 3))
            cand = int(rng.integers(1, seq - ds_len))
            if cand + ds_len <= s or cand > ends[i]:
                ids[i, cand : cand + ds_len] = other
    return SquadDataset(ids, starts, ends, vocab)
