"""Network and platform specifications.

Models the paper's two evaluation platforms (section 5):

* **Platform 1** — 16 nodes x 4 NVLink A100s, Slingshot-10 (100 Gb/s).
* **Platform 2** — 64 nodes x 4 NVLink A100s, Slingshot-11 (200 Gb/s).

A :class:`NetworkSpec` captures the alpha-beta parameters of both fabric
levels.  ``effective_bandwidth`` returns the per-rank bandwidth for a
communicator of ``p`` ranks over ``nodes`` nodes: intra-node traffic runs
at NVLink speed, while cross-node traffic shares each node's NIC among
its local ranks — the standard flat-ring bottleneck analysis, and the
reason the paper's communication fraction grows with GPU count.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkSpec", "SLINGSHOT10", "SLINGSHOT11", "PLATFORM1", "PLATFORM2", "Platform"]


@dataclass(frozen=True)
class NetworkSpec:
    """Two-level (NVLink + fabric) alpha-beta network model."""

    name: str
    #: Inter-node NIC bandwidth per node, bytes/s.
    inter_bw: float
    #: Inter-node message latency, seconds.
    inter_lat: float
    #: Intra-node (NVLink) bandwidth per GPU pair, bytes/s.
    intra_bw: float
    #: Intra-node message latency, seconds.
    intra_lat: float

    def effective_bandwidth(self, p: int, gpus_per_node: int) -> float:
        """Per-rank steady-state bandwidth for a p-rank communicator."""
        if p <= 1:
            return self.intra_bw
        if p <= gpus_per_node:
            return self.intra_bw
        local = min(p, gpus_per_node)
        return min(self.intra_bw, self.inter_bw / local)

    def latency(self, p: int, gpus_per_node: int) -> float:
        """Per-hop latency for a p-rank communicator."""
        if p <= gpus_per_node:
            return self.intra_lat
        return self.inter_lat


# 100 Gb/s and 200 Gb/s fabrics; NVLink3 ~ 300 GB/s effective per GPU.
SLINGSHOT10 = NetworkSpec("slingshot10", inter_bw=100e9 / 8, inter_lat=5e-6, intra_bw=300e9, intra_lat=1.5e-6)
SLINGSHOT11 = NetworkSpec("slingshot11", inter_bw=200e9 / 8, inter_lat=4e-6, intra_bw=300e9, intra_lat=1.5e-6)


@dataclass(frozen=True)
class Platform:
    """A named cluster configuration from the paper's evaluation."""

    name: str
    max_nodes: int
    gpus_per_node: int
    network: NetworkSpec

    def world_size(self, nodes: int) -> int:
        if nodes > self.max_nodes:
            raise ValueError(f"{self.name} has only {self.max_nodes} nodes, asked for {nodes}")
        return nodes * self.gpus_per_node


PLATFORM1 = Platform("platform1", max_nodes=16, gpus_per_node=4, network=SLINGSHOT10)
PLATFORM2 = Platform("platform2", max_nodes=64, gpus_per_node=4, network=SLINGSHOT11)
